"""The staged onboarding procedure of section 6.1.

"We devised a step-by-step procedure to onboard RDMA": lab, then test
clusters, then production **ToR-only**, then PFC up to the **Podset**
(ToR + Leaf), then PFC up to the **Spine** -- each step gated on health
before the blast radius grows.  "This step-by-step procedure turned out
to be effective in improving the maturity of RoCEv2": the livelock and
most bugs died in the lab, deadlock and slow-receiver in test clusters,
and only the NIC storm reached production.

:class:`StagedRollout` drives that procedure on a three-tier topology:
each stage widens the set of switches carrying lossless traffic and the
set of host pairs allowed to run RDMA; :meth:`advance` re-configures the
fabric and runs a health gate (active probes + loss counters) before
declaring the stage passed.
"""

from repro.monitoring.pingmesh import Pingmesh
from repro.sim.units import MS


class StageReport:
    """Outcome of one stage's health gate."""

    __slots__ = ("stage", "passed", "probe_errors", "lossless_drops", "probes")

    def __init__(self, stage, passed, probe_errors, lossless_drops, probes):
        self.stage = stage
        self.passed = passed
        self.probe_errors = probe_errors
        self.lossless_drops = lossless_drops
        self.probes = probes

    def __repr__(self):
        return "StageReport(%s, %s, errors=%d, drops=%d)" % (
            self.stage,
            "PASS" if self.passed else "FAIL",
            self.probe_errors,
            self.lossless_drops,
        )


class StagedRollout:
    """Progressive PFC scope on a :class:`~repro.topo.builders.ThreeTierTopo`.

    Stages (production subset of the paper's five; lab and test-cluster
    stages are this repository's test suite):

    * ``tor-only`` -- PFC on ToRs; RDMA allowed between servers under
      the same ToR.
    * ``podset``  -- PFC on ToRs + Leaves; RDMA within a podset.
    * ``spine``   -- PFC everywhere; RDMA fabric-wide.
    """

    STAGES = ("tor-only", "podset", "spine")

    def __init__(self, topo, rng, gate_duration_ns=5 * MS, probe_interval_ns=MS // 2):
        self.topo = topo
        self.sim = topo.sim
        self.rng = rng
        self.gate_duration_ns = gate_duration_ns
        self.probe_interval_ns = probe_interval_ns
        self.stage_index = -1
        self.reports = []

    @property
    def stage(self):
        if self.stage_index < 0:
            return None
        return self.STAGES[self.stage_index]

    # -- scope computation ---------------------------------------------------------

    def _switch_tiers(self):
        tors = [t for podset in self.topo.podsets for t in podset["tors"]]
        leaves = [l for podset in self.topo.podsets for l in podset["leaves"]]
        return tors, leaves, list(self.topo.spines)

    def _lossless_switches(self, stage):
        tors, leaves, spines = self._switch_tiers()
        if stage == "tor-only":
            return tors
        if stage == "podset":
            return tors + leaves
        return tors + leaves + spines

    def allowed_pairs(self, stage):
        """Host pairs permitted to run RDMA at a stage (the deployment
        constraint that matches the PFC scope)."""
        pairs = []
        if stage == "tor-only":
            for podset in self.topo.podsets:
                for hosts in podset["hosts_by_tor"]:
                    pairs.extend(
                        (a, b) for a in hosts for b in hosts if a is not b
                    )
        elif stage == "podset":
            for podset in self.topo.podsets:
                hosts = [h for tor_hosts in podset["hosts_by_tor"] for h in tor_hosts]
                pairs.extend((a, b) for a in hosts for b in hosts if a is not b)
        else:
            hosts = self.topo.hosts
            pairs.extend((a, b) for a in hosts for b in hosts if a is not b)
        return pairs

    # -- rollout -------------------------------------------------------------------

    def _apply_scope(self, stage):
        enabled = set(id(s) for s in self._lossless_switches(stage))
        for switch in self.topo.fabric.switches:
            switch.pfc_config = switch.pfc_config.copy(enabled=(id(switch) in enabled))

    def _health_gate(self, stage):
        """Active probes over the newly allowed pairs + loss counters."""
        drops_before = self._lossless_drops()
        pingmesh = Pingmesh(self.sim, self.rng.child("gate/%s" % stage),
                            interval_ns=self.probe_interval_ns)
        pairs = self.allowed_pairs(stage)
        # Probe a bounded sample: first, middle and last pairs.
        sample = [pairs[0], pairs[len(pairs) // 2], pairs[-1]]
        for src, dst in sample:
            pingmesh.add_pair(src, dst)
        pingmesh.start()
        self.sim.run(until=self.sim.now + self.gate_duration_ns)
        pingmesh.stop()
        errors = sum(1 for r in pingmesh.results if not r.ok)
        drops = self._lossless_drops() - drops_before
        passed = errors == 0 and drops == 0 and len(pingmesh.results) > 0
        return StageReport(stage, passed, errors, drops, len(pingmesh.results))

    def _lossless_drops(self):
        return sum(
            s.counters.drops["buffer-headroom-overflow"]
            + s.counters.drops["watchdog-lossless"]
            for s in self.topo.fabric.switches
        )

    def advance(self):
        """Widen scope by one stage and run its health gate.

        Returns the :class:`StageReport`; on failure the scope rolls
        back to the previous stage (the paper's phased-deployment
        safety property).
        """
        if self.stage_index + 1 >= len(self.STAGES):
            raise RuntimeError("rollout already at full scope")
        candidate = self.STAGES[self.stage_index + 1]
        previous = self.stage
        self._apply_scope(candidate)
        report = self._health_gate(candidate)
        self.reports.append(report)
        if report.passed:
            self.stage_index += 1
        elif previous is not None:
            self._apply_scope(previous)  # roll back
        else:
            for switch in self.topo.fabric.switches:
                switch.pfc_config = switch.pfc_config.copy(enabled=False)
        return report

    def run_to_completion(self):
        """Advance through every stage; stops at the first failure."""
        while self.stage != self.STAGES[-1]:
            report = self.advance()
            if not report.passed:
                break
        return self.reports
