"""DSCP-based PFC: the paper's scalability contribution (section 3,
figure 3b).

The key observation: PFC pause frames never carry a VLAN tag, so the tag
exists only to carry the data packet's priority -- and IP already has a
better field for that, DSCP, which survives routing and needs no trunk
ports.  "The change is small and only touches the data packet format."
"""

from repro.packets.packet import PriorityMode
from repro.rdma.qp import TrafficClass
from repro.switch.pfc import PfcConfig


class DscpPfcDesign:
    """Fabric-wide DSCP-based PFC deployment.

    ``dscp_to_priority`` defaults to the paper's identity mapping ("we
    simply map DSCP value i to PFC priority i") but "can be flexible and
    can even be many-to-one".
    """

    name = "dscp-pfc"

    def __init__(self, lossless_priorities=(3, 4), dscp_to_priority=None, default_priority=0):
        self.lossless_priorities = tuple(lossless_priorities)
        self.dscp_to_priority = dscp_to_priority
        self.default_priority = default_priority

    # -- config generation --------------------------------------------------------

    def pfc_config(self):
        return PfcConfig(
            priority_mode=PriorityMode.DSCP,
            lossless_priorities=self.lossless_priorities,
            dscp_to_priority=self.dscp_to_priority,
            default_priority=self.default_priority,
        )

    def traffic_class(self, priority, dscp=None):
        """Untagged packets; priority carried in DSCP."""
        if dscp is None:
            dscp = self._dscp_for_priority(priority)
        return TrafficClass(dscp=dscp, priority=priority, vlan_id=None)

    def _dscp_for_priority(self, priority):
        if self.dscp_to_priority is None:
            return priority  # identity mapping
        for dscp, mapped in self.dscp_to_priority.items():
            if mapped == priority:
                return dscp
        raise ValueError("no DSCP maps to priority %d" % priority)

    @property
    def required_server_port_mode(self):
        """Access mode works: untagged frames flow, PXE boot included."""
        return "access"

    def apply_to_switch(self, switch):
        switch.pfc_config = self.pfc_config()
        switch.set_server_port_modes(self.required_server_port_mode)

    # -- self-diagnosis ------------------------------------------------------------

    def validate(self, layer3_fabric=True, pxe_boot_needed=True, layer2_only_protocols=False):
        """Deployment problems.  Empty on the paper's L3 fabric; the one
        genuine limitation is pure layer-2 designs (e.g. FCoE)."""
        problems = []
        if layer2_only_protocols:
            problems.append(
                "DSCP-based PFC cannot serve designs that must stay in "
                "layer 2 (e.g. FCoE) -- there is no IP header to carry "
                "the priority"
            )
        return problems
