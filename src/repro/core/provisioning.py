"""The OS-provisioning (PXE boot) service model.

Section 3: "When a server goes through PXE boot, its NIC does not have
VLAN configuration and as a result cannot send or receive packets with
VLAN tags.  But since the server facing switch ports are configured with
trunk mode, these ports can only send packets with VLAN tag.  Hence the
PXE boot communication between the server and the OS provisioning
service is broken."

The model runs an actual untagged request/response exchange through a
switch (using the simulator), so the failure is *observed*, not assumed.
"""

import enum

from repro.packets.ip import IPPROTO_UDP, Ipv4Header
from repro.packets.packet import Packet
from repro.packets.udp import UdpHeader


class PxeBootResult(enum.Enum):
    """Outcome of a provisioning attempt."""

    SUCCESS = "success"
    BROKEN_TRUNK_PORT = "broken-trunk-port"
    NO_RESPONSE = "no-response"


class ProvisioningService:
    """A PXE/DHCP-style boot service reachable through the fabric.

    The service lives on ``server_host``; a booting NIC on ``client_host``
    exchanges **untagged** UDP datagrams with it (a PXE-booting NIC has no
    VLAN configuration).  ``attempt_boot`` drives the exchange through
    the real switch pipeline and reports what happened.
    """

    DHCP_CLIENT_PORT = 68
    DHCP_SERVER_PORT = 67

    def __init__(self, sim, server_host):
        self.sim = sim
        self.server_host = server_host
        self.requests_served = 0
        self._install()

    def _install(self):
        def handler(packet):
            if packet.udp.dst_port == self.DHCP_SERVER_PORT:
                self.requests_served += 1
                self._respond(packet)

        self.server_host.install_handler("raw-udp", handler)

    def _respond(self, request):
        response = _untagged_udp(
            self.server_host,
            dst_ip=request.ip.src,
            dst_mac=request.src_mac,
            src_port=self.DHCP_SERVER_PORT,
            dst_port=self.DHCP_CLIENT_PORT,
            payload=300,
            now=self.sim.now,
        )
        self.server_host.nic.port.enqueue(response, 0)

    def attempt_boot(self, client_host, timeout_ns=1_000_000):
        """One boot attempt: untagged request, wait for the response.

        Returns a :class:`PxeBootResult`.
        """
        got_response = []

        def client_handler(packet):
            if packet.udp is not None and packet.udp.dst_port == self.DHCP_CLIENT_PORT:
                got_response.append(packet)

        client_host.install_handler("raw-udp", client_handler)
        request = _untagged_udp(
            client_host,
            dst_ip=self.server_host.ip,
            dst_mac=self.server_host.mac,
            src_port=self.DHCP_CLIENT_PORT,
            dst_port=self.DHCP_SERVER_PORT,
            payload=300,
            now=self.sim.now,
        )
        served_before = self.requests_served
        client_host.nic.port.enqueue(request, 0)
        self.sim.run(until=self.sim.now + timeout_ns)
        if got_response:
            return PxeBootResult.SUCCESS
        if self.requests_served == served_before:
            return PxeBootResult.BROKEN_TRUNK_PORT
        return PxeBootResult.NO_RESPONSE


def _untagged_udp(host, dst_ip, dst_mac, src_port, dst_port, payload, now):
    """An untagged UDP datagram -- all a PXE-booting NIC can produce."""
    ip = Ipv4Header(
        src=host.ip,
        dst=dst_ip,
        protocol=IPPROTO_UDP,
        dscp=0,
        identification=host.nic.next_ip_id(),
    )
    udp = UdpHeader(src_port=src_port, dst_port=dst_port)
    return Packet(
        dst_mac=dst_mac,
        src_mac=host.mac,
        ip=ip,
        udp=udp,
        payload_bytes=payload,
        created_ns=now,
    )
