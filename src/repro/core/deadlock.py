"""PFC deadlock detection.

Runtime detector
    A deadlock is a cycle of priority groups (PGs) each asserting pause
    while unable to drain *because of* the next PG's pause.  The detector
    snapshots the fabric and builds the wait-for graph:

    PG ``(S, q, p)`` -- ingress port ``q`` of switch ``S`` at priority
    ``p`` -- **waits on** PG ``(D, r, p)`` when some egress port ``E`` of
    ``S`` holds packets buffered against ``(S, q, p)`` and ``E`` is paused
    at ``p`` by its neighbour ``D`` (whose ingress PG ``(D, r, p)`` is the
    one asserting the pause, ``r`` being the far end of the link).

    A cycle of such edges in which every PG is pause-asserting is exactly
    the "PFC pause frame loop" of figure 4.

Static analyzer
    Builds the channel-dependency graph [Dally & Seitz] from the
    installed routes: channel ``A->S`` depends on ``S->B`` if a packet
    can arrive from ``A`` and be forwarded to ``B``.  Up-down-routed Clos
    fabrics are acyclic here -- **until** unknown-unicast flooding is
    admitted to lossless classes, which adds every-port-to-every-port
    dependencies at the ToRs and closes cycles; this is the paper's
    root-cause in graph form.
"""

import networkx as nx

from repro.switch.switch import Switch


class DeadlockReport:
    """Result of a runtime deadlock scan."""

    def __init__(self, cycles, graph):
        self.cycles = cycles  # list of lists of PG nodes
        self.graph = graph

    @property
    def deadlocked(self):
        return bool(self.cycles)

    def involved_switches(self):
        return sorted({node[0] for cycle in self.cycles for node in cycle})

    def __repr__(self):
        if not self.deadlocked:
            return "DeadlockReport(clear)"
        return "DeadlockReport(%d cycle(s) over %s)" % (
            len(self.cycles),
            ", ".join(self.involved_switches()),
        )


def build_wait_graph(switches):
    """The runtime pause wait-for graph over PG nodes
    ``(switch_name, ingress_port_idx, priority)``."""
    graph = nx.DiGraph()
    by_name = {s.name: s for s in switches}
    for switch in switches:
        if switch.buffer is None:
            continue
        for egress in switch.ports:
            if egress.peer is None:
                continue
            neighbour = egress.peer.device
            if not isinstance(neighbour, Switch) or neighbour.name not in by_name:
                continue
            for priority in range(8):
                if not egress.is_paused(priority):
                    continue
                pauser = (neighbour.name, egress.peer.index, priority)
                # Only count the pauser if its PG really is asserting.
                if not neighbour.buffer.pg(egress.peer.index, priority).paused:
                    continue
                for entry in egress._queues[priority]:
                    meta = entry.meta
                    if meta is None:
                        continue
                    waiter = (switch.name, meta.claim.port_idx, priority)
                    graph.add_edge(waiter, pauser)
    return graph


def detect_deadlock(switches):
    """Scan the fabric for PFC pause cycles.

    Returns a :class:`DeadlockReport`.  A true deadlock requires every PG
    on the cycle to be pause-asserting, which :func:`build_wait_graph`
    already enforces edge by edge, so any directed cycle qualifies.
    """
    graph = build_wait_graph(switches)
    cycles = list(nx.simple_cycles(graph))
    return DeadlockReport(cycles, graph)


def static_channel_dependencies(switches, assume_lossless_flooding=False):
    """The static channel-dependency graph from installed routes.

    Nodes are directed channels ``(from_name, to_name, from_port_idx)``
    between switches.  The analysis is *destination-aware*: channel
    ``A->S`` depends on ``S->B`` only if some destination prefix is
    actually routed ``A -> S -> B`` -- route tables alone would admit
    valley paths (down-then-up) that up-down routing never exercises.
    The fabric is provably PFC-deadlock-free for routed lossless traffic
    iff the graph is acyclic.

    ``assume_lossless_flooding`` adds the flooding dependencies: at the
    destination ToR, an incomplete ARP entry floods the packet out of
    *every* port, including routed uplinks -- the paper's failure mode,
    and exactly what closes the cycle in the figure 4 topology.
    """
    graph = nx.DiGraph()
    by_name = {s.name for s in switches}

    def is_fabric_port(port):
        return port.peer is not None and isinstance(port.peer.device, Switch)

    def route_out_ports(switch, addr):
        """Inter-switch ports a packet to ``addr`` can leave through."""
        if switch.tables.is_local(addr):
            return []
        for route in switch.tables.routes:
            if route.matches(addr):
                return [
                    i for i in route.ports if is_fabric_port(switch.ports[i])
                ]
        return []

    def flood_out_ports(switch, exclude_idx):
        return [
            p.index
            for p in switch.ports
            if is_fabric_port(p) and p.index != exclude_idx
        ]

    # One representative address per destination subnet in the fabric.
    destinations = []
    for switch in switches:
        if switch.tables.local_subnet is not None:
            prefix, plen = switch.tables.local_subnet
            destinations.append((switch, prefix | 1))

    for _dst_switch, addr in destinations:
        for switch in switches:
            for out_idx in route_out_ports(switch, addr):
                out_port = switch.ports[out_idx]
                next_hop = out_port.peer.device
                if next_hop.name not in by_name:
                    continue
                out_channel = (switch.name, next_hop.name, out_idx)
                graph.add_node(out_channel)
                # What can the next hop do with this packet?
                continuations = route_out_ports(next_hop, addr)
                if (
                    assume_lossless_flooding
                    and next_hop.tables.is_local(addr)
                ):
                    continuations = flood_out_ports(next_hop, out_port.peer.index)
                for cont_idx in continuations:
                    cont_port = next_hop.ports[cont_idx]
                    cont_channel = (next_hop.name, cont_port.peer.device.name, cont_idx)
                    graph.add_edge(out_channel, cont_channel)
    return graph


def is_statically_deadlock_free(switches, assume_lossless_flooding=False):
    """True when the channel-dependency graph is acyclic."""
    graph = static_channel_dependencies(switches, assume_lossless_flooding)
    return nx.is_directed_acyclic_graph(graph)
