"""The paper's primary contributions, as reusable policy objects.

* :mod:`~repro.core.dscp_pfc` / :mod:`~repro.core.vlan_pfc` -- the two
  PFC deployment designs of section 3, with validators that surface the
  VLAN design's failure modes (trunk-mode ports, PCP loss across
  subnets) and the DSCP design's fixes.
* :mod:`~repro.core.provisioning` -- the PXE-boot / OS-provisioning
  interaction that killed VLAN-based PFC in practice.
* :mod:`~repro.core.deadlock` -- runtime PFC deadlock detection (cycle
  finding over the pause wait-for graph) and a static channel-dependency
  analyzer for topologies+routing.
* :mod:`~repro.core.safety` -- bundled safety profiles: the paper's full
  mitigation set vs the naive initial deployment.
* :mod:`~repro.core.deployment` -- the section 6.1 staged onboarding
  procedure (ToR-only -> Podset -> Spine) with health gates and
  rollback.
"""

from repro.core.deadlock import (
    DeadlockReport,
    detect_deadlock,
    static_channel_dependencies,
)
from repro.core.deployment import StagedRollout, StageReport
from repro.core.dscp_pfc import DscpPfcDesign
from repro.core.provisioning import ProvisioningService, PxeBootResult
from repro.core.safety import SafetyProfile, naive_profile, paper_safe_profile
from repro.core.vlan_pfc import VlanPfcDesign

__all__ = [
    "DscpPfcDesign",
    "VlanPfcDesign",
    "ProvisioningService",
    "PxeBootResult",
    "detect_deadlock",
    "static_channel_dependencies",
    "DeadlockReport",
    "SafetyProfile",
    "paper_safe_profile",
    "naive_profile",
    "StagedRollout",
    "StageReport",
]
