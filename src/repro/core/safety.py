"""Bundled safety profiles.

The paper's production posture is a *set* of mitigations that only work
together: go-back-N recovery (4.1), dropping lossless packets on
incomplete ARP entries (4.2), both storm watchdogs (4.3), large MTT
pages + dynamic buffer sharing with a sane alpha (4.4, 6.2).  A
:class:`SafetyProfile` captures one such posture and applies it to a
topology; the ablation benches toggle individual fields.
"""

from repro.nic.mtt import MttConfig
from repro.rdma.recovery import GoBack0, GoBackN
from repro.sim.units import KB, MB
from repro.switch.buffer import BufferConfig
from repro.switch.watchdog import SwitchWatchdogConfig


class SafetyProfile:
    """One deployment posture."""

    def __init__(
        self,
        name,
        recovery_factory,
        drop_lossless_on_incomplete_arp,
        nic_watchdog_enabled,
        switch_watchdog_enabled,
        buffer_alpha,
        mtt_page_bytes,
    ):
        self.name = name
        self.recovery_factory = recovery_factory
        self.drop_lossless_on_incomplete_arp = drop_lossless_on_incomplete_arp
        self.nic_watchdog_enabled = nic_watchdog_enabled
        self.switch_watchdog_enabled = switch_watchdog_enabled
        self.buffer_alpha = buffer_alpha
        self.mtt_page_bytes = mtt_page_bytes

    def recovery(self):
        """A fresh recovery-policy instance for a QP."""
        return self.recovery_factory()

    def buffer_config(self, **overrides):
        kwargs = dict(alpha=self.buffer_alpha)
        kwargs.update(overrides)
        return BufferConfig(**kwargs)

    def mtt_config(self, **overrides):
        kwargs = dict(page_bytes=self.mtt_page_bytes)
        kwargs.update(overrides)
        return MttConfig(**kwargs)

    def forwarding_kwargs(self):
        """Keyword arguments for switch construction."""
        return {
            "drop_lossless_on_incomplete_arp": self.drop_lossless_on_incomplete_arp
        }

    def apply_to_topology(self, topo):
        """Arm the profile's runtime pieces on a built topology."""
        for switch in topo.fabric.switches:
            switch.tables.drop_lossless_on_incomplete_arp = (
                self.drop_lossless_on_incomplete_arp
            )
            if self.switch_watchdog_enabled:
                switch.enable_storm_watchdog(SwitchWatchdogConfig())
        for host in topo.fabric.hosts:
            host.nic.config.watchdog_config.enabled = self.nic_watchdog_enabled
        return topo

    def __repr__(self):
        return "SafetyProfile(%s)" % self.name


def paper_safe_profile():
    """Everything the paper deployed, together."""
    return SafetyProfile(
        name="paper-safe",
        recovery_factory=GoBackN,
        drop_lossless_on_incomplete_arp=True,
        nic_watchdog_enabled=True,
        switch_watchdog_enabled=True,
        buffer_alpha=1.0 / 16,
        mtt_page_bytes=2 * MB,
    )


def naive_profile():
    """The initial state of the world the paper started from: vendor
    go-back-0 firmware, flooding allowed for lossless traffic, no
    watchdogs, small pages, and the misconfigured alpha of section 6.2."""
    return SafetyProfile(
        name="naive",
        recovery_factory=GoBack0,
        drop_lossless_on_incomplete_arp=False,
        nic_watchdog_enabled=False,
        switch_watchdog_enabled=False,
        buffer_alpha=1.0 / 64,
        mtt_page_bytes=4 * KB,
    )
