"""The original VLAN-based PFC design (section 3, figure 3a).

Packet priority rides the 802.1Q PCP field, which cannot be carried
without a VLAN ID: ports must run in trunk mode, and the tag does not
survive IP routing.  The design object produces the device configs and
*knows its own failure modes*, which the validators and experiment E9
surface.
"""

from repro.packets.packet import PriorityMode
from repro.rdma.qp import TrafficClass
from repro.switch.pfc import PfcConfig


class VlanPfcDesign:
    """Fabric-wide VLAN-based PFC deployment."""

    name = "vlan-pfc"

    def __init__(self, vlan_id=100, lossless_priorities=(3, 4), default_priority=0):
        self.vlan_id = vlan_id
        self.lossless_priorities = tuple(lossless_priorities)
        self.default_priority = default_priority

    # -- config generation -------------------------------------------------------

    def pfc_config(self):
        """The :class:`PfcConfig` for switches and NICs."""
        return PfcConfig(
            priority_mode=PriorityMode.VLAN,
            lossless_priorities=self.lossless_priorities,
            default_priority=self.default_priority,
        )

    def traffic_class(self, priority, dscp=None):
        """How a QP must colour packets: tagged, PCP = priority."""
        return TrafficClass(
            dscp=dscp if dscp is not None else priority,
            priority=priority,
            vlan_id=self.vlan_id,
        )

    @property
    def required_server_port_mode(self):
        """Server-facing ports must accept tagged frames: trunk mode --
        which is exactly what breaks PXE boot."""
        return "trunk"

    def apply_to_switch(self, switch):
        """Install the design on a switch (PFC mode + port modes)."""
        switch.pfc_config = self.pfc_config()
        switch.set_server_port_modes(self.required_server_port_mode)

    # -- self-diagnosis -----------------------------------------------------------

    def validate(self, layer3_fabric=True, pxe_boot_needed=True):
        """Returns the list of deployment problems (strings); empty means
        deployable.  For this design the list is never empty in the
        paper's environment."""
        problems = []
        if pxe_boot_needed:
            problems.append(
                "server ports must be trunk mode, but PXE-booting NICs "
                "have no VLAN configuration and cannot exchange tagged "
                "frames: OS provisioning breaks"
            )
        if layer3_fabric:
            problems.append(
                "VLAN PCP is not preserved across IP subnet boundaries: "
                "packets lose their priority (and PFC protection) after "
                "the first routed hop"
            )
        return problems
