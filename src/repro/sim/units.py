"""Unit helpers for the simulator.

All simulated time is kept in **integer nanoseconds** and all bandwidth in
**bits per second**.  Integer time gives deterministic event ordering (no
floating-point accumulation drift between runs), which matters because the
deadlock and livelock experiments in the paper are sensitive to exact event
interleavings.

The constants let model code read like the paper's prose::

    headroom = 2 * propagation_delay_ns(300)   # "as large as 300 meters"
    xoff = 384 * KB
    link = Link(rate_bps=40 * GBPS, ...)
"""

# --- time ------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

# --- data size -------------------------------------------------------------

KB = 1_024
MB = 1_024 * 1_024

# --- bandwidth -------------------------------------------------------------

GBPS = 1_000_000_000
MBPS = 1_000_000


def gbps(value):
    """Bandwidth in bits/second for ``value`` gigabits per second."""
    return int(value * GBPS)


def bytes_to_bits(nbytes):
    """Number of bits in ``nbytes`` bytes."""
    return nbytes * 8


def bits_to_bytes(nbits):
    """Number of whole bytes covering ``nbits`` bits."""
    return (nbits + 7) // 8


def serialization_delay_ns(nbytes, rate_bps):
    """Time (ns) to clock ``nbytes`` onto a wire running at ``rate_bps``.

    Rounds up so that a sequence of back-to-back transmissions can never
    exceed the physical line rate.
    """
    if rate_bps <= 0:
        raise ValueError("rate_bps must be positive, got %r" % (rate_bps,))
    bits = bytes_to_bits(nbytes)
    return -(-bits * SEC // rate_bps)  # ceiling division


# Signal propagation speed in copper/fiber is ~2/3 c; the paper sizes PFC
# headroom from cable length ("Leaf and Spine switches are within the
# distance of 200 - 300 meters").
_PROPAGATION_NS_PER_METER = 5  # 1 / (0.66 * 3e8 m/s) ~= 5 ns/m


def propagation_delay_ns(meters):
    """Propagation delay (ns) across ``meters`` of cable or fiber."""
    if meters < 0:
        raise ValueError("cable length cannot be negative: %r" % (meters,))
    return int(meters * _PROPAGATION_NS_PER_METER)


def fmt_time(t_ns):
    """Render an integer-nanosecond timestamp human-readably."""
    if t_ns >= SEC:
        return "%.3fs" % (t_ns / SEC)
    if t_ns >= MS:
        return "%.3fms" % (t_ns / MS)
    if t_ns >= US:
        return "%.3fus" % (t_ns / US)
    return "%dns" % t_ns


def fmt_rate(rate_bps):
    """Render a bandwidth in the customary unit."""
    if rate_bps >= GBPS:
        return "%.2fGb/s" % (rate_bps / GBPS)
    if rate_bps >= MBPS:
        return "%.2fMb/s" % (rate_bps / MBPS)
    return "%db/s" % rate_bps
