"""The discrete-event engine.

A :class:`Simulator` owns an integer-nanosecond clock and a scheduler of
:class:`Event` callbacks.  Events scheduled for the same instant fire in
the order they were scheduled (FIFO tie-breaking via a monotonically
increasing sequence number), which keeps runs fully deterministic.

The engine is intentionally tiny -- everything else in the reproduction
(links, switches, NICs, transports) is expressed as plain objects that
schedule callbacks on a shared ``Simulator``.

Performance notes (this is the hottest code in the repository -- every
simulated packet costs several engine events):

* The scheduler is a **hierarchical timing wheel**: near-future events
  land in one of ``_WHEEL_SLOTS`` buckets of ``2**_WHEEL_BITS`` ns each
  (an O(1) list append, no tuple allocation), far-future events (RTOs,
  watchdog polls, pause refreshes) overflow into a conventional heap and
  migrate into the wheel as the window advances.  Almost every event in
  this simulator is a short fixed delay -- serialization, propagation,
  pause expiry -- so the common case never touches the heap.
* A bucket is sorted on ``(time, atime, seq)`` when its tick is reached.
  For ordinarily scheduled events ``atime`` (the assignment instant) is
  monotone in ``seq``, so this is exactly (time, FIFO-seq) order --
  identical to the old ``heapq`` ordering, as the determinism
  fingerprints in ``benchmarks/BASELINE.json`` and the Hypothesis
  equivalence suite in ``tests/test_timing_wheel.py`` assert.  Train
  coalescing schedules events early with *virtual* atimes so they keep
  their per-frame position.  Events scheduled *into* the tick currently
  being drained go to a small side heap that the dispatch loop merges by
  (time, atime, seq).
* Hot internal callers use :meth:`schedule1` / :meth:`schedule0`, which
  skip the ``*args`` tuple and draw :class:`Event` objects from a
  **free-list**; such events are recycled after they fire (or after a
  cancelled entry is popped), so steady-state dispatch allocates nothing.
* The engine counts **dispatches** (callbacks actually invoked) and
  **elided events** (wake-ups that train coalescing in
  :mod:`repro.net.port` proved redundant and credited lazily) separately;
  :attr:`events_fired` reports their sum so fingerprints are invariant
  under coalescing, while :attr:`dispatches` feeds the machine-independent
  events-per-packet benchmark metric.
"""

import heapq
from operator import attrgetter

#: Wheel geometry: 2**7 = 128 ns per bucket, 1024 buckets = a 131 us
#: window.  Serialization+propagation delays (hundreds of ns) and pause
#: expiries (tens of us) stay inside the wheel; millisecond timers
#: (RTO, watchdog polls) take the overflow heap.
_WHEEL_BITS = 7
_WHEEL_SLOTS = 1024
_WHEEL_MASK = _WHEEL_SLOTS - 1

_TIME_KEY = attrgetter("time")
_SORT_KEY = attrgetter("time", "atime", "seq")

#: ``Event.atime`` packs two instants into one int key:
#: ``(assignment_instant << _ATIME_SHIFT) | dispatcher_assignment_instant``
#: -- the simulated time the event was scheduled at, then the assignment
#: instant of the callback that scheduled it.  Lexicographic comparison
#: of the packed key resolves same-nanosecond dispatch exactly as the
#: classic FIFO seq would, while letting train coalescing reconstruct
#: both levels virtually.  48 bits bounds the low field: exact up to
#: 2**48 ns (~78 hours) of simulated time, far past any scenario here.
_ATIME_SHIFT = 48

#: Free-list bound: enough to cover every in-flight pooled event of a
#: saturated run without letting an idle sim pin memory forever.
_POOL_MAX = 8192


class SimulationError(Exception):
    """Raised for invalid use of the simulation engine."""


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Events may be cancelled before they fire.  Cancelled events stay in
    the wheel/heap but are skipped when reached (lazy deletion), which is
    O(1) per cancel instead of O(n); the simulator compacts its storage
    once cancelled entries dominate, so timer-heavy runs do not retain
    dead events.

    ``kind`` encodes the call convention: 0 -- ``args`` is a tuple
    (``fn(*args)``); 1 -- ``args`` is the single positional argument;
    2 -- no arguments.  Kinds 1 and 2 are pool-managed: the engine
    recycles them after dispatch, so callers must not retain (or cancel)
    their handles past the event's fire time.

    ``atime`` is the event's packed *assignment key* (see
    ``_ATIME_SHIFT``): the instant it was scheduled at, then the
    assignment instant of the dispatch that scheduled it.  Same-time
    events dispatch in ``(atime, seq)`` order.  For ordinarily scheduled
    events the key is monotone in real scheduling order, so this is
    exactly the classic FIFO seq tie-break.  Train coalescing
    (:mod:`repro.net.port`) schedules a whole departure train's events
    early and stamps each with the *virtual* key per-frame scheduling
    would have produced (the frame's departure instant, dispatched by
    the previous frame's completion), so coalesced events interleave
    with everything else precisely as the per-frame schedule would have.
    """

    __slots__ = ("time", "atime", "seq", "fn", "args", "kind", "cancelled", "sim")

    def __init__(self, time, seq, fn, args, sim=None, kind=0, atime=0):
        self.time = time
        self.atime = atime
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kind = kind
        self.cancelled = False
        # Back-reference kept only while the event sits in the scheduler,
        # so cancellation can update the owner's cancelled-entry count.
        self.sim = sim

    def cancel(self):
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = None
        sim = self.sim
        if sim is not None:
            sim._cancelled += 1
            sim._pending -= 1
            self.sim = None

    def __lt__(self, other):
        # Wheel buckets sort on an explicit key and heap entries carry a
        # unique seq, so ordering never invokes this; kept for direct
        # Event comparisons.
        if self.time != other.time:
            return self.time < other.time
        if self.atime != other.atime:
            return self.atime < other.atime
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%d, seq=%d, %s)" % (self.time, self.seq, state)


class Simulator:
    """A deterministic discrete-event simulator with a nanosecond clock.

    Public surface:

    * :meth:`at` / :meth:`schedule` / :meth:`call_soon` -- queue a callback
      (absolute time, relative delay, or the current instant) and get back
      a cancellable :class:`Event`;
    * :meth:`schedule1` / :meth:`schedule0` -- allocation-free variants
      for hot internal callers (single argument / no argument);
    * :meth:`run` / :meth:`run_until_idle` / :meth:`step` -- dispatch;
    * :attr:`now`, :attr:`events_fired`, :attr:`dispatches`,
      :attr:`pending` -- observability;
    * :meth:`add_settle_hook` / :meth:`add_uncoalesce_hook` -- lazy-state
      registries used by train coalescing (see :mod:`repro.net.port`).
    """

    __slots__ = (
        "_now",
        "_seq",
        "_running",
        "_events_fired",
        "_elided",
        "_cancelled",
        "_pending",
        "_stored",
        "_slots",
        "_cur_tick",
        "_wheel_count",
        "_overflow",
        "_cur_list",
        "_cur_idx",
        "_cur_heap",
        "_pool",
        "_settle_hooks",
        "_uncoalesce_hooks",
        "_dispatch_atime",
        "_dispatch_coarse",
        "_dirty_ticks",
        "coalesce_enabled",
    )

    # Lazy deletion keeps cancels O(1), but a fault-heavy run that arms
    # and re-arms timers (pause refresh, RTO, watchdogs) can leave the
    # scheduler mostly dead entries.  Once the dead outnumber the live
    # (and there are enough to matter), rebuild the storage without them.
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._running = False
        self._events_fired = 0  # callbacks actually invoked (dispatches)
        self._elided = 0  # coalesced wake-ups credited lazily
        self._cancelled = 0  # cancelled events still stored
        self._pending = 0  # live (non-cancelled) events stored
        self._stored = 0  # all stored entries, cancelled included
        self._slots = [[] for _ in range(_WHEEL_SLOTS)]
        self._cur_tick = 0  # the tick _cur_list/_cur_heap drain
        self._wheel_count = 0  # entries stored in _slots
        self._overflow = []  # heap of (time, atime, seq, Event) beyond the window
        self._cur_list = []  # current tick, sorted (time, atime, seq)
        self._cur_idx = 0
        self._cur_heap = []  # current-tick events scheduled mid-drain
        self._pool = []  # Event free-list (kind 1/2 only)
        self._settle_hooks = []
        self._uncoalesce_hooks = []
        # Assignment key of the callback currently being dispatched (None
        # outside dispatch).  Train settlement compares it against a
        # deferred booking's virtual wake-up key to decide whether the
        # per-frame schedule would have booked before or after the current
        # event -- the same-nanosecond interleaving question.
        self._dispatch_atime = None
        # Its high field (assignment instant), pre-shifted once per
        # dispatch so the per-schedule key composition is one shift+or.
        self._dispatch_coarse = 0
        # Wheel ticks that received an explicit virtual key and therefore
        # need the full (time, atime, seq) sort at load; every other
        # bucket keeps the cheap stable time-only sort.
        self._dirty_ticks = set()
        self.coalesce_enabled = True

    # -- observability -------------------------------------------------------

    @property
    def now(self):
        """Current simulated time in integer nanoseconds."""
        return self._now

    @property
    def events_fired(self):
        """Total logical events so far: callbacks executed plus wake-ups
        elided by train coalescing.  Invariant under coalescing, which is
        what lets the determinism fingerprints stay byte-identical."""
        for hook in self._settle_hooks:
            hook()
        return self._events_fired + self._elided

    @property
    def dispatches(self):
        """Callbacks actually invoked -- the machine-independent cost
        metric (events-per-packet) reported by ``repro.bench``."""
        return self._events_fired

    @property
    def elided_events(self):
        """Wake-ups proven redundant by coalescing and credited lazily."""
        for hook in self._settle_hooks:
            hook()
        return self._elided

    @property
    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return self._pending

    # -- coalescing registries -----------------------------------------------

    def add_settle_hook(self, hook):
        """Register ``hook()`` to be called whenever lazily-deferred state
        must be brought current (end of :meth:`run`, reads of
        :attr:`events_fired`).  Hooks must not schedule new events."""
        if hook not in self._settle_hooks:
            self._settle_hooks.append(hook)

    def add_uncoalesce_hook(self, hook):
        """Register ``hook()`` to force any active event trains back to
        per-event scheduling (used when exact ``max_events`` semantics are
        required)."""
        if hook not in self._uncoalesce_hooks:
            self._uncoalesce_hooks.append(hook)

    def _settle_all(self):
        for hook in self._settle_hooks:
            hook()

    def _uncoalesce_all(self):
        for hook in self._uncoalesce_hooks:
            hook()

    # -- scheduling ----------------------------------------------------------

    def _place(self, event):
        """File ``event`` into the wheel / overflow / current-tick heap.
        Counter maintenance is the caller's job (insertion vs migration)."""
        delta = (event.time >> _WHEEL_BITS) - self._cur_tick
        if delta <= 0:
            # The current tick -- or an older one: the tick cursor can sit
            # ahead of the clock when a drained tick held only cancelled
            # events.  The dispatch loop merges this side heap by
            # (time, atime, seq), so ordering is exact either way.
            heapq.heappush(self._cur_heap, (event.time, event.atime, event.seq, event))
        elif delta < _WHEEL_SLOTS:
            self._slots[(event.time >> _WHEEL_BITS) & _WHEEL_MASK].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(
                self._overflow, (event.time, event.atime, event.seq, event)
            )

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        ``time`` must not be in the past (raises :class:`SimulationError`).
        Returns the :class:`Event` so the caller can cancel it.
        """
        time = int(time)
        if time < self._now:
            raise SimulationError(
                "cannot schedule event at t=%d; clock is already at t=%d"
                % (time, self._now)
            )
        cancelled = self._cancelled
        if cancelled >= self._COMPACT_MIN_CANCELLED and cancelled * 2 >= self._stored:
            self._compact()
        seq = self._seq
        self._seq = seq + 1
        atime = (self._now << _ATIME_SHIFT) | self._dispatch_coarse
        event = Event(time, seq, fn, args, self, atime=atime)
        self._place(event)
        self._pending += 1
        self._stored += 1
        return event

    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now.

        ``delay`` must be non-negative.  Returns the :class:`Event`.
        """
        if delay < 0:
            raise SimulationError("delay cannot be negative: %r" % (delay,))
        # Inlined body of at(): a non-negative delay cannot produce a past
        # timestamp, so the validation there is redundant.
        time = self._now + int(delay)
        cancelled = self._cancelled
        if cancelled >= self._COMPACT_MIN_CANCELLED and cancelled * 2 >= self._stored:
            self._compact()
        seq = self._seq
        self._seq = seq + 1
        atime = (self._now << _ATIME_SHIFT) | self._dispatch_coarse
        event = Event(time, seq, fn, args, self, atime=atime)
        self._place(event)
        self._pending += 1
        self._stored += 1
        return event

    def _sched_fast(self, delay, fn, arg, kind, atime=None):
        """Shared body of schedule1/schedule0: pooled event, no tuple."""
        now = self._now
        time = now + delay
        if atime is None:
            atime = (now << _ATIME_SHIFT) | self._dispatch_coarse
        else:
            # Explicit virtual key: the bucket it lands in needs the full
            # (time, atime, seq) sort when its tick is loaded.
            self._dirty_ticks.add(time >> _WHEEL_BITS)
        cancelled = self._cancelled
        if cancelled >= self._COMPACT_MIN_CANCELLED and cancelled * 2 >= self._stored:
            self._compact()
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.atime = atime
            event.seq = seq
            event.fn = fn
            event.args = arg
            event.kind = kind
            event.cancelled = False
            event.sim = self
        else:
            event = Event(time, seq, fn, arg, self, kind, atime=atime)
        # Inlined _place() -- this is the hottest allocation site in the
        # repository, so the common case (a near-future wheel append) pays
        # no extra call.
        tick = time >> _WHEEL_BITS
        delta = tick - self._cur_tick
        if 0 < delta < _WHEEL_SLOTS:
            self._slots[tick & _WHEEL_MASK].append(event)
            self._wheel_count += 1
        elif delta <= 0:
            heapq.heappush(self._cur_heap, (time, atime, seq, event))
        else:
            heapq.heappush(self._overflow, (time, atime, seq, event))
        self._pending += 1
        self._stored += 1
        return event

    def schedule1(self, delay, fn, arg):
        """Schedule ``fn(arg)`` ``delay`` ns from now, drawing the Event
        from the free-list.  The returned handle may be cancelled, but
        must not be retained (or cancelled) past the event's fire time:
        the engine recycles the object.  Internal hot-path API."""
        return self._sched_fast(int(delay), fn, arg, 1)

    def schedule0(self, delay, fn):
        """Pooled, argument-free variant of :meth:`schedule1`."""
        return self._sched_fast(int(delay), fn, None, 2)

    def schedule1v(self, delay, fn, arg, vkey):
        """:meth:`schedule1` with an explicit virtual assignment key.

        Train coalescing schedules a whole departure train's events at
        commit time; ``vkey`` is the packed ``_ATIME_SHIFT`` key
        per-frame scheduling would have produced (its instants may lie in
        the past -- it is purely an ordering key for same-time
        dispatch)."""
        return self._sched_fast(int(delay), fn, arg, 1, vkey)

    def schedule0v(self, delay, fn, vkey):
        """Argument-free variant of :meth:`schedule1v`."""
        return self._sched_fast(int(delay), fn, None, 2, vkey)

    def call_soon(self, fn, *args):
        """Schedule ``fn(*args)`` at the current instant (after pending
        same-time events already in the queue).  Returns the Event."""
        return self.at(self._now, fn, *args)

    def inject(self, time, fn, arg, vkey):
        """Schedule ``fn(arg)`` at absolute ``time`` with an explicit
        assignment key -- the external-frame entry point of the parallel
        runner (:mod:`repro.sim.parallel`).

        A frame crossing a shard boundary was, in the serial schedule,
        a ``schedule1`` issued by the *sending* shard's transmit
        dispatch; ``vkey`` is the packed key that call would have
        stamped (sender's instant, then the sender's dispatcher
        instant), shipped alongside the frame.  Injecting with that key
        makes the delivery sort against the receiving shard's same-time
        events exactly as it would have in one global engine, and every
        event the delivery callback schedules derives its own key from
        ``vkey``'s high field -- so ordering agreement propagates.
        """
        time = int(time)
        if time < self._now:
            raise SimulationError(
                "cannot inject event at t=%d; clock is already at t=%d"
                % (time, self._now)
            )
        return self._sched_fast(time - self._now, fn, arg, 1, vkey)

    # -- storage maintenance -------------------------------------------------

    def _compact(self):
        """Drop cancelled entries from the wheel and the overflow heap.

        Filtering preserves the (time, seq) ordering of live entries, so
        compaction cannot change firing order -- it is invisible to the
        simulation.  List objects are mutated in place because an
        in-progress :meth:`run` holds direct references to them.
        Cancelled entries parked in the tick currently being drained are
        left for the dispatch loop (it skips them in O(1) each).
        """
        removed = 0
        wheel = 0
        for slot in self._slots:
            if slot:
                kept = [event for event in slot if not event.cancelled]
                removed += len(slot) - len(kept)
                slot[:] = kept
                wheel += len(kept)
        self._wheel_count = wheel
        overflow = self._overflow
        if overflow:
            kept = [entry for entry in overflow if not entry[3].cancelled]
            removed += len(overflow) - len(kept)
            heapq.heapify(kept)
            overflow[:] = kept
        cur_heap = self._cur_heap
        if cur_heap:
            kept = [entry for entry in cur_heap if not entry[3].cancelled]
            removed += len(cur_heap) - len(kept)
            heapq.heapify(kept)
            cur_heap[:] = kept
        self._stored -= removed
        remaining = 0
        cur_list = self._cur_list
        for i in range(self._cur_idx, len(cur_list)):
            if cur_list[i].cancelled:
                remaining += 1
        self._cancelled = remaining

    def _load_tick(self, tick):
        """Make ``tick`` the current tick: sort its bucket and migrate
        overflow entries that now fall inside the wheel window."""
        slots = self._slots
        bucket = slots[tick & _WHEEL_MASK]
        slots[tick & _WHEEL_MASK] = []
        self._wheel_count -= len(bucket)
        # Ordinary events are appended in (atime, seq) order, so a stable
        # sort on time alone reproduces the classic (time, FIFO) order.
        # Only ticks that received a virtual key from train coalescing
        # (events scheduled early, out of append order) pay for the full
        # (time, atime, seq) sort.
        dirty = self._dirty_ticks
        if dirty and tick in dirty:
            dirty.discard(tick)
            bucket.sort(key=_SORT_KEY)
        else:
            bucket.sort(key=_TIME_KEY)
        self._cur_list = bucket
        self._cur_idx = 0
        self._cur_tick = tick
        overflow = self._overflow
        if overflow:
            horizon = (tick + _WHEEL_SLOTS) << _WHEEL_BITS
            heappop = heapq.heappop
            while overflow and overflow[0][0] < horizon:
                entry = heappop(overflow)
                event = entry[3]
                if event.cancelled:
                    self._cancelled -= 1
                    self._stored -= 1
                    continue
                etick = entry[0] >> _WHEEL_BITS
                if etick == tick:
                    heapq.heappush(self._cur_heap, entry)
                else:
                    slots[etick & _WHEEL_MASK].append(event)
                    self._wheel_count += 1

    def _advance(self, until):
        """Advance to the next tick holding events.

        Returns True when events were loaded, False when the scheduler is
        idle or every remaining event lies beyond ``until`` (in which case
        nothing is loaded, so later inserts cannot land behind the tick
        cursor).
        """
        if self._wheel_count:
            slots = self._slots
            tick = self._cur_tick + 1
            end = self._cur_tick + _WHEEL_SLOTS
            while tick < end:
                if slots[tick & _WHEEL_MASK]:
                    if until is not None and (tick << _WHEEL_BITS) > until:
                        return False
                    self._load_tick(tick)
                    return True
                tick += 1
            self._wheel_count = 0  # defensive: counters drifted
        overflow = self._overflow
        while overflow:
            time = overflow[0][0]
            event = overflow[0][3]
            if event.cancelled:
                heapq.heappop(overflow)
                self._cancelled -= 1
                self._stored -= 1
                continue
            if until is not None and time > until:
                return False
            self._load_tick(time >> _WHEEL_BITS)
            return True
        return False

    # -- dispatch ------------------------------------------------------------

    def step(self):
        """Fire the single next event.  Returns False if the queue is empty."""
        while True:
            cur_list = self._cur_list
            idx = self._cur_idx
            cur_heap = self._cur_heap
            from_heap = False
            if idx < len(cur_list):
                event = cur_list[idx]
                if cur_heap:
                    htime, hatime, hseq, hevent = cur_heap[0]
                    if htime < event.time or (
                        htime == event.time
                        and (
                            hatime < event.atime
                            or (hatime == event.atime and hseq < event.seq)
                        )
                    ):
                        event = hevent
                        from_heap = True
            elif cur_heap:
                event = cur_heap[0][3]
                from_heap = True
            else:
                if not self._advance(None):
                    return False
                continue
            if from_heap:
                heapq.heappop(cur_heap)
            else:
                self._cur_idx = idx + 1
            self._stored -= 1
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._pending -= 1
            self._now = event.time
            fn = event.fn
            args = event.args
            kind = event.kind
            # Free references before the callback runs so callbacks that
            # re-schedule themselves do not pin stale argument tuples.
            event.fn = None
            event.args = None
            event.sim = None  # fired: a late cancel() must not miscount
            self._events_fired += 1
            atime = event.atime
            self._dispatch_atime = atime
            self._dispatch_coarse = atime >> _ATIME_SHIFT
            try:
                if kind == 0:
                    fn(*args)
                elif kind == 1:
                    fn(args)
                else:
                    fn()
            finally:
                self._dispatch_atime = None
                self._dispatch_coarse = 0
            if kind and len(self._pool) < _POOL_MAX:
                self._pool.append(event)
            return True

    def run(self, until=None, max_events=None):
        """Run events in order.

        ``until``
            Inclusive simulated-time horizon in nanoseconds.  Events at
            exactly ``until`` fire; the clock is advanced to ``until`` when
            the run ends early (idle), so back-to-back ``run`` calls
            compose.
        ``max_events``
            Safety valve for experiments that can livelock *by design*
            (the paper's go-back-0 experiment never terminates on its own).
            Implies exact dispatch counting, so train coalescing is
            disabled (and any active trains unwound) for the rest of the
            simulation.

        Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if max_events is not None:
            # Exact "fire N callbacks then stop" semantics are incompatible
            # with elided wake-ups; fall back to per-event scheduling.
            self.coalesce_enabled = False
            self._uncoalesce_all()
        self._running = True
        fired = 0
        heappop = heapq.heappop
        heappush_pool = self._pool.append
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                cur_list = self._cur_list
                idx = self._cur_idx
                cur_heap = self._cur_heap
                from_heap = False
                if idx < len(cur_list):
                    event = cur_list[idx]
                    if cur_heap:
                        htime, hatime, hseq, hevent = cur_heap[0]
                        if htime < event.time or (
                            htime == event.time
                            and (
                                hatime < event.atime
                                or (hatime == event.atime and hseq < event.seq)
                            )
                        ):
                            event = hevent
                            from_heap = True
                elif cur_heap:
                    event = cur_heap[0][3]
                    from_heap = True
                else:
                    if not self._advance(until):
                        break
                    continue
                if event.cancelled:
                    if from_heap:
                        heappop(cur_heap)
                    else:
                        self._cur_idx = idx + 1
                    self._stored -= 1
                    self._cancelled -= 1
                    continue
                time = event.time
                if until is not None and time > until:
                    break
                if from_heap:
                    heappop(cur_heap)
                else:
                    self._cur_idx = idx + 1
                self._stored -= 1
                self._pending -= 1
                self._now = time
                fn = event.fn
                args = event.args
                kind = event.kind
                event.fn = None
                event.args = None
                event.sim = None
                self._events_fired += 1
                fired += 1
                atime = event.atime
                self._dispatch_atime = atime
                self._dispatch_coarse = atime >> _ATIME_SHIFT
                if kind == 0:
                    fn(*args)
                elif kind == 1:
                    fn(args)
                else:
                    fn()
                if kind and len(self._pool) < _POOL_MAX:
                    heappush_pool(event)
        finally:
            self._running = False
            self._dispatch_atime = None
            self._dispatch_coarse = 0
        if until is not None and self._now < until:
            self._now = until
        # Bring lazily-settled state (train bookkeeping, elided-event
        # credits) current so every counter a caller can read after run()
        # is exact.
        self._settle_all()
        return fired

    def run_until_idle(self, max_events=None):
        """Run until no events remain (or ``max_events`` is hit).

        Returns the number of events fired by this call."""
        return self.run(until=None, max_events=max_events)

    def __repr__(self):
        return "Simulator(now=%d, pending=%d)" % (self._now, self._pending)
