"""The discrete-event engine.

A :class:`Simulator` owns an integer-nanosecond clock and a priority queue
of :class:`Event` callbacks.  Events scheduled for the same instant fire in
the order they were scheduled (FIFO tie-breaking via a monotonically
increasing sequence number), which keeps runs fully deterministic.

The engine is intentionally tiny -- everything else in the reproduction
(links, switches, NICs, transports) is expressed as plain objects that
schedule callbacks on a shared ``Simulator``.

Performance notes (this is the hottest code in the repository -- every
simulated packet costs several engine events):

* The heap stores ``(time, seq, event)`` tuples, not :class:`Event`
  objects, so ``heapq`` compares machine integers in C instead of calling
  a Python ``__lt__``.  ``seq`` is unique, so the event object itself is
  never compared and ordering is exactly (time, FIFO) -- identical to the
  old object heap, as the determinism fingerprints in
  ``benchmarks/BASELINE.json`` assert.
* The dispatch loops hoist attribute and global lookups into locals.
  Callbacks observe a consistent ``sim.now`` / ``sim.events_fired``
  because both are written back before each callback runs.
* Heap compaction rewrites ``self._queue`` **in place** (slice
  assignment) so the dispatch loop's local reference stays valid when a
  callback's ``schedule()`` triggers compaction mid-run.
"""

import heapq


class SimulationError(Exception):
    """Raised for invalid use of the simulation engine."""


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Events may be cancelled before they fire.  Cancelled events stay in the
    heap but are skipped when popped (lazy deletion), which is O(1) per
    cancel instead of O(n); the simulator compacts the heap once cancelled
    entries dominate, so timer-heavy runs do not retain dead events.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(self, time, seq, fn, args, sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference kept only while the event sits in the heap, so
        # cancellation can update the owner's cancelled-entry count.
        self.sim = sim

    def cancel(self):
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = None
        if self.sim is not None:
            self.sim._cancelled += 1
            self.sim = None

    def __lt__(self, other):
        # Heap entries are (time, seq, event) tuples with unique seq, so
        # the heap never invokes this; kept for direct Event comparisons.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%d, seq=%d, %s)" % (self.time, self.seq, state)


class Simulator:
    """A deterministic discrete-event simulator with a nanosecond clock.

    Public surface:

    * :meth:`at` / :meth:`schedule` / :meth:`call_soon` -- queue a callback
      (absolute time, relative delay, or the current instant) and get back
      a cancellable :class:`Event`;
    * :meth:`run` / :meth:`run_until_idle` / :meth:`step` -- dispatch;
    * :attr:`now`, :attr:`events_fired`, :attr:`pending` -- observability.
    """

    # Every schedule/step touches these fields; slots make the accesses
    # (and the per-run footprint) measurably cheaper on event-heavy runs.
    __slots__ = ("_now", "_seq", "_queue", "_running", "_events_fired", "_cancelled")

    # Lazy deletion keeps cancels O(1), but a fault-heavy run that arms
    # and re-arms timers (pause refresh, RTO, watchdogs) can leave the
    # heap mostly dead entries.  Once the dead outnumber the live (and
    # there are enough to matter), rebuild the heap without them.
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._queue = []  # heap of (time, seq, Event)
        self._running = False
        self._events_fired = 0
        self._cancelled = 0  # cancelled events still sitting in the heap

    @property
    def now(self):
        """Current simulated time in integer nanoseconds."""
        return self._now

    @property
    def events_fired(self):
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled

    def _compact(self):
        """Drop cancelled entries from the heap.

        Filtering preserves the (time, seq) ordering of live events, so a
        re-heapify cannot change firing order -- compaction is invisible
        to the simulation.  The list object is mutated in place because
        an in-progress :meth:`run` holds a direct reference to it.
        """
        self._queue[:] = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        ``time`` must not be in the past (raises :class:`SimulationError`).
        Returns the :class:`Event` so the caller can cancel it.
        """
        time = int(time)
        if time < self._now:
            raise SimulationError(
                "cannot schedule event at t=%d; clock is already at t=%d"
                % (time, self._now)
            )
        cancelled = self._cancelled
        if cancelled >= 64 and cancelled * 2 >= len(self._queue):
            self._compact()
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now.

        ``delay`` must be non-negative.  Returns the :class:`Event`.
        """
        if delay < 0:
            raise SimulationError("delay cannot be negative: %r" % (delay,))
        # Inlined body of at(): this is the single most-called method in
        # the simulator (several calls per packet), and a non-negative
        # delay cannot produce a past timestamp, so the validation there
        # is redundant.
        time = self._now + int(delay)
        cancelled = self._cancelled
        if cancelled >= 64 and cancelled * 2 >= len(self._queue):
            self._compact()
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def call_soon(self, fn, *args):
        """Schedule ``fn(*args)`` at the current instant (after pending
        same-time events already in the queue).  Returns the Event."""
        return self.at(self._now, fn, *args)

    def step(self):
        """Fire the single next event.  Returns False if the queue is empty."""
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            event = heappop(queue)[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            fn, args = event.fn, event.args
            # Free references before the callback runs so callbacks that
            # re-schedule themselves do not pin stale argument tuples.
            event.fn = None
            event.args = None
            event.sim = None  # fired: a late cancel() must not miscount
            self._events_fired += 1
            fn(*args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run events in order.

        ``until``
            Inclusive simulated-time horizon in nanoseconds.  Events at
            exactly ``until`` fire; the clock is advanced to ``until`` when
            the run ends early (idle), so back-to-back ``run`` calls
            compose.
        ``max_events``
            Safety valve for experiments that can livelock *by design*
            (the paper's go-back-0 experiment never terminates on its own).

        Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        # Hot loop: locals for everything that does not change identity.
        # self._queue is only ever mutated in place (heappush/_compact),
        # so the local alias stays valid across callbacks.
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                if max_events is not None and fired >= max_events:
                    break
                entry = queue[0]
                event = entry[2]
                if event.cancelled:
                    heappop(queue)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                heappop(queue)
                self._now = time
                fn = event.fn
                args = event.args
                event.fn = None
                event.args = None
                event.sim = None
                self._events_fired += 1
                fired += 1
                fn(*args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return fired

    def run_until_idle(self, max_events=None):
        """Run until no events remain (or ``max_events`` is hit).

        Returns the number of events fired by this call."""
        return self.run(until=None, max_events=max_events)

    def __repr__(self):
        return "Simulator(now=%d, pending=%d)" % (self._now, len(self._queue))
