"""The discrete-event engine.

A :class:`Simulator` owns an integer-nanosecond clock and a priority queue
of :class:`Event` callbacks.  Events scheduled for the same instant fire in
the order they were scheduled (FIFO tie-breaking via a monotonically
increasing sequence number), which keeps runs fully deterministic.

The engine is intentionally tiny -- everything else in the reproduction
(links, switches, NICs, transports) is expressed as plain objects that
schedule callbacks on a shared ``Simulator``.
"""

import heapq


class SimulationError(Exception):
    """Raised for invalid use of the simulation engine."""


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Events may be cancelled before they fire.  Cancelled events stay in the
    heap but are skipped when popped (lazy deletion), which is O(1) per
    cancel instead of O(n); the simulator compacts the heap once cancelled
    entries dominate, so timer-heavy runs do not retain dead events.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(self, time, seq, fn, args, sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference kept only while the event sits in the heap, so
        # cancellation can update the owner's cancelled-entry count.
        self.sim = sim

    def cancel(self):
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = None
        if self.sim is not None:
            self.sim._cancelled += 1
            self.sim = None

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%d, seq=%d, %s)" % (self.time, self.seq, state)


class Simulator:
    """A deterministic discrete-event simulator with a nanosecond clock."""

    # Every schedule/step touches these fields; slots make the accesses
    # (and the per-run footprint) measurably cheaper on event-heavy runs.
    __slots__ = ("_now", "_seq", "_queue", "_running", "_events_fired", "_cancelled")

    # Lazy deletion keeps cancels O(1), but a fault-heavy run that arms
    # and re-arms timers (pause refresh, RTO, watchdogs) can leave the
    # heap mostly dead entries.  Once the dead outnumber the live (and
    # there are enough to matter), rebuild the heap without them.
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._queue = []
        self._running = False
        self._events_fired = 0
        self._cancelled = 0  # cancelled events still sitting in the heap

    @property
    def now(self):
        """Current simulated time in integer nanoseconds."""
        return self._now

    @property
    def events_fired(self):
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled

    def _compact(self):
        """Drop cancelled entries from the heap.

        Filtering preserves the (time, seq) ordering of live events, so a
        re-heapify cannot change firing order -- compaction is invisible
        to the simulation.
        """
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        ``time`` must not be in the past.  Returns the :class:`Event` so the
        caller can cancel it.
        """
        if time < self._now:
            raise SimulationError(
                "cannot schedule event at t=%d; clock is already at t=%d"
                % (time, self._now)
            )
        if (
            self._cancelled >= self._COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._queue)
        ):
            self._compact()
        event = Event(int(time), self._seq, fn, args, self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError("delay cannot be negative: %r" % (delay,))
        return self.at(self._now + int(delay), fn, *args)

    def call_soon(self, fn, *args):
        """Schedule ``fn(*args)`` at the current instant (after pending
        same-time events already in the queue)."""
        return self.at(self._now, fn, *args)

    def step(self):
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            fn, args = event.fn, event.args
            # Free references before the callback runs so callbacks that
            # re-schedule themselves do not pin stale argument tuples.
            event.fn = None
            event.args = None
            event.sim = None  # fired: a late cancel() must not miscount
            self._events_fired += 1
            fn(*args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run events in order.

        ``until``
            Inclusive simulated-time horizon in nanoseconds.  Events at
            exactly ``until`` fire; the clock is advanced to ``until`` when
            the run ends early (idle), so back-to-back ``run`` calls
            compose.
        ``max_events``
            Safety valve for experiments that can livelock *by design*
            (the paper's go-back-0 experiment never terminates on its own).

        Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                fn, args = event.fn, event.args
                event.fn = None
                event.args = None
                event.sim = None
                self._events_fired += 1
                fired += 1
                fn(*args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return fired

    def run_until_idle(self, max_events=None):
        """Run until no events remain (or ``max_events`` is hit)."""
        return self.run(until=None, max_events=max_events)

    def __repr__(self):
        return "Simulator(now=%d, pending=%d)" % (self._now, len(self._queue))
