"""A restartable one-shot timer.

Watchdogs (paper section 4.3), retransmission timers, DCQCN's periodic alpha
and rate-increase timers, and pause-duration expiry all follow the same
pattern: arm a callback some delay in the future, possibly re-arm or cancel
it before it fires.  :class:`Timer` wraps that pattern so that model code
never has to track raw :class:`~repro.sim.engine.Event` handles.
"""


class Timer:
    """One-shot timer bound to a simulator and a callback.

    The callback is invoked with no arguments when the timer expires.
    Restarting an armed timer cancels the previous deadline first.
    """

    # One Timer per QP RTO / watchdog / pause expiry / DCQCN clock: this
    # is a per-event-source hot class, so keep it dict-free.
    __slots__ = ("_sim", "_callback", "_event", "_fire_ref", "name")

    def __init__(self, sim, callback, name=""):
        self._sim = sim
        self._callback = callback
        self._event = None
        # Pre-bound so the hot start() path allocates nothing.
        self._fire_ref = self._fire
        self.name = name

    @property
    def armed(self):
        """True while a deadline is pending."""
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self):
        """Absolute expiry time (ns), or None when not armed."""
        if self.armed:
            return self._event.time
        return None

    def start(self, delay_ns):
        """Arm (or re-arm) the timer to fire ``delay_ns`` from now."""
        self.cancel()
        # schedule0 draws from the engine's event free-list; safe here
        # because the timer drops its handle in _fire before the event
        # object can be recycled.
        self._event = self._sim.schedule0(delay_ns, self._fire_ref)

    def start_at(self, time_ns):
        """Arm (or re-arm) the timer to fire at absolute ``time_ns``."""
        self.cancel()
        self._event = self._sim.at(time_ns, self._fire)

    def extend_to(self, time_ns):
        """Push the deadline out to ``time_ns`` if that is later than the
        current deadline (arming the timer if it is idle)."""
        if not self.armed or self._event.time < time_ns:
            self.start_at(time_ns)

    def cancel(self):
        """Disarm the timer.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self):
        self._event = None
        self._callback()

    def __repr__(self):
        if self.armed:
            return "Timer(%s, fires_at=%d)" % (self.name, self._event.time)
        return "Timer(%s, idle)" % (self.name,)
