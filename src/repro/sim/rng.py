"""Named, seeded random streams.

Every stochastic component (workload generators, ECN marking, jittered
application think time) draws from its own :class:`SeededRng` stream derived
from a global experiment seed plus the component's name.  Components added
or removed from an experiment therefore do not perturb each other's draws,
and every experiment is reproducible from a single integer seed.
"""

import random
import zlib


class SeededRng:
    """A ``random.Random`` stream keyed by ``(seed, name)``."""

    # Instantiated per component (and per ECN-mark draw site); slots keep
    # the wrapper at two machine words over the underlying Random.
    __slots__ = ("seed", "name", "_random")

    def __init__(self, seed, name=""):
        self.seed = seed
        self.name = name
        derived = (seed << 32) ^ zlib.crc32(name.encode("utf-8"))
        self._random = random.Random(derived)

    def child(self, name):
        """Derive an independent stream for a sub-component."""
        return SeededRng(self.seed, "%s/%s" % (self.name, name))

    # Thin, explicit pass-throughs -- model code reads rng.uniform(...) etc.

    def random(self):
        return self._random.random()

    def uniform(self, a, b):
        return self._random.uniform(a, b)

    def randint(self, a, b):
        return self._random.randint(a, b)

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq):
        self._random.shuffle(seq)

    def sample(self, population, k):
        return self._random.sample(population, k)

    def expovariate(self, lambd):
        return self._random.expovariate(lambd)

    def lognormvariate(self, mu, sigma):
        return self._random.lognormvariate(mu, sigma)

    def gauss(self, mu, sigma):
        return self._random.gauss(mu, sigma)

    def getrandbits(self, k):
        return self._random.getrandbits(k)

    def __repr__(self):
        return "SeededRng(seed=%d, name=%r)" % (self.seed, self.name)
