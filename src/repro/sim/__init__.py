"""Discrete-event simulation core.

This subpackage provides the minimal, deterministic machinery that every
other part of the reproduction is built on:

* :class:`~repro.sim.engine.Simulator` -- an event loop with an integer
  nanosecond clock and FIFO tie-breaking, so runs replay bit-for-bit.
* :class:`~repro.sim.engine.Event` -- a cancellable scheduled callback.
* :class:`~repro.sim.timer.Timer` -- a restartable one-shot timer, the
  building block for watchdogs, retransmission timers and DCQCN's
  periodic rate updates.
* :mod:`~repro.sim.units` -- unit helpers (nanoseconds, Gb/s, KB/MB) so
  that magic numbers in the model read like the paper's text.
* :class:`~repro.sim.rng.SeededRng` -- a named, seeded random stream per
  component, keeping stochastic workloads reproducible.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import SeededRng
from repro.sim.timer import Timer
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MS,
    NS,
    SEC,
    US,
    bits_to_bytes,
    bytes_to_bits,
    fmt_time,
    gbps,
    serialization_delay_ns,
)

__all__ = [
    "Event",
    "Simulator",
    "SeededRng",
    "Timer",
    "NS",
    "US",
    "MS",
    "SEC",
    "KB",
    "MB",
    "GBPS",
    "gbps",
    "bytes_to_bits",
    "bits_to_bytes",
    "serialization_delay_ns",
    "fmt_time",
]
