"""Space-parallel packet simulation: sharded fabrics, conservative sync.

Public surface:

* :func:`~repro.sim.parallel.runner.run_parallel` -- run a topology
  builder's fabric across N worker shards with lookahead-windowed
  barrier synchronization; fingerprints are byte-identical to the
  serial engine's.
* :class:`~repro.sim.parallel.runner.ParallelResult` -- the merged
  engine counters plus per-shard reports.
* :class:`~repro.sim.parallel.runner.ShardHarness` -- one shard's
  replica (exposed for the ``start``/``report`` callbacks and tests).
* :class:`~repro.sim.parallel.runner.ParallelError` -- refusals and
  worker failures.

The partitioner lives with the topologies
(:mod:`repro.topo.partition`); the per-frame capture machinery with the
ports (:class:`repro.net.port.BoundaryProxy`).  See docs/parallel.md
for the window math and the determinism contract.
"""

from repro.sim.parallel.runner import (
    ParallelError,
    ParallelResult,
    ShardHarness,
    run_parallel,
)

__all__ = ["ParallelError", "ParallelResult", "ShardHarness", "run_parallel"]
