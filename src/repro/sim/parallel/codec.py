"""Wire format for window-boundary frame batches.

One barrier exchange ships one message per worker per direction, so the
per-frame framing matters less than the per-message shape -- but keeping
the numeric metadata out of pickle makes the common case (a batch of a
few dozen frames) compact and cheap to route: the parent orchestrator
can sort and re-batch on the decoded tuples without ever touching the
packet payloads.

A batch is::

    [u32 n_frames] [n_frames * META] [pickle of the packet list]

where ``META`` packs, per frame, little-endian:

    ========  ======================================================
    u64       arrival instant (ns) at the far end
    u64       assignment-key high field (the transmit instant)
    u64       assignment-key low field (the transmitter's dispatch key)
    u32       link index into ``fabric.links``
    u8        direction (0: ``port_a`` transmitted, 1: ``port_b`` did)
    u32       origin sequence within the sending shard
    ========  ======================================================

The assignment key is split because the packed engine key
(``instant << 48 | dispatcher``) overflows 64 bits; both fields are
< 2**48 by construction (see ``repro.sim.engine._ATIME_SHIFT``).
"""

import pickle
import struct

from repro.sim.engine import _ATIME_SHIFT

_COUNT = struct.Struct("<I")
_META = struct.Struct("<QQQIBI")

_KEY_MASK = (1 << _ATIME_SHIFT) - 1


def encode_frames(frames):
    """Serialize ``[(arrival, vkey, link_idx, direction, seq, packet)]``."""
    parts = [_COUNT.pack(len(frames))]
    packets = []
    for arrival, vkey, link_idx, direction, seq, packet in frames:
        parts.append(
            _META.pack(
                arrival, vkey >> _ATIME_SHIFT, vkey & _KEY_MASK, link_idx, direction, seq
            )
        )
        packets.append(packet)
    parts.append(pickle.dumps(packets, protocol=pickle.HIGHEST_PROTOCOL))
    return b"".join(parts)


def decode_frames(data):
    """Inverse of :func:`encode_frames`."""
    (count,) = _COUNT.unpack_from(data, 0)
    offset = _COUNT.size
    metas = []
    for _ in range(count):
        arrival, key_hi, key_lo, link_idx, direction, seq = _META.unpack_from(
            data, offset
        )
        offset += _META.size
        metas.append((arrival, (key_hi << _ATIME_SHIFT) | key_lo, link_idx, direction, seq))
    packets = pickle.loads(data[offset:])
    return [meta + (packet,) for meta, packet in zip(metas, packets)]
