"""Conservative (CMB-style) space-parallel execution of a fabric run.

The serial engine is exact but single-core.  This runner splits the
fabric into shards (:func:`repro.topo.partition.partition_fabric`), runs
one *complete fabric replica* per shard -- each worker constructs the
identical fabric and workload, then activates only its own hosts -- and
synchronizes the shard simulators with barrier-delimited time windows
sized to the minimum cut-link latency.

Why full replicas instead of shard-local construction: every counter
the reproduction fingerprints (MAC allocation, seeded RNG draws, ECMP
seeds, QP numbers, the address directory) is a function of construction
*order*.  Replicating construction keeps all of that byte-identical to
the serial run for free; the inert remote devices cost memory but zero
events, so per-shard event streams partition the serial stream exactly.

The conservative synchronization argument, in one paragraph: let ``W``
be the minimum propagation delay over all cut links.  A frame that
starts crossing a cut at time ``t`` cannot arrive before ``t + W``
(serialization only adds).  Workers run in lockstep windows and
exchange captured frames at every barrier; consecutive barriers are at
most ``W`` apart, so a frame sent anywhere in the window ending at
barrier ``b`` arrives no earlier than ``b`` -- always in the receiving
shard's future.  No shard can ever observe an effect before its cause,
with zero rollbacks and no cross-worker event-order negotiation.

Determinism (the fingerprint-identity contract): each crossing frame
ships the packed assignment key the serial ``schedule1`` would have
stamped on its delivery event; the receiving shard injects it with
:meth:`repro.sim.engine.Simulator.inject`, so same-instant dispatch
sorts exactly as the one global engine would.  At each barrier the
orchestrator sorts injections by (arrival, assignment key, origin
shard, origin seq) so even exact key collisions resolve identically on
every run and any worker count.  ``tests/test_bench.py`` pins the
resulting fingerprints against the serial baseline.

Two executors: ``"process"`` forks one OS process per shard (the real
speedup path; parent-mediated pipe exchange, one message per worker per
barrier each way), and ``"inline"`` steps every shard in one process
(no speedup -- the testable reference implementation of the same
protocol, and the fallback where ``fork`` is unavailable).
"""

import multiprocessing
import time as _time
import traceback

from repro.net.port import BoundaryProxy
from repro.sim.parallel.codec import decode_frames, encode_frames
from repro.topo.partition import partition_fabric

_JOIN_TIMEOUT_S = 60.0


class ParallelError(RuntimeError):
    """A sharded run cannot proceed (or a worker failed)."""


class ShardHarness:
    """One shard's full fabric replica plus its boundary machinery.

    Used identically by the forked worker processes and the inline
    executor: install boundary proxies on the cut links, boot only the
    local hosts, then alternate ``run_to(barrier)`` with
    ``drain()``/``inject()`` under the orchestrator's schedule.
    """

    def __init__(self, topo, partition, shard):
        self.topo = topo
        self.fabric = topo.fabric
        self.sim = self.fabric.sim
        self.partition = partition
        self.shard = shard
        self.local_hosts = set(partition.hosts_in(shard))
        self.outbox = []
        seq_cell = [0]
        self.proxies = []
        for link_idx in partition.cut_links:
            link = self.fabric.links[link_idx]
            if link.loss_rate or link.fault_hook is not None:
                # A lossy cut would consume the link's RNG stream in two
                # replicas at once, in an order no longer matching the
                # serial interleave of both directions' draws.
                raise ParallelError(
                    "cut link %s has loss/fault injection enabled; "
                    "lossy or faulted links cannot sit on a shard "
                    "boundary (run serially, or partition elsewhere)" % link.name
                )
            self.proxies.append(
                BoundaryProxy(self.sim, link, link_idx, self.outbox, seq_cell)
            )

    def boot_local(self):
        """Finalize the replica and announce only the shard's hosts.

        Remote hosts stay dark: no gratuitous ARP, no NIC activity --
        and any self-arming NIC watchdog poll is cancelled, so an inert
        replica device contributes exactly zero events and per-shard
        event counts sum to the serial total.  (ARP floods are confined
        to server-facing ports, so boot traffic never crosses a cut.)
        """
        self.fabric.finalize()
        for index, host in enumerate(self.fabric.hosts):
            if index in self.local_hosts:
                host.boot()
            else:
                watchdog = getattr(host.nic, "_watchdog", None)
                if watchdog is not None and watchdog.armed:
                    watchdog.cancel()

    def run_to(self, until):
        self.sim.run(until=until)

    def drain(self):
        """Frames captured since the last barrier, in transmit order."""
        out = self.outbox[:]
        del self.outbox[:]
        return out

    def inject(self, frames):
        """Deliver cross-shard frames (already barrier-sorted) into this
        replica at their exact serial arrival instants and keys."""
        links = self.fabric.links
        inject = self.sim.inject
        for arrival, vkey, link_idx, direction, _seq, packet in frames:
            link = links[link_idx]
            port = link.port_b if direction == 0 else link.port_a
            inject(arrival, port.deliver, packet, vkey)

    def engine_counters(self):
        return {
            "events_fired": self.sim.events_fired,
            "dispatches": self.sim.dispatches,
            "now": self.sim.now,
        }


def _ops(settle_ns, duration_ns, window_ns, exchanging):
    """The lockstep schedule every participant replays identically.

    Yields ``("run", t)`` (advance to ``t``, inclusive), ``("exchange",)``
    (barrier: ship outboxes, inject inboxes), ``("started",)`` (the
    settle phase is over -- start the workload at exactly the instant
    the serial run would) and ``("finished",)``.

    Within a phase, barriers sit at ``start + k*window`` and at the
    phase end, so consecutive exchange points -- across the phase seam
    too -- are never more than one lookahead window apart, which is the
    whole safety argument.  Each windowed stretch runs ``until b - 1``
    (the integer-ns clock makes the half-open window exact), exchanges,
    and the phase closes with an inclusive run to its end so events at
    exactly the horizon fire just as the serial ``run(until=...)`` does.
    """
    phases = (
        (0, settle_ns, ("started",)),
        (settle_ns, settle_ns + duration_ns, ("finished",)),
    )
    for start, end, marker in phases:
        if end > start:
            if exchanging:
                barrier = start + window_ns
                while barrier < end:
                    yield ("run", barrier - 1)
                    yield ("exchange",)
                    barrier += window_ns
                yield ("run", end - 1)
                yield ("exchange",)
            yield ("run", end)
        yield marker


class ParallelResult:
    """Merged outcome of a sharded run.

    ``events``/``dispatches``/``sim_ns`` merge the per-shard engines
    (each serial event fires in exactly one shard, so the sums equal
    the serial counters); ``shard_reports`` holds each worker's report
    dict (engine counters plus whatever the ``report`` callback added)
    indexed by shard.
    """

    __slots__ = (
        "workers",
        "executor",
        "partition",
        "window_ns",
        "exchanges",
        "frames_crossed",
        "events",
        "dispatches",
        "sim_ns",
        "shard_reports",
        "sync_wait_s",
    )

    def __init__(self, executor, partition, exchanges, frames_crossed, shard_reports):
        self.workers = partition.n_shards
        self.executor = executor
        self.partition = partition
        self.window_ns = partition.window_ns
        self.exchanges = exchanges
        self.frames_crossed = frames_crossed
        self.shard_reports = shard_reports
        self.events = sum(r["events_fired"] for r in shard_reports)
        self.dispatches = sum(r["dispatches"] for r in shard_reports)
        self.sim_ns = max(r["now"] for r in shard_reports)
        self.sync_wait_s = max(
            (r.get("sync_wait_s", 0.0) for r in shard_reports), default=0.0
        )


def _route(batches, dest_of):
    """Parent-side barrier routing: merge every worker's outbox, bucket
    by destination shard and apply the determinism sort."""
    per_dest = {dest: [] for dest in set(dest_of.values())}
    for origin_shard, frames in enumerate(batches):
        for frame in frames:
            # frame = (arrival, vkey, link_idx, direction, seq, packet)
            per_dest[dest_of[(frame[2], frame[3])]].append((origin_shard, frame))
    for dest, tagged in per_dest.items():
        tagged.sort(key=lambda of: (of[1][0], of[1][1], of[0], of[1][4]))
        per_dest[dest] = [frame for _origin, frame in tagged]
    return per_dest


def _dest_map(fabric, partition):
    """(link index, direction) -> shard owning the receiving device."""
    from repro.topo.partition import link_endpoints

    dest = {}
    for link_idx in partition.cut_links:
        a_node, b_node = link_endpoints(fabric, fabric.links[link_idx])
        dest[(link_idx, 0)] = partition.shard_of_node(b_node)
        dest[(link_idx, 1)] = partition.shard_of_node(a_node)
    return dest


def _worker_main(conn, topo, partition, shard, seed, settle_ns, duration_ns, start, report):
    """One forked worker: replay the op schedule against its replica,
    exchanging boundary frames through the parent at every barrier."""
    try:
        harness = ShardHarness(topo, partition, shard)
        harness.boot_local()
        state = None
        wait_s = 0.0
        exchanging = bool(partition.cut_links)
        for op in _ops(settle_ns, duration_ns, partition.window_ns, exchanging):
            tag = op[0]
            if tag == "run":
                harness.run_to(op[1])
            elif tag == "exchange":
                conn.send_bytes(b"F" + encode_frames(harness.drain()))
                blocked = _time.perf_counter()
                data = conn.recv_bytes()
                wait_s += _time.perf_counter() - blocked
                harness.inject(decode_frames(data[1:]))
            elif tag == "started":
                if start is not None:
                    state = start(harness.topo, seed, harness)
            else:  # finished
                result = harness.engine_counters()
                result["sync_wait_s"] = round(wait_s, 4)
                if report is not None:
                    result.update(report(harness.topo, state, harness))
                import pickle

                conn.send_bytes(b"D" + pickle.dumps(result))
    except BaseException:
        try:
            conn.send_bytes(b"E" + traceback.format_exc().encode())
        finally:
            raise


def _run_process(build, partition, seed, settle_ns, duration_ns, start, report, parent_topo):
    import pickle

    ctx = multiprocessing.get_context("fork")
    n = partition.n_shards
    dest_of = _dest_map(parent_topo.fabric, partition)
    conns, workers = [], []
    for shard in range(n):
        parent_end, child_end = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_end, parent_topo, partition, shard, seed, settle_ns, duration_ns, start, report),
            name="repro-shard-%d" % shard,
            daemon=True,
        )
        proc.start()
        child_end.close()
        conns.append(parent_end)
        workers.append(proc)

    exchanges = 0
    frames_crossed = 0
    reports = [None] * n

    def _recv(conn, shard):
        data = conn.recv_bytes()
        tag = data[:1]
        if tag == b"E":
            raise ParallelError(
                "shard %d worker failed:\n%s" % (shard, data[1:].decode())
            )
        return tag, data[1:]

    try:
        exchanging = bool(partition.cut_links)
        for op in _ops(settle_ns, duration_ns, partition.window_ns, exchanging):
            if op[0] == "exchange":
                batches = []
                for shard, conn in enumerate(conns):
                    tag, payload = _recv(conn, shard)
                    if tag != b"F":
                        raise ParallelError(
                            "shard %d desynchronized (got %r at a barrier)" % (shard, tag)
                        )
                    batches.append(decode_frames(payload))
                per_dest = _route(batches, dest_of)
                for dest, conn in enumerate(conns):
                    batch = per_dest.get(dest, [])
                    frames_crossed += len(batch)
                    conn.send_bytes(b"F" + encode_frames(batch))
                exchanges += 1
        for shard, conn in enumerate(conns):
            tag, payload = _recv(conn, shard)
            if tag != b"D":
                raise ParallelError("shard %d sent %r instead of its report" % (shard, tag))
            reports[shard] = pickle.loads(payload)
    finally:
        for proc in workers:
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            conn.close()
    for shard, proc in enumerate(workers):
        if proc.exitcode not in (0, None) and reports[shard] is None:
            raise ParallelError("shard %d exited with code %s" % (shard, proc.exitcode))
    return ParallelResult("process", partition, exchanges, frames_crossed, reports)


def _run_inline(build, partition, seed, settle_ns, duration_ns, start, report):
    n = partition.n_shards
    harnesses = [ShardHarness(build(seed), partition, shard) for shard in range(n)]
    dest_of = _dest_map(harnesses[0].fabric, partition)
    for harness in harnesses:
        harness.boot_local()
    states = [None] * n
    exchanges = 0
    frames_crossed = 0
    exchanging = bool(partition.cut_links)
    for op in _ops(settle_ns, duration_ns, partition.window_ns, exchanging):
        tag = op[0]
        if tag == "run":
            for harness in harnesses:
                harness.run_to(op[1])
        elif tag == "exchange":
            per_dest = _route([h.drain() for h in harnesses], dest_of)
            for dest, harness in enumerate(harnesses):
                batch = per_dest.get(dest, [])
                frames_crossed += len(batch)
                harness.inject(batch)
            exchanges += 1
        elif tag == "started":
            if start is not None:
                for shard, harness in enumerate(harnesses):
                    states[shard] = start(harness.topo, seed, harness)
    reports = []
    for shard, harness in enumerate(harnesses):
        result = harness.engine_counters()
        if report is not None:
            result.update(report(harness.topo, states[shard], harness))
        reports.append(result)
    return ParallelResult("inline", partition, exchanges, frames_crossed, reports)


def run_parallel(
    build,
    n_workers,
    duration_ns,
    seed=1,
    settle_ns=100_000,
    start=None,
    report=None,
    executor="process",
):
    """Run ``build(seed)``'s fabric for ``duration_ns`` (after a
    ``settle_ns`` boot-settle phase) across ``n_workers`` shards.

    ``build(seed)``
        Constructs and returns the topology (``.fabric`` attribute,
        *unbooted*).  Called once per replica; must be deterministic.
    ``start(topo, seed, harness)``
        Invoked at the exact post-settle instant in every replica.  It
        must perform the *full* workload construction (so RNG draws and
        QP wiring match the serial run everywhere) but activate only
        senders whose source host index is in ``harness.local_hosts``.
        Its return value is threaded to ``report``.
    ``report(topo, state, harness)``
        Returns the shard's contribution to the merged result as a dict
        (local counters only); merged engine counters come for free.

    Telemetry and tracing are incompatible with sharded execution (a
    session would observe one replica's slice); callers should fall
    back to the serial path -- this function refuses an armed hub
    loudly.
    """
    from repro.telemetry.hooks import HUB

    if HUB.armed is not None:
        raise ParallelError(
            "telemetry is armed; parallel execution would produce "
            "half-instrumented artifacts -- use the serial path (see "
            "docs/telemetry.md)"
        )
    from repro.tracing.hooks import HUB as TRACE_HUB

    if TRACE_HUB.armed is not None:
        raise ParallelError(
            "tracing is armed; parallel execution would produce "
            "half-instrumented artifacts -- use the serial path (see "
            "docs/tracing.md)"
        )
    if executor not in ("process", "inline"):
        raise ParallelError("unknown executor %r" % (executor,))
    topo = build(seed)
    partition = partition_fabric(topo.fabric, n_workers)
    # Validate boundary links up front, without touching the parent
    # replica (workers install the actual proxies on their own copies).
    for link_idx in partition.cut_links:
        link = topo.fabric.links[link_idx]
        if link.loss_rate or link.fault_hook is not None:
            raise ParallelError(
                "cut link %s has loss/fault injection enabled; lossy or "
                "faulted links cannot sit on a shard boundary" % link.name
            )
    if executor == "process":
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            executor = "inline"  # no fork on this platform; same protocol, serial
    if executor == "process":
        return _run_process(
            build, partition, seed, settle_ns, duration_ns, start, report, topo
        )
    return _run_inline(build, partition, seed, settle_ns, duration_ns, start, report)
