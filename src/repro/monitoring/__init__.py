"""Management and monitoring (paper section 5).

"From day one ... we put RDMA/RoCEv2 management and monitoring as an
indispensable part of the project."  The reproduction mirrors the three
capabilities the paper describes:

* :mod:`~repro.monitoring.config_mgmt` -- desired-vs-running
  configuration monitoring (the section 6.2 alpha incident is a config
  drift this catches);
* :mod:`~repro.monitoring.counters` -- periodic collection of PFC pause
  and per-priority traffic counters from switches and servers, including
  the *pause interval* metric the paper asked its ASIC vendors for;
* :mod:`~repro.monitoring.pingmesh` -- RDMA Pingmesh: active latency
  probes (512-byte payloads) between server pairs, logging RTT or an
  error code;
* :mod:`~repro.monitoring.incidents` -- detectors over the collected
  counters (pause storms, unavailable servers).

Relation to :mod:`repro.telemetry`
----------------------------------
This package *models the paper's management plane inside the
simulation*: Pingmesh probes are real simulated RDMA traffic, config
drift is checked against simulated device state, and experiments (E9,
E10) reproduce the paper's figures from these components.
:mod:`repro.telemetry` is the other way around -- an out-of-band
observability layer for the simulator itself (hot-path hooks, a metric
catalog, online detectors, JSONL artifacts) that never injects traffic
or perturbs a run.  The polling half of :mod:`~repro.monitoring.counters`
has been absorbed into the telemetry session (same settle-then-sample
semantics, a richer catalog); see that module's notes for migration
pointers.
"""

from repro.monitoring.config_mgmt import ConfigDrift, ConfigMonitor, DesiredConfig
from repro.monitoring.counters import CounterCollector
from repro.monitoring.health import HealthTracker, ServerState
from repro.monitoring.incidents import IncidentDetector, PauseStormIncident
from repro.monitoring.pingmesh import (
    Pingmesh,
    ProbeResult,
    read_probe_jsonl,
    summarize_probe_records,
)

__all__ = [
    "DesiredConfig",
    "ConfigMonitor",
    "ConfigDrift",
    "CounterCollector",
    "Pingmesh",
    "ProbeResult",
    "read_probe_jsonl",
    "summarize_probe_records",
    "IncidentDetector",
    "PauseStormIncident",
    "HealthTracker",
    "ServerState",
]
