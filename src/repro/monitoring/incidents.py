"""Incident detection over collected counters (paper section 6.2).

Both production incidents the paper narrates manifested the same way in
monitoring: "many of the servers were continuously receiving large
number of PFC pause frames."  The detector flags windows where a
device's pause receive (or transmit) rate exceeds a threshold, and
identifies the origin device -- the paper "was able to trace down the
origin of the PFC pause frames to a single server".

This is the *offline* scan over a finished
:class:`~repro.monitoring.counters.CounterCollector` trace.  The
:mod:`repro.telemetry.detectors` stack is its evolved form: the same
storm discrimination (plus propagation-depth, ECN-rate, watermark and
victim-flow detectors) running *online* during collection, with
role-aware thresholds calibrated in docs/telemetry.md and structured
incident records in the artifact.  Keep using this one when an
experiment drives a CounterCollector by hand; reach for telemetry when
a whole run should be observed.
"""


class PauseStormIncident:
    """A window of excessive pause activity on one device."""

    __slots__ = ("device", "start_ns", "end_ns", "peak_rate", "metric")

    def __init__(self, device, start_ns, end_ns, peak_rate, metric):
        self.device = device
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.peak_rate = peak_rate
        self.metric = metric

    def __repr__(self):
        return "PauseStormIncident(%s, %s, peak %.1f pauses/interval)" % (
            self.device,
            self.metric,
            self.peak_rate,
        )


class IncidentDetector:
    """Scans a :class:`~repro.monitoring.counters.CounterCollector`."""

    def __init__(self, collector, pause_rate_threshold=100):
        self.collector = collector
        self.pause_rate_threshold = pause_rate_threshold

    def _scan_metric(self, metric):
        incidents = []
        for device in self.collector.devices():
            in_storm = None
            peak = 0
            for t_ns, delta in self.collector.rate_series(device, metric):
                if delta >= self.pause_rate_threshold:
                    if in_storm is None:
                        in_storm = t_ns
                        peak = delta
                    else:
                        peak = max(peak, delta)
                elif in_storm is not None:
                    incidents.append(
                        PauseStormIncident(device, in_storm, t_ns, peak, metric)
                    )
                    in_storm = None
            if in_storm is not None:
                last_t = self.collector.snapshots[-1].t_ns
                incidents.append(
                    PauseStormIncident(device, in_storm, last_t, peak, metric)
                )
        return incidents

    def pause_storms(self):
        """Devices *receiving* storms of pause frames (the victims)."""
        return self._scan_metric("pause_rx")

    def pause_sources(self):
        """Devices *generating* storms of pause frames (the origin)."""
        return self._scan_metric("pause_tx")

    def _is_server(self, device):
        """Heuristic from the snapshot schema: server snapshots carry
        the NIC's ``rx_processed`` counter, switch snapshots do not."""
        for snapshot in self.collector.snapshots:
            if snapshot.device == device:
                return "rx_processed" in snapshot.values
        return False

    def trace_origin(self):
        """The single most likely pause *source*, or None.

        Mirrors the paper's incident diagnosis ("we were able to trace
        down the origin of the PFC pause frames to a single server"):
        switches relay and amplify pauses, so a storming *server* is
        reported ahead of any storming switch.
        """
        sources = self.pause_sources()
        if not sources:
            return None
        servers = [s for s in sources if self._is_server(s.device)]
        candidates = servers or sources
        return max(candidates, key=lambda s: s.peak_rate).device
