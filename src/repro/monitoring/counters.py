"""Periodic counter collection.

Snapshots, per device and interval: pause frames sent/received, resumes,
per-priority traffic bytes/packets, drops, and cumulative pause
intervals.  The paper monitors exactly these ("we monitor the number of
pause frames been sent and received by the switches and servers.  We
further monitor the pause intervals at the server side").

.. note:: absorbed by :mod:`repro.telemetry`

   The unified telemetry subsystem polls the same counters with the
   same settle-then-sample discipline (``switch.settle_trains()`` before
   reading per-port stats, ``port.paused_interval_ns()`` to book the
   open pause interval) but against a declared metric catalog, with ring
   series, online detectors and JSONL/CSV/Prometheus exporters on top.
   New code should prefer ``telemetry.arm()`` + ``Fabric.boot()`` (or
   the ``--telemetry`` flags of the bench/campaign/validation CLIs); the
   re-exports below point migrating callers at the replacements.

   :class:`CounterCollector` itself stays: it is the *in-model*
   management-plane collector the paper-section-5 experiments drive
   explicitly, needs no global hub, and its query helpers
   (:meth:`~CounterCollector.rate_series`, ...) are used by
   :mod:`repro.monitoring.incidents` for the offline section-6.2 scans.
"""

import collections

from repro.sim.timer import Timer
from repro.sim.units import MS

# Migration re-exports: the telemetry layer that absorbed this module's
# polling role (kept importable from here so call sites that grew up on
# ``monitoring.counters`` find the successor in the obvious place).
from repro.telemetry.registry import CATALOG as TELEMETRY_CATALOG  # noqa: F401
from repro.telemetry.session import (  # noqa: F401
    TelemetryConfig,
    TelemetrySession,
)


class Snapshot:
    """One device's counters at one instant."""

    __slots__ = ("t_ns", "device", "values")

    def __init__(self, t_ns, device, values):
        self.t_ns = t_ns
        self.device = device
        self.values = values


class CounterCollector:
    """Polls a fabric's switches and hosts on a fixed interval."""

    def __init__(self, sim, fabric, interval_ns=10 * MS):
        self.sim = sim
        self.fabric = fabric
        self.interval_ns = interval_ns
        self.snapshots = []
        self._timer = Timer(sim, self._collect, name="counters")
        self._running = False

    def start(self):
        self._running = True
        self._collect()
        return self

    def stop(self):
        self._running = False
        self._timer.cancel()

    def _collect(self):
        now = self.sim.now
        for switch in self.fabric.switches:
            self.snapshots.append(Snapshot(now, switch.name, self._switch_values(switch)))
        for host in self.fabric.hosts:
            self.snapshots.append(Snapshot(now, host.name, self._host_values(host)))
        if self._running:
            self._timer.start(self.interval_ns)

    @staticmethod
    def _switch_values(switch):
        # tx stats are settled lazily while a departure train is in
        # flight; book them before sampling raw per-port counters.
        switch.settle_trains()
        return {
            "pause_tx": sum(p.stats.pause_tx for p in switch.ports),
            "pause_rx": sum(p.stats.pause_rx for p in switch.ports),
            "resume_tx": sum(p.stats.resume_tx for p in switch.ports),
            "tx_bytes": sum(p.stats.total_tx_bytes for p in switch.ports),
            "rx_bytes": sum(p.stats.total_rx_bytes for p in switch.ports),
            "drops": switch.counters.total_drops,
            "ecn_marked": switch.counters.ecn_marked,
            "queued_bytes": switch.queued_bytes(),
        }

    @staticmethod
    def _host_values(host):
        port = host.nic.port
        return {
            "pause_tx": host.nic.stats.pause_generated,
            "pause_rx": port.stats.pause_rx,
            "tx_bytes": port.stats.total_tx_bytes,
            "rx_bytes": port.stats.total_rx_bytes,
            "rx_processed": host.nic.stats.rx_processed,
            "paused_interval_ns": port.paused_interval_ns(),
        }

    # -- queries -----------------------------------------------------------------

    def series(self, device, metric):
        """Cumulative counter time series [(t_ns, value)] for a device."""
        return [
            (s.t_ns, s.values[metric]) for s in self.snapshots if s.device == device
        ]

    def rate_series(self, device, metric):
        """Per-interval deltas [(t_ns, delta)] of a cumulative counter."""
        cumulative = self.series(device, metric)
        deltas = []
        for (t0, v0), (t1, v1) in zip(cumulative, cumulative[1:]):
            deltas.append((t1, v1 - v0))
        return deltas

    def devices(self):
        return sorted({s.device for s in self.snapshots})

    def totals_at_end(self, metric):
        """Final cumulative value per device."""
        latest = collections.OrderedDict()
        for snapshot in self.snapshots:
            if metric in snapshot.values:
                latest[snapshot.device] = snapshot.values[metric]
        return latest
