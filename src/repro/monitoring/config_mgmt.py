"""Configuration management and drift monitoring (paper section 5.1).

"We have a configuration monitoring service to check if the running
configurations of the switches and the servers are the same as their
desired configurations."  The section 6.2 incident -- a new switch type
shipping with alpha = 1/64 instead of the expected 1/16 -- is exactly
the class of bug this service exists to catch.

Config drift is a *state* check (compare once, no clock); it neither
needs nor feeds the :mod:`repro.telemetry` hub.  The two meet in
triage: a drift found here often explains an incident telemetry raised
-- the alpha-misconfig story is "queue_watermark incidents on one
switch type, ConfigMonitor names the drifted field".
"""


class DesiredConfig:
    """The fabric-wide intended configuration."""

    def __init__(
        self,
        priority_mode,
        lossless_priorities,
        buffer_alpha,
        pfc_enabled=True,
        ecn_enabled=None,
        dscp_to_priority=None,
    ):
        self.priority_mode = priority_mode
        self.lossless_priorities = frozenset(lossless_priorities)
        self.buffer_alpha = buffer_alpha
        self.pfc_enabled = pfc_enabled
        self.ecn_enabled = ecn_enabled  # None: don't check
        # Desired DSCP -> PFC priority map.  None: don't check.  A device
        # running a *different* map silently reclassifies lossless traffic
        # into lossy queues (section 5.1's "wrong DSCP-to-queue mapping").
        self.dscp_to_priority = dict(dscp_to_priority) if dscp_to_priority else None

    @classmethod
    def from_design(cls, design, buffer_alpha=1.0 / 16, ecn_enabled=None):
        """Derive from a :class:`DscpPfcDesign` / :class:`VlanPfcDesign`."""
        config = design.pfc_config()
        return cls(
            priority_mode=config.priority_mode,
            lossless_priorities=config.lossless_priorities,
            buffer_alpha=buffer_alpha,
            pfc_enabled=config.enabled,
            ecn_enabled=ecn_enabled,
        )


class ConfigDrift:
    """One detected mismatch."""

    __slots__ = ("device", "field", "desired", "running")

    def __init__(self, device, field, desired, running):
        self.device = device
        self.field = field
        self.desired = desired
        self.running = running

    def __repr__(self):
        return "ConfigDrift(%s.%s: desired=%r running=%r)" % (
            self.device,
            self.field,
            self.desired,
            self.running,
        )

    def __eq__(self, other):
        return isinstance(other, ConfigDrift) and (
            self.device,
            self.field,
            self.desired,
            self.running,
        ) == (other.device, other.field, other.desired, other.running)


class ConfigMonitor:
    """Compares running device state against a :class:`DesiredConfig`."""

    def __init__(self, desired):
        self.desired = desired

    def check_switch(self, switch):
        drifts = []
        running = switch.pfc_config
        desired = self.desired
        if running.priority_mode != desired.priority_mode:
            drifts.append(
                ConfigDrift(switch.name, "priority_mode", desired.priority_mode, running.priority_mode)
            )
        if running.lossless_priorities != desired.lossless_priorities:
            drifts.append(
                ConfigDrift(
                    switch.name,
                    "lossless_priorities",
                    desired.lossless_priorities,
                    running.lossless_priorities,
                )
            )
        if running.enabled != desired.pfc_enabled:
            drifts.append(ConfigDrift(switch.name, "pfc_enabled", desired.pfc_enabled, running.enabled))
        drifts.extend(self._check_dscp_map(switch.name, running))
        if (
            desired.buffer_alpha is not None
            and switch.buffer_config.alpha != desired.buffer_alpha
        ):
            drifts.append(
                ConfigDrift(switch.name, "buffer_alpha", desired.buffer_alpha, switch.buffer_config.alpha)
            )
        if desired.ecn_enabled is not None and switch.ecn_config.enabled != desired.ecn_enabled:
            drifts.append(
                ConfigDrift(switch.name, "ecn_enabled", desired.ecn_enabled, switch.ecn_config.enabled)
            )
        return drifts

    def check_host(self, host):
        drifts = []
        running = host.nic.pfc_config
        desired = self.desired
        if running.priority_mode != desired.priority_mode:
            drifts.append(
                ConfigDrift(host.name, "priority_mode", desired.priority_mode, running.priority_mode)
            )
        if running.lossless_priorities != desired.lossless_priorities:
            drifts.append(
                ConfigDrift(
                    host.name,
                    "lossless_priorities",
                    desired.lossless_priorities,
                    running.lossless_priorities,
                )
            )
        drifts.extend(self._check_dscp_map(host.name, running))
        return drifts

    def _check_dscp_map(self, device_name, running):
        desired = self.desired
        if desired.dscp_to_priority is None:
            return []
        running_map = running.dscp_to_priority
        running_map = dict(running_map) if running_map is not None else None
        if running_map != desired.dscp_to_priority:
            return [
                ConfigDrift(
                    device_name,
                    "dscp_to_priority",
                    desired.dscp_to_priority,
                    running_map,
                )
            ]
        return []

    def check_fabric(self, fabric):
        """All drifts across every device; empty means compliant."""
        drifts = []
        for switch in fabric.switches:
            drifts.extend(self.check_switch(switch))
        for host in fabric.hosts:
            drifts.extend(self.check_host(host))
        return drifts
