"""Server health tracking (paper figure 9a).

The paper's data-center management system classifies servers as
H (healthy), F (failing) or P (probation); figure 9(a) shows the NIC
storm incident as a dip in H and a spike in F.  This tracker derives
those states from Pingmesh results the way the incident was actually
seen: a server whose probes (as a destination) keep failing goes F;
once probes succeed again it passes through P (probation) before being
declared H.

The tracker consumes Pingmesh :class:`ProbeResult` streams and knows
nothing of the telemetry layer; the complementary signal in a telemetry
artifact is the ``victim_flow`` incident, which flags hosts starved by
pause pressure from counters alone, no probe traffic needed (see
docs/telemetry.md).
"""

import enum


class ServerState(enum.Enum):
    HEALTHY = "H"
    FAILING = "F"
    PROBATION = "P"


class _HostHealth:
    __slots__ = ("state", "consecutive_failures", "consecutive_successes")

    def __init__(self):
        self.state = ServerState.HEALTHY
        self.consecutive_failures = 0
        self.consecutive_successes = 0


class HealthTracker:
    """Derives H/F/P server states from probe results.

    ``fail_threshold``
        Consecutive destination-probe failures before H -> F.
    ``probation_successes``
        Consecutive successes needed to go F -> P and then P -> H.
    """

    def __init__(self, fail_threshold=3, probation_successes=5):
        self.fail_threshold = fail_threshold
        self.probation_successes = probation_successes
        self._hosts = {}
        self.transitions = []  # (t_ns, host, old_state, new_state)

    def _host(self, name):
        health = self._hosts.get(name)
        if health is None:
            health = _HostHealth()
            self._hosts[name] = health
        return health

    def observe(self, probe_result):
        """Feed one Pingmesh :class:`ProbeResult` (destination-keyed)."""
        health = self._host(probe_result.dst)
        old = health.state
        if probe_result.ok:
            health.consecutive_failures = 0
            health.consecutive_successes += 1
            if (
                health.state == ServerState.FAILING
                and health.consecutive_successes >= self.probation_successes
            ):
                health.state = ServerState.PROBATION
                health.consecutive_successes = 0
            elif (
                health.state == ServerState.PROBATION
                and health.consecutive_successes >= self.probation_successes
            ):
                health.state = ServerState.HEALTHY
        else:
            health.consecutive_successes = 0
            health.consecutive_failures += 1
            if health.consecutive_failures >= self.fail_threshold:
                health.state = ServerState.FAILING
        if health.state != old:
            self.transitions.append(
                (probe_result.t_ns, probe_result.dst, old, health.state)
            )

    def observe_all(self, results):
        for result in results:
            self.observe(result)
        return self

    # -- queries -------------------------------------------------------------------

    def state_of(self, host_name):
        return self._host(host_name).state

    def census(self):
        """{state: count} -- the figure 9(a) availability view."""
        counts = {state: 0 for state in ServerState}
        for health in self._hosts.values():
            counts[health.state] += 1
        return counts

    def failing_hosts(self):
        return sorted(
            name
            for name, health in self._hosts.items()
            if health.state == ServerState.FAILING
        )

    def availability(self):
        """Fraction of tracked servers currently healthy."""
        if not self._hosts:
            return 1.0
        return self.census()[ServerState.HEALTHY] / len(self._hosts)
