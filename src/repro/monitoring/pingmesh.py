"""RDMA Pingmesh: active latency measurement (paper section 5.3).

"RDMA Pingmesh launches RDMA probes, with payload size 512 bytes, to the
servers at different locations ... and logs the measured RTT (if probes
succeed) or error code (if probes fail)."

A probe here is a 512-byte SEND whose RTT is the post-to-completion time
(the completion requires the responder's ACK, so the path is traversed
both ways).  A probe that does not complete within the timeout is logged
as an error -- exactly how the paper infers "RDMA is working well or
not".

Unlike :mod:`repro.telemetry` (passive, out-of-band observation of the
simulator), Pingmesh is *active* measurement: its probes are real
simulated RDMA traffic that competes for queues and can itself be
paused -- which is the point, since that is what makes probe failure a
fabric-health signal.  A telemetry session attached to the same fabric
will therefore see the probe traffic in its port counters.

Probe logs export to JSONL (:meth:`Pingmesh.to_jsonl`) and summarize to
the paper's operator view -- RTT p50/p90/p99/p999 plus the per-error-code
breakdown (:meth:`Pingmesh.summary`, or offline via
``python -m repro.tracing pingmesh PROBES.jsonl``).  When the causal
tracing plane (:mod:`repro.tracing`) is armed, probe ops are traced like
any other op, so a slow probe's RTT decomposes into the same
queue/pause/serialization components as a real flow's FCT.
"""

import json

from repro.rdma.qp import QpConfig
from repro.rdma.verbs import connect_qp_pair, post_send
from repro.sim.timer import Timer
from repro.sim.units import MS, US

PROBE_PAYLOAD_BYTES = 512


class ProbeResult:
    """One logged probe."""

    __slots__ = ("t_ns", "src", "dst", "rtt_ns", "error")

    def __init__(self, t_ns, src, dst, rtt_ns=None, error=None):
        self.t_ns = t_ns
        self.src = src
        self.dst = dst
        self.rtt_ns = rtt_ns
        self.error = error

    @property
    def ok(self):
        return self.error is None

    def as_record(self):
        return {
            "t_ns": self.t_ns,
            "src": self.src,
            "dst": self.dst,
            "rtt_ns": self.rtt_ns,
            "error": self.error,
        }

    def __repr__(self):
        if self.ok:
            return "ProbeResult(%s->%s, %dns)" % (self.src, self.dst, self.rtt_ns)
        return "ProbeResult(%s->%s, ERROR %s)" % (self.src, self.dst, self.error)


class _ProbePair:
    def __init__(self, pingmesh, src, dst, qp):
        self.pingmesh = pingmesh
        self.src = src
        self.dst = dst
        self.qp = qp
        self.outstanding_since = None

    def launch(self):
        now = self.pingmesh.sim.now
        if self.outstanding_since is not None:
            # Previous probe still pending: its slot timed out.
            self.pingmesh.results.append(
                ProbeResult(now, self.src.name, self.dst.name, error="timeout")
            )
        self.outstanding_since = now
        post_send(self.qp, PROBE_PAYLOAD_BYTES, on_complete=self._done)

    def _done(self, wr, completed_ns):
        if self.outstanding_since is None:
            return
        rtt = completed_ns - self.outstanding_since
        self.outstanding_since = None
        self.pingmesh.results.append(
            ProbeResult(completed_ns, self.src.name, self.dst.name, rtt_ns=rtt)
        )


class Pingmesh:
    """Schedules probes across registered pairs."""

    def __init__(self, sim, rng, interval_ns=1 * MS, traffic_class=None, qp_config=None):
        self.sim = sim
        self.rng = rng
        self.interval_ns = interval_ns
        self.qp_config = qp_config
        self.traffic_class = traffic_class
        self.results = []
        self._pairs = []
        self._timer = Timer(sim, self._tick, name="pingmesh")
        self._running = False

    def add_pair(self, src, dst):
        """Register a probing pair (one persistent QP pair)."""
        config = self.qp_config or QpConfig(traffic_class=self.traffic_class)
        qp_src, _qp_dst = connect_qp_pair(src, dst, self.rng, config_a=config, config_b=config)
        self._pairs.append(_ProbePair(self, src, dst, qp_src))

    def add_full_mesh(self, hosts):
        for src in hosts:
            for dst in hosts:
                if src is not dst:
                    self.add_pair(src, dst)

    def start(self):
        self._running = True
        self._tick()
        return self

    def stop(self):
        self._running = False
        self._timer.cancel()

    def _tick(self):
        for pair in self._pairs:
            pair.launch()
        if self._running:
            # Heavy jitter decorrelates probes from any periodic traffic
            # (PASTA-style sampling); without it a probe train can hide
            # in the gaps between equally periodic bursts.
            jitter = int(self.rng.uniform(0, self.interval_ns * 0.8))
            self._timer.start(max(1, self.interval_ns // 2 + jitter))

    # -- analysis ------------------------------------------------------------------

    def rtts_ns(self):
        return [r.rtt_ns for r in self.results if r.ok]

    def error_rate(self):
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if not r.ok) / len(self.results)

    def rtt_percentile_us(self, percentile):
        """RTT percentile in microseconds (paper reports p99/p99.9)."""
        from repro.analysis.percentiles import percentile as pct

        rtts = self.rtts_ns()
        if not rtts:
            return None
        return pct(rtts, percentile) / US

    def error_breakdown(self):
        """``{error_code: count}`` over the failed probes."""
        counts = {}
        for result in self.results:
            if not result.ok:
                counts[result.error] = counts.get(result.error, 0) + 1
        return counts

    def summary(self):
        """The operator view: counts, error rate, RTT percentiles in us
        (p50/p90/p99/p999 -- the paper's section 5.3 latency report) and
        the per-error-code breakdown."""
        return summarize_probe_records(r.as_record() for r in self.results)

    def to_jsonl(self, path):
        """Export the probe log as JSON Lines; returns the path.

        One object per probe: ``{"t_ns", "src", "dst", "rtt_ns",
        "error"}`` -- read back with :func:`read_probe_jsonl` or fed to
        ``python -m repro.tracing pingmesh``.
        """
        with open(path, "w") as handle:
            for result in self.results:
                handle.write(json.dumps(result.as_record()) + "\n")
        return path


def read_probe_jsonl(path):
    """Read an exported probe log back into a list of record dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_probe_records(records):
    """Summarize probe records (dicts or :class:`ProbeResult` logs read
    back via :func:`read_probe_jsonl`).

    Returns ``{"probes", "ok", "error_rate", "rtt_us": {"count", "p50",
    "p90", "p99", "p999"}, "errors": {code: count}}``; the percentile
    keys are None when no probe succeeded.
    """
    from repro.analysis.percentiles import percentile as pct

    rtts = []
    errors = {}
    total = 0
    for record in records:
        total += 1
        error = record.get("error")
        if error is None:
            rtts.append(record["rtt_ns"])
        else:
            errors[error] = errors.get(error, 0) + 1
    failed = total - len(rtts)
    rtt_us = {"count": len(rtts), "p50": None, "p90": None, "p99": None,
              "p999": None}
    if rtts:
        for key, q in (("p50", 50), ("p90", 90), ("p99", 99), ("p999", 99.9)):
            rtt_us[key] = pct(rtts, q) / US
    return {
        "probes": total,
        "ok": len(rtts),
        "error_rate": (failed / total) if total else 0.0,
        "rtt_us": rtt_us,
        "errors": errors,
    }
