"""The RDMA NIC model and the host that owns it.

The paper's hard-won lesson is that "NICs are the key to make
RDMA/RoCEv2 work" (section 6.3): most production bugs were NIC bugs.
This subpackage models the NIC behaviours those bugs came from:

* a **receive pipeline** with finite buffering that generates PFC pause
  frames toward the ToR when it falls behind (figure 2's receiver side);
* the **MTT cache** (:mod:`~repro.nic.mtt`): 2K translation entries whose
  misses stall the pipeline -- the slow-receiver symptom of section 4.4;
* a **fault injection** hook reproducing the section 4.3 bug where the
  pipeline stops entirely and the NIC emits pause frames forever;
* the **NIC-side storm watchdog**: a micro-controller that disables pause
  generation when the pipeline has been stopped too long (default
  100 ms) -- and, per the paper, never re-enables it;
* a **transmit scheduler** that round-robins among registered sources
  (QPs, TCP connections) honouring their pacing (DCQCN rate limits).

:class:`~repro.nic.host.Host` bundles a NIC with an address identity and
the transport engines.
"""

from repro.nic.host import Host
from repro.nic.mtt import MttCache, MttConfig
from repro.nic.nic import Nic, NicConfig, NicWatchdogConfig

__all__ = [
    "Nic",
    "NicConfig",
    "NicWatchdogConfig",
    "MttCache",
    "MttConfig",
    "Host",
]
