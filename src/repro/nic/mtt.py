"""The NIC's Memory Translation Table (MTT) cache.

Section 4.4: "The NIC has a Memory Translation Table (MTT) which
translates the virtual memory to the physical memory.  The MTT has only
2K entries.  For 4KB page size, 2K MTT entries can only handle 8MB
memory."  A miss forces the NIC to fetch the entry from host DRAM over
PCIe, stalling the receive pipeline; enough stalls back up the receive
buffer past the PFC threshold and the NIC starts pausing its ToR -- the
*slow-receiver symptom*.

The paper's mitigation is a 2 MB page size, which the same 2K entries
stretch to 4 GB of coverage.
"""

import collections

from repro.sim.units import KB


class MttConfig:
    """MTT geometry and miss cost.

    ``miss_penalty_ns`` is one host-DRAM fetch across PCIe (~1 us class
    latency on the paper's PCIe Gen3 parts).
    """

    def __init__(self, entries=2048, page_bytes=4 * KB, miss_penalty_ns=1200, enabled=True):
        if entries <= 0:
            raise ValueError("MTT needs at least one entry")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a positive power of two: %r" % (page_bytes,))
        self.entries = entries
        self.page_bytes = page_bytes
        self.miss_penalty_ns = miss_penalty_ns
        self.enabled = enabled

    @property
    def coverage_bytes(self):
        """Memory addressable without misses (8 MB at 4 KB pages)."""
        return self.entries * self.page_bytes


class MttCache:
    """An LRU translation cache."""

    def __init__(self, config):
        self.config = config
        self._lru = collections.OrderedDict()
        self.hits = 0
        self.misses = 0

    def touch(self, vaddr, nbytes):
        """Access ``nbytes`` at ``vaddr``; returns the stall in ns."""
        if not self.config.enabled or nbytes <= 0:
            return 0
        page_bytes = self.config.page_bytes
        first = vaddr // page_bytes
        last = (vaddr + nbytes - 1) // page_bytes
        stall = 0
        for page in range(first, last + 1):
            if page in self._lru:
                self._lru.move_to_end(page)
                self.hits += 1
            else:
                self.misses += 1
                stall += self.config.miss_penalty_ns
                self._lru[page] = True
                if len(self._lru) > self.config.entries:
                    self._lru.popitem(last=False)
        return stall

    @property
    def occupancy(self):
        return len(self._lru)

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

    def __repr__(self):
        return "MttCache(%d/%d entries, %.1f%% misses)" % (
            self.occupancy,
            self.config.entries,
            100 * self.miss_rate,
        )
