"""The RDMA NIC device.

Receive side
    Arriving data packets land in a finite receive buffer and are drained
    by a pipeline with a per-packet base cost plus any MTT stall.  When
    occupancy crosses XOFF the NIC pauses its ToR for all lossless
    priorities; XON resumes them.  :meth:`Nic.break_rx_pipeline`
    reproduces the section 4.3 bug: "The bug stopped the NIC from
    handling the packets it received.  As a result, the NIC's receiving
    buffer filled, and the NIC began to send out pause frames all the
    time."

Watchdog
    "the NIC has a separate micro-controller ... Once the NIC
    micro-controller detects the receiving pipeline has been stopped for
    a period of time (default to 100ms) and the NIC is generating the
    pause frames, the micro-controller will disable the NIC from
    generating pause frames."  The NIC watchdog does **not** re-enable
    lossless mode ("once the NIC enters the PFC storm mode, it never
    comes back").

Transmit side
    Sources (QPs, TCP connections) register with the NIC; a round-robin
    scheduler pulls one packet at a time from whichever source is ready
    (its pacing gate open), keeping the port queue shallow so that PFC
    pause back-pressures the sources rather than an unbounded queue.
"""

import collections

from repro.packets.packet import Packet, resolve_priority
from repro.packets.pause import MAX_QUANTA, PfcPauseFrame, pause_quanta_to_ns
from repro.net.device import Device
from repro.nic.mtt import MttCache
from repro.sim.timer import Timer
from repro.sim.units import KB, MS
from repro.telemetry.hooks import HUB as _TELEMETRY
from repro.tracing.hooks import HUB as _TRACE


class NicWatchdogConfig:
    """NIC-side storm watchdog tunables (section 4.3 defaults)."""

    def __init__(self, stall_threshold_ns=100 * MS, poll_interval_ns=10 * MS, enabled=True):
        self.stall_threshold_ns = stall_threshold_ns
        self.poll_interval_ns = poll_interval_ns
        self.enabled = enabled


class NicConfig:
    """NIC resource and PFC parameters."""

    def __init__(
        self,
        pfc_config=None,
        rx_buffer_bytes=256 * KB,
        rx_xoff_bytes=160 * KB,
        rx_xon_bytes=96 * KB,
        rx_base_ns_per_packet=60,
        mtt_config=None,
        watchdog_config=None,
        pause_quanta=MAX_QUANTA,
        tx_queue_target_packets=2,
        rx_span_per_flow_bytes=16 * 1024 * KB,
    ):
        if not rx_xon_bytes <= rx_xoff_bytes <= rx_buffer_bytes:
            raise ValueError("need XON <= XOFF <= buffer size")
        self.pfc_config = pfc_config
        self.rx_buffer_bytes = rx_buffer_bytes
        self.rx_xoff_bytes = rx_xoff_bytes
        self.rx_xon_bytes = rx_xon_bytes
        self.rx_base_ns_per_packet = rx_base_ns_per_packet
        self.mtt_config = mtt_config
        self.watchdog_config = watchdog_config or NicWatchdogConfig()
        self.pause_quanta = pause_quanta
        self.tx_queue_target_packets = tx_queue_target_packets
        # Synthetic receive-buffer footprint per flow, used to derive the
        # MTT page access pattern (section 4.4's working set).
        self.rx_span_per_flow_bytes = rx_span_per_flow_bytes


class NicStats:
    """NIC-level counters."""

    def __init__(self):
        self.rx_processed = 0
        self.rx_dropped_buffer = 0
        self.rx_dropped_mac = 0
        self.rx_dropped_dead = 0
        self.tx_packets = 0
        self.pause_generated = 0
        self.resume_generated = 0
        self.mtt_stall_ns = 0


class Nic(Device):
    """One server NIC with a single port toward its ToR."""

    def __init__(self, sim, name, mac, config=None, pfc_config=None):
        super().__init__(sim, name)
        if config is None:
            config = NicConfig()
        if pfc_config is not None:
            config.pfc_config = pfc_config
        if config.pfc_config is None:
            from repro.switch.pfc import PfcConfig

            config.pfc_config = PfcConfig()
        self.mac = mac
        self.config = config
        self.pfc_config = config.pfc_config
        self.stats = NicStats()
        self.port = self.add_port()
        self.mtt = MttCache(config.mtt_config) if config.mtt_config else None
        # Receive pipeline state.
        self._rx_queue = collections.deque()
        self._rx_bytes = 0
        self._rx_busy = False
        self._rx_paused_upstream = False
        self._pipeline_broken = False
        self._dead = False
        self._pause_refresh = Timer(sim, self._refresh_pause, name="%s.pauseref" % name)
        # Handlers installed by the host: fn(packet) for each protocol.
        self.rx_handler = None
        # Watchdog state.
        self.pause_generation_disabled = False
        self.watchdog_trips = 0
        self._progress_marker = 0
        self._stalled_since = None
        self._watchdog = Timer(sim, self._watchdog_poll, name="%s.wdog" % name)
        if config.watchdog_config.enabled:
            self._watchdog.start(config.watchdog_config.poll_interval_ns)
        # Transmit scheduling.
        self._sources = []
        self._rr_index = 0
        # The NIC assigns IP IDs sequentially from a device-global counter
        # (section 4.1 exploits this: dropping IDs ending 0xff gives a
        # deterministic 1/256 loss).
        self._ip_id = 0
        self._tx_timer = Timer(sim, self._pump_tx, name="%s.tx" % name)
        self.port.on_dequeue = self._on_tx_dequeue
        # NOTE: self.port.coalesce_ok stays False (the Port default): the
        # NIC's tx pump reacts to every dequeue, so its egress must run
        # per-frame.  Pre-bound rx completion for the pooled fast path.
        self._rx_done_ref = self._rx_done

    # -- fault injection -------------------------------------------------------

    def break_rx_pipeline(self):
        """Reproduce the section 4.3 NIC bug: the receive pipeline stops
        and the NIC emits pause frames continuously."""
        self._pipeline_broken = True
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_fault(self.name, "rx_pipeline_broken")
        self._assert_pause()

    def repair(self):
        """Model a server repair (reboot/reimage): pipeline restored,
        buffer cleared.  Note the NIC watchdog's pause-disable latch is
        also cleared -- a rebooted NIC is a fresh NIC."""
        self._pipeline_broken = False
        self._dead = False
        self.port.frozen = False
        self._rx_queue.clear()
        self._rx_bytes = 0
        self._rx_busy = False
        self.pause_generation_disabled = False
        self._stalled_since = None
        self._release_pause()
        self._process_next()

    def die(self):
        """The server goes completely silent (dead host in the deadlock
        experiment): nothing is received, processed or transmitted."""
        self._dead = True
        self.port.frozen = True

    @property
    def rx_pipeline_broken(self):
        """True while :meth:`break_rx_pipeline` is in effect."""
        return self._pipeline_broken

    @property
    def rx_occupancy_bytes(self):
        """Bytes currently held in the receive buffer."""
        return self._rx_bytes

    def audit_rx_accounting(self):
        """``(claimed_bytes, actual_bytes)`` of the receive buffer: the
        running occupancy counter vs. a recount of the queued frames.
        The invariant auditors assert these never diverge."""
        return self._rx_bytes, sum(p.size_bytes for p in self._rx_queue)

    # -- receive path ------------------------------------------------------------

    def handle_packet(self, port, packet):
        """Device entry point for every frame arriving from the ToR.

        Pause frames update the port's pause state; data frames for this
        MAC (or broadcast) are admitted to the finite receive buffer --
        crossing XOFF makes the NIC pause its ToR (the §4.4 slow-receiver
        mechanism) -- and drained by the receive pipeline, which pays any
        MTT stall before handing the packet to the host's dispatcher."""
        if self._dead:
            self.stats.rx_dropped_dead += 1
            return
        if packet.is_pause:
            port.receive_pause(packet.pause)
            self._pump_tx()
            return
        if packet.is_arp:
            if self.rx_handler is not None:
                self.rx_handler(packet)
            return
        if packet.dst_mac != self.mac and packet.dst_mac != 0xFFFFFFFFFFFF:
            # Flood copy for someone else: discarded ("the destination
            # MAC does not match").
            self.stats.rx_dropped_mac += 1
            return
        if self._rx_bytes + packet.size_bytes > self.config.rx_buffer_bytes:
            # Receive buffer overrun: with working PFC this only happens
            # when pause generation has been watchdog-disabled.
            self.stats.rx_dropped_buffer += 1
            if _TRACE.enabled:
                _TRACE.session.on_nic_rx_drop(self, packet, "buffer")
            return
        self._rx_queue.append(packet)
        self._rx_bytes += packet.size_bytes
        if _TRACE.enabled:
            _TRACE.session.on_nic_rx(self, packet)
        self._check_xoff()
        self._process_next()

    def _process_next(self):
        if self._rx_busy or self._pipeline_broken or not self._rx_queue:
            return
        packet = self._rx_queue[0]
        service_ns = self.config.rx_base_ns_per_packet
        if self.mtt is not None and packet.is_rocev2 and packet.payload_bytes:
            stall = self.mtt.touch(self._rx_vaddr(packet), packet.payload_bytes)
            self.stats.mtt_stall_ns += stall
            service_ns += stall
        self._rx_busy = True
        self.sim.schedule0(service_ns, self._rx_done_ref)

    def _rx_done(self):
        self._rx_busy = False
        if self._pipeline_broken or not self._rx_queue:
            return
        packet = self._rx_queue.popleft()
        self._rx_bytes -= packet.size_bytes
        self.stats.rx_processed += 1
        self._check_xon()
        traced = _TRACE.enabled
        if traced:
            _TRACE.session.on_nic_rx_done(self, packet)
        if self.rx_handler is not None:
            self.rx_handler(packet)
        if traced:
            _TRACE.session.on_nic_rx_dispatched(self)
        self._process_next()

    def _rx_vaddr(self, packet):
        """Synthetic receive-buffer address for the MTT access pattern:
        each flow owns a span of virtual memory; successive packets walk
        it circularly (a ring of posted receive buffers)."""
        span = self.config.rx_span_per_flow_bytes
        flow_key = packet.flow if packet.flow is not None else packet.bth.dest_qp
        base = (hash(flow_key) & 0xFFFF) * span
        offset = (packet.bth.psn * max(1, packet.payload_bytes)) % span
        return base + offset

    # -- PFC generation ------------------------------------------------------------

    def _check_xoff(self):
        if not self._rx_paused_upstream and self._rx_bytes > self.config.rx_xoff_bytes:
            self._assert_pause()

    def _check_xon(self):
        if (
            self._rx_paused_upstream
            and not self._pipeline_broken
            and self._rx_bytes <= self.config.rx_xon_bytes
        ):
            self._release_pause()

    def _assert_pause(self):
        if self.pause_generation_disabled:
            return
        self._rx_paused_upstream = True
        self._send_pause_frame(self.config.pause_quanta)
        if self.port.link is not None:
            duration = pause_quanta_to_ns(self.config.pause_quanta, self.port.link.rate_bps)
            self._pause_refresh.start(max(1, duration // 2))

    def _release_pause(self):
        self._rx_paused_upstream = False
        self._pause_refresh.cancel()
        if not self.pause_generation_disabled:
            self._send_resume_frame()

    def _refresh_pause(self):
        if self.pause_generation_disabled:
            return
        if self._pipeline_broken or self._rx_bytes > self.config.rx_xon_bytes:
            self._assert_pause()
        else:
            self._release_pause()

    def _send_pause_frame(self, quanta):
        frame = PfcPauseFrame(
            {priority: quanta for priority in self.pfc_config.lossless_priorities}
        )
        if _TRACE.enabled:
            _TRACE.session.on_nic_pause_emit(self, frame, quanta)
        self.port.enqueue_control(
            Packet.pfc_pause(dst_mac=0x0180C2000001, src_mac=self.mac, pause=frame)
        )
        if quanta:
            self.stats.pause_generated += 1
        else:
            self.stats.resume_generated += 1

    def _send_resume_frame(self):
        frame = PfcPauseFrame.resume(sorted(self.pfc_config.lossless_priorities))
        if _TRACE.enabled:
            _TRACE.session.on_nic_resume_emit(self, frame)
        self.port.enqueue_control(
            Packet.pfc_pause(dst_mac=0x0180C2000001, src_mac=self.mac, pause=frame)
        )
        self.stats.resume_generated += 1

    # -- NIC watchdog ------------------------------------------------------------

    def _watchdog_poll(self):
        """Micro-controller check: pipeline stopped + pauses flowing for
        longer than the threshold => disable pause generation for good."""
        config = self.config.watchdog_config
        progressed = self.stats.rx_processed != self._progress_marker
        self._progress_marker = self.stats.rx_processed
        pipeline_stopped = (self._pipeline_broken or self._rx_queue) and not progressed
        generating = self._rx_paused_upstream and not self.pause_generation_disabled
        if pipeline_stopped and generating:
            if self._stalled_since is None:
                self._stalled_since = self.sim.now
            elif self.sim.now - self._stalled_since >= config.stall_threshold_ns:
                self._trip_watchdog()
        else:
            self._stalled_since = None
        self._watchdog.start(config.poll_interval_ns)

    def _trip_watchdog(self):
        self.pause_generation_disabled = True
        self.watchdog_trips += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_nic_watchdog(self)
        if _TRACE.enabled:
            _TRACE.session.on_nic_watchdog(self)
        self._pause_refresh.cancel()
        self._rx_paused_upstream = False
        # One final XON so the ToR port is not left paused for a full
        # pause duration after the storm stops.
        self._send_resume_frame()

    # -- transmit path ------------------------------------------------------------

    def register_source(self, source):
        """Register a packet source (QP engine, TCP connection).

        A source exposes ``next_ready_ns()`` (absolute time it could send
        next, or ``None`` when idle) and ``pull()`` returning
        ``(packet, priority)``.
        """
        self._sources.append(source)
        self._pump_tx()

    def unregister_source(self, source):
        """Remove a previously registered packet source (no-op if absent)."""
        if source in self._sources:
            self._sources.remove(source)

    def notify_tx_ready(self):
        """Called by sources when new work arrives."""
        self._pump_tx()

    def _tx_queue_has_room(self):
        return self.port.total_queued_packets < self.config.tx_queue_target_packets

    def _pump_tx(self):
        if self._dead or not self._sources:
            return
        while self._tx_queue_has_room():
            now = self.sim.now
            earliest_future = None
            pulled = False
            n = len(self._sources)
            for step in range(n):
                source = self._sources[(self._rr_index + step) % n]
                ready = source.next_ready_ns()
                if ready is None:
                    continue
                if ready <= now:
                    self._rr_index = (self._rr_index + step + 1) % n
                    packet, priority = source.pull()
                    if packet is None:
                        continue
                    self.stats.tx_packets += 1
                    self.port.enqueue(packet, priority)
                    pulled = True
                    break
                if earliest_future is None or ready < earliest_future:
                    earliest_future = ready
            if not pulled:
                if earliest_future is not None:
                    self._tx_timer.start_at(earliest_future)
                return

    def _on_tx_dequeue(self, packet, meta, dropped_at_head):
        self._pump_tx()

    # -- helpers ------------------------------------------------------------------

    def next_ip_id(self):
        """Sequential device-global IP identification (16-bit wrap)."""
        value = self._ip_id
        self._ip_id = (value + 1) & 0xFFFF
        return value

    def classify(self, packet):
        """Priority this NIC assigns to an outgoing/incoming packet."""
        return resolve_priority(
            packet,
            self.pfc_config.priority_mode,
            dscp_to_priority=self.pfc_config.dscp_to_priority,
            default_priority=self.pfc_config.default_priority,
        )
