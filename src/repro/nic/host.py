"""Hosts: a NIC plus an address identity and protocol dispatch.

A :class:`Host` owns one :class:`~repro.nic.nic.Nic`, an (IP, MAC) pair,
and a registry of protocol handlers that the transport engines
(:mod:`repro.rdma`, :mod:`repro.tcp`) install.  On boot it announces
itself with a gratuitous ARP, which is how the ToR's ARP and MAC tables
get populated (and whose *absence* after a server dies is what strands
the "incomplete" ARP entry of section 4.2).
"""

from repro.packets.arp import ArpPacket
from repro.packets.ethernet import BROADCAST_MAC
from repro.packets.packet import Packet


class AddressDirectory:
    """The experiment's control plane: IP -> host resolution.

    Real deployments resolve next-hop MACs with ARP and configuration
    systems; experiments here register every host once and transports
    look peers up directly.
    """

    def __init__(self):
        self._by_ip = {}

    def register(self, host):
        if host.ip in self._by_ip:
            raise ValueError("duplicate IP %r" % (host.ip,))
        self._by_ip[host.ip] = host

    def host_for(self, ip):
        return self._by_ip[ip]

    def mac_for(self, ip):
        return self._by_ip[ip].mac

    def __len__(self):
        return len(self._by_ip)

    def __iter__(self):
        return iter(self._by_ip.values())


class Host:
    """One server: NIC + identity + protocol dispatch."""

    def __init__(self, sim, name, ip, mac, nic_config=None, pfc_config=None, directory=None):
        from repro.nic.nic import Nic

        self.sim = sim
        self.name = name
        self.ip = ip
        self.mac = mac
        self.nic = Nic(sim, "%s.nic" % name, mac, config=nic_config, pfc_config=pfc_config)
        self.nic.rx_handler = self._dispatch
        self.directory = directory
        if directory is not None:
            directory.register(self)
        self._handlers = {}
        self.alive = True

    @property
    def port(self):
        """The NIC's single port (connect this to a ToR)."""
        return self.nic.port

    def install_handler(self, kind, handler):
        """Register a packet handler: ``kind`` is 'rocev2', 'tcp' or 'arp'."""
        self._handlers[kind] = handler

    def boot(self):
        """Announce with a gratuitous ARP (populates ToR ARP+MAC tables)."""
        announce = ArpPacket.reply(
            sender_mac=self.mac, sender_ip=self.ip, target_mac=BROADCAST_MAC, target_ip=self.ip
        )
        packet = Packet.arp_packet(
            dst_mac=BROADCAST_MAC, src_mac=self.mac, arp=announce, created_ns=self.sim.now
        )
        self.nic.port.enqueue_control(packet)

    def die(self):
        """The server fails silently (used by the deadlock experiment)."""
        self.alive = False
        self.nic.die()

    def repair(self):
        """Server repair: reboot the NIC and re-announce."""
        self.alive = True
        self.nic.repair()
        self.boot()

    def _dispatch(self, packet):
        if packet.is_arp:
            handler = self._handlers.get("arp")
            if handler is not None:
                handler(packet)
            return
        if packet.is_rocev2:
            handler = self._handlers.get("rocev2")
        elif packet.is_tcp:
            handler = self._handlers.get("tcp")
        elif packet.udp is not None:
            handler = self._handlers.get("raw-udp")
        else:
            handler = None
        if handler is not None:
            handler(packet)

    def __repr__(self):
        return "Host(%s, ip=%d%s)" % (self.name, self.ip, "" if self.alive else ", DEAD")
