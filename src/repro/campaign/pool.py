"""A process-per-task worker pool with timeouts, retries and isolation.

``multiprocessing.Pool`` shares long-lived workers, so one run that
segfaults, leaks, or wedges takes unrelated runs down with it and a
per-task timeout cannot kill the offender without killing the pool.
Campaign runs are seconds-to-minutes each, so we afford one forked
process per task instead: a crash, a hang, or an over-limit run is
terminated and retried without disturbing anything else.

:func:`run_tasks` is deliberately generic -- the campaign orchestrator
feeds it experiment runs, ``scripts/audit_smoke.py`` feeds it example
scripts -- and fully synchronous from the caller's point of view.
"""

import multiprocessing
import os
import time
import traceback

#: outcome statuses
OK = "ok"
ERROR = "error"
TIMEOUT = "timeout"
CRASHED = "crashed"

_POLL_INTERVAL_S = 0.02


class TaskOutcome:
    """Terminal state of one task after all attempts."""

    __slots__ = ("task_id", "status", "value", "error", "duration_s", "attempts")

    def __init__(self, task_id, status, value=None, error=None, duration_s=0.0, attempts=1):
        self.task_id = task_id
        self.status = status
        self.value = value  # worker return value when status == OK
        self.error = error  # human-readable failure description otherwise
        self.duration_s = duration_s
        self.attempts = attempts

    @property
    def ok(self):
        return self.status == OK

    def __repr__(self):
        return "TaskOutcome(%s, %s, %.2fs, attempt %d)" % (
            self.task_id, self.status, self.duration_s, self.attempts,
        )


def default_jobs():
    """Worker count: ``$REPRO_CAMPAIGN_JOBS`` or the machine's cores."""
    env = os.environ.get("REPRO_CAMPAIGN_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, multiprocessing.cpu_count())


def _child_main(worker, payload, conn):
    """Child entry: run the worker, ship (status, value) over the pipe."""
    try:
        value = worker(payload)
    except BaseException:
        result = (ERROR, traceback.format_exc())
    else:
        result = (OK, value)
    try:
        conn.send(result)
        conn.close()
    except Exception:
        os._exit(70)  # parent will see CRASHED
    os._exit(0)


class _Running:
    __slots__ = ("task_id", "payload", "process", "conn", "started", "attempt", "received")

    def __init__(self, task_id, payload, worker, attempt):
        self.task_id = task_id
        self.payload = payload
        self.attempt = attempt
        self.received = None
        ctx = _context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_child_main, args=(worker, payload, child_conn), daemon=True
        )
        self.started = time.monotonic()
        self.process.start()
        child_conn.close()

    @property
    def elapsed(self):
        return time.monotonic() - self.started

    def poll(self):
        """Drain the pipe if the child has reported."""
        try:
            if self.received is None and self.conn.poll():
                self.received = self.conn.recv()
        except (EOFError, OSError):
            pass

    def kill(self):
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(1.0)
        self.conn.close()

    def finish(self):
        self.process.join()
        self.conn.close()


def _context():
    """Fork where available (inherits runtime-registered targets and
    ``sys.path``); the platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def run_tasks(tasks, worker, jobs=None, timeout_s=None, retries=0, on_event=None, inline=False):
    """Run ``worker(payload)`` for every ``(task_id, payload)`` task.

    ``tasks``
        Ordered list of ``(task_id, payload)`` pairs; payloads must be
        picklable, ids unique.
    ``worker``
        Module-level callable executed in a child process.  Its return
        value must be picklable.
    ``jobs``
        Maximum concurrent processes (default: :func:`default_jobs`).
    ``timeout_s``
        Per-attempt wall-clock limit; over-limit children are killed.
    ``retries``
        Extra attempts after an error / timeout / crash.
    ``on_event``
        Callback receiving dicts: ``{"type": "start"|"retry"|"done",
        "task_id": ..., ...}``; ``done`` events carry the outcome.
    ``inline``
        Run everything in-process, serially, with no isolation --
        for debugging and for platforms without working ``fork``.

    Returns ``{task_id: TaskOutcome}``; never raises for task failures.
    """
    tasks = list(tasks)
    ids = [task_id for task_id, _payload in tasks]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate task ids")
    jobs = jobs or default_jobs()
    notify = on_event or (lambda event: None)

    if inline:
        return _run_inline(tasks, worker, timeout_s, retries, notify)

    outcomes = {}
    pending = list(tasks)  # (task_id, payload)
    attempts = {task_id: 0 for task_id in ids}
    running = []
    try:
        while pending or running:
            while pending and len(running) < jobs:
                task_id, payload = pending.pop(0)
                attempts[task_id] += 1
                notify({"type": "start", "task_id": task_id, "attempt": attempts[task_id]})
                running.append(_Running(task_id, payload, worker, attempts[task_id]))

            time.sleep(_POLL_INTERVAL_S)
            still = []
            for run in running:
                run.poll()
                outcome = None
                if run.received is not None:
                    run.finish()
                    status, value = run.received
                    if status == OK:
                        outcome = TaskOutcome(
                            run.task_id, OK, value=value,
                            duration_s=run.elapsed, attempts=run.attempt,
                        )
                    else:
                        outcome = TaskOutcome(
                            run.task_id, ERROR, error=value,
                            duration_s=run.elapsed, attempts=run.attempt,
                        )
                elif timeout_s is not None and run.elapsed > timeout_s:
                    run.kill()
                    outcome = TaskOutcome(
                        run.task_id, TIMEOUT,
                        error="timed out after %.1fs" % run.elapsed,
                        duration_s=run.elapsed, attempts=run.attempt,
                    )
                elif not run.process.is_alive():
                    run.poll()  # final drain: result may have raced the exit
                    if run.received is not None:
                        still.append(run)
                        continue
                    run.finish()
                    outcome = TaskOutcome(
                        run.task_id, CRASHED,
                        error="worker died with exit code %s" % run.process.exitcode,
                        duration_s=run.elapsed, attempts=run.attempt,
                    )
                if outcome is None:
                    still.append(run)
                elif not outcome.ok and outcome.attempts <= retries:
                    notify({
                        "type": "retry", "task_id": outcome.task_id,
                        "status": outcome.status, "attempt": outcome.attempts,
                    })
                    pending.append((run.task_id, run.payload))
                else:
                    outcomes[outcome.task_id] = outcome
                    notify({"type": "done", "task_id": outcome.task_id, "outcome": outcome})
            running = still
    finally:
        for run in running:
            run.kill()
    return outcomes


def _run_inline(tasks, worker, timeout_s, retries, notify):
    """Serial in-process fallback (no timeout enforcement, no isolation)."""
    outcomes = {}
    for task_id, payload in tasks:
        for attempt in range(1, retries + 2):
            notify({"type": "start", "task_id": task_id, "attempt": attempt})
            started = time.monotonic()
            try:
                value = worker(payload)
            except BaseException:
                outcome = TaskOutcome(
                    task_id, ERROR, error=traceback.format_exc(),
                    duration_s=time.monotonic() - started, attempts=attempt,
                )
            else:
                outcome = TaskOutcome(
                    task_id, OK, value=value,
                    duration_s=time.monotonic() - started, attempts=attempt,
                )
            if outcome.ok or attempt > retries:
                break
            notify({
                "type": "retry", "task_id": task_id,
                "status": outcome.status, "attempt": attempt,
            })
        outcomes[task_id] = outcome
        notify({"type": "done", "task_id": task_id, "outcome": outcome})
    return outcomes
