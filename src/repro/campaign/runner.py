"""The campaign orchestrator.

Ties the pieces together: expand a :class:`SweepSpec` into runs, check
the :class:`ResultCache` for each, fan the misses out over the
:mod:`process pool <repro.campaign.pool>`, write JSONL/CSV artifacts
and an incrementally-updated manifest, and report progress with an ETA
as results stream in.

The flow of one campaign::

    spec --expand--> [RunSpec...]
        --cache?--> hits: artifacts written straight from cache
        --pool----> misses: execute_run() in isolated worker processes
        --store---> runs/<id>.jsonl + csv/<id>.csv + manifest.json
"""

import time

from repro.campaign import pool
from repro.campaign.cache import ResultCache, code_version, run_key
from repro.campaign.registry import DEFAULT_REGISTRY
from repro.campaign.spec import SweepSpec
from repro.campaign.store import CampaignStore
from repro.experiments.catalog import resolve_ref

#: run statuses recorded in the manifest
OK = pool.OK
FAILED = "failed"
PENDING = "pending"


def execute_run(payload):
    """Worker-side entry: run one experiment and return its payload.

    ``payload`` is ``RunSpec.describe()`` plus ``run_id``.  The runner
    is resolved from its ``module:attr`` reference *inside* the worker
    process, the seed (when present) is passed as the runner's ``seed``
    keyword, and the result is reduced to plain JSON-serializable data
    so it can cross the process boundary and land in the cache.

    With ``payload["telemetry"]`` set, the run executes with the
    telemetry hub armed (every fabric the runner boots gets a collection
    session -- see :mod:`repro.telemetry`) and the drained session
    records ride back in the result as ``telemetry_sessions``.
    """
    runner = resolve_ref(payload["ref"])
    kwargs = dict(payload["params"])
    if payload.get("seed") is not None:
        kwargs["seed"] = payload["seed"]
    collect = bool(payload.get("telemetry"))
    if collect:
        from repro import telemetry

        telemetry.arm(telemetry.TelemetryConfig(label=payload["run_id"]))
    started = time.monotonic()
    try:
        result = runner(**kwargs)
    finally:
        if collect:
            telemetry.disarm()
    duration_s = time.monotonic() - started
    schema = result.check_schema()
    rows = result.normalized_rows()
    out = {
        "run_id": payload["run_id"],
        "title": result.title,
        "schema": schema,
        "rows": rows,
        "duration_s": duration_s,
        "violations": _violation_count(rows),
    }
    if collect:
        out["telemetry_sessions"] = telemetry.drain()
    return out


def _violation_count(rows):
    """Auditor violations surfaced by the run (via its row column)."""
    total = 0
    for row in rows:
        value = row.get("invariant_violations")
        if isinstance(value, (int, float)):
            total += int(value)
    return total


class CampaignReport:
    """Summary of one orchestrated campaign."""

    __slots__ = ("name", "out_dir", "total", "ok", "failed", "cache_hits",
                 "wall_s", "compute_s", "manifest")

    def __init__(self, name, out_dir, total, ok, failed, cache_hits,
                 wall_s, compute_s, manifest):
        self.name = name
        self.out_dir = out_dir
        self.total = total
        self.ok = ok
        self.failed = failed
        self.cache_hits = cache_hits
        self.wall_s = wall_s
        self.compute_s = compute_s
        self.manifest = manifest

    @property
    def all_ok(self):
        return self.failed == 0

    def summary(self):
        line = (
            "campaign %r: %d/%d ok, %d cached, wall %.1fs"
            % (self.name, self.ok, self.total, self.cache_hits, self.wall_s)
        )
        if self.compute_s > self.wall_s * 1.05:
            line += " (serial-equivalent %.1fs, %.1fx)" % (
                self.compute_s, self.compute_s / max(self.wall_s, 1e-9),
            )
        if self.failed:
            line += ", %d FAILED" % self.failed
        return line


class Campaign:
    """Orchestrate one spec into one campaign directory."""

    def __init__(self, spec, out_dir, registry=None, cache=None, use_cache=True,
                 jobs=None, timeout_s=900.0, retries=1, inline=False, echo=print,
                 telemetry=False):
        self.spec = spec
        self.store = CampaignStore(out_dir)
        self.registry = registry or DEFAULT_REGISTRY
        self.cache = cache if cache is not None else ResultCache()
        # Telemetry-enabled runs bypass the cache entirely: the artifact
        # is a side product the cached row payload does not carry, and
        # the instrumented event schedule differs from the plain one, so
        # neither direction of reuse would be honest.
        self.telemetry = telemetry
        self.use_cache = use_cache and not telemetry
        self.jobs = jobs or pool.default_jobs()
        self.timeout_s = timeout_s
        self.retries = retries
        self.inline = inline
        self.echo = echo or (lambda line: None)

    @classmethod
    def resume(cls, out_dir, **kwargs):
        """Reopen an interrupted campaign directory and finish it."""
        manifest = CampaignStore(out_dir).load_manifest()
        if manifest is None:
            raise FileNotFoundError("no campaign manifest in %r" % out_dir)
        spec = SweepSpec.from_dict(manifest["spec"])
        campaign = cls(spec, out_dir, **kwargs)
        return campaign.run(resume=True)

    def run(self, resume=False):
        """Execute (or finish) the campaign; returns a :class:`CampaignReport`.

        With ``resume=True``, runs already recorded ``ok`` in the
        manifest keep their entries and artifacts untouched; everything
        else (pending, failed, or newly added to the spec) executes.
        """
        started_wall = time.monotonic()
        runs = self.spec.expand(self.registry)
        manifest = self._manifest_base(resume)
        entries = manifest["runs"]

        todo = []
        reused = 0
        for run in runs:
            previous = entries.get(run.run_id)
            if resume and previous and previous.get("status") == OK:
                reused += 1
                continue
            entry = run.describe()
            entry.update(status=PENDING, cache_hit=False, duration_s=None,
                         violations=None, rows=None, error=None, attempts=0)
            entries[run.run_id] = entry
            todo.append(run)
        self.store.save_manifest(manifest)

        progress = _Progress(len(runs), self.jobs, self.echo)
        progress.skipped(reused)

        misses = []
        for run in todo:
            key = run_key(run) if self.use_cache else None
            payload = self.cache.get(key) if key else None
            if payload is not None:
                self._record_success(manifest, run.run_id, payload, cache_hit=True)
                progress.done(run.run_id, 0.0, cached=True)
            else:
                misses.append((run, key))

        tasks = []
        keys = {}
        for run, key in misses:
            task_payload = run.describe()
            task_payload["run_id"] = run.run_id
            if self.telemetry:
                task_payload["telemetry"] = True
            tasks.append((run.run_id, task_payload))
            keys[run.run_id] = key

        def on_event(event):
            if event["type"] == "start":
                progress.started(event["task_id"], event["attempt"])
            elif event["type"] == "retry":
                progress.retry(event["task_id"], event["status"], event["attempt"])
            elif event["type"] == "done":
                outcome = event["outcome"]
                if outcome.ok:
                    payload = outcome.value
                    payload["attempts"] = outcome.attempts
                    self._record_success(manifest, outcome.task_id, payload, cache_hit=False)
                    if keys.get(outcome.task_id):
                        self.cache.put(keys[outcome.task_id], payload)
                else:
                    self._record_failure(manifest, outcome)
                progress.done(outcome.task_id, outcome.duration_s, failed=not outcome.ok)

        if tasks:
            pool.run_tasks(
                tasks, execute_run, jobs=self.jobs, timeout_s=self.timeout_s,
                retries=self.retries, on_event=on_event, inline=self.inline,
            )

        wall_s = time.monotonic() - started_wall
        ok = sum(1 for e in entries.values() if e.get("status") == OK)
        failed = sum(1 for e in entries.values() if e.get("status") == FAILED)
        compute_s = sum(e.get("duration_s") or 0.0 for e in entries.values())
        cache_hits = sum(1 for e in entries.values() if e.get("cache_hit"))
        manifest["totals"] = {
            "runs": len(entries), "ok": ok, "failed": failed,
            "cache_hits": cache_hits,
            # Same precision as the per-run duration_s entries (4 dp):
            # rounding the total coarser than its constituents can make
            # compute_s < max(duration_s), which reads as impossible.
            "wall_s": round(wall_s, 3), "compute_s": round(compute_s, 4),
            "violations": sum(e.get("violations") or 0 for e in entries.values()),
        }
        self.store.save_manifest(manifest)
        report = CampaignReport(
            self.spec.name, self.store.out_dir, len(entries), ok, failed,
            cache_hits, wall_s, compute_s, manifest,
        )
        self.echo(report.summary())
        return report

    # -- manifest bookkeeping ---------------------------------------------------

    def _manifest_base(self, resume):
        manifest = self.store.load_manifest() if resume else None
        if manifest is None:
            manifest = {
                "name": self.spec.name,
                "created": _now_iso(),
                "code_version": code_version(),
                "jobs": self.jobs,
                "spec": self.spec.to_dict(),
                "runs": {},
                "totals": {},
            }
        else:
            manifest["code_version"] = code_version()
            manifest["jobs"] = self.jobs
        return manifest

    def _record_success(self, manifest, run_id, payload, cache_hit):
        jsonl, csv_path = self.store.write_run_artifacts(
            run_id, payload["schema"], payload["rows"]
        )
        telemetry_paths = None
        if payload.get("telemetry_sessions"):
            telemetry_paths = self.store.write_telemetry_artifacts(
                run_id, payload["telemetry_sessions"]
            )
        entry = manifest["runs"][run_id]
        entry.update(
            status=OK,
            cache_hit=cache_hit,
            title=payload.get("title"),
            duration_s=round(payload.get("duration_s") or 0.0, 4),
            violations=payload.get("violations", 0),
            rows=len(payload["rows"]),
            attempts=payload.get("attempts", 0 if cache_hit else 1),
            error=None,
            jsonl=jsonl,
            csv=csv_path,
        )
        if telemetry_paths is not None:
            entry["telemetry"] = telemetry_paths
        manifest["updated"] = _now_iso()
        self.store.save_manifest(manifest)

    def _record_failure(self, manifest, outcome):
        entry = manifest["runs"][outcome.task_id]
        entry.update(
            status=FAILED,
            cache_hit=False,
            duration_s=round(outcome.duration_s, 4),
            attempts=outcome.attempts,
            error="%s: %s" % (outcome.status, (outcome.error or "").strip()[-2000:]),
        )
        manifest["updated"] = _now_iso()
        self.store.save_manifest(manifest)


class _Progress:
    """Streamed ``[done/total]`` lines with a crude but honest ETA."""

    def __init__(self, total, jobs, echo):
        self.total = total
        self.jobs = jobs
        self.echo = echo
        self.completed = 0
        self.durations = []

    def skipped(self, count):
        if count:
            self.completed += count
            self.echo("resume: %d run(s) already complete, skipping" % count)

    def started(self, run_id, attempt):
        if attempt > 1:
            self.echo("        %s attempt %d" % (run_id, attempt))

    def retry(self, run_id, status, attempt):
        self.echo("        %s %s on attempt %d, retrying" % (run_id, status, attempt))

    def done(self, run_id, duration_s, cached=False, failed=False):
        self.completed += 1
        if not cached and not failed:
            self.durations.append(duration_s)
        if cached:
            note = "cached"
        elif failed:
            note = "FAILED after %.1fs" % duration_s
        else:
            note = "ok %.1fs" % duration_s
        eta = self._eta()
        self.echo(
            "[%*d/%d] %-28s %s%s"
            % (len(str(self.total)), self.completed, self.total, run_id, note, eta)
        )

    def _eta(self):
        remaining = self.total - self.completed
        if remaining <= 0 or not self.durations:
            return ""
        average = sum(self.durations) / len(self.durations)
        return "  eta ~%ds" % max(1, int(average * remaining / self.jobs))


def _now_iso():
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime())
