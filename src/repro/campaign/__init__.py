"""Campaign orchestration: parallel, cached, resumable experiment sweeps.

The paper's evaluation is a fleet-scale measurement campaign; this
package is the reproduction's equivalent of the tooling behind it.  It
turns the experiment catalogue (:mod:`repro.experiments`) into
*campaign targets* that can be swept over parameter grids and seed
lists, fanned out across worker processes, cached content-addressably
so unchanged runs are free, and resumed after interruption.

Pieces:

* :mod:`~repro.campaign.spec` -- declarative sweep specs
  (experiment x parameter grid x seeds) and their expansion into runs;
* :mod:`~repro.campaign.registry` -- the target registry (catalogue
  entries plus runtime-registered extras);
* :mod:`~repro.campaign.cache` -- the content-addressed result cache
  keyed on (code version, runner, params, seed);
* :mod:`~repro.campaign.pool` -- the process-per-task worker pool with
  per-run timeout/retry and failure isolation;
* :mod:`~repro.campaign.store` -- JSONL/CSV artifacts + the manifest;
* :mod:`~repro.campaign.runner` -- the orchestrator gluing the above;
* ``python -m repro.campaign`` -- the run/resume/list/clean CLI.

Quickstart::

    from repro.campaign import Campaign, SweepSpec

    spec = SweepSpec.from_dict({
        "name": "alpha-study",
        "targets": [{"experiment": "A2", "seeds": [1, 2, 3]}],
    })
    report = Campaign(spec, "campaigns/alpha-study", jobs=4).run()
    assert report.all_ok
"""

from repro.campaign.cache import ResultCache, code_version, run_key
from repro.campaign.pool import TaskOutcome, default_jobs, run_tasks
from repro.campaign.registry import DEFAULT_REGISTRY, Registry, register, unregister
from repro.campaign.runner import Campaign, CampaignReport, execute_run
from repro.campaign.spec import RunSpec, SpecError, SweepEntry, SweepSpec
from repro.campaign.store import CampaignStore

__all__ = [
    "Campaign",
    "CampaignReport",
    "CampaignStore",
    "DEFAULT_REGISTRY",
    "Registry",
    "ResultCache",
    "RunSpec",
    "SpecError",
    "SweepEntry",
    "SweepSpec",
    "TaskOutcome",
    "code_version",
    "default_jobs",
    "execute_run",
    "register",
    "run_key",
    "run_tasks",
    "unregister",
]
