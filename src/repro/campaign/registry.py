"""The campaign target registry.

Every entry of the experiments catalogue
(:data:`repro.experiments.catalog.CATALOG` -- E1..E11, the A1..A7
ablation sweeps, and the V1 differential validation sweep) is a
campaign target out of the box.  Other code (a
test, a study script) can register additional targets at runtime with
:func:`register`, or a sweep spec can bypass the registry entirely by
naming a runner ``ref`` inline.

A target's runner must be a module-level callable returning an
:class:`~repro.experiments.common.ExperimentResult`; worker processes
resolve it by its ``module:attr`` reference.
"""

from repro.experiments.catalog import CATALOG, CatalogEntry, resolve_tokens


class Registry:
    """Experiment id -> :class:`CatalogEntry`, catalogue plus extras."""

    def __init__(self, base=None):
        self._extra = {}
        self._base = CATALOG if base is None else base

    def get(self, exp_id):
        return self._extra.get(exp_id) or self._base.get(exp_id)

    def register(self, exp_id, ref, description="", runner_name=None):
        """Add (or replace) a target; returns its :class:`CatalogEntry`."""
        if exp_id in self._base:
            raise ValueError(
                "%r is a built-in catalogue experiment and cannot be re-registered"
                % exp_id
            )
        entry = CatalogEntry(
            exp_id,
            runner_name or ref.partition(":")[2],
            description,
            ref=ref,
        )
        self._extra[exp_id] = entry
        return entry

    def unregister(self, exp_id):
        self._extra.pop(exp_id, None)

    def ids(self):
        return list(self._base) + [i for i in self._extra if i not in self._base]

    def entries(self):
        return [self.get(exp_id) for exp_id in self.ids()]

    def resolve_tokens(self, tokens):
        """Token matching across catalogue + extras (see the catalogue)."""
        selected, unmatched = resolve_tokens(tokens)
        still_unmatched = []
        for token in unmatched:
            if token in self._extra:
                selected.append(token)
            else:
                still_unmatched.append(token)
        return selected, still_unmatched


#: The process-wide default registry used by the CLI and, thanks to
#: fork-based workers, visible to campaign worker processes as well.
DEFAULT_REGISTRY = Registry()


def register(exp_id, ref, description=""):
    """Register a target on the default registry."""
    return DEFAULT_REGISTRY.register(exp_id, ref, description)


def unregister(exp_id):
    DEFAULT_REGISTRY.unregister(exp_id)
