"""CLI: orchestrate experiment campaigns.

    python -m repro.campaign list
    python -m repro.campaign run --all                    # every catalogue entry
    python -m repro.campaign run E1 A2 --seeds 1,2,3 -j 4
    python -m repro.campaign run E8 --param duration_ns=20000000 --seeds 1,2
    python -m repro.campaign run --spec sweep.json --out campaigns/sweep
    python -m repro.campaign resume campaigns/sweep
    python -m repro.campaign clean campaigns/sweep --cache

``run`` executes a sweep in parallel worker processes, skipping any
(code, experiment, params, seed) combination already in the result
cache; ``resume`` finishes an interrupted campaign directory; ``clean``
deletes campaign artifacts and/or the cache.
"""

import argparse
import ast
import os
import shutil
import sys

from repro.campaign.cache import ResultCache, default_cache_dir
from repro.campaign.registry import DEFAULT_REGISTRY
from repro.campaign.runner import Campaign
from repro.campaign.spec import SpecError, SweepSpec


def _parse_value(text):
    """CLI parameter values: Python literals, falling back to strings."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs):
    params = {}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise SpecError("--param expects name=value, got %r" % pair)
        params[name] = _parse_value(value)
    return params


def _parse_seeds(text):
    if not text:
        return None
    try:
        return [int(token) for token in text.replace(",", " ").split()]
    except ValueError:
        raise SpecError("--seeds expects comma-separated integers, got %r" % text)


def _build_spec(args):
    if args.spec:
        if args.which or args.all:
            raise SpecError("--spec and experiment ids are mutually exclusive")
        return SweepSpec.from_file(args.spec)
    if args.all:
        selected = DEFAULT_REGISTRY.ids()
    else:
        selected, unmatched = DEFAULT_REGISTRY.resolve_tokens(args.which)
        if unmatched:
            raise SpecError("no experiment matches %r (try `list`)" % unmatched[0])
        if not selected:
            raise SpecError("nothing selected: name experiments, or pass --all / --spec")
    params = _parse_params(args.param)
    seeds = _parse_seeds(args.seeds)
    grid = {name: [value] for name, value in params.items()}
    targets = [
        {"experiment": exp_id, **({"grid": grid} if grid else {}),
         **({"seeds": seeds} if seeds else {})}
        for exp_id in selected
    ]
    return SweepSpec.from_dict({"name": args.name or "campaign", "targets": targets})


def _campaign_kwargs(args):
    return dict(
        cache=ResultCache(args.cache_dir) if args.cache_dir else ResultCache(),
        use_cache=not args.no_cache,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        inline=args.inline,
        echo=(lambda line: None) if args.quiet else print,
        telemetry=args.telemetry,
    )


def _cmd_list(args):
    print("campaign targets (sweep any listed parameter; * = seeded):")
    for entry in DEFAULT_REGISTRY.entries():
        parameters = entry.parameters()
        names = ", ".join(n for n in parameters if n != "seed") or "-"
        print(
            "%-4s %-24s %s\n     params: %s%s"
            % (
                entry.exp_id,
                entry.runner_name,
                entry.description,
                names,
                "  [*seeded]" if entry.seedable else "",
            )
        )
    return 0


def _cmd_run(args):
    try:
        spec = _build_spec(args)
    except SpecError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    out_dir = args.out or os.path.join("campaigns", spec.name)
    report = Campaign(spec, out_dir, **_campaign_kwargs(args)).run()
    return 0 if report.all_ok else 1


def _cmd_resume(args):
    try:
        report = Campaign.resume(args.dir, **_campaign_kwargs(args))
    except (FileNotFoundError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    return 0 if report.all_ok else 1


def _cmd_clean(args):
    status = 0
    for directory in args.dirs:
        store_manifest = os.path.join(directory, "manifest.json")
        if not os.path.exists(store_manifest):
            print("error: %s has no manifest.json; not a campaign dir, refusing to delete"
                  % directory, file=sys.stderr)
            status = 2
            continue
        shutil.rmtree(directory)
        print("removed %s" % directory)
    if args.cache:
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
        removed = cache.clear()
        print("cache %s: removed %d entr%s" % (
            cache.directory, removed, "y" if removed == 1 else "ies"))
    if not args.dirs and not args.cache:
        print("nothing to clean: name campaign dirs and/or pass --cache", file=sys.stderr)
        status = 2
    return status


def _add_exec_options(parser):
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes (default: cpu count, or $REPRO_CAMPAIGN_JOBS)")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-run wall-clock limit in seconds (default 900)")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts after a failed/hung run (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute everything; do not read or write the cache")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect telemetry per run (writes telemetry/*.jsonl "
                        "into the campaign dir; implies --no-cache semantics)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache location (default: $REPRO_CAMPAIGN_CACHE or %s)"
                        % default_cache_dir())
    parser.add_argument("--inline", action="store_true",
                        help="run serially in-process (debugging; no isolation)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress output")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel, cached, resumable sweeps over the experiment catalogue.",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list campaign targets and their sweepable parameters")

    run_parser = sub.add_parser("run", help="execute a sweep")
    run_parser.add_argument("which", nargs="*",
                            help="experiment ids or name fragments (see `list`)")
    run_parser.add_argument("--all", action="store_true", help="run every target")
    run_parser.add_argument("--spec", help="JSON sweep spec file (see repro.campaign.spec)")
    run_parser.add_argument("--seeds", help="comma-separated seed list, e.g. 1,2,3")
    run_parser.add_argument("--param", action="append", metavar="NAME=VALUE",
                            help="override a runner parameter (repeatable)")
    run_parser.add_argument("--name", help="campaign name (default: spec name or 'campaign')")
    run_parser.add_argument("--out", help="campaign directory (default campaigns/<name>)")
    _add_exec_options(run_parser)

    resume_parser = sub.add_parser("resume", help="finish an interrupted campaign")
    resume_parser.add_argument("dir", help="campaign directory containing manifest.json")
    _add_exec_options(resume_parser)

    clean_parser = sub.add_parser("clean", help="delete campaign dirs and/or the cache")
    clean_parser.add_argument("dirs", nargs="*", help="campaign directories to delete")
    clean_parser.add_argument("--cache", action="store_true", help="also clear the result cache")
    clean_parser.add_argument("--cache-dir", default=None, help="cache location to clear")
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "clean":
        return _cmd_clean(args)
    parser.print_help()
    return 0


if __name__ == "__main__":
    sys.exit(main())
