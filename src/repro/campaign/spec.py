"""Declarative sweep specifications.

A :class:`SweepSpec` is data: which experiments to run, which parameter
grid to sweep each one over, and which seeds to replay each grid point
under.  ``expand()`` turns it into the flat, deterministic list of
:class:`RunSpec` the orchestrator executes -- the same spec always
expands to the same runs in the same order, which is what makes
campaigns resumable and their caches addressable.

Specs load from JSON::

    {
      "name": "pfc-sweep",
      "targets": [
        {"experiment": "A2", "seeds": [1, 2, 3]},
        {"experiment": "E1",
         "grid": {"duration_ns": [2000000, 8000000],
                  "operations": [["send"], ["send", "read"]]},
         "seeds": [1, 2]},
        {"experiment": "X1", "ref": "mypkg.exp:run_custom"}
      ]
    }

``grid`` maps parameter name to the list of values to sweep (the
cartesian product over all parameters is taken, in declaration order).
``ref`` lets a spec target any importable ``module:function`` runner
that returns an :class:`~repro.experiments.common.ExperimentResult`;
without it the experiment id is resolved against the campaign registry.
"""

import hashlib
import itertools
import json


class SpecError(ValueError):
    """A sweep spec that cannot be expanded into runs."""


def canonical_params(params):
    """The canonical JSON encoding of a parameter dict (sorted keys)."""
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SpecError("parameters are not JSON-serializable: %s" % exc)


def params_digest(params):
    """A short stable digest of a parameter dict, used in run ids."""
    return hashlib.sha256(canonical_params(params).encode("utf-8")).hexdigest()[:8]


class RunSpec:
    """One fully-resolved unit of campaign work."""

    __slots__ = ("experiment", "ref", "params", "seed")

    def __init__(self, experiment, ref, params, seed):
        self.experiment = experiment
        self.ref = ref
        self.params = dict(params)
        self.seed = seed

    @property
    def run_id(self):
        """Deterministic, filesystem-safe, human-scannable identifier."""
        parts = [self.experiment]
        if self.params:
            parts.append("p" + params_digest(self.params))
        if self.seed is not None:
            parts.append("s%d" % self.seed)
        return "-".join(parts)

    def describe(self):
        """Dict form for manifests and cache entries."""
        return {
            "experiment": self.experiment,
            "ref": self.ref,
            "params": dict(self.params),
            "seed": self.seed,
        }

    def __repr__(self):
        return "RunSpec(%s)" % self.run_id


class SweepEntry:
    """One experiment x grid x seeds block of a spec."""

    __slots__ = ("experiment", "ref", "grid", "seeds")

    def __init__(self, experiment, ref=None, grid=None, seeds=None):
        self.experiment = experiment
        self.ref = ref
        self.grid = dict(grid or {})
        self.seeds = list(seeds) if seeds is not None else None

    def grid_points(self):
        """Cartesian product of the grid, in declaration order."""
        if not self.grid:
            return [{}]
        names = list(self.grid)
        for name, values in self.grid.items():
            if not isinstance(values, (list, tuple)):
                raise SpecError(
                    "%s: grid value for %r must be a list, got %r"
                    % (self.experiment, name, values)
                )
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[n] for n in names))
        ]

    def to_dict(self):
        data = {"experiment": self.experiment}
        if self.ref:
            data["ref"] = self.ref
        if self.grid:
            data["grid"] = {k: list(v) for k, v in self.grid.items()}
        if self.seeds is not None:
            data["seeds"] = list(self.seeds)
        return data


class SweepSpec:
    """A named list of :class:`SweepEntry` blocks."""

    def __init__(self, name, entries):
        self.name = name
        self.entries = list(entries)

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise SpecError("spec must be a JSON object, got %s" % type(data).__name__)
        raw_entries = data.get("targets")
        if not isinstance(raw_entries, list) or not raw_entries:
            raise SpecError("spec needs a non-empty 'targets' list")
        entries = []
        for raw in raw_entries:
            if not isinstance(raw, dict) or "experiment" not in raw:
                raise SpecError("each target needs an 'experiment' id: %r" % (raw,))
            unknown = set(raw) - {"experiment", "ref", "grid", "seeds"}
            if unknown:
                raise SpecError(
                    "target %r has unknown keys: %s"
                    % (raw["experiment"], ", ".join(sorted(unknown)))
                )
            entries.append(
                SweepEntry(
                    raw["experiment"],
                    ref=raw.get("ref"),
                    grid=raw.get("grid"),
                    seeds=raw.get("seeds"),
                )
            )
        return cls(data.get("name", "campaign"), entries)

    @classmethod
    def from_file(cls, path):
        with open(path) as handle:
            try:
                data = json.load(handle)
            except ValueError as exc:
                raise SpecError("%s: invalid JSON: %s" % (path, exc))
        return cls.from_dict(data)

    def to_dict(self):
        return {
            "name": self.name,
            "targets": [entry.to_dict() for entry in self.entries],
        }

    def expand(self, registry):
        """Flatten into an ordered list of :class:`RunSpec`.

        ``registry`` resolves experiment ids to catalogue entries and
        validates swept parameter names against the runner's signature.
        Seeds are dropped (with one run kept) for runners that take no
        ``seed`` argument.  Duplicate run ids are an error -- they would
        silently overwrite each other's artifacts.
        """
        runs = []
        seen = set()
        for entry in self.entries:
            ref = entry.ref
            seedable = True
            if ref is None:
                target = registry.get(entry.experiment)
                if target is None:
                    raise SpecError(
                        "unknown experiment %r (and no 'ref' given); "
                        "see `python -m repro.campaign list`" % entry.experiment
                    )
                ref = target.ref
                known = target.parameters()
                seedable = target.seedable
                bad = [name for name in entry.grid if name not in known or name == "seed"]
                if bad:
                    raise SpecError(
                        "%s: runner %s does not sweep parameter(s) %s (accepts: %s)"
                        % (
                            entry.experiment,
                            target.runner_name,
                            ", ".join(sorted(bad)),
                            ", ".join(sorted(known)) or "none",
                        )
                    )
            seeds = entry.seeds if (entry.seeds and seedable) else [None]
            for params in entry.grid_points():
                for seed in seeds:
                    run = RunSpec(entry.experiment, ref, params, seed)
                    if run.run_id in seen:
                        raise SpecError("duplicate run %s in spec" % run.run_id)
                    seen.add(run.run_id)
                    runs.append(run)
        return runs

    def __repr__(self):
        return "SweepSpec(%s, %d targets)" % (self.name, len(self.entries))
