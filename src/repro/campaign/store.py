"""On-disk campaign artifacts.

A campaign directory is self-describing::

    <out_dir>/
      manifest.json      # spec, code version, per-run status/timings/violations
      runs/<run_id>.jsonl  # one canonical JSON object per result row
      csv/<run_id>.csv     # the same rows for spreadsheet consumption
      telemetry/<run_id>-<i>.telemetry.jsonl  # with --telemetry: one per
                                              # fabric the run booted

The manifest is rewritten atomically after every run completion, so an
interrupted campaign (ctrl-C, OOM, power) can always be ``resume``\\ d:
runs recorded as ``ok`` are skipped, everything else re-executes (and
usually lands as a cache hit anyway).
"""

import csv
import json
import os
import tempfile

MANIFEST_NAME = "manifest.json"
RUNS_DIR = "runs"
CSV_DIR = "csv"
TELEMETRY_DIR = "telemetry"


def _atomic_write(path, text):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path) or ".", prefix=".tmp-", suffix=os.path.basename(path)
    )
    with os.fdopen(fd, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)


def rows_to_jsonl(rows):
    """Rows -> canonical JSONL text (stable key order assumed upstream)."""
    return "".join(
        json.dumps(row, separators=(",", ":"), allow_nan=False) + "\n" for row in rows
    )


class CampaignStore:
    """Reader/writer for one campaign directory."""

    def __init__(self, out_dir):
        self.out_dir = out_dir

    @property
    def manifest_path(self):
        return os.path.join(self.out_dir, MANIFEST_NAME)

    def run_jsonl_path(self, run_id):
        return os.path.join(self.out_dir, RUNS_DIR, run_id + ".jsonl")

    def run_csv_path(self, run_id):
        return os.path.join(self.out_dir, CSV_DIR, run_id + ".csv")

    def write_run_artifacts(self, run_id, schema, rows):
        """Write the JSONL + CSV artifacts for one finished run."""
        jsonl_path = self.run_jsonl_path(run_id)
        _atomic_write(jsonl_path, rows_to_jsonl(rows))
        csv_path = self.run_csv_path(run_id)
        os.makedirs(os.path.dirname(csv_path), exist_ok=True)
        with open(csv_path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=schema)
            writer.writeheader()
            for row in rows:
                writer.writerow(row)
        return jsonl_path, csv_path

    def write_telemetry_artifacts(self, run_id, session_record_lists):
        """Write one telemetry JSONL per collection session of a run.

        A run may boot several fabrics (each gets its own session), so
        artifacts are suffixed ``-<i>`` in boot order.  The format is
        the canonical ``repro-telemetry/1`` JSONL readable by ``python
        -m repro.telemetry summarize``.  Returns the written paths.
        """
        paths = []
        for index, records in enumerate(session_record_lists):
            path = os.path.join(
                self.out_dir, TELEMETRY_DIR,
                "%s-%d.telemetry.jsonl" % (run_id, index),
            )
            _atomic_write(path, "".join(
                json.dumps(record, sort_keys=True) + "\n" for record in records
            ))
            paths.append(path)
        return paths

    def read_run_rows(self, run_id):
        """Rows from a run's JSONL artifact (None when absent/corrupt)."""
        try:
            with open(self.run_jsonl_path(run_id)) as handle:
                return [json.loads(line) for line in handle if line.strip()]
        except (OSError, ValueError):
            return None

    def load_manifest(self):
        """The manifest dict, or None when this is a fresh directory."""
        try:
            with open(self.manifest_path) as handle:
                manifest = json.load(handle)
        except OSError:
            return None
        except ValueError:
            raise ValueError(
                "%s is not valid JSON -- refusing to treat %r as a campaign dir"
                % (self.manifest_path, self.out_dir)
            )
        if not isinstance(manifest, dict) or "runs" not in manifest:
            raise ValueError("%s does not look like a campaign manifest" % self.manifest_path)
        return manifest

    def save_manifest(self, manifest):
        _atomic_write(self.manifest_path, json.dumps(manifest, indent=2, sort_keys=False) + "\n")

    def __repr__(self):
        return "CampaignStore(%r)" % self.out_dir
