"""Content-addressed result cache.

A finished run's rows are pure functions of (code version, runner,
parameters, seed): the simulator is deterministic by construction (see
``tests/test_determinism.py``), so re-running an unchanged experiment
is pure waste.  The cache keys each result on exactly those four
inputs:

* **code version** -- a digest over every ``repro`` source file, so any
  edit to the simulator, the experiments, or the campaign machinery
  itself invalidates the whole cache (cheap insurance against stale
  science);
* **runner reference** -- the ``module:attr`` the run resolves, plus a
  digest of that module's source when it lives outside ``repro`` (a
  test-registered target edits should invalidate too);
* **parameters** -- canonical JSON, sorted keys;
* **seed** -- or ``None`` for unseeded analytic runners.

Entries are JSON files under ``<cache_dir>/<k[:2]>/<k>.json``, written
atomically; a corrupt or unreadable entry is treated as a miss.  The
default location is ``.campaign-cache/`` next to the current working
directory, overridable with ``$REPRO_CAMPAIGN_CACHE``.
"""

import hashlib
import importlib.util
import json
import os
import tempfile

from repro.campaign.spec import canonical_params

DEFAULT_CACHE_ENV = "REPRO_CAMPAIGN_CACHE"
DEFAULT_CACHE_DIR = ".campaign-cache"

_code_version_cache = None


def default_cache_dir():
    return os.environ.get(DEFAULT_CACHE_ENV) or DEFAULT_CACHE_DIR


def code_version():
    """Digest of every ``repro`` source file (cached per process)."""
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, subdirs, files in sorted(os.walk(root)):
            subdirs.sort()
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                digest.update(os.path.relpath(path, root).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(hashlib.sha256(handle.read()).digest())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _ref_digest(ref):
    """Source digest for targets living outside the ``repro`` package."""
    module_name = ref.partition(":")[0]
    if module_name == "repro" or module_name.startswith("repro."):
        return ""  # already covered by code_version()
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        return ""
    if spec is None or not spec.origin or not os.path.isfile(spec.origin):
        return ""
    with open(spec.origin, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()[:16]


def run_key(run):
    """The cache key (hex digest) for a :class:`RunSpec`."""
    material = json.dumps(
        {
            "code": code_version(),
            "ref": run.ref,
            "ref_digest": _ref_digest(run.ref),
            "params": json.loads(canonical_params(run.params)),
            "seed": run.seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Get/put of finished-run payloads keyed by :func:`run_key`."""

    def __init__(self, directory=None):
        self.directory = directory or default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return os.path.join(self.directory, key[:2], key + ".json")

    def get(self, key):
        """The cached payload dict, or None on a miss."""
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or "rows" not in payload:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key, payload):
        """Atomically store a payload; failures are non-fatal (no cache
        beats a broken campaign)."""
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            return False
        return True

    def entry_count(self):
        count = 0
        for _directory, _subdirs, files in os.walk(self.directory):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def clear(self):
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for directory, _subdirs, files in os.walk(self.directory, topdown=False):
            for name in files:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(directory, name))
                        removed += 1
                    except OSError:
                        pass
            try:
                os.rmdir(directory)
            except OSError:
                pass
        return removed

    def __repr__(self):
        return "ResultCache(%s, hits=%d, misses=%d)" % (
            self.directory, self.hits, self.misses,
        )
