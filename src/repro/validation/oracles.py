"""Whole-run and metamorphic oracles.

Every oracle returns a list of violation dicts
``{"oracle", "subject", "detail"}`` -- empty means the run passed.
:func:`judge_run` applies the single-run oracles (it is called by
``run_scenario`` itself); the metamorphic checks re-run transformed
scenarios and live in :func:`metamorphic_checks`.

Tolerance rationale (see docs/validation.md for the full discussion):

* Conservation oracles are exact -- a single lost byte is a bug.
* Goodput bands are deliberately asymmetric.  The *lower* anchor is the
  PFC-uniform rate (fair share of the most contended link), which is
  provably <= every flow's max-min share; PFC head-of-line coupling and
  closed-loop pipelining can legitimately hold a flow below its max-min
  share, but a flow pinned *far below the uniform rate* means the
  transport or fabric is broken (the go-back-0 livelock reads ~0 here).
  The *upper* anchor is the max-min share with generous headroom (a flow
  may exceed its fair share while a competitor is briefly paused), plus
  a hard physical cap: no flow can beat its bottleneck link.
* Liveness bounds (pause resolves, queues drain) are strict in benign
  scenarios -- nothing in a fault-free fabric may wedge.
"""

from repro.flows.maxmin import max_min_allocation  # noqa: F401  (re-export for tests)
from repro.validation.scenarios import LINK_GBPS_MENU


class Tolerances:
    """Band parameters for the differential oracles.

    Values are tuned empirically against the seed sweep (the harness's
    ``--seeds 200`` must be violation-free on main) while staying tight
    enough that the mutation checks fail loudly; see docs/validation.md.
    """

    #: measured >= flow_lo * uniform rate (benign scenarios).  A flow
    #: can sit well below even the uniform rate when its sender is
    #: window-limited (pipeline depth x message size < bandwidth-delay
    #: product at 100G) -- the floor only catches flows pinned near zero.
    flow_lo = 0.30
    #: measured <= flow_hi * max-min share.  Generous: when a
    #: competitor on the bottleneck is window-limited, the remaining
    #: flows legitimately absorb its unused share (the hard cap below
    #: still enforces physics).
    flow_hi = 1.80
    #: measured <= cap_slack * bottleneck capacity (hard physical bound).
    cap_slack = 1.02
    #: sum(measured) >= agg_lo * sum(max-min shares).
    agg_lo = 0.55
    #: lossy scenarios: measured >= progress_lo * uniform rate only
    #: (go-back-N keeps moving through 1/256 loss; go-back-0 reads ~0).
    progress_lo = 0.02
    #: doubling every link rate scales each flow's goodput into this band.
    scale_lo = 1.45
    scale_hi = 2.60
    #: permuting host ids leaves the sorted rate vector inside this band.
    perm_lo = 0.80
    perm_hi = 1.25
    #: adding a link-disjoint flow keeps each old flow above this
    #: fraction of its baseline rate.
    victim_keep = 0.70


def judge_run(outcome, tolerances=Tolerances):
    """All single-run oracles against one :class:`RunOutcome`."""
    violations = []
    violations += oracle_conservation(outcome)
    violations += oracle_no_unexplained_drops(outcome)
    violations += oracle_drain(outcome)
    if outcome.scenario.kind == "deadlock":
        violations += oracle_healthy_progress(outcome)
    else:
        violations += oracle_goodput_band(outcome, tolerances)
    return violations


def _violation(oracle, subject, detail):
    return {"oracle": oracle, "subject": subject, "detail": detail}


def oracle_conservation(outcome):
    """Conservation auditors must be clean in every run; liveness
    auditors must be clean in benign (non-deadlock) runs."""
    violations = []
    if outcome.conservation_violations:
        violations.append(
            _violation(
                "conservation",
                "auditors",
                "%d conservation violation(s): %s"
                % (outcome.conservation_violations, outcome.audit_summary),
            )
        )
    if outcome.scenario.kind != "deadlock" and outcome.liveness_violations:
        violations.append(
            _violation(
                "liveness",
                "auditors",
                "%d liveness violation(s) in a fault-free run: %s"
                % (outcome.liveness_violations, outcome.audit_summary),
            )
        )
    return violations


def oracle_no_unexplained_drops(outcome):
    """A benign lossless fabric drops nothing and never floods.

    Allowed exceptions: the deliberate ingress filter in lossy
    scenarios, and the lossless-ARP drops (plus floods of lossy-class
    retransmissions) that *are* the fix under test in deadlock runs.
    """
    allowed = set()
    if outcome.scenario.lossy:
        allowed.add("filter")
    if outcome.scenario.kind == "deadlock":
        allowed.update(("incomplete-arp-lossless", "arp-miss"))
    unexplained = outcome.drops_excluding(*allowed)
    violations = []
    if unexplained:
        detail = ", ".join(
            "%s=%d" % (reason, count)
            for reason, count in sorted(outcome.drops.items())
            if count and reason not in allowed
        )
        violations.append(
            _violation("drops", "switches", "unexplained drops: %s" % detail)
        )
    if outcome.scenario.kind != "deadlock" and outcome.flood_copies:
        violations.append(
            _violation(
                "drops",
                "switches",
                "%d flooded copies in a fully-resolved fabric" % outcome.flood_copies,
            )
        )
    return violations


def oracle_drain(outcome):
    """After senders stop, every posted message completes and (benign
    runs) every queue empties.  A fabric that cannot drain is wedged."""
    violations = []
    if not outcome.drained:
        stuck = [
            "%s->%s %d/%d" % (f.src, f.dst, f.completed, f.posted)
            for f in outcome.flows
            if not f.dead_dst and f.completed != f.posted
        ]
        violations.append(
            _violation(
                "drain",
                "senders",
                "posted messages never completed within %dms: %s"
                % (outcome.scenario.drain_ms, "; ".join(stuck)),
            )
        )
    if not outcome.queues_empty:
        violations.append(
            _violation("drain", "fabric", "queues not empty after drain")
        )
    return violations


def oracle_goodput_band(outcome, tolerances=Tolerances):
    """The differential core: measured per-flow goodput vs the traced
    max-min/PFC-uniform band, plus the hard bottleneck cap."""
    violations = []
    lossy = outcome.scenario.lossy
    lo_frac = tolerances.progress_lo if lossy else tolerances.flow_lo
    total_measured = 0.0
    total_share = 0.0
    for flow in outcome.flows:
        subject = "flow %s->%s" % (flow.src, flow.dst)
        total_measured += flow.measured_bps
        total_share += flow.share_bps
        floor = lo_frac * flow.uniform_bps
        if flow.measured_bps < floor:
            violations.append(
                _violation(
                    "goodput-low",
                    subject,
                    "measured %.3f Gb/s < %.2f x uniform %.3f Gb/s"
                    % (flow.measured_bps / 1e9, lo_frac, flow.uniform_bps / 1e9),
                )
            )
        cap = tolerances.cap_slack * flow.bottleneck_bps
        if flow.measured_bps > cap:
            violations.append(
                _violation(
                    "goodput-high",
                    subject,
                    "measured %.3f Gb/s beats the %.3f Gb/s bottleneck link"
                    % (flow.measured_bps / 1e9, flow.bottleneck_bps / 1e9),
                )
            )
        elif not lossy and flow.measured_bps > tolerances.flow_hi * flow.share_bps:
            violations.append(
                _violation(
                    "goodput-high",
                    subject,
                    "measured %.3f Gb/s > %.2f x max-min share %.3f Gb/s"
                    % (flow.measured_bps / 1e9, tolerances.flow_hi,
                       flow.share_bps / 1e9),
                )
            )
    if not lossy and total_measured < tolerances.agg_lo * total_share:
        violations.append(
            _violation(
                "goodput-low",
                "aggregate",
                "aggregate %.3f Gb/s < %.2f x max-min total %.3f Gb/s"
                % (total_measured / 1e9, tolerances.agg_lo, total_share / 1e9),
            )
        )
    return violations


def oracle_healthy_progress(outcome):
    """Deadlock probe: flows between live hosts must keep completing.
    Flooding-induced deadlock starves them (the figure 4 outcome)."""
    violations = []
    for flow in outcome.flows:
        if flow.dead_dst:
            continue
        if flow.measured_bps <= 0 and flow.completed == 0:
            violations.append(
                _violation(
                    "healthy-progress",
                    "flow %s->%s" % (flow.src, flow.dst),
                    "no progress between live hosts (deadlock signature)",
                )
            )
    return violations


# -- metamorphic relations ----------------------------------------------------


def metamorphic_checks(scenario, base_outcome, run_fn, tolerances=Tolerances):
    """Relations that compare the base run against a transformed re-run.

    Each seed runs exactly one relation (rotation by ``seed % 3``) to
    keep sweep cost linear in seeds; lossy and deadlock scenarios are
    exempt (loss timing is not scale- or permutation-invariant).
    """
    if scenario.kind == "deadlock" or scenario.lossy:
        return []
    which = scenario.seed % 3
    if which == 0:
        return check_scaling(scenario, base_outcome, run_fn, tolerances)
    if which == 1 and scenario.kind == "single":
        return check_permutation(scenario, base_outcome, run_fn, tolerances)
    if which == 2 and scenario.kind == "single":
        return check_no_victim(scenario, base_outcome, run_fn, tolerances)
    return []


def check_scaling(scenario, base_outcome, run_fn, tolerances=Tolerances):
    """Doubling every link rate must (roughly) double every flow's rate.

    Only meaningful while the senders stay link-limited: past the top of
    the deployed rate menu the closed-loop window (pipeline depth x
    message size) caps goodput regardless of line rate, so the relation
    is checked only when the doubled rate stays within the menu's reach.
    """
    if scenario.link_gbps * 2 > max(LINK_GBPS_MENU):
        return []
    scaled = run_fn(scenario.replace(link_gbps=scenario.link_gbps * 2))
    violations = list(scaled.violations)
    for base_flow, scaled_flow in zip(base_outcome.flows, scaled.flows):
        if base_flow.measured_bps <= 0:
            continue
        ratio = scaled_flow.measured_bps / base_flow.measured_bps
        if not tolerances.scale_lo <= ratio <= tolerances.scale_hi:
            violations.append(
                _violation(
                    "metamorphic-scaling",
                    "flow %s->%s" % (base_flow.src, base_flow.dst),
                    "2x link rate scaled goodput by %.2fx (band %.2f..%.2f)"
                    % (ratio, tolerances.scale_lo, tolerances.scale_hi),
                )
            )
    return violations


def check_permutation(scenario, base_outcome, run_fn, tolerances=Tolerances):
    """Rotating host ids on a symmetric single-switch fabric must leave
    the sorted per-flow rate vector (near) unchanged."""
    n_hosts = scenario.host_count()
    rotated_flows = [
        ((src + 1) % n_hosts, (dst + 1) % n_hosts, kb)
        for src, dst, kb in scenario.flows
    ]
    rotated = run_fn(scenario.replace(flows=[list(f) for f in rotated_flows]))
    violations = list(rotated.violations)
    base_rates = sorted(f.measured_bps for f in base_outcome.flows)
    rot_rates = sorted(f.measured_bps for f in rotated.flows)
    for base_bps, rot_bps in zip(base_rates, rot_rates):
        if base_bps <= 0:
            continue
        ratio = rot_bps / base_bps
        if not tolerances.perm_lo <= ratio <= tolerances.perm_hi:
            violations.append(
                _violation(
                    "metamorphic-permutation",
                    "sorted rates",
                    "host rotation changed a rate by %.2fx (band %.2f..%.2f)"
                    % (ratio, tolerances.perm_lo, tolerances.perm_hi),
                )
            )
    return violations


def check_no_victim(scenario, base_outcome, run_fn, tolerances=Tolerances):
    """Adding a flow on otherwise-unused hosts (link-disjoint on a
    single switch) must not starve the existing flows."""
    n_hosts = scenario.host_count()
    used = {h for src, dst, _kb in scenario.flows for h in (src, dst)}
    spare = [h for h in range(n_hosts) if h not in used]
    if len(spare) < 2:
        return []
    extra = (spare[0], spare[1], 128)
    augmented = run_fn(
        scenario.replace(flows=[list(f) for f in scenario.flows] + [list(extra)])
    )
    violations = list(augmented.violations)
    for base_flow, aug_flow in zip(base_outcome.flows, augmented.flows):
        if base_flow.measured_bps <= 0:
            continue
        keep = aug_flow.measured_bps / base_flow.measured_bps
        if keep < tolerances.victim_keep:
            violations.append(
                _violation(
                    "no-victim",
                    "flow %s->%s" % (base_flow.src, base_flow.dst),
                    "disjoint flow %s->%s cut goodput to %.2fx of baseline"
                    % (extra[0], extra[1], keep),
                )
            )
    return violations
