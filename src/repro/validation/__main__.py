"""``python -m repro.validation`` -- the differential validation CLI.

Subcommands::

    sweep           run N seeded scenarios (default; also plain --seeds N)
    flowsim         packet engine vs flow-level simulator, same scenarios
    mutation-check  prove the oracles flag re-introduced paper bugs
    replay          re-run a recorded JSONL repro artifact

Exit status is non-zero when any oracle violates (sweep/replay/flowsim)
or any mutation goes uncaught / any baseline is unclean (mutation-check).
"""

import argparse
import sys

from repro.validation import flowsim_lane
from repro.validation.flowsim_lane import run_flowsim_differential_sweep
from repro.validation.harness import (
    DEFAULT_ARTIFACT_DIR,
    MUTATIONS,
    mutation_check,
    replay_artifact,
    run_validation_sweep,
)


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation",
        description="Differential/metamorphic validation of the packet simulator",
    )
    sub = parser.add_subparsers(dest="command")

    sweep = sub.add_parser("sweep", help="run N seeded random scenarios")
    _sweep_args(sweep)
    # `python -m repro.validation --seeds 200` (no subcommand) sweeps.
    _sweep_args(parser)

    flow = sub.add_parser(
        "flowsim", help="packet engine vs flow-level simulator differential"
    )
    flow.add_argument("--seeds", type=int, default=25)
    flow.add_argument("--start", type=int, default=0)
    flow.add_argument("--fail-fast", action="store_true")
    flow.add_argument("--artifacts", default=flowsim_lane.DEFAULT_ARTIFACT_DIR)
    flow.add_argument("--jsonl", default=None, help="write sweep rows here")

    mut = sub.add_parser("mutation-check", help="sensitivity: catch known bugs")
    mut.add_argument("--which", choices=sorted(MUTATIONS), default=None)
    mut.add_argument("--artifacts", default=DEFAULT_ARTIFACT_DIR)
    mut.add_argument("--no-shrink", action="store_true")

    rep = sub.add_parser("replay", help="re-run a JSONL repro artifact")
    rep.add_argument("artifact")
    rep.add_argument(
        "--original",
        action="store_true",
        help="replay the original scenario instead of the minimized one",
    )
    return parser


def _sweep_args(parser):
    parser.add_argument("--seeds", type=int, default=25)
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument("--no-metamorphic", action="store_true")
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument("--fail-fast", action="store_true")
    parser.add_argument("--artifacts", default=DEFAULT_ARTIFACT_DIR)
    parser.add_argument("--jsonl", default=None, help="write sweep rows here")
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="collect telemetry for every swept scenario; writes one "
        "sweep-<i>.telemetry.jsonl per fabric into DIR",
    )


def _cmd_sweep(args):
    def progress(report, row):
        status = "ok" if report.clean else "VIOLATION(%s)" % row["oracles"]
        print("  seed %-5d %-40s %s" % (report.scenario.seed,
                                        report.scenario.describe(), status))
        sys.stdout.flush()

    print(
        "validation sweep: %d scenario(s) from seed %d%s"
        % (args.seeds, args.start, "" if args.no_metamorphic else " (+metamorphic)")
    )
    if args.telemetry:
        from repro import telemetry

        telemetry.arm(telemetry.TelemetryConfig(label="validation-sweep"))
    try:
        result = run_validation_sweep(
            seeds=args.seeds,
            start=args.start,
            metamorphic=not args.no_metamorphic,
            shrink=not args.no_shrink,
            artifact_dir=args.artifacts,
            fail_fast=args.fail_fast,
            progress=progress,
        )
    finally:
        if args.telemetry:
            telemetry.disarm()
    if args.telemetry:
        sessions = telemetry.drain()
        paths = telemetry.write_artifacts(sessions, args.telemetry, "sweep")
        print(
            "telemetry: %d artifact(s), %d incident(s) -> %s"
            % (len(paths), telemetry.incident_count(sessions), args.telemetry)
        )
    if args.jsonl:
        result.to_jsonl(args.jsonl)
        print("rows -> %s" % args.jsonl)
    dirty = [row for row in result.rows() if row["violations"]]
    total = len(result.rows())
    if dirty:
        print("%d/%d scenario(s) violated an oracle:" % (len(dirty), total))
        for row in dirty:
            print(
                "  seed %d: %s%s"
                % (
                    row["seed"],
                    row["oracles"],
                    " -> %s" % row["artifact"] if row.get("artifact") else "",
                )
            )
        return 1
    print("%d/%d scenarios: zero oracle violations" % (total, total))
    return 0


def _cmd_flowsim(args):
    def progress(report, row):
        if report.skipped:
            status = "skipped (deadlock kind)"
        elif report.clean:
            status = "ok  model_err=%s band=[%s, %s]" % (
                row["max_model_rel_err"],
                row["min_band_ratio"],
                row["max_band_ratio"],
            )
        else:
            status = "VIOLATION(%s)" % row["oracles"]
        print("  seed %-5d %-40s %s" % (report.scenario.seed,
                                        report.scenario.describe(), status))
        sys.stdout.flush()

    print(
        "flowsim differential sweep: %d scenario(s) from seed %d"
        % (args.seeds, args.start)
    )
    result = run_flowsim_differential_sweep(
        seeds=args.seeds,
        start=args.start,
        artifact_dir=args.artifacts,
        fail_fast=args.fail_fast,
        progress=progress,
    )
    if args.jsonl:
        result.to_jsonl(args.jsonl)
        print("rows -> %s" % args.jsonl)
    dirty = [row for row in result.rows() if row["violations"]]
    total = len(result.rows())
    if dirty:
        print("%d/%d scenario(s) violated a flowsim oracle:" % (len(dirty), total))
        for row in dirty:
            print(
                "  seed %d: %s%s"
                % (
                    row["seed"],
                    row["oracles"],
                    " -> %s" % row["artifact"] if row.get("artifact") else "",
                )
            )
        return 1
    print("%d/%d scenarios: packet and flowsim tiers agree" % (total, total))
    return 0


def _cmd_mutation_check(args):
    results = mutation_check(
        which=args.which, artifact_dir=args.artifacts, shrink=not args.no_shrink
    )
    failed = False
    for name, info in sorted(results.items()):
        caught = info["caught"] and info["baseline_clean"]
        failed = failed or not caught
        print("mutation %-12s %s" % (name, "CAUGHT" if caught else "MISSED"))
        print("  %s" % info["description"])
        if not info["baseline_clean"]:
            print("  baseline probe was NOT clean -- probe or tolerances broken")
        if info["caught"]:
            print("  flagged by: %s" % ", ".join(info["oracles"]))
            if info["artifact"]:
                print(
                    "  repro artifact (%d flow(s) after shrink): %s"
                    % (info["minimized_flows"], info["artifact"])
                )
    return 1 if failed else 0


def _cmd_replay(args):
    report = replay_artifact(args.artifact, prefer_minimized=not args.original)
    print("replayed %s" % report.scenario.describe())
    if report.violations:
        print("%d violation(s):" % len(report.violations))
        for violation in report.violations:
            print(
                "  [%s] %s: %s"
                % (violation["oracle"], violation["subject"], violation["detail"])
            )
        return 1
    print("clean run (violation did not reproduce)")
    return 0


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "flowsim":
        return _cmd_flowsim(args)
    if args.command == "mutation-check":
        return _cmd_mutation_check(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
