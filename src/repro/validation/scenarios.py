"""Seeded random validation scenarios.

One integer seed fully determines a scenario: a small Clos slice (one
ToR, a two-tier leaf/ToR fabric, or a three-tier podset pair) with a
line rate drawn from the deployed menu, an ECN on/off toggle, an
optional deterministic ingress loss process (the section 4.1 testbed's
1/256 IP-ID filter), and a workload matrix of closed-loop RDMA flows.

The same generator serves two masters:

* a standalone deterministic enumerator -- ``generate_scenario(seed)``
  for the ``python -m repro.validation`` sweep and the campaign target;
* a Hypothesis strategy -- ``scenario_strategy()`` maps drawn integers
  through the same function, so shrinking a hypothesis failure shrinks
  the seed, and any seed it finds replays verbatim in the CLI.

Scenarios are plain data (``to_dict``/``from_dict`` round-trip through
JSON), which is what makes repro artifacts replayable.
"""

from repro.sim.rng import SeededRng

#: Line-rate menu (Gb/s): the NIC generations the paper's fleet mixes.
LINK_GBPS_MENU = (10, 25, 40, 100)

#: Message sizes (KiB).  Multiples of the 1 KiB MTU payload, so packet
#: counts are exact and goodput accounting has no partial-packet tail.
MESSAGE_KB_MENU = (64, 128, 256)

#: At most this many flows converge on one receiver.  Deep incast puts
#: the fabric into PFC head-of-line regimes where per-flow rates are
#: dominated by pause coupling rather than fair sharing; that regime is
#: covered by the dedicated pathology experiments (E1/E2/E5), not by
#: the fair-share differential oracle.
MAX_FLOWS_PER_DST = 2

MAX_FLOWS = 6

_KIND_MENU = ("single", "single", "two_tier", "two_tier", "clos")


class ValidationScenario:
    """A fully specified randomized-fabric run.  Plain data."""

    def __init__(
        self,
        seed,
        kind,
        dims,
        link_gbps,
        flows,
        ecn=False,
        lossy=False,
        warmup_us=150,
        measure_us=400,
        drain_ms=20,
        dead_hosts=(),
    ):
        self.seed = seed
        self.kind = kind
        self.dims = dict(dims)
        self.link_gbps = link_gbps
        self.flows = [tuple(flow) for flow in flows]
        self.ecn = ecn
        self.lossy = lossy
        self.warmup_us = warmup_us
        self.measure_us = measure_us
        self.drain_ms = drain_ms
        self.dead_hosts = tuple(dead_hosts)

    # -- serialization (JSON-stable: the repro-artifact format) -------------

    def to_dict(self):
        data = {
            "seed": self.seed,
            "kind": self.kind,
            "dims": dict(self.dims),
            "link_gbps": self.link_gbps,
            "flows": [list(flow) for flow in self.flows],
            "ecn": self.ecn,
            "lossy": self.lossy,
            "warmup_us": self.warmup_us,
            "measure_us": self.measure_us,
            "drain_ms": self.drain_ms,
        }
        if self.dead_hosts:
            data["dead_hosts"] = list(self.dead_hosts)
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(
            seed=data["seed"],
            kind=data["kind"],
            dims=data["dims"],
            link_gbps=data["link_gbps"],
            flows=[tuple(flow) for flow in data["flows"]],
            ecn=data.get("ecn", False),
            lossy=data.get("lossy", False),
            warmup_us=data.get("warmup_us", 150),
            measure_us=data.get("measure_us", 400),
            drain_ms=data.get("drain_ms", 20),
            dead_hosts=data.get("dead_hosts", ()),
        )

    def replace(self, **overrides):
        """A copy with some fields overridden (the shrinker's workhorse)."""
        data = self.to_dict()
        data.setdefault("dead_hosts", list(self.dead_hosts))
        data.update(overrides)
        return ValidationScenario.from_dict(data)

    # -- derived ------------------------------------------------------------

    def host_count(self):
        return host_count(self.kind, self.dims)

    def describe(self):
        return "seed=%d %s%r %dG %d flow(s)%s%s" % (
            self.seed,
            self.kind,
            tuple(self.dims.values()),
            self.link_gbps,
            len(self.flows),
            " ecn" if self.ecn else "",
            " lossy" if self.lossy else "",
        )

    def __repr__(self):
        return "ValidationScenario(%s)" % self.describe()

    def __eq__(self, other):
        return (
            isinstance(other, ValidationScenario)
            and self.to_dict() == other.to_dict()
        )


def host_count(kind, dims):
    if kind == "single":
        return dims["n_hosts"]
    if kind == "two_tier":
        return dims["n_tors"] * dims["hosts_per_tor"]
    if kind == "clos":
        return dims["n_podsets"] * dims["tors_per_podset"] * dims["hosts_per_tor"]
    if kind == "deadlock":
        return 7  # figure 4's fixed cast: S1..S7
    raise ValueError("unknown scenario kind: %r" % (kind,))


def generate_scenario(seed):
    """The deterministic seed -> scenario map.

    Draws only from :class:`SeededRng` (never from ``hash()`` or global
    state), so a seed means the same scenario on every interpreter and
    every ``PYTHONHASHSEED``.
    """
    rng = SeededRng(seed, "validation/scenario")
    kind = rng.choice(_KIND_MENU)
    if kind == "single":
        dims = {"n_hosts": rng.randint(2, 6)}
    elif kind == "two_tier":
        dims = {
            "n_tors": rng.randint(2, 3),
            "hosts_per_tor": rng.randint(2, 3),
            "n_leaves": rng.randint(1, 3),
        }
    else:
        leaves = rng.randint(1, 2)
        dims = {
            "n_podsets": 2,
            "tors_per_podset": rng.randint(1, 2),
            "hosts_per_tor": rng.randint(1, 2),
            "leaves_per_podset": leaves,
            "n_spines": leaves * rng.randint(1, 2),
        }
    n_hosts = host_count(kind, dims)
    lossy = rng.random() < 0.15
    flows = _draw_flows(rng, n_hosts, lossy)
    return ValidationScenario(
        seed=seed,
        kind=kind,
        dims=dims,
        link_gbps=rng.choice(LINK_GBPS_MENU),
        flows=flows,
        ecn=rng.random() < 0.3,
        lossy=lossy,
        warmup_us=150,
        # Loss recovery stalls flows for RTO stretches (500 us default),
        # so lossy runs need a window that averages over several of them.
        measure_us=2500 if lossy else rng.randint(400, 700),
        drain_ms=20,
    )


def _draw_flows(rng, n_hosts, lossy):
    # Lossy scenarios keep messages small: go-back-N legitimately slows
    # to a crawl recovering big messages through 1/256 loss, and the
    # drain oracle's budget must stay bounded.
    menu = MESSAGE_KB_MENU[:1] if lossy else MESSAGE_KB_MENU
    n_flows = rng.randint(1, min(MAX_FLOWS, max(1, n_hosts)))
    flows = []
    dst_load = {}
    for _ in range(n_flows):
        for _attempt in range(8):
            src = rng.randint(0, n_hosts - 1)
            dst = rng.randint(0, n_hosts - 1)
            if src == dst:
                continue
            if dst_load.get(dst, 0) >= MAX_FLOWS_PER_DST:
                continue
            dst_load[dst] = dst_load.get(dst, 0) + 1
            flows.append((src, dst, rng.choice(menu)))
            break
    if not flows:
        flows.append((0, 1, MESSAGE_KB_MENU[0]))
    return flows


def scenario_strategy(max_seed=10**6):
    """The generator as a Hypothesis strategy (lazy import: hypothesis
    is a test-only dependency)."""
    from hypothesis import strategies as st

    return st.integers(min_value=0, max_value=max_seed).map(generate_scenario)


def deadlock_probe_scenario():
    """The figure 4 deadlock testbed as a fixed scenario.

    Flows are named by host (the quad topology's cast is a dict, not a
    list); S3 and S2 are dead with live ARP entries, so their traffic is
    flooded unless the lossless-ARP drop is active.  Used by the
    ``no-arp-drop`` mutation check; the shrinker can still drop flows.
    """
    return ValidationScenario(
        seed=0,
        kind="deadlock",
        dims={},
        link_gbps=40,
        flows=[
            ("S1", "S3", 1024),
            ("S6", "S3", 1024),
            ("S1", "S5", 1024),
            ("S7", "S5", 1024),
            ("S4", "S2", 1024),
        ],
        warmup_us=500,
        measure_us=7500,
        drain_ms=8,
        dead_hosts=("S3", "S2"),
    )


def livelock_probe_scenario():
    """A lossy single-switch scenario with messages large enough that
    go-back-0 recovery can never complete one (the section 4.1
    livelock): 1 MiB = 1024 packets against a deterministic 1/256 drop.
    Go-back-N sails through it; the ``go-back-0`` mutation starves.
    """
    return ValidationScenario(
        seed=0,
        kind="single",
        dims={"n_hosts": 2},
        link_gbps=40,
        flows=[(0, 1, 1024)],
        lossy=True,
        warmup_us=200,
        measure_us=2500,
        drain_ms=10,
    )
