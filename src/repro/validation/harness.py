"""Sweep driver, scenario shrinker, repro artifacts, mutation checks.

The harness is what turns the oracles into a usable subsystem:

* :func:`validate_seed` -- one seed end to end (run + metamorphic).
* :func:`run_validation_sweep` -- N seeds as an
  :class:`~repro.experiments.common.ExperimentResult` (catalog entry
  ``V1``, so campaigns parallelize/cache/resume sweeps like any other
  experiment).
* :func:`shrink_scenario` -- greedy minimization of a failing scenario:
  drop flows, shrink messages, shrink the fabric, halve the window --
  keeping each step only if the failure survives.
* repro artifacts -- JSONL files carrying the original scenario, its
  violations, and the minimized scenario; :func:`replay_artifact` loads
  and re-runs one.
* :func:`mutation_check` -- sensitivity proof: re-introduce a paper bug
  (go-back-0 recovery, disabled lossless-ARP drop) and require the
  oracles to flag it, with a minimized artifact as the receipt.
"""

import json
import os

from repro.experiments.common import ExperimentResult
from repro.validation.differential import run_scenario
from repro.validation.oracles import metamorphic_checks
from repro.validation.scenarios import (
    ValidationScenario,
    deadlock_probe_scenario,
    generate_scenario,
    livelock_probe_scenario,
)

DEFAULT_ARTIFACT_DIR = os.path.join("artifacts", "validation")

#: mutation name -> (probe scenario factory, description).
MUTATIONS = {
    "go-back-0": (
        livelock_probe_scenario,
        "revert go-back-N loss recovery to the vendor go-back-0 "
        "(section 4.1: livelock under deterministic 1/256 loss)",
    ),
    "no-arp-drop": (
        deadlock_probe_scenario,
        "disable the lossless-ARP drop deadlock fix "
        "(section 4.2: flooding builds the figure 4 cyclic dependency)",
    ),
}


class SeedReport:
    """One seed's full verdict: base run plus metamorphic re-runs."""

    def __init__(self, scenario, outcome, violations):
        self.scenario = scenario
        self.outcome = outcome
        self.violations = violations

    @property
    def clean(self):
        return not self.violations


def validate_seed(seed, metamorphic=True, tolerances=None):
    """Run one generated scenario through every applicable oracle."""
    scenario = generate_scenario(seed)
    return validate_scenario(scenario, metamorphic=metamorphic, tolerances=tolerances)


def validate_scenario(scenario, metamorphic=True, mutation=None, tolerances=None):
    kwargs = {} if tolerances is None else {"tolerances": tolerances}
    outcome = run_scenario(scenario, mutation=mutation, tolerances=tolerances)
    violations = list(outcome.violations)
    if metamorphic and mutation is None:
        violations += metamorphic_checks(
            scenario,
            outcome,
            lambda transformed: run_scenario(
                transformed, mutation=mutation, tolerances=tolerances
            ),
            **kwargs
        )
    return SeedReport(scenario, outcome, violations)


# -- shrinking ----------------------------------------------------------------


def shrink_scenario(scenario, still_fails, max_runs=40):
    """Greedy minimization: apply one reduction at a time, keep it only
    if ``still_fails(candidate)`` -- re-running the full check -- stays
    true.  Budgeted to ``max_runs`` re-runs; returns the smallest
    failing scenario found.
    """
    budget = [max_runs]

    def attempt(candidate):
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return still_fails(candidate)
        except Exception:
            # A reduction that crashes the run is not a valid repro.
            return False

    current = scenario
    progress = True
    while progress and budget[0] > 0:
        progress = False
        # 1. Drop flows one at a time (fewest flows first wins).
        if len(current.flows) > 1:
            for index in range(len(current.flows)):
                flows = [list(f) for i, f in enumerate(current.flows) if i != index]
                candidate = current.replace(flows=flows)
                if attempt(candidate):
                    current = candidate
                    progress = True
                    break
            if progress:
                continue
        # 2. Shrink message sizes.
        smaller = [
            [src, dst, max(64, kb // 2)] for src, dst, kb in current.flows
        ]
        if smaller != [list(f) for f in current.flows]:
            candidate = current.replace(flows=smaller)
            if attempt(candidate):
                current = candidate
                progress = True
                continue
        # 3. Shrink the fabric to just the hosts the flows use.
        candidate = _shrink_dims(current)
        if candidate is not None and attempt(candidate):
            current = candidate
            progress = True
            continue
        # 4. Halve the measurement window (floor 200 us).
        if current.measure_us > 400:
            candidate = current.replace(measure_us=max(200, current.measure_us // 2))
            if attempt(candidate):
                current = candidate
                progress = True
                continue
    return current


def _shrink_dims(scenario):
    """A smaller fabric that still contains every flow endpoint, by
    collapsing multi-tier scenarios onto a single switch."""
    if scenario.kind == "deadlock":
        return None
    used = {h for src, dst, _kb in scenario.flows for h in (src, dst)}
    needed = max(used) + 1 if used else 2
    if scenario.kind == "single":
        if scenario.dims["n_hosts"] <= max(2, needed):
            return None
        return scenario.replace(dims={"n_hosts": max(2, needed)})
    # Renumber endpoints densely onto one switch.
    order = sorted(used)
    remap = {host: i for i, host in enumerate(order)}
    flows = [[remap[src], remap[dst], kb] for src, dst, kb in scenario.flows]
    return scenario.replace(
        kind="single", dims={"n_hosts": max(2, len(order))}, flows=flows
    )


# -- artifacts ----------------------------------------------------------------


def write_artifact(path, scenario, violations, minimized=None,
                   minimized_violations=None, mutation=None):
    """A replayable JSONL repro: one record per line, scenario dicts
    verbatim.  ``replay_artifact`` consumes the same format."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    records = [
        {
            "record": "scenario",
            "mutation": mutation,
            "scenario": scenario.to_dict(),
        },
        {"record": "violations", "violations": violations},
    ]
    if minimized is not None:
        records.append(
            {
                "record": "minimized",
                "mutation": mutation,
                "scenario": minimized.to_dict(),
                "violations": minimized_violations or [],
            }
        )
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
    return path


def load_artifact(path):
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def replay_artifact(path, prefer_minimized=True, metamorphic=False):
    """Re-run the scenario recorded in an artifact; returns the fresh
    :class:`SeedReport` (violations and all)."""
    records = load_artifact(path)
    chosen = None
    for record in records:
        if record["record"] == "minimized" and prefer_minimized:
            chosen = record
        elif record["record"] == "scenario" and chosen is None:
            chosen = record
    if chosen is None:
        raise ValueError("no scenario record in %s" % path)
    scenario = ValidationScenario.from_dict(chosen["scenario"])
    return validate_scenario(
        scenario, metamorphic=metamorphic, mutation=chosen.get("mutation")
    )


# -- sweep --------------------------------------------------------------------


class ValidationSweepResult(ExperimentResult):
    title = "V1: differential validation sweep (packet sim vs flow model)"


def run_validation_sweep(
    seeds=25,
    start=0,
    metamorphic=True,
    shrink=True,
    artifact_dir=DEFAULT_ARTIFACT_DIR,
    fail_fast=False,
    progress=None,
):
    """Sweep ``seeds`` generated scenarios; shrink and record failures.

    Returns a :class:`ValidationSweepResult` with one row per seed
    (JSON-scalar cells only, so campaign artifacts diff cleanly).
    """
    rows = []
    for seed in range(start, start + seeds):
        report = validate_seed(seed, metamorphic=metamorphic)
        row = _report_row(report)
        if not report.clean and shrink:
            row["artifact"] = _record_failure(report, artifact_dir)
        rows.append(row)
        if progress is not None:
            progress(report, row)
        if fail_fast and not report.clean:
            break
    return ValidationSweepResult(rows)


def _record_failure(report, artifact_dir):
    scenario = report.scenario

    def still_fails(candidate):
        return not validate_scenario(candidate, metamorphic=False).clean

    # Shrink against the single-run oracles only: metamorphic re-runs
    # triple the shrinker's cost and the single-run failure, when there
    # is one, is the more direct repro.  A purely-metamorphic failure
    # is recorded unshrunk (every reduction's still_fails would be False).
    if report.outcome.violations:
        minimized = shrink_scenario(scenario, still_fails)
    else:
        minimized = scenario
    minimized_report = validate_scenario(minimized, metamorphic=False)
    path = os.path.join(artifact_dir, "seed%d.jsonl" % scenario.seed)
    return write_artifact(
        path,
        scenario,
        report.violations,
        minimized=minimized,
        minimized_violations=minimized_report.violations,
    )


def _report_row(report):
    outcome = report.outcome
    scenario = report.scenario
    ratios = [
        flow.measured_bps / flow.share_bps
        for flow in outcome.flows
        if flow.share_bps
    ]
    return {
        "seed": scenario.seed,
        "kind": scenario.kind,
        "hosts": scenario.host_count(),
        "flows": len(scenario.flows),
        "link_gbps": scenario.link_gbps,
        "ecn": scenario.ecn,
        "lossy": scenario.lossy,
        "violations": len(report.violations),
        "oracles": ",".join(
            sorted({v["oracle"] for v in report.violations})
        ),
        "drained": outcome.drained,
        "drops": outcome.total_drops,
        "pause_frames": outcome.pause_frames,
        "min_share_ratio": round(min(ratios), 4) if ratios else None,
        "max_share_ratio": round(max(ratios), 4) if ratios else None,
    }


# -- mutation sensitivity -----------------------------------------------------


def mutation_check(which=None, artifact_dir=DEFAULT_ARTIFACT_DIR, shrink=True):
    """Prove the oracles catch re-introduced paper bugs.

    For each mutation: the probe scenario must pass clean *without* the
    mutation (the probe itself is fair) and must be flagged *with* it;
    the failing run is shrunk and written as a replayable artifact.
    Returns ``{mutation: {"caught", "baseline_clean", "artifact", ...}}``.
    """
    names = [which] if which else sorted(MUTATIONS)
    results = {}
    for name in names:
        factory, description = MUTATIONS[name]
        scenario = factory()
        baseline = validate_scenario(scenario, metamorphic=False)
        mutated = validate_scenario(scenario, metamorphic=False, mutation=name)
        artifact = None
        minimized = scenario
        if mutated.violations:

            def still_fails(candidate, _name=name):
                return bool(
                    validate_scenario(
                        candidate, metamorphic=False, mutation=_name
                    ).violations
                )

            if shrink:
                minimized = shrink_scenario(scenario, still_fails, max_runs=20)
            minimized_report = validate_scenario(
                minimized, metamorphic=False, mutation=name
            )
            artifact = write_artifact(
                os.path.join(artifact_dir, "mutation-%s.jsonl" % name),
                scenario,
                mutated.violations,
                minimized=minimized,
                minimized_violations=minimized_report.violations,
                mutation=name,
            )
        results[name] = {
            "description": description,
            "baseline_clean": baseline.clean,
            "caught": bool(mutated.violations),
            "oracles": sorted({v["oracle"] for v in mutated.violations}),
            "artifact": artifact,
            "minimized_flows": len(minimized.flows),
        }
    return results
