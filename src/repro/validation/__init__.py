"""Differential + metamorphic validation of the packet simulator.

The packet-level model and the flow-level analytic models answer the
same questions about the same fabrics; this package makes them check
each other.  `scenarios` generates seeded random Clos slices with
workload matrices, `differential` runs one scenario through the packet
simulator and traces the flows' realized paths into the max-min model,
`oracles` judges the run (conservation, goodput bands, drain,
metamorphic relations), and `harness` sweeps seeds, shrinks failures
to minimal scenarios and emits replayable JSONL artifacts.

`flowsim_lane` turns the machinery around: the same seeded scenarios
run through the packet engine *and* the flow-level simulator
(:mod:`repro.flowsim`), with oracles requiring the two tiers to agree
(flowsim's steady rates match the max-min shares to float precision;
packet-measured goodput sits in the flowsim-anchored band).

CLI::

    python -m repro.validation sweep --seeds 200
    python -m repro.validation mutation-check
    python -m repro.validation replay artifacts/validation/seed42.jsonl
    python -m repro.validation flowsim --seeds 100
"""

from repro.validation.scenarios import (
    ValidationScenario,
    generate_scenario,
    scenario_strategy,
)
from repro.validation.differential import RunOutcome, run_scenario, trace_flow_path
from repro.validation.oracles import Tolerances, judge_run
from repro.validation.harness import (
    MUTATIONS,
    mutation_check,
    replay_artifact,
    run_validation_sweep,
    shrink_scenario,
    validate_seed,
)
from repro.validation.flowsim_lane import (
    FlowsimTolerances,
    run_flowsim_differential_sweep,
    validate_flowsim_seed,
)

__all__ = [
    "ValidationScenario",
    "generate_scenario",
    "scenario_strategy",
    "RunOutcome",
    "run_scenario",
    "trace_flow_path",
    "Tolerances",
    "judge_run",
    "MUTATIONS",
    "mutation_check",
    "replay_artifact",
    "run_validation_sweep",
    "shrink_scenario",
    "validate_seed",
    "FlowsimTolerances",
    "run_flowsim_differential_sweep",
    "validate_flowsim_seed",
]
