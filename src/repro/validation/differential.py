"""Run one scenario through the packet simulator, against the flow model.

The differential contract: the packet simulator's measured per-flow
goodput must sit inside a tolerance band anchored by the analytic models
in :mod:`repro.flows` -- the max-min allocation above, the PFC-uniform
allocation below.  To feed those models the *realized* contention (ECMP
collisions included), flows are traced statically through the live
forwarding tables with the same five-tuple hash the switches use, so
the model sees exactly the links each flow actually crossed.

Measurement is transport-level: goodput over the measurement window is
the cumulative-ack (``una``) advance times the MTU payload, which is
immune to message-completion quantization.  After the window every
sender stops posting and the fabric must drain -- a whole-run
conservation check that doubles as a deadlock detector.
"""

from repro.faults.invariants import (
    CONSERVATION_INVARIANTS,
    install_default_auditors,
)
from repro.flows.maxmin import max_min_allocation
from repro.rdma.qp import QpConfig
from repro.rdma.recovery import GoBack0
from repro.rdma.verbs import connect_qp_pair
from repro.sim.rng import SeededRng
from repro.sim.units import KB, MS, US, gbps
from repro.switch.buffer import BufferConfig
from repro.switch.ecmp import ecmp_select
from repro.switch.ecn import EcnConfig
from repro.switch.forwarding import ForwardDecision
from repro.topo import deadlock_quad, single_switch, three_tier_clos, two_tier
from repro.workloads import ClosedLoopSender, RdmaChannel

UDP_PROTO = 17
ROCEV2_PORT = 4791
MTU_PAYLOAD = 1024
#: Goodput bytes per wire byte: a 1086-byte frame (preamble + IPG
#: included) carries a 1024-byte MTU payload -- same constant the
#: figure 7 flow model uses.
EFFICIENCY = MTU_PAYLOAD / 1086.0

_DRAIN_CHUNK_NS = 500 * US
_SETTLE_NS = 100 * US


class TraceError(Exception):
    """Static path tracing failed (no route, flood, loop, dead end)."""


class FlowOutcome:
    """One flow's measured and modelled rates."""

    def __init__(self, src, dst, message_kb):
        self.src = src
        self.dst = dst
        self.message_kb = message_kb
        self.measured_bps = 0.0
        self.share_bps = None  # max-min fair share (goodput bps)
        self.uniform_bps = None  # PFC-uniform share (goodput bps)
        self.bottleneck_bps = None  # min link capacity on path (goodput bps)
        self.path = []
        self.posted = 0
        self.completed = 0
        self.dead_dst = False

    def to_dict(self):
        return {
            "src": self.src,
            "dst": self.dst,
            "message_kb": self.message_kb,
            "measured_bps": self.measured_bps,
            "share_bps": self.share_bps,
            "uniform_bps": self.uniform_bps,
            "bottleneck_bps": self.bottleneck_bps,
            "posted": self.posted,
            "completed": self.completed,
            "dead_dst": self.dead_dst,
        }


class RunOutcome:
    """Everything the oracles need to judge one scenario run."""

    def __init__(self, scenario, mutation=None):
        self.scenario = scenario
        self.mutation = mutation
        self.flows = []
        self.drained = False
        self.queues_empty = False
        self.measure_window_ns = 0
        self.drops = {}
        self.flood_copies = 0
        self.pause_frames = 0
        self.conservation_violations = 0
        self.liveness_violations = 0
        self.tripped = []
        self.audit_summary = ""
        self.violations = []  # filled by oracles.judge_run

    @property
    def total_drops(self):
        return sum(self.drops.values())

    def drops_excluding(self, *reasons):
        return sum(n for reason, n in self.drops.items() if reason not in reasons)

    def violation_oracles(self):
        names = []
        for violation in self.violations:
            if violation["oracle"] not in names:
                names.append(violation["oracle"])
        return names


# -- topology -----------------------------------------------------------------


def build_topology(scenario):
    """Instantiate (and boot) the scenario's fabric."""
    rate = gbps(scenario.link_gbps)
    ecn = EcnConfig() if scenario.ecn else None
    dims = scenario.dims
    if scenario.kind == "single":
        topo = single_switch(rate_bps=rate, ecn_config=ecn, seed=scenario.seed, **dims)
    elif scenario.kind == "two_tier":
        topo = two_tier(rate_bps=rate, ecn_config=ecn, seed=scenario.seed, **dims)
    elif scenario.kind == "clos":
        topo = three_tier_clos(rate_bps=rate, ecn_config=ecn, seed=scenario.seed, **dims)
    elif scenario.kind == "deadlock":
        # Figure 4's quad, with the paper's static-threshold buffers; the
        # ARP-drop fix is ON unless the mutation under test disables it.
        topo = deadlock_quad(
            rate_bps=rate,
            seed=scenario.seed,
            buffer_config=BufferConfig(
                alpha=None, xoff_static_bytes=96 * KB, headroom_per_pg_bytes=40 * KB
            ),
            forwarding_kwargs={"drop_lossless_on_incomplete_arp": True},
        )
    else:
        raise ValueError("unknown scenario kind: %r" % (scenario.kind,))
    return topo.boot()


def _drop_ip_id_ff(packet):
    """The section 4.1 testbed's deterministic 1/256 loss."""
    return packet.ip is not None and packet.ip.identification & 0xFF == 0xFF


def _hosts_of(topo, scenario):
    """Flow endpoints: list-indexed for generated kinds, named for the
    deadlock quad."""
    if scenario.kind == "deadlock":
        return topo.hosts  # dict name -> Host
    return {i: host for i, host in enumerate(topo.hosts)}


# -- static path tracing ------------------------------------------------------


def trace_flow_path(src_host, dst_host, five_tuple):
    """Walk a flow's path through the live forwarding state.

    Replays exactly what each switch will do per packet: longest-prefix
    route (or local ARP + MAC delivery) via ``tables.decide``, then the
    same CRC ECMP hash with the switch's *live* ``ecmp_seed``.  Returns
    ``[(directed_link_id, rate_bps), ...]`` -- one entry per traversed
    egress port, identified by the port's name (each port sends on one
    link direction, so port identity is directed-link identity).
    """
    port = src_host.nic.port
    if port.link is None:
        raise TraceError("%s is not wired" % src_host.name)
    path = [(port.name, port.link.rate_bps)]
    device = port.peer.device
    dst_ip = dst_host.ip
    for _hop in range(16):
        tables = getattr(device, "tables", None)
        if tables is None:
            if device is not dst_host.nic:
                raise TraceError(
                    "trace for %s -> %s ended at %s"
                    % (src_host.name, dst_host.name, device.name)
                )
            return path
        decision = tables.decide(dst_ip, lossless=True)
        if decision.action != ForwardDecision.FORWARD:
            raise TraceError(
                "%s: %s (%s)" % (device.name, decision.action, decision.reason)
            )
        ports = decision.ports
        if len(ports) > 1:
            egress_idx = ports[ecmp_select(five_tuple, len(ports), device.ecmp_seed)]
        else:
            egress_idx = ports[0]
        egress = device.ports[egress_idx]
        if egress.link is None:
            raise TraceError("%s egress %s is not wired" % (device.name, egress.name))
        path.append((egress.name, egress.link.rate_bps))
        device = egress.peer.device
    raise TraceError(
        "no path from %s to %s within 16 hops (routing loop?)"
        % (src_host.name, dst_host.name)
    )


def expected_allocation(paths):
    """Model rates for traced flows: per-flow max-min shares plus the
    PFC-uniform common rate (fair share of the most contended link --
    provably a lower bound on every flow's max-min share).

    ``paths`` is a list of ``[(link_id, rate_bps), ...]``; returns
    ``(shares, uniform, bottlenecks)`` in goodput bits per second.
    """
    caps = {}
    id_paths = []
    for path in paths:
        ids = []
        for link_id, rate_bps in path:
            caps[link_id] = rate_bps * EFFICIENCY
            ids.append(link_id)
        id_paths.append(ids)
    shares = max_min_allocation(caps, id_paths)
    counts = {}
    for ids in id_paths:
        for link_id in ids:
            counts[link_id] = counts.get(link_id, 0) + 1
    uniform = min(caps[link_id] / n for link_id, n in counts.items())
    bottlenecks = [min(caps[link_id] for link_id in ids) for ids in id_paths]
    return shares, uniform, bottlenecks


# -- running ------------------------------------------------------------------


def run_scenario(scenario, mutation=None, tolerances=None):
    """One full differential run; returns a judged-ready :class:`RunOutcome`.

    ``mutation`` deliberately re-introduces a paper bug so the harness
    can prove its own sensitivity: ``"go-back-0"`` reverts loss recovery
    to the vendor's message-restart policy (section 4.1), and
    ``"no-arp-drop"`` disables the lossless-ARP drop deadlock fix
    (section 4.2, deadlock scenarios only).  ``tolerances`` overrides
    the oracle bands (defaults to :class:`~repro.validation.oracles
    .Tolerances`).
    """
    outcome = RunOutcome(scenario, mutation=mutation)
    topo = build_topology(scenario)
    fabric, sim = topo.fabric, topo.sim
    if mutation == "no-arp-drop":
        for switch in fabric.switches:
            switch.tables.drop_lossless_on_incomplete_arp = False
    if scenario.lossy:
        fabric.switches[0].ingress_drop_filter = _drop_ip_id_ff
    hosts = _hosts_of(topo, scenario)

    for name in scenario.dead_hosts:
        host = hosts[name]
        host.die()
        for switch in fabric.switches:
            switch.tables.mac_table.expire(host.mac)

    registry = install_default_auditors(fabric, mode="record").start()
    rng = SeededRng(scenario.seed, "validation/flows")
    dead = set(scenario.dead_hosts)

    senders = []
    qps = []
    for src, dst, message_kb in scenario.flows:
        config_a, config_b = _qp_configs(scenario, mutation)
        qp_a, _qp_b = connect_qp_pair(hosts[src], hosts[dst], rng, config_a, config_b)
        flow = FlowOutcome(src, dst, message_kb)
        flow.dead_dst = dst in dead
        five_tuple = (hosts[src].ip, hosts[dst].ip, UDP_PROTO, qp_a.src_udp_port, ROCEV2_PORT)
        if scenario.kind != "deadlock":
            flow.path = [link_id for link_id, _rate in
                         trace_flow_path(hosts[src], hosts[dst], five_tuple)]
        outcome.flows.append(flow)
        qps.append(qp_a)
        senders.append(
            ClosedLoopSender(RdmaChannel(qp_a), message_kb * KB, pipeline_depth=4)
        )

    if scenario.kind != "deadlock":
        paths = [
            trace_flow_path(hosts[src], hosts[dst], (hosts[src].ip, hosts[dst].ip,
                                                     UDP_PROTO, qp.src_udp_port,
                                                     ROCEV2_PORT))
            for (src, dst, _kb), qp in zip(scenario.flows, qps)
        ]
        shares, uniform, bottlenecks = expected_allocation(paths)
        for flow, share, bottleneck in zip(outcome.flows, shares, bottlenecks):
            flow.share_bps = share
            flow.uniform_bps = uniform
            flow.bottleneck_bps = bottleneck

    for sender in senders:
        sender.start()

    # Measurement window: snapshot the cumulative-ack pointer at both
    # edges; una advances once per acknowledged packet and (unlike
    # message completions) has no per-message quantization.
    t0 = sim.now + scenario.warmup_us * US
    t1 = t0 + scenario.measure_us * US
    window_start = [None] * len(qps)

    def snapshot():
        for i, qp in enumerate(qps):
            window_start[i] = qp.una

    sim.at(t0, snapshot)
    sim.run(until=t1)
    outcome.measure_window_ns = t1 - t0
    for flow, qp, una0 in zip(outcome.flows, qps, window_start):
        # Go-back-0 rewinds una by design; a livelocked flow reads ~0.
        acked_packets = max(0, qp.una - una0)
        flow.measured_bps = acked_packets * MTU_PAYLOAD * 8e9 / outcome.measure_window_ns

    # Stop posting and drain: every posted message must complete and the
    # fabric must empty.  A fabric that cannot drain is deadlocked.
    for sender in senders:
        sender.stop()
    live_senders = [
        sender for sender, flow in zip(senders, outcome.flows) if not flow.dead_dst
    ]
    completed_at_stop = [s.completed_messages for s in live_senders]
    deadline = sim.now + scenario.drain_ms * MS
    while sim.now < deadline:
        sim.run(until=min(deadline, sim.now + _DRAIN_CHUNK_NS))
        if all(s.completed_messages == s.posted_messages for s in live_senders):
            break
    sim.run(until=sim.now + _SETTLE_NS)
    outcome.drained = all(
        s.completed_messages == s.posted_messages for s in live_senders
    )
    # Queue emptiness only makes sense once the senders actually went
    # idle: dead-host retransmission loops and slow lossy drains keep
    # legitimate packets in flight.
    outcome.queues_empty = (
        _fabric_empty(fabric)
        if outcome.drained and not scenario.dead_hosts
        else True
    )
    if not outcome.drained and scenario.lossy:
        # Go-back-N through deliberate loss is slow, not wedged: accept a
        # drain where every unfinished sender still completed messages.
        # The go-back-0 livelock stays caught -- it never completes one.
        outcome.drained = all(
            s.completed_messages == s.posted_messages or s.completed_messages > before
            for s, before in zip(live_senders, completed_at_stop)
        )

    registry.audit_now()
    registry.stop()
    outcome.conservation_violations = len(
        registry.violations_in_class(CONSERVATION_INVARIANTS)
    )
    outcome.liveness_violations = (
        registry.violation_count - outcome.conservation_violations
    )
    outcome.tripped = registry.tripped_invariants()
    outcome.audit_summary = registry.summary()

    for flow, sender in zip(outcome.flows, senders):
        flow.posted = sender.posted_messages
        flow.completed = sender.completed_messages
    for switch in fabric.switches:
        for reason, count in switch.counters.drops.items():
            if count:
                outcome.drops[reason] = outcome.drops.get(reason, 0) + count
        outcome.flood_copies += switch.counters.flood_copies
    outcome.pause_frames = fabric.total_pause_frames()

    from repro.validation.oracles import Tolerances, judge_run

    outcome.violations = judge_run(
        outcome, Tolerances if tolerances is None else tolerances
    )
    return outcome


def _qp_configs(scenario, mutation):
    recovery_kwargs = {}
    if mutation == "go-back-0":
        recovery_kwargs["recovery"] = GoBack0()
    if scenario.kind == "deadlock":
        # Senders toward dead hosts must keep the flood pressure on
        # (large window, short RTO) -- same knobs as experiment E2.
        return (
            QpConfig(window_packets=1024, rto_ns=300 * US, **recovery_kwargs),
            QpConfig(window_packets=1024, rto_ns=300 * US),
        )
    if mutation == "go-back-0":
        return QpConfig(**recovery_kwargs), QpConfig(**recovery_kwargs)
    return QpConfig(), QpConfig()


def _fabric_empty(fabric):
    for switch in fabric.switches:
        for port in switch.ports:
            if port.total_queued_packets:
                return False
    for host in fabric.hosts:
        if host.nic.port.total_queued_packets:
            return False
        occupancy, _actual = host.nic.audit_rx_accounting()
        if occupancy:
            return False
    return True
