"""Packet-vs-flowsim differential lane.

PR 5's differential subsystem keeps the packet engine honest against
the analytic flow models; this lane closes the loop the other way and
keeps the *flow-level simulator* honest against the packet engine.  Per
seed:

1. The packet run: :func:`repro.validation.differential.run_scenario`
   on the generated scenario -- measured goodput per flow, plus the
   traced paths (realized ECMP collisions included).
2. The flowsim run: the same traced paths as permanent flows over the
   same goodput capacities, exact mode
   (``rate_update_interval_ns=0``).  Its steady-state rates are the
   incremental solver's max-min allocation.
3. Oracles:

   * ``flowsim-model`` -- flowsim's steady rate must equal the packet
     harness's independently computed max-min share to float precision
     (:data:`FlowsimTolerances.model_rel_err`).  This is the two
     implementations (lazy-heap incremental vs reference scan) agreeing
     on the same fixpoint through two different pipelines.
   * ``flowsim-band`` -- the packet engine's *measured* goodput must
     sit in the flowsim-anchored band: at least ``flow_lo`` x the
     PFC-uniform rate (``progress_lo`` in lossy runs), at most
     ``flow_hi`` x the flowsim rate, never past the bottleneck cap, and
     the aggregate at least ``agg_lo`` of flowsim's total.  The band
     fractions deliberately reuse :class:`repro.validation.oracles
     .Tolerances` -- the flow-level anchor is the same max-min fixpoint,
     so the packet-engine slack (window limitation, PFC coupling,
     transient pauses) is the same slack; docs/flowsim.md discusses why
     no extra flow-level margin is needed in exact mode.

Deadlock-kind scenarios are skipped: they have no traced paths and no
steady state (that lane belongs to the deadlock progress oracles).
"""

import json
import os

from repro.experiments.common import ExperimentResult
from repro.flowsim.engine import FlowSim
from repro.sim.units import gbps
from repro.validation.differential import EFFICIENCY, run_scenario
from repro.validation.oracles import Tolerances
from repro.validation.scenarios import generate_scenario

DEFAULT_ARTIFACT_DIR = os.path.join("artifacts", "flowsim-differential")

#: Permanent-flow stand-in size: large enough that nothing completes
#: inside the probe run.
_PERMANENT_BYTES = 10 ** 15


class FlowsimTolerances(Tolerances):
    """Band parameters for the flowsim differential lane.

    Inherits every band fraction from the packet-vs-model
    :class:`Tolerances` (same anchor, same slack -- see module
    docstring) and adds the model-agreement precision.
    """

    #: flowsim steady rate vs the harness's max-min share: both are
    #: max-min fixpoints of the identical (capacities, paths) problem,
    #: computed by independent implementations; only float freeze-order
    #: rounding may differ.
    model_rel_err = 1e-6


class FlowsimSeedReport:
    """One seed's packet-vs-flowsim verdict."""

    def __init__(self, scenario, outcome, flow_rates, violations, skipped=False):
        self.scenario = scenario
        self.outcome = outcome
        self.flow_rates = flow_rates  # per scenario flow, flowsim bps (or None)
        self.violations = violations
        self.skipped = skipped

    @property
    def clean(self):
        return not self.violations


class FlowsimDifferentialResult(ExperimentResult):
    title = "V2: packet engine vs flow-level simulator (differential)"


def _violation(oracle, subject, detail):
    return {"oracle": oracle, "subject": subject, "detail": detail}


def flowsim_rates_for_outcome(outcome, link_gbps):
    """Replay a packet run's traced flows through flowsim (exact mode).

    Returns per-flow steady-state goodput bps, aligned with
    ``outcome.flows``.  Capacities reconstruct the generated fabrics'
    uniform link rate, goodput-scaled exactly like
    :func:`repro.validation.differential.expected_allocation`.
    """
    cap = gbps(link_gbps) * EFFICIENCY
    caps = {}
    for flow in outcome.flows:
        for link in flow.path:
            caps[link] = cap
    sim = FlowSim(caps, rate_update_interval_ns=0)
    flow_ids = [
        sim.add_flow(flow.path, _PERMANENT_BYTES) for flow in outcome.flows
    ]
    sim.run(until_ns=1)
    rates = sim.current_rates()
    return [rates[fid] for fid in flow_ids]


def judge_flowsim_run(outcome, flow_rates, tolerances=FlowsimTolerances):
    """Both flowsim oracles against one packet outcome."""
    violations = []
    lossy = outcome.scenario.lossy
    lo_frac = tolerances.progress_lo if lossy else tolerances.flow_lo
    total_measured = 0.0
    total_flowsim = 0.0
    for flow, flowsim_bps in zip(outcome.flows, flow_rates):
        subject = "flow %s->%s" % (flow.src, flow.dst)
        # Oracle 1: two max-min implementations, one fixpoint.
        if flow.share_bps:
            rel = abs(flowsim_bps - flow.share_bps) / flow.share_bps
            if rel > tolerances.model_rel_err:
                violations.append(
                    _violation(
                        "flowsim-model",
                        subject,
                        "flowsim %.6f Gb/s vs max-min share %.6f Gb/s "
                        "(rel err %.2e > %.0e)"
                        % (flowsim_bps / 1e9, flow.share_bps / 1e9, rel,
                           tolerances.model_rel_err),
                    )
                )
        if flow.dead_dst:
            continue
        total_measured += flow.measured_bps
        total_flowsim += flowsim_bps
        # Oracle 2: packet-measured goodput in the flowsim-anchored band.
        if flow.uniform_bps:
            floor = lo_frac * flow.uniform_bps
            if flow.measured_bps < floor:
                violations.append(
                    _violation(
                        "flowsim-band",
                        subject,
                        "measured %.3f Gb/s < %.2f x uniform %.3f Gb/s"
                        % (flow.measured_bps / 1e9, lo_frac,
                           flow.uniform_bps / 1e9),
                    )
                )
        if flow.bottleneck_bps and (
            flow.measured_bps > tolerances.cap_slack * flow.bottleneck_bps
        ):
            violations.append(
                _violation(
                    "flowsim-band",
                    subject,
                    "measured %.3f Gb/s beats the %.3f Gb/s bottleneck"
                    % (flow.measured_bps / 1e9, flow.bottleneck_bps / 1e9),
                )
            )
        elif not lossy and flow.measured_bps > tolerances.flow_hi * flowsim_bps:
            violations.append(
                _violation(
                    "flowsim-band",
                    subject,
                    "measured %.3f Gb/s > %.2f x flowsim rate %.3f Gb/s"
                    % (flow.measured_bps / 1e9, tolerances.flow_hi,
                       flowsim_bps / 1e9),
                )
            )
    if not lossy and total_flowsim and (
        total_measured < tolerances.agg_lo * total_flowsim
    ):
        violations.append(
            _violation(
                "flowsim-band",
                "aggregate",
                "aggregate %.3f Gb/s < %.2f x flowsim total %.3f Gb/s"
                % (total_measured / 1e9, tolerances.agg_lo,
                   total_flowsim / 1e9),
            )
        )
    return violations


def validate_flowsim_seed(seed, tolerances=FlowsimTolerances):
    """One seed end to end; returns a :class:`FlowsimSeedReport`."""
    scenario = generate_scenario(seed)
    if scenario.kind == "deadlock":
        return FlowsimSeedReport(scenario, None, [], [], skipped=True)
    outcome = run_scenario(scenario)
    flow_rates = flowsim_rates_for_outcome(outcome, scenario.link_gbps)
    violations = judge_flowsim_run(outcome, flow_rates, tolerances)
    return FlowsimSeedReport(scenario, outcome, flow_rates, violations)


def run_flowsim_differential_sweep(
    seeds=25,
    start=0,
    artifact_dir=DEFAULT_ARTIFACT_DIR,
    fail_fast=False,
    progress=None,
):
    """Sweep ``seeds`` scenarios through both engines (catalog ``V2``).

    One row per seed; failures leave a replayable JSON artifact naming
    the scenario, both engines' per-flow rates, and the violations.
    """
    rows = []
    for seed in range(start, start + seeds):
        report = validate_flowsim_seed(seed)
        row = _report_row(report)
        if not report.clean:
            row["artifact"] = _write_artifact(report, artifact_dir)
        rows.append(row)
        if progress is not None:
            progress(report, row)
        if fail_fast and not report.clean:
            break
    return FlowsimDifferentialResult(rows)


def _report_row(report):
    scenario = report.scenario
    row = {
        "seed": scenario.seed,
        "kind": scenario.kind,
        "flows": len(scenario.flows),
        "link_gbps": scenario.link_gbps,
        "ecn": scenario.ecn,
        "lossy": scenario.lossy,
        "skipped": report.skipped,
        "violations": len(report.violations),
        "oracles": ",".join(sorted({v["oracle"] for v in report.violations})),
        "max_model_rel_err": None,
        "min_band_ratio": None,
        "max_band_ratio": None,
    }
    if report.skipped:
        return row
    rel_errs = [
        abs(rate - flow.share_bps) / flow.share_bps
        for flow, rate in zip(report.outcome.flows, report.flow_rates)
        if flow.share_bps
    ]
    ratios = [
        flow.measured_bps / rate
        for flow, rate in zip(report.outcome.flows, report.flow_rates)
        if rate and not flow.dead_dst
    ]
    if rel_errs:
        row["max_model_rel_err"] = float("%.3e" % max(rel_errs))
    if ratios:
        row["min_band_ratio"] = round(min(ratios), 4)
        row["max_band_ratio"] = round(max(ratios), 4)
    return row


def _write_artifact(report, artifact_dir):
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(artifact_dir, "seed%d.json" % report.scenario.seed)
    payload = {
        "schema": "flowsim-differential/1",
        "scenario": report.scenario.to_dict(),
        "violations": report.violations,
        "flows": [
            {
                "src": flow.src,
                "dst": flow.dst,
                "measured_bps": flow.measured_bps,
                "share_bps": flow.share_bps,
                "flowsim_bps": rate,
                "path": list(flow.path),
            }
            for flow, rate in zip(report.outcome.flows, report.flow_rates)
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
