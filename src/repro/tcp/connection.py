"""A Reno-style TCP connection.

Deliberately faithful where it matters to the paper's figure 6 and
deliberately simple elsewhere:

* byte-sequence reliability with cumulative ACKs and an out-of-order
  reassembly buffer;
* slow start / congestion avoidance, fast retransmit on three duplicate
  ACKs with window halving, RTO with exponential backoff and a
  configurable minimum (drop recovery cost is the latency tail);
* kernel latency applied on both the send path (post -> first byte
  eligible) and the delivery path (last byte received -> application);
* no handshake/teardown (connections are long-lived in the measured
  services), no Nagle, no delayed ACK, effectively unbounded receive
  window.
"""

import collections

from repro.packets.ip import IPPROTO_TCP, IPV4_HEADER_BYTES, Ipv4Header
from repro.packets.packet import Packet
from repro.packets.tcp import FLAG_ACK, TCP_HEADER_BYTES, TcpHeader
from repro.sim.timer import Timer
from repro.sim.units import MS, US


class TcpConfig:
    """Connection tunables."""

    def __init__(
        self,
        mss_bytes=1460,
        initial_cwnd_segments=10,
        min_rto_ns=5 * MS,
        max_rto_ns=200 * MS,
        initial_rto_ns=10 * MS,
        dupack_threshold=3,
        dscp=0,
        priority=1,
        max_cwnd_segments=512,
        ecn_enabled=False,
        dctcp_g=1.0 / 16,
    ):
        self.mss_bytes = mss_bytes
        self.initial_cwnd_segments = initial_cwnd_segments
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.initial_rto_ns = initial_rto_ns
        self.dupack_threshold = dupack_threshold
        self.dscp = dscp
        self.priority = priority
        self.max_cwnd_segments = max_cwnd_segments
        # DCTCP extension: ECN-capable segments + fractional window cuts
        # proportional to the observed marking rate (Alizadeh et al.;
        # the deployment context is the paper's own "Tuning ECN for Data
        # Center Networks" [38] line of work).
        self.ecn_enabled = ecn_enabled
        self.dctcp_g = dctcp_g


class _AppMessage:
    __slots__ = ("end_byte", "posted_ns", "on_delivered")

    def __init__(self, end_byte, posted_ns, on_delivered):
        self.end_byte = end_byte
        self.posted_ns = posted_ns
        self.on_delivered = on_delivered


class TcpStats:
    def __init__(self):
        self.segments_sent = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.rtos = 0
        self.bytes_delivered = 0
        self.messages_delivered = 0
        self.ce_acks = 0
        self.dctcp_cuts = 0


class TcpConnection:
    """One direction-agnostic connection endpoint (registered as a NIC
    transmit source)."""

    def __init__(self, stack, local_port, remote_ip, remote_mac, remote_port, config=None):
        self.stack = stack
        self.host = stack.host
        self.sim = stack.sim
        self.config = config or TcpConfig()
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_mac = remote_mac
        self.remote_port = remote_port
        self.stats = TcpStats()
        mss = self.config.mss_bytes
        # Sender state (byte sequence space).
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_buffer_end = 0  # bytes the app has made eligible
        self._pending_kernel = 0  # bytes posted, still crossing the kernel
        self.cwnd = self.config.initial_cwnd_segments * mss
        self.ssthresh = self.config.max_cwnd_segments * mss
        self._dupacks = 0
        self._recover = 0  # NewReno-ish recovery point
        self._in_recovery = False
        self._retransmit_queue = []  # seqs to resend ahead of new data
        self._rto_timer = Timer(self.sim, self._on_rto, name="tcp.rto")
        self._rto_ns = self.config.initial_rto_ns
        self._srtt = None
        self._rttvar = None
        self._send_times = {}  # seq -> send time, for RTT samples
        # The peer endpoint (simulation-level shortcut for app framing):
        # message boundaries posted here are registered on the peer.
        self.peer = None
        # Receiver state.
        self.rcv_nxt = 0
        self._ooo = {}  # seq -> payload_len of out-of-order segments
        self._acks_pending = collections.deque()  # CE flag per pending ACK
        # DCTCP sender state.
        self._dctcp_alpha = 0.0
        self._dctcp_window_end = 0
        self._dctcp_acked = 0
        self._dctcp_marked = 0
        self._rx_messages = collections.deque()
        self._delivered_bytes = 0

    # -- application API ---------------------------------------------------------

    def send_message(self, nbytes, on_delivered=None):
        """Stream ``nbytes``; ``on_delivered(latency_ns)`` fires at the
        *receiver's* application once the last byte crosses its kernel."""
        if nbytes <= 0:
            raise ValueError("messages carry at least one byte")
        posted = self.sim.now
        end = self.snd_buffer_end + self._pending_kernel + nbytes
        self.peer.expect_message(end, posted, on_delivered)
        self._pending_kernel += nbytes
        delay = self.stack.kernel.sample_ns()
        self.sim.schedule(delay, self._kernel_send_done, nbytes)

    def _kernel_send_done(self, nbytes):
        self._pending_kernel -= nbytes
        self.snd_buffer_end += nbytes
        self.host.nic.notify_tx_ready()

    # -- NIC source API -------------------------------------------------------------

    def next_ready_ns(self):
        if self._acks_pending or self._retransmit_queue:
            return 0
        if self._can_send_new():
            return 0
        return None

    def _can_send_new(self):
        in_flight = self.snd_nxt - self.snd_una
        return self.snd_nxt < self.snd_buffer_end and in_flight < self.cwnd

    def pull(self):
        if self._acks_pending:
            # One ACK per received data segment: duplicate ACKs are the
            # sender's loss signal, so they must not be coalesced away.
            # DCTCP: the ACK echoes whether that segment was CE-marked.
            ce = self._acks_pending.popleft()
            return self._build_segment(self.snd_nxt, 0, echo_ce=ce), self.config.priority
        if self._retransmit_queue:
            seq = self._retransmit_queue.pop(0)
            if seq >= self.snd_una:
                length = min(self.config.mss_bytes, self.snd_buffer_end - seq)
                if length > 0:
                    self.stats.retransmits += 1
                    self._arm_rto()
                    return self._build_segment(seq, length), self.config.priority
        if not self._can_send_new():
            return None, 0
        seq = self.snd_nxt
        length = min(self.config.mss_bytes, self.snd_buffer_end - seq)
        self.snd_nxt += length
        self._send_times[seq] = self.sim.now
        self.stats.segments_sent += 1
        self._arm_rto()
        return self._build_segment(seq, length), self.config.priority

    def _build_segment(self, seq, length, echo_ce=False):
        from repro.packets.ip import ECN_ECT0, ECN_NOT_ECT
        from repro.packets.tcp import FLAG_ECE

        ecn = ECN_ECT0 if (self.config.ecn_enabled and length > 0) else ECN_NOT_ECT
        ip = Ipv4Header(
            src=self.host.ip,
            dst=self.remote_ip,
            protocol=IPPROTO_TCP,
            dscp=self.config.dscp,
            ecn=ecn,
            total_length=IPV4_HEADER_BYTES + TCP_HEADER_BYTES + length,
            identification=self.host.nic.next_ip_id(),
        )
        flags = FLAG_ACK | (FLAG_ECE if echo_ce else 0)
        tcp = TcpHeader(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq & 0xFFFFFFFF,
            ack=self.rcv_nxt & 0xFFFFFFFF,
            flags=flags,
        )
        return Packet.tcp_segment(
            dst_mac=self.remote_mac,
            src_mac=self.host.mac,
            ip=ip,
            tcp=tcp,
            payload_bytes=length,
            created_ns=self.sim.now,
            flow=(self.host.ip, self.local_port),
            context={"seq": seq, "len": length, "ack": self.rcv_nxt, "ece": echo_ce},
        )

    # -- receive path ------------------------------------------------------------------

    def on_segment(self, packet):
        ctx = packet.context
        self._process_ack(ctx["ack"], ece=ctx.get("ece", False))
        if ctx["len"] > 0:
            self._process_data(ctx["seq"], ctx["len"])
            self._acks_pending.append(packet.ip.ce_marked)
            self.host.nic.notify_tx_ready()

    def _process_data(self, seq, length):
        if seq == self.rcv_nxt:
            self.rcv_nxt += length
            # Absorb any buffered continuation.
            while self.rcv_nxt in self._ooo:
                self.rcv_nxt += self._ooo.pop(self.rcv_nxt)
            self._deliver_up_to(self.rcv_nxt)
        elif seq > self.rcv_nxt:
            self._ooo[seq] = length
        # seq < rcv_nxt: duplicate; the ACK we are about to send handles it.

    def _deliver_up_to(self, byte_count):
        while self._rx_messages and self._rx_messages[0].end_byte <= byte_count:
            message = self._rx_messages.popleft()
            delay = self.stack.kernel.sample_ns()
            self.sim.schedule(delay, self._deliver_message, message)

    def _deliver_message(self, message):
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered = message.end_byte
        if message.on_delivered is not None:
            message.on_delivered(self.sim.now - message.posted_ns)

    def expect_message(self, end_byte, posted_ns, on_delivered):
        """Peer-side registration of a message boundary (installed by the
        stack when the sender posts)."""
        self._rx_messages.append(_AppMessage(end_byte, posted_ns, on_delivered))
        if end_byte <= self.rcv_nxt:
            self._deliver_up_to(self.rcv_nxt)

    # -- ACK clockwork ----------------------------------------------------------------------

    def _process_ack(self, ack, ece=False):
        config = self.config
        mss = config.mss_bytes
        if ack > self.snd_una:
            if config.ecn_enabled:
                self._dctcp_account(ack - self.snd_una, ece)
            # RTT sample from the earliest newly-acked segment.
            sent_at = self._send_times.pop(self.snd_una, None)
            if sent_at is not None:
                self._rtt_sample(self.sim.now - sent_at)
            for seq in list(self._send_times):
                if seq < ack:
                    self._send_times.pop(seq, None)
            self.snd_una = ack
            self._dupacks = 0
            if self._in_recovery and ack >= self._recover:
                self._in_recovery = False
                self.cwnd = self.ssthresh
            elif self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + mss, config.max_cwnd_segments * mss)
            else:
                self.cwnd += max(1, mss * mss // self.cwnd)
                self.cwnd = min(self.cwnd, config.max_cwnd_segments * mss)
            if self.snd_una >= self.snd_nxt:
                self._rto_timer.cancel()
            else:
                self._arm_rto()
            self.host.nic.notify_tx_ready()
        elif ack == self.snd_una and self.snd_nxt > self.snd_una:
            self._dupacks += 1
            if self._dupacks == config.dupack_threshold and not self._in_recovery:
                # Fast retransmit + window halving.
                self.stats.fast_retransmits += 1
                flight = self.snd_nxt - self.snd_una
                self.ssthresh = max(2 * mss, flight // 2)
                self.cwnd = self.ssthresh
                self._in_recovery = True
                self._recover = self.snd_nxt
                self._retransmit_queue.append(self.snd_una)
                self.host.nic.notify_tx_ready()

    def _dctcp_account(self, acked_bytes, ece):
        """DCTCP: track the fraction of CE-echoed bytes per window and
        cut the window in proportion (cwnd *= 1 - alpha/2) once per RTT
        with marks."""
        self._dctcp_acked += acked_bytes
        if ece:
            self._dctcp_marked += acked_bytes
            self.stats.ce_acks += 1
        if self.snd_una < self._dctcp_window_end or self._dctcp_acked == 0:
            return
        fraction = self._dctcp_marked / self._dctcp_acked
        g = self.config.dctcp_g
        self._dctcp_alpha = (1 - g) * self._dctcp_alpha + g * fraction
        if self._dctcp_marked and not self._in_recovery:
            mss = self.config.mss_bytes
            self.cwnd = max(2 * mss, int(self.cwnd * (1 - self._dctcp_alpha / 2)))
            # DCTCP exits slow start on the first marked window.
            self.ssthresh = max(self.cwnd, 2 * mss)
            self.stats.dctcp_cuts += 1
        self._dctcp_acked = 0
        self._dctcp_marked = 0
        self._dctcp_window_end = self.snd_nxt

    @property
    def dctcp_alpha(self):
        """The DCTCP congestion estimate (0 when ECN is off)."""
        return self._dctcp_alpha

    def _rtt_sample(self, rtt_ns):
        if self._srtt is None:
            self._srtt = rtt_ns
            self._rttvar = rtt_ns / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt_ns)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt_ns
        self._rto_ns = int(
            min(
                self.config.max_rto_ns,
                max(self.config.min_rto_ns, self._srtt + 4 * self._rttvar),
            )
        )

    def _arm_rto(self):
        self._rto_timer.start(self._rto_ns)

    def _on_rto(self):
        if self.snd_una >= self.snd_nxt:
            return
        self.stats.rtos += 1
        # Classic Reno timeout: collapse to one segment, go back to una.
        self.ssthresh = max(2 * self.config.mss_bytes, (self.snd_nxt - self.snd_una) // 2)
        self.cwnd = self.config.mss_bytes
        self.snd_nxt = self.snd_una
        self._in_recovery = False
        self._dupacks = 0
        self._send_times.clear()
        self._rto_ns = min(self.config.max_rto_ns, self._rto_ns * 2)
        self._arm_rto()
        self.host.nic.notify_tx_ready()

    def __repr__(self):
        return "TcpConnection(:%d -> %d:%d, una=%d, nxt=%d, cwnd=%d)" % (
            self.local_port,
            self.remote_ip,
            self.remote_port,
            self.snd_una,
            self.snd_nxt,
            self.cwnd,
        )
