"""Per-host TCP stack: connection table, dispatch, kernel models."""

from repro.tcp.connection import TcpConnection
from repro.tcp.kernel import KernelModel


class TcpStack:
    """The TCP instance on one host."""

    def __init__(self, host, kernel=None, rng=None):
        self.host = host
        self.sim = host.sim
        if kernel is None:
            if rng is None:
                raise ValueError("TcpStack needs a KernelModel or an rng to build one")
            kernel = KernelModel(rng)
        self.kernel = kernel
        self._connections = {}  # (local_port, remote_ip, remote_port) -> conn
        self._next_port = 30000 + (host.ip & 0xFF) * 64
        self.unmatched_segments = 0
        host.install_handler("tcp", self._on_packet)

    def allocate_port(self):
        port = self._next_port
        self._next_port += 1
        return port

    def create_connection(self, remote_ip, remote_mac, remote_port, local_port=None, config=None):
        local_port = self.allocate_port() if local_port is None else local_port
        connection = TcpConnection(
            self,
            local_port=local_port,
            remote_ip=remote_ip,
            remote_mac=remote_mac,
            remote_port=remote_port,
            config=config,
        )
        self._connections[(local_port, remote_ip, remote_port)] = connection
        self.host.nic.register_source(connection)
        return connection

    def _on_packet(self, packet):
        key = (packet.tcp.dst_port, packet.ip.src, packet.tcp.src_port)
        connection = self._connections.get(key)
        if connection is None:
            self.unmatched_segments += 1
            return
        connection.on_segment(packet)

    @property
    def connections(self):
        return list(self._connections.values())


def _stack_of(host, rng=None):
    stack = getattr(host, "tcp", None)
    if stack is None:
        if rng is None:
            raise ValueError("host %s has no TCP stack; pass an rng" % host.name)
        stack = TcpStack(host, rng=rng.child("kernel/%s" % host.name))
        host.tcp = stack
    return stack


def connect_tcp_pair(host_a, host_b, rng, config_a=None, config_b=None):
    """Create and cross-wire one TCP connection between two hosts.

    Returns ``(conn_a, conn_b)``; either side can ``send_message``.
    """
    stack_a = _stack_of(host_a, rng)
    stack_b = _stack_of(host_b, rng)
    port_a = stack_a.allocate_port()
    port_b = stack_b.allocate_port()
    conn_a = stack_a.create_connection(
        remote_ip=host_b.ip,
        remote_mac=host_b.mac,
        remote_port=port_b,
        local_port=port_a,
        config=config_a,
    )
    conn_b = stack_b.create_connection(
        remote_ip=host_a.ip,
        remote_mac=host_a.mac,
        remote_port=port_a,
        local_port=port_b,
        config=config_b,
    )
    conn_a.peer = conn_b
    conn_b.peer = conn_a
    return conn_a, conn_b
