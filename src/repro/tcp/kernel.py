"""OS kernel models: latency and CPU cost.

Latency: every send and delivery crosses the kernel (syscall, socket
buffers, softirq, scheduler).  The common case is tens of microseconds,
but the distribution is heavy-tailed -- the paper cites Pingmesh [21]
for kernel latency "as high as tens of milliseconds".  We model a
lognormal body plus a small probability of a scheduler-class spike.

CPU: section 1 measures, on a 32-core 2.9 GHz Xeon E5-2690 at 40 Gb/s
over 8 connections, 6% aggregate CPU to send and 12% to receive.  Those
two points calibrate a per-byte + per-packet cycle model; RDMA's CPU
cost is ~0 by construction (the NIC does the work).
"""

from repro.sim.units import MS, US


class KernelModel:
    """Samples kernel traversal latency for one host."""

    def __init__(
        self,
        rng,
        median_ns=15 * US,
        sigma=0.55,
        spike_probability=0.0005,
        spike_min_ns=1 * MS,
        spike_max_ns=12 * MS,
    ):
        import math

        self._rng = rng
        self._mu = math.log(median_ns)
        self._sigma = sigma
        self.spike_probability = spike_probability
        self.spike_min_ns = spike_min_ns
        self.spike_max_ns = spike_max_ns

    def sample_ns(self):
        """One kernel traversal (send-side or receive-side)."""
        latency = self._rng.lognormvariate(self._mu, self._sigma)
        if self._rng.random() < self.spike_probability:
            latency += self._rng.uniform(self.spike_min_ns, self.spike_max_ns)
        return int(latency)


class CpuModel:
    """Per-direction kernel CPU cost of TCP packet processing.

    Defaults are solved from the paper's two measurements (32 cores at
    2.9 GHz, 40 Gb/s, 8 connections, standard 1500 B MTU):

    * send 6%:  1.92 cores x 2.9e9 Hz / 5 GB/s  ~= 1.11 cycles/byte
    * recv 12%: 3.84 cores x 2.9e9 Hz / 5 GB/s  ~= 2.23 cycles/byte

    split here 80/20 between per-byte work (copies, checksums despite
    offload) and per-packet work (interrupts, protocol processing).
    """

    def __init__(
        self,
        cores=32,
        core_hz=2_900_000_000,
        send_cycles_per_byte=0.891,
        send_cycles_per_packet=323.0,
        recv_cycles_per_byte=1.782,
        recv_cycles_per_packet=646.0,
        mss_bytes=1460,
    ):
        self.cores = cores
        self.core_hz = core_hz
        self.send_cycles_per_byte = send_cycles_per_byte
        self.send_cycles_per_packet = send_cycles_per_packet
        self.recv_cycles_per_byte = recv_cycles_per_byte
        self.recv_cycles_per_packet = recv_cycles_per_packet
        self.mss_bytes = mss_bytes

    def _cycles_per_second(self, rate_bps, per_byte, per_packet):
        bytes_per_second = rate_bps / 8
        packets_per_second = bytes_per_second / self.mss_bytes
        return bytes_per_second * per_byte + packets_per_second * per_packet

    def send_cpu_fraction(self, rate_bps):
        """Aggregate CPU fraction (0..1) to transmit at ``rate_bps``."""
        used = self._cycles_per_second(
            rate_bps, self.send_cycles_per_byte, self.send_cycles_per_packet
        )
        return used / (self.cores * self.core_hz)

    def recv_cpu_fraction(self, rate_bps):
        """Aggregate CPU fraction (0..1) to receive at ``rate_bps``."""
        used = self._cycles_per_second(
            rate_bps, self.recv_cycles_per_byte, self.recv_cycles_per_packet
        )
        return used / (self.cores * self.core_hz)

    @staticmethod
    def rdma_cpu_fraction(rate_bps):
        """RDMA's CPU cost: the NIC does segmentation, reassembly and
        reliability; the paper measures "close to 0%"."""
        return 0.0
