"""The TCP baseline.

Figure 6 compares RDMA against the production TCP stack; section 1
quantifies TCP's kernel CPU cost.  This subpackage provides:

* :mod:`~repro.tcp.kernel` -- the OS kernel model: per-operation latency
  samples (with a heavy tail: "the kernel software introduces latency
  that can be as high as tens of milliseconds") and a per-byte/per-packet
  CPU cost model calibrated to the paper's 40 Gb/s measurements.
* :mod:`~repro.tcp.connection` -- a Reno-style reliable byte stream:
  slow start, congestion avoidance, fast retransmit on triple duplicate
  ACKs, RTO with exponential backoff.  Loss recovery cost -- not raw
  bandwidth -- is what drives TCP's latency tail under incast.
* :mod:`~repro.tcp.stack` -- per-host connection management and packet
  dispatch.

TCP rides a *lossy* traffic class ("We use a different traffic class
(which is not lossless) ... for TCP", section 2).
"""

from repro.tcp.connection import TcpConfig, TcpConnection
from repro.tcp.kernel import CpuModel, KernelModel
from repro.tcp.stack import TcpStack, connect_tcp_pair

__all__ = [
    "TcpConfig",
    "TcpConnection",
    "KernelModel",
    "CpuModel",
    "TcpStack",
    "connect_tcp_pair",
]
