"""Fault injection and runtime invariant auditing.

The paper's section 4 is a catalogue of failures that only surfaced
under faults nobody scripted: a lossy ASIC livelocking go-back-0, an
incomplete ARP table deadlocking PFC, one broken NIC pausing a whole
fabric, a slow receiver doing the same at lower intensity.  This package
provides the two halves of finding such things on purpose:

* :mod:`repro.faults.injector` / :mod:`repro.faults.plan` -- perturb a
  live fabric, imperatively or from a declarative, seeded
  :class:`FaultPlan`;
* :mod:`repro.faults.invariants` -- auditors that continuously check
  the invariants the rest of the codebase silently leans on (buffer
  conservation, PSN monotonicity, pause liveness, queue age).
"""

from repro.faults.injector import FaultInjector, LinkFaultRule, MATCHERS
from repro.faults.invariants import (
    AuditorRegistry,
    BufferConservationAuditor,
    InvariantViolation,
    LosslessQueueAgeAuditor,
    NicRxConservationAuditor,
    PauseProgressAuditor,
    PsnMonotonicityAuditor,
    Violation,
    install_default_auditors,
)
from repro.faults.plan import (
    Expectation,
    FaultPlan,
    FaultScenario,
    ScenarioOutcome,
    expect_invariant_holds,
    expect_invariant_violated,
    expect_nic_watchdog,
    expect_switch_watchdog,
    expect_that,
)

__all__ = [
    "AuditorRegistry",
    "BufferConservationAuditor",
    "Expectation",
    "FaultInjector",
    "FaultPlan",
    "FaultScenario",
    "InvariantViolation",
    "LinkFaultRule",
    "LosslessQueueAgeAuditor",
    "MATCHERS",
    "NicRxConservationAuditor",
    "PauseProgressAuditor",
    "PsnMonotonicityAuditor",
    "ScenarioOutcome",
    "Violation",
    "install_default_auditors",
    "expect_invariant_holds",
    "expect_invariant_violated",
    "expect_nic_watchdog",
    "expect_switch_watchdog",
    "expect_that",
]
