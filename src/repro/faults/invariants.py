"""Runtime invariant auditors.

The reproduction silently leans on a handful of invariants -- every
buffered byte is accounted exactly once, PSNs only move forward (unless
go-back-0 is deliberately rewinding them), a PAUSE is eventually matched
by a RESUME or a watchdog fires, and a lossless queue never wedges a
packet forever.  The paper's section 4 pathologies are precisely the
scenarios where one of these stops holding; DCFIT-style fault injection
is only useful if something *checks*.

An :class:`AuditorRegistry` wakes on a periodic simulator tick and runs
every registered auditor against live component state (components expose
read-only audit accessors; the tick never mutates model state or draws
from any RNG stream, so audited runs stay bit-identical to unaudited
ones).  Violations either raise immediately (``mode="raise"``, for tests
asserting a run is clean) or accumulate on ``registry.violations``
(``mode="record"``, for experiments that *expect* a pathology and want
to report it).
"""

from repro.packets.pause import N_PRIORITIES
from repro.sim.timer import Timer
from repro.sim.units import MS, US, fmt_time

#: Invariants that must hold in *every* run, pathological or not:
#: accounting identities whose violation always means a simulator bug.
CONSERVATION_INVARIANTS = (
    "buffer-conservation",
    "nic-rx-conservation",
    "psn-monotonic",
)

#: Liveness bounds: a deadlocked or pause-stormed fabric legitimately
#: trips these -- pathology experiments use them as detectors, while
#: benign runs (the validation sweep) require them clean.
LIVENESS_INVARIANTS = (
    "pause-bounded",
    "lossless-queue-age",
)


class InvariantViolation(AssertionError):
    """A runtime invariant failed while the auditors were in raise mode."""


class Violation:
    """One invariant failure observed at one audit tick."""

    __slots__ = ("time_ns", "invariant", "subject", "detail")

    def __init__(self, time_ns, invariant, subject, detail):
        self.time_ns = time_ns
        self.invariant = invariant
        self.subject = subject
        self.detail = detail

    def __repr__(self):
        return "[%s] %s @ %s: %s" % (
            fmt_time(self.time_ns),
            self.invariant,
            self.subject,
            self.detail,
        )


class BufferConservationAuditor:
    """Conservation of buffered bytes on one switch.

    Every byte the shared buffer thinks it holds must be backed by a
    packet sitting in some egress queue (claims are released synchronously
    at dequeue, so between events the two views must agree), the shared
    pool must stay within bounds, and each port's per-priority byte
    counter must match a recount of its queue.
    """

    invariant = "buffer-conservation"

    def __init__(self, switch):
        self.switch = switch

    def audit(self, now, report):
        switch = self.switch
        buffer = switch.buffer
        if buffer is None:
            return  # not finalized yet: nothing admitted, nothing to check
        claimed = sum(claim.nbytes for claim in switch.iter_buffer_claims())
        if claimed != buffer.total_occupancy:
            report(
                switch.name,
                "queued claims total %dB but buffer accounts %dB"
                % (claimed, buffer.total_occupancy),
            )
        if not 0 <= buffer.shared_in_use <= buffer.shared_size:
            report(
                switch.name,
                "shared pool out of bounds: %d of %d"
                % (buffer.shared_in_use, buffer.shared_size),
            )
        for (port_idx, priority), pg in buffer._pgs.items():
            if pg.occupancy < 0 or pg.headroom_used < 0:
                report(
                    switch.name,
                    "negative PG accounting at (%d, %d): occupancy=%d headroom=%d"
                    % (port_idx, priority, pg.occupancy, pg.headroom_used),
                )
            if pg.headroom_used > buffer.config.headroom_per_pg_bytes:
                report(
                    switch.name,
                    "PG (%d, %d) headroom %dB exceeds the %dB reservation"
                    % (
                        port_idx,
                        priority,
                        pg.headroom_used,
                        buffer.config.headroom_per_pg_bytes,
                    ),
                )
        for port in switch.ports:
            recount = [0] * N_PRIORITIES
            for priority, packet, _meta, _enqueued_ns in port.iter_entries():
                recount[priority] += packet.size_bytes
            if recount != port.queued_bytes:
                report(
                    port.name,
                    "queue byte counters %r disagree with recount %r"
                    % (port.queued_bytes, recount),
                )


class NicRxConservationAuditor:
    """The NIC receive buffer's occupancy counter matches its queue."""

    invariant = "nic-rx-conservation"

    def __init__(self, nic):
        self.nic = nic

    def audit(self, now, report):
        claimed, actual = self.nic.audit_rx_accounting()
        if claimed != actual:
            report(
                self.nic.name,
                "rx occupancy counter %dB vs queued frames %dB" % (claimed, actual),
            )
        if not 0 <= claimed <= self.nic.config.rx_buffer_bytes:
            report(
                self.nic.name,
                "rx occupancy %dB outside buffer of %dB"
                % (claimed, self.nic.config.rx_buffer_bytes),
            )


class PsnMonotonicityAuditor:
    """Per-QP PSN ordering across the whole fabric.

    QPs are discovered dynamically each tick (RDMA engines attach to
    hosts lazily).  ``una``/``epsn`` must never move backwards -- except
    under go-back-0, whose message restarts rewind both by design (the
    section 4.1 livelock); those QPs are exempted via the
    ``responder_restarts`` flag their own config publishes.
    """

    invariant = "psn-monotonic"

    def __init__(self, fabric):
        self.fabric = fabric
        self._last = {}

    def audit(self, now, report):
        for host in self.fabric.hosts:
            engine = getattr(host, "rdma", None)
            if engine is None:
                continue
            for qp in engine.qps:
                state = qp.audit_state()
                subject = "%s/qp%d" % (host.name, qp.qpn)
                if not 0 <= state["una"] <= state["high_sent"]:
                    report(
                        subject,
                        "una %d outside [0, high_sent=%d]"
                        % (state["una"], state["high_sent"]),
                    )
                if state["send_ptr"] > state["total_end"]:
                    report(
                        subject,
                        "send_ptr %d beyond enqueued end %d"
                        % (state["send_ptr"], state["total_end"]),
                    )
                prev = self._last.get(subject)
                if prev is not None:
                    for field in ("bytes_completed", "messages_completed",
                                  "data_packets_sent", "high_sent"):
                        if state[field] < prev[field]:
                            report(
                                subject,
                                "%s went backwards: %d -> %d"
                                % (field, prev[field], state[field]),
                            )
                    if not state["responder_restarts"]:
                        if state["una"] < prev["una"]:
                            report(
                                subject,
                                "una rewound %d -> %d under a policy that "
                                "never restarts" % (prev["una"], state["una"]),
                            )
                        if state["epsn"] < prev["epsn"]:
                            report(
                                subject,
                                "epsn rewound %d -> %d under a policy that "
                                "never restarts" % (prev["epsn"], state["epsn"]),
                            )
                self._last[subject] = state


class PauseProgressAuditor:
    """Every PAUSE is eventually matched by a RESUME or a watchdog fire.

    Checked as a liveness bound on one device's ports: a priority that
    stays paused with data queued and no transmissions for longer than
    ``max_stall_ns`` has lost its resume -- unless a watchdog already
    disabled lossless service on the port, which *is* the promised
    resolution.  One violation per stall episode (not one per tick).
    """

    invariant = "pause-bounded"

    def __init__(self, device, max_stall_ns=2 * MS):
        self.device = device
        self.max_stall_ns = max_stall_ns
        self._state = {}  # port.index -> [stuck_since, tx_marker, reported]

    def audit(self, now, report):
        device = self.device
        lossless_disabled = getattr(device, "lossless_disabled", None)
        for port in device.ports:
            state = self._state.setdefault(port.index, [None, -1, False])
            if lossless_disabled is not None and lossless_disabled(port):
                state[0], state[2] = None, False
                continue
            blocked = any(
                port.queue_lengths[p] and port.is_paused(p)
                for p in range(N_PRIORITIES)
            )
            tx = port.stats.total_tx_packets
            if not blocked or tx != state[1]:
                state[0], state[1], state[2] = None, tx, False
                continue
            if state[0] is None:
                state[0] = now
            elif now - state[0] >= self.max_stall_ns and not state[2]:
                state[2] = True
                report(
                    port.name,
                    "paused with queued data and no transmissions for %s "
                    "(no resume, no watchdog)" % fmt_time(now - state[0]),
                )


class LosslessQueueAgeAuditor:
    """No packet older than ``max_age_ns`` in a lossless queue.

    Age is per hop (stamped at enqueue), so steady retransmission traffic
    never trips this; only a queue that has genuinely stopped draining
    does -- the tail-side signature of a deadlock or storm.  Latches one
    violation per overage episode.
    """

    invariant = "lossless-queue-age"

    def __init__(self, device, max_age_ns=5 * MS):
        self.device = device
        self.max_age_ns = max_age_ns
        self._reported = {}  # port.index -> bool

    def audit(self, now, report):
        device = self.device
        pfc = getattr(device, "pfc_config", None)
        if pfc is None:
            return
        lossless_disabled = getattr(device, "lossless_disabled", None)
        for port in device.ports:
            if lossless_disabled is not None and lossless_disabled(port):
                self._reported[port.index] = False
                continue
            worst = None
            for priority, _packet, _meta, enqueued_ns in port.iter_entries():
                if not pfc.is_lossless(priority):
                    continue
                age = now - enqueued_ns
                if age > self.max_age_ns and (worst is None or age > worst):
                    worst = age
            if worst is None:
                self._reported[port.index] = False
            elif not self._reported.get(port.index):
                self._reported[port.index] = True
                report(
                    port.name,
                    "lossless packet stuck for %s (limit %s)"
                    % (fmt_time(worst), fmt_time(self.max_age_ns)),
                )


class AuditorRegistry:
    """Periodically runs registered auditors against live component state."""

    def __init__(self, sim, interval_ns=100 * US, mode="record", name="audit"):
        if mode not in ("record", "raise"):
            raise ValueError("mode must be 'record' or 'raise', got %r" % (mode,))
        self.sim = sim
        self.interval_ns = interval_ns
        self.mode = mode
        self.name = name
        self.violations = []
        self.ticks = 0
        self._auditors = []
        self._timer = Timer(sim, self._tick, name="%s.tick" % name)

    def register(self, auditor):
        self._auditors.append(auditor)
        return auditor

    def start(self):
        """Begin periodic auditing (first tick one interval from now)."""
        self._timer.start(self.interval_ns)
        return self

    def stop(self):
        self._timer.cancel()

    @property
    def running(self):
        return self._timer.armed

    def _tick(self):
        self._timer.start(self.interval_ns)
        self.audit_now()

    def audit_now(self):
        """Run every auditor once, immediately.  Returns new violations."""
        now = self.sim.now
        new = []
        for auditor in self._auditors:
            invariant = auditor.invariant

            def report(subject, detail, _invariant=invariant):
                new.append(Violation(now, _invariant, subject, detail))

            auditor.audit(now, report)
        self.ticks += 1
        self.violations.extend(new)
        if new and self.mode == "raise":
            raise InvariantViolation(
                "%d invariant violation(s) at %s:\n%s"
                % (len(new), fmt_time(now), "\n".join("  %r" % v for v in new))
            )
        return new

    @property
    def violation_count(self):
        return len(self.violations)

    @property
    def clean(self):
        return not self.violations

    def violations_for(self, invariant):
        return [v for v in self.violations if v.invariant == invariant]

    def violations_in_class(self, invariants):
        """Violations whose invariant is in ``invariants`` (e.g. the
        :data:`CONSERVATION_INVARIANTS` vs :data:`LIVENESS_INVARIANTS`
        split the validation oracles judge separately)."""
        wanted = set(invariants)
        return [v for v in self.violations if v.invariant in wanted]

    def tripped_invariants(self):
        """Names of invariants with at least one violation, first-trip order."""
        names = []
        for violation in self.violations:
            if violation.invariant not in names:
                names.append(violation.invariant)
        return names

    def summary(self):
        if self.clean:
            return "audit clean (%d ticks)" % self.ticks
        return "audit: %d violation(s) over %d ticks [%s]" % (
            self.violation_count,
            self.ticks,
            ", ".join(self.tripped_invariants()),
        )

    def __repr__(self):
        return "AuditorRegistry(%s, %d auditors, %s)" % (
            self.name,
            len(self._auditors),
            self.summary(),
        )


def install_default_auditors(
    fabric,
    interval_ns=100 * US,
    mode="record",
    max_stall_ns=2 * MS,
    max_age_ns=5 * MS,
):
    """An :class:`AuditorRegistry` covering every device in ``fabric``.

    Registers buffer conservation + pause liveness + queue age on every
    switch, rx-buffer conservation + pause liveness + queue age on every
    NIC, and fabric-wide PSN monotonicity.  Call ``.start()`` on the
    returned registry (not started automatically so tests can also drive
    ``audit_now`` by hand).
    """
    registry = AuditorRegistry(fabric.sim, interval_ns=interval_ns, mode=mode)
    for switch in fabric.switches:
        registry.register(BufferConservationAuditor(switch))
        registry.register(PauseProgressAuditor(switch, max_stall_ns=max_stall_ns))
        registry.register(LosslessQueueAgeAuditor(switch, max_age_ns=max_age_ns))
    for host in fabric.hosts:
        registry.register(NicRxConservationAuditor(host.nic))
        registry.register(PauseProgressAuditor(host.nic, max_stall_ns=max_stall_ns))
        registry.register(LosslessQueueAgeAuditor(host.nic, max_age_ns=max_age_ns))
    registry.register(PsnMonotonicityAuditor(fabric))
    return registry
