"""The fault injector: perturb a live fabric mid-run.

One :class:`FaultInjector` wraps one :class:`~repro.topo.fabric.Fabric`
and exposes the perturbations the paper's section 4 pathologies (and the
section 5-6 operational incidents) are made of:

* link faults -- down/up/flap, plus per-packet probabilistic rules that
  drop, corrupt or re-order matching frames on a named link;
* host faults -- freeze a NIC receive pipeline (the section 4.3
  pause-storm trigger), degrade its MTT (the section 4.4 slow receiver),
  kill/repair the server outright;
* control-plane faults -- blackhole ARP on a link, expire a host's MAC
  entry from its ToR (half-populated tables are the section 4.2 deadlock
  trigger);
* config drift -- swap a switch onto a wrong DSCP->queue map or a wrong
  buffer alpha (sections 5.1 and 6.2).  Configs are *shared* objects
  across devices, so drift always copies before assigning.

Every probabilistic rule draws from its own named child of the
injector's seeded RNG stream, so a fault schedule is exactly as
deterministic as the traffic it perturbs.
"""

from repro.sim.rng import SeededRng
from repro.sim.units import US


def _match_data(packet):
    return not packet.is_pause and not packet.is_arp


#: Named packet predicates for link fault rules.  "ip-id-ff" is the
#: section 4.1 livelock filter: the NIC numbers IP IDs sequentially, so
#: matching IDs ending 0xff is a deterministic 1/256 loss.
MATCHERS = {
    "any": lambda packet: not packet.is_pause,
    "data": _match_data,
    "rocev2": lambda packet: packet.is_rocev2,
    "tcp": lambda packet: packet.is_tcp,
    "arp": lambda packet: packet.is_arp,
    "pause": lambda packet: packet.is_pause,
    "ip-id-ff": lambda packet: (
        packet.ip is not None and packet.ip.identification & 0xFF == 0xFF
    ),
}


class LinkFaultRule:
    """One persistent per-packet fault on a link."""

    __slots__ = ("kind", "match_name", "match", "probability", "rng",
                 "delay_ns", "remaining", "hits")

    def __init__(self, kind, match_name, probability, rng, delay_ns=0, count=None):
        if kind not in ("drop", "corrupt", "delay"):
            raise ValueError("unknown link fault kind: %r" % (kind,))
        self.kind = kind
        self.match_name = match_name
        self.match = MATCHERS[match_name]
        self.probability = probability
        self.rng = rng
        self.delay_ns = delay_ns
        self.remaining = count  # None: unlimited
        self.hits = 0

    def consider(self, packet):
        if self.remaining is not None and self.remaining <= 0:
            return None
        if not self.match(packet):
            return None
        if self.probability < 1.0 and self.rng.random() >= self.probability:
            return None
        self.hits += 1
        if self.remaining is not None:
            self.remaining -= 1
        if self.kind == "delay":
            return ("delay", self.delay_ns)
        return (self.kind, None)

    def __repr__(self):
        return "LinkFaultRule(%s, match=%s, p=%g, hits=%d)" % (
            self.kind,
            self.match_name,
            self.probability,
            self.hits,
        )


class _LinkFaultHook:
    """The callable installed as ``link.fault_hook``; first matching rule
    wins.  Applies to both directions (the hook sits on the link, not a
    port)."""

    def __init__(self):
        self.rules = []

    def __call__(self, link, packet):
        for rule in self.rules:
            verdict = rule.consider(packet)
            if verdict is not None:
                return verdict
        return None


class FaultInjector:
    """Perturbs one fabric.  All methods are safe to call mid-run."""

    def __init__(self, fabric, rng=None, name="injector"):
        self.fabric = fabric
        self.sim = fabric.sim
        self.rng = rng or SeededRng(0, "faults/%s" % name)
        self._rule_count = 0
        # (time_ns, action, subject) tuples, for post-mortems.
        self.log = []

    def _note(self, action, subject):
        self.log.append((self.sim.now, action, subject))

    # -- target resolution ---------------------------------------------------

    def resolve_host(self, target):
        if isinstance(target, str):
            return self.fabric.host_named(target)
        return target

    def resolve_switch(self, target):
        if isinstance(target, str):
            return self.fabric.switch_named(target)
        return target

    def resolve_link(self, target):
        """A Link, an index into ``fabric.links``, or an
        ``(endpoint_name, endpoint_name)`` pair of device names."""
        if isinstance(target, int):
            return self.fabric.links[target]
        if isinstance(target, tuple):
            names = set(target)
            for link in self.fabric.links:
                ends = set()
                for port in (link.port_a, link.port_b):
                    device_name = port.device.name
                    ends.add(device_name)
                    # A host's port belongs to its NIC ("S1.nic"); accept
                    # the host name too.
                    if device_name.endswith(".nic"):
                        ends.add(device_name[: -len(".nic")])
                if names <= ends:
                    return link
            raise KeyError("no link between %s and %s" % target)
        return target

    def tor_of(self, target):
        """The switch at the far end of a host's server link."""
        host = self.resolve_host(target)
        return host.port.link.other(host.port).device

    # -- link faults ---------------------------------------------------------

    def link_down(self, target):
        link = self.resolve_link(target)
        link.set_down()
        self._note("link_down", link.name)
        return link

    def link_up(self, target):
        link = self.resolve_link(target)
        link.set_up()
        self._note("link_up", link.name)
        return link

    def flap_link(self, target, down_ns=100 * US):
        """Take the link down now; restore it ``down_ns`` later."""
        link = self.link_down(target)
        self.sim.schedule(down_ns, self.link_up, link)
        return link

    def _add_rule(self, target, kind, probability, match, delay_ns=0, count=None):
        if match not in MATCHERS:
            raise ValueError(
                "unknown matcher %r (have: %s)" % (match, ", ".join(sorted(MATCHERS)))
            )
        link = self.resolve_link(target)
        if link.fault_hook is None:
            link.fault_hook = _LinkFaultHook()
        elif not isinstance(link.fault_hook, _LinkFaultHook):
            raise RuntimeError("link %s has a foreign fault hook" % link.name)
        rule = LinkFaultRule(
            kind,
            match,
            probability,
            self.rng.child("rule%d" % self._rule_count),
            delay_ns=delay_ns,
            count=count,
        )
        self._rule_count += 1
        link.fault_hook.rules.append(rule)
        self._note("%s_packets" % kind, "%s p=%g match=%s" % (link.name, probability, match))
        return rule

    def drop_packets(self, target, probability=1.0, match="any", count=None):
        """Silently drop matching frames on a link (switch bugs, the
        section 4.1 lossy-ASIC scenario)."""
        return self._add_rule(target, "drop", probability, match, count=count)

    def corrupt_packets(self, target, probability=1.0, match="any", count=None):
        """Mangle matching frames so the receiver's FCS/ICRC discards
        them (counted separately from silent drops)."""
        return self._add_rule(target, "corrupt", probability, match, count=count)

    def reorder_packets(self, target, delay_ns, probability=1.0, match="data", count=None):
        """Hold matching frames an extra ``delay_ns``, letting later
        frames overtake them."""
        return self._add_rule(
            target, "delay", probability, match, delay_ns=delay_ns, count=count
        )

    def blackhole_arp(self, target):
        """Drop every ARP frame crossing the link: requests go unanswered
        and tables stay incomplete -- the section 4.2 deadlock trigger."""
        return self._add_rule(target, "drop", 1.0, "arp")

    def clear_link_faults(self, target):
        link = self.resolve_link(target)
        link.fault_hook = None
        self._note("clear_link_faults", link.name)
        return link

    # -- host faults ---------------------------------------------------------

    def freeze_nic_rx(self, target):
        """Stop a NIC's receive pipeline (the section 4.3 firmware bug):
        the rx buffer fills and the NIC pauses its ToR continuously."""
        host = self.resolve_host(target)
        host.nic.break_rx_pipeline()
        self._note("freeze_nic_rx", host.name)
        return host

    def repair_nic(self, target):
        """Reboot/reimage the server: pipeline restored, buffer cleared,
        watchdog latch reset."""
        host = self.resolve_host(target)
        host.nic.repair()
        self._note("repair_nic", host.name)
        return host

    def kill_host(self, target):
        """The server goes completely silent (dead host, section 4.2)."""
        host = self.resolve_host(target)
        host.die()
        self._note("kill_host", host.name)
        return host

    def degrade_mtt(self, target, entries=64, page_bytes=4096, miss_penalty_ns=3000):
        """Turn the host into a section 4.4 slow receiver: replace its
        NIC's memory translation cache with an undersized one so receive
        processing thrashes and the NIC back-pressures the fabric."""
        from repro.nic.mtt import MttCache, MttConfig

        host = self.resolve_host(target)
        host.nic.mtt = MttCache(
            MttConfig(
                entries=entries,
                page_bytes=page_bytes,
                miss_penalty_ns=miss_penalty_ns,
            )
        )
        self._note("degrade_mtt", host.name)
        return host

    def expire_mac(self, target):
        """Drop the host's MAC entry from its ToR's table (reboot /
        table-overflow aging): lossless traffic toward it floods."""
        host = self.resolve_host(target)
        tor = self.tor_of(host)
        tor.tables.mac_table.expire(host.mac)
        self._note("expire_mac", "%s@%s" % (host.name, tor.name))
        return host

    # -- config drift --------------------------------------------------------

    def drift_dscp_map(self, target, dscp_to_priority):
        """Swap one switch onto a wrong DSCP->queue map (section 5.1's
        config-drift class): traffic classified lossless fabric-wide lands
        in lossy queues at this hop.  Copies the shared config."""
        switch = self.resolve_switch(target)
        switch.pfc_config = switch.pfc_config.copy(
            dscp_to_priority=dict(dscp_to_priority)
        )
        # Classification (and with it lossless-ness of releases) changed
        # under any committed trains; settle and fall back to per-frame.
        switch._uncoalesce_trains()
        self._note("drift_dscp_map", switch.name)
        return switch

    def drift_buffer_alpha(self, target, alpha):
        """Ship one switch with a wrong dynamic threshold (the section
        6.2 incident: alpha silently 1/64 instead of 1/16).  The live
        SharedBuffer reads thresholds from its config on every admit, so
        the drift takes effect immediately."""
        switch = self.resolve_switch(target)
        drifted = switch.buffer_config.copy(alpha=alpha)
        switch.buffer_config = drifted
        if switch.buffer is not None:
            switch.buffer.config = drifted
        # The threshold just moved under any committed departure trains;
        # their silent-settlement precondition no longer holds.
        switch._uncoalesce_trains()
        self._note("drift_buffer_alpha", switch.name)
        return switch
