"""Declarative fault schedules and the scenario harness.

A :class:`FaultPlan` is data, not code: a list of "at t, do X to Y"
entries plus standing per-packet rules, referring to targets by *name*
(host/switch names, or ``(device, device)`` link endpoint pairs).  The
same plan can therefore be applied to freshly built fabrics over and
over -- which is what makes fault-injected runs fingerprintable: same
seed + same plan => bit-identical counters.

:class:`FaultScenario` closes the loop for tests: build a topology,
arm the auditors, apply a plan, drive traffic, and check declared
expectations ("invariant Y holds", "watchdog Z fires") at the end::

    scenario = FaultScenario(
        build=lambda: single_switch(n_hosts=2, seed=7).boot(),
        plan=FaultPlan("storm", seed=7).freeze_nic_rx("S1", at_ns=1 * MS),
        drive=start_traffic,
        duration_ns=8 * MS,
        expectations=[expect_invariant_violated("pause-bounded")],
    )
    scenario.run().check()
"""

from repro.faults.injector import FaultInjector, MATCHERS
from repro.faults.invariants import install_default_auditors
from repro.sim.rng import SeededRng
from repro.sim.units import MS, US, fmt_time


class _PlanAction:
    """One scheduled or standing injector call."""

    __slots__ = ("at_ns", "method", "target", "kwargs")

    def __init__(self, at_ns, method, target, kwargs):
        self.at_ns = at_ns  # None: apply immediately (standing rule)
        self.method = method
        self.target = target
        self.kwargs = kwargs

    def __repr__(self):
        when = "t=%s" % fmt_time(self.at_ns) if self.at_ns is not None else "standing"
        return "%s(%r%s) [%s]" % (
            self.method,
            self.target,
            "".join(", %s=%r" % kv for kv in sorted(self.kwargs.items())),
            when,
        )


class FaultPlan:
    """A named, seeded, declarative fault schedule.

    All methods return ``self`` so plans chain; ``at_ns=None`` means
    "from the start".  Targets are names (resolved against the fabric at
    apply time), so a plan is reusable across rebuilt topologies.
    """

    def __init__(self, name="plan", seed=0):
        self.name = name
        self.seed = seed
        self._actions = []

    def add(self, method, target, at_ns=None, **kwargs):
        """Schedule any :class:`FaultInjector` method by name."""
        if not hasattr(FaultInjector, method):
            raise ValueError("FaultInjector has no action %r" % (method,))
        self._actions.append(_PlanAction(at_ns, method, target, kwargs))
        return self

    # -- sugar ----------------------------------------------------------------

    def link_down(self, target, at_ns):
        return self.add("link_down", target, at_ns=at_ns)

    def link_up(self, target, at_ns):
        return self.add("link_up", target, at_ns=at_ns)

    def flap_link(self, target, at_ns, down_ns=100 * US):
        return self.add("flap_link", target, at_ns=at_ns, down_ns=down_ns)

    def drop(self, target, probability=1.0, match="any", count=None, at_ns=None):
        return self.add(
            "drop_packets", target, at_ns=at_ns,
            probability=probability, match=match, count=count,
        )

    def corrupt(self, target, probability=1.0, match="any", count=None, at_ns=None):
        return self.add(
            "corrupt_packets", target, at_ns=at_ns,
            probability=probability, match=match, count=count,
        )

    def reorder(self, target, delay_ns, probability=1.0, match="data", at_ns=None):
        return self.add(
            "reorder_packets", target, at_ns=at_ns,
            delay_ns=delay_ns, probability=probability, match=match,
        )

    def blackhole_arp(self, target, at_ns=None):
        return self.add("blackhole_arp", target, at_ns=at_ns)

    def freeze_nic_rx(self, target, at_ns):
        return self.add("freeze_nic_rx", target, at_ns=at_ns)

    def repair_nic(self, target, at_ns):
        return self.add("repair_nic", target, at_ns=at_ns)

    def kill_host(self, target, at_ns):
        return self.add("kill_host", target, at_ns=at_ns)

    def degrade_mtt(self, target, at_ns, entries=64, page_bytes=4096, miss_penalty_ns=3000):
        return self.add(
            "degrade_mtt", target, at_ns=at_ns,
            entries=entries, page_bytes=page_bytes, miss_penalty_ns=miss_penalty_ns,
        )

    def expire_mac(self, target, at_ns):
        return self.add("expire_mac", target, at_ns=at_ns)

    def drift_dscp_map(self, target, dscp_to_priority, at_ns):
        return self.add(
            "drift_dscp_map", target, at_ns=at_ns,
            dscp_to_priority=dict(dscp_to_priority),
        )

    def drift_buffer_alpha(self, target, alpha, at_ns):
        return self.add("drift_buffer_alpha", target, at_ns=at_ns, alpha=alpha)

    # -- application ------------------------------------------------------------

    def apply(self, fabric):
        """Arm this plan on a fabric; returns the :class:`FaultInjector`.

        Standing rules install immediately; timed actions are scheduled
        at their absolute times (which must not be in the past).
        """
        injector = FaultInjector(
            fabric, rng=SeededRng(self.seed, "faultplan/%s" % self.name), name=self.name
        )
        for action in self._actions:
            method = getattr(injector, action.method)
            if action.at_ns is None:
                method(action.target, **action.kwargs)
            else:
                fabric.sim.at(
                    action.at_ns, self._fire, method, action.target, action.kwargs
                )
        return injector

    @staticmethod
    def _fire(method, target, kwargs):
        method(target, **kwargs)

    def actions(self):
        return list(self._actions)

    def __len__(self):
        return len(self._actions)

    def __repr__(self):
        return "FaultPlan(%s, seed=%d, %d actions)" % (
            self.name, self.seed, len(self._actions),
        )


# -- expectations ----------------------------------------------------------------


class Expectation:
    """One declared post-condition of a fault scenario."""

    def __init__(self, description, check):
        self.description = description
        self._check = check  # fn(outcome) -> True when satisfied

    def satisfied(self, outcome):
        return self._check(outcome)

    def __repr__(self):
        return "Expectation(%s)" % self.description


def expect_invariant_holds(invariant=None):
    """No violation of ``invariant`` (or of anything, when None)."""
    if invariant is None:
        return Expectation(
            "all invariants hold", lambda outcome: outcome.registry.clean
        )
    return Expectation(
        "invariant %r holds" % invariant,
        lambda outcome: not outcome.registry.violations_for(invariant),
    )


def expect_invariant_violated(invariant, min_count=1):
    return Expectation(
        "invariant %r violated" % invariant,
        lambda outcome: len(outcome.registry.violations_for(invariant)) >= min_count,
    )


def expect_nic_watchdog(min_trips=1):
    return Expectation(
        "NIC watchdog fires",
        lambda outcome: sum(
            h.nic.watchdog_trips for h in outcome.fabric.hosts
        ) >= min_trips,
    )


def expect_switch_watchdog(min_trips=1):
    return Expectation(
        "switch watchdog fires",
        lambda outcome: sum(
            s.watchdog_trips() for s in outcome.fabric.switches
        ) >= min_trips,
    )


def expect_that(description, predicate):
    """Arbitrary predicate over the :class:`ScenarioOutcome`."""
    return Expectation(description, predicate)


class ScenarioOutcome:
    """Everything a finished scenario run exposes for assertions."""

    def __init__(self, topo, fabric, registry, injector, failures):
        self.topo = topo
        self.fabric = fabric
        self.registry = registry
        self.injector = injector
        self.failures = failures

    @property
    def ok(self):
        return not self.failures

    def check(self):
        """Raise AssertionError listing every unmet expectation."""
        if self.failures:
            raise AssertionError(
                "%d unmet expectation(s):\n%s\n(%s)"
                % (
                    len(self.failures),
                    "\n".join("  - %s" % f for f in self.failures),
                    self.registry.summary(),
                )
            )
        return self


class FaultScenario:
    """Build -> audit -> inject -> drive -> check, declaratively.

    ``build``
        Zero-arg callable returning a booted topology (anything with a
        ``.fabric``, or a :class:`Fabric` itself).
    ``plan``
        The :class:`FaultPlan` to arm (optional: audit-only scenarios).
    ``drive``
        Optional callable ``drive(topo)`` starting traffic.
    ``expectations``
        Iterable of :class:`Expectation`; evaluated after the run.
    """

    def __init__(
        self,
        build,
        plan=None,
        drive=None,
        duration_ns=10 * MS,
        expectations=(),
        audit_interval_ns=100 * US,
        audit_mode="record",
        max_stall_ns=2 * MS,
        max_age_ns=5 * MS,
    ):
        self.build = build
        self.plan = plan
        self.drive = drive
        self.duration_ns = duration_ns
        self.expectations = list(expectations)
        self.audit_interval_ns = audit_interval_ns
        self.audit_mode = audit_mode
        self.max_stall_ns = max_stall_ns
        self.max_age_ns = max_age_ns

    def run(self):
        topo = self.build()
        fabric = getattr(topo, "fabric", topo)
        registry = install_default_auditors(
            fabric,
            interval_ns=self.audit_interval_ns,
            mode=self.audit_mode,
            max_stall_ns=self.max_stall_ns,
            max_age_ns=self.max_age_ns,
        ).start()
        injector = (
            self.plan.apply(fabric) if self.plan is not None else FaultInjector(fabric)
        )
        if self.drive is not None:
            self.drive(topo)
        fabric.sim.run(until=fabric.sim.now + self.duration_ns)
        registry.audit_now()  # one final sweep at the horizon
        registry.stop()
        outcome = ScenarioOutcome(topo, fabric, registry, injector, failures=[])
        for expectation in self.expectations:
            if not expectation.satisfied(outcome):
                outcome.failures.append(expectation.description)
        return outcome


__all__ = [
    "FaultPlan",
    "FaultScenario",
    "ScenarioOutcome",
    "Expectation",
    "expect_invariant_holds",
    "expect_invariant_violated",
    "expect_nic_watchdog",
    "expect_switch_watchdog",
    "expect_that",
    "MATCHERS",
]
