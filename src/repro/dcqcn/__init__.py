"""DCQCN congestion control (Zhu et al., SIGCOMM 2015 -- reference [42]).

The paper deploys DCQCN so that "small queue lengths reduce the PFC
generation and propagation probability" (section 2).  DCQCN has three
roles, mapped onto this codebase as:

* **CP (congestion point)** -- the switch marks ECN-capable packets by
  RED on the instantaneous egress queue: :class:`repro.switch.ecn.EcnConfig`.
* **NP (notification point)** -- the receiving transport returns at most
  one CNP per 50 us per QP when it sees CE marks:
  ``QueuePair._maybe_send_cnp`` in :mod:`repro.rdma.qp`.
* **RP (reaction point)** -- the sending QP's rate machine, implemented
  here: multiplicative decrease on CNP, then fast recovery / additive
  increase / hyper increase driven by a timer and a byte counter.
"""

from repro.dcqcn.rp import DcqcnConfig, ReactionPoint, enable_dcqcn

__all__ = ["DcqcnConfig", "ReactionPoint", "enable_dcqcn"]
