"""The DCQCN reaction point: per-QP rate control.

State per QP: current rate RC, target rate RT, and the congestion
estimate alpha.  The control law (DCQCN paper, section 5):

On every CNP::

    RT    <- RC
    RC    <- RC * (1 - alpha / 2)
    alpha <- (1 - g) * alpha + g
    (rate-increase state resets)

Alpha decays toward zero while no CNPs arrive (one step per
``alpha_timer_ns``)::

    alpha <- (1 - g) * alpha

Rate increases are driven by two independent event streams -- a timer
(every ``rate_timer_ns``) and a byte counter (every ``byte_counter_bytes``
sent).  Counting events since the last CNP as ``T`` (timer) and ``B``
(byte):

* **fast recovery** (both <= F):  RC <- (RT + RC) / 2
* **additive increase** (one > F):  RT += R_AI, then RC <- (RT + RC)/2
* **hyper increase** (both > F):  RT += R_HAI, then RC <- (RT + RC)/2
"""

from repro.sim.timer import Timer
from repro.sim.units import MB, US
from repro.telemetry.hooks import HUB as _TELEMETRY
from repro.tracing.hooks import HUB as _TRACE


class DcqcnConfig:
    """DCQCN RP parameters (defaults follow the DCQCN paper's table)."""

    def __init__(
        self,
        g=1.0 / 256,
        alpha_timer_ns=55 * US,
        rate_timer_ns=300 * US,
        byte_counter_bytes=10 * MB,
        fast_recovery_steps=5,
        rate_ai_bps=40 * 10**6,
        rate_hai_bps=400 * 10**6,
        min_rate_bps=40 * 10**6,
    ):
        self.g = g
        self.alpha_timer_ns = alpha_timer_ns
        self.rate_timer_ns = rate_timer_ns
        self.byte_counter_bytes = byte_counter_bytes
        self.fast_recovery_steps = fast_recovery_steps
        self.rate_ai_bps = rate_ai_bps
        self.rate_hai_bps = rate_hai_bps
        self.min_rate_bps = min_rate_bps


class ReactionPoint:
    """Rate state machine for one sending QP."""

    def __init__(self, sim, line_rate_bps, config=None):
        self.sim = sim
        self.config = config or DcqcnConfig()
        self.line_rate_bps = line_rate_bps
        self.rc = float(line_rate_bps)  # current (enforced) rate
        self.rt = float(line_rate_bps)  # target rate
        self.alpha = 1.0
        self._timer_events = 0
        self._byte_events = 0
        self._bytes_since_event = 0
        self._alpha_timer = Timer(sim, self._on_alpha_timer, name="dcqcn.alpha")
        self._rate_timer = Timer(sim, self._on_rate_timer, name="dcqcn.rate")
        # Counters.
        self.cnps_handled = 0
        self.rate_decreases = 0
        self.rate_increases = 0
        # Telemetry attribution: the owning host's name (set by
        # :func:`enable_dcqcn`; "" for standalone RPs in unit tests).
        self.owner = ""

    @property
    def rate_bps(self):
        """The rate the QP paces at."""
        return int(self.rc)

    @property
    def at_line_rate(self):
        return self.rc >= self.line_rate_bps

    # -- CNP (congestion) ---------------------------------------------------------

    def on_cnp(self):
        """Multiplicative decrease + alpha rise; resets increase state."""
        config = self.config
        self.cnps_handled += 1
        self.rate_decreases += 1
        self.rt = self.rc
        self.rc = max(config.min_rate_bps, self.rc * (1 - self.alpha / 2))
        self.alpha = (1 - config.g) * self.alpha + config.g
        self._timer_events = 0
        self._byte_events = 0
        self._bytes_since_event = 0
        self._alpha_timer.start(config.alpha_timer_ns)
        self._rate_timer.start(config.rate_timer_ns)
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_rate_decrease(self)
        if _TRACE.enabled:
            _TRACE.session.on_rate_decrease(self)

    # -- quiet-period dynamics ------------------------------------------------------

    def _on_alpha_timer(self):
        self.alpha = (1 - self.config.g) * self.alpha
        if self.alpha > 1e-6 or not self.at_line_rate:
            self._alpha_timer.start(self.config.alpha_timer_ns)

    def _on_rate_timer(self):
        self._timer_events += 1
        self._increase()
        if not self.at_line_rate:
            self._rate_timer.start(self.config.rate_timer_ns)

    def on_bytes_sent(self, nbytes):
        """QP hook: drives the byte-counter event stream."""
        if self.at_line_rate:
            return
        self._bytes_since_event += nbytes
        if self._bytes_since_event >= self.config.byte_counter_bytes:
            self._bytes_since_event -= self.config.byte_counter_bytes
            self._byte_events += 1
            self._increase()

    def _increase(self):
        config = self.config
        f = config.fast_recovery_steps
        timer_past = self._timer_events > f
        byte_past = self._byte_events > f
        if timer_past and byte_past:
            self.rt = min(self.line_rate_bps, self.rt + config.rate_hai_bps)
        elif timer_past or byte_past:
            self.rt = min(self.line_rate_bps, self.rt + config.rate_ai_bps)
        # Fast recovery halves the distance to the target in every stage.
        self.rc = min(self.line_rate_bps, (self.rt + self.rc) / 2)
        self.rate_increases += 1

    def __repr__(self):
        return "ReactionPoint(rc=%.0f, rt=%.0f, alpha=%.4f)" % (self.rc, self.rt, self.alpha)


def enable_dcqcn(qp, config=None):
    """Attach a reaction point to a connected QP.

    Must be called after the QP's host is wired to its ToR (the RP needs
    the line rate).  Returns the :class:`ReactionPoint`.
    """
    link = qp.host.nic.port.link
    if link is None:
        raise RuntimeError("enable_dcqcn: host %s is not connected yet" % qp.host.name)
    rp = ReactionPoint(qp.sim, line_rate_bps=link.rate_bps, config=config)
    rp.owner = qp.host.name
    qp.rp = rp
    return rp
