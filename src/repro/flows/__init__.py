"""Flow-level modelling for fabric-scale experiments.

Figure 7 runs 3072 QPs over 1152 servers -- far beyond what packet-level
simulation needs to answer the question the paper asks of it, because
the paper itself attributes the result to ECMP hash placement: "This 60%
limitation is caused by ECMP hash collision, not PFC or HOL blocking."

So this subpackage reproduces figure 7 the way the bottleneck actually
works: hash every QP onto its path (:mod:`~repro.flows.clos_model`),
then compute the max-min fair rate allocation over link capacities
(:mod:`~repro.flows.maxmin`) -- which is what a converged, lossless,
DCQCN-controlled fabric settles to.
"""

from repro.flows.clos_model import ClosFlowModel, ClosFlowResult
from repro.flows.maxmin import max_min_allocation

__all__ = ["max_min_allocation", "ClosFlowModel", "ClosFlowResult"]
