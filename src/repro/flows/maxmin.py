"""Max-min fair rate allocation (progressive water-filling).

Given links with capacities and flows that each traverse a set of links,
repeatedly saturate the most-contended link: every unfrozen flow through
it gets an equal share of its remaining capacity, those flows freeze,
and the procedure recurses on what is left.  The result is the unique
max-min fair allocation -- the equilibrium a lossless fabric with
per-flow congestion control (DCQCN) approximates.
"""


def max_min_allocation(link_capacities, flow_paths):
    """Compute max-min fair rates.

    ``link_capacities``
        Mapping link-id -> capacity (any consistent unit).
    ``flow_paths``
        One iterable of link-ids per flow.

    Returns a list of per-flow rates in the same order.

    Raises :class:`ValueError` for an empty capacity map (with flows to
    place) or a non-positive capacity, and :class:`KeyError` when a path
    references an unknown link -- garbage capacities would otherwise
    surface as silently wrong allocations deep inside a sweep.
    """
    remaining = dict(link_capacities)
    for link, capacity in remaining.items():
        if not capacity > 0:
            raise ValueError(
                "link %r has non-positive capacity %r" % (link, capacity)
            )
    flow_paths = [list(path) for path in flow_paths]
    if not remaining and any(flow_paths):
        raise ValueError("no link capacities given, but flows have paths")
    flows_on_link = {link: set() for link in remaining}
    for idx, path in enumerate(flow_paths):
        for link in path:
            if link not in flows_on_link:
                raise KeyError("flow %d uses unknown link %r" % (idx, link))
            flows_on_link[link].add(idx)
    rates = [None] * len(flow_paths)
    unfrozen = {idx for idx, path in enumerate(flow_paths) if path}
    for idx, path in enumerate(flow_paths):
        if not path:
            rates[idx] = 0.0
    while unfrozen:
        # The binding link: smallest fair share among links with flows.
        best_link = None
        best_share = None
        for link, flows in flows_on_link.items():
            active = flows & unfrozen
            if not active:
                continue
            share = remaining[link] / len(active)
            if best_share is None or share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            # Flows whose every link lost all other flows: capped by
            # nothing else; give each the min remaining capacity on its
            # path (cannot happen with the loop above, defensive).
            for idx in unfrozen:
                rates[idx] = min(remaining[link] for link in flow_paths[idx])
            break
        saturated = flows_on_link[best_link] & unfrozen
        for idx in saturated:
            rates[idx] = best_share
            unfrozen.discard(idx)
            for link in flow_paths[idx]:
                remaining[link] -= best_share
        # Guard against float drift leaving tiny negative capacities.
        remaining[best_link] = 0.0
        for link in remaining:
            if remaining[link] < 0:
                remaining[link] = 0.0
    return rates


def link_utilization(link_capacities, flow_paths, rates):
    """Utilization (0..1) per link given an allocation."""
    load = {link: 0.0 for link in link_capacities}
    for path, rate in zip(flow_paths, rates):
        for link in path:
            load[link] += rate
    return {
        link: (load[link] / cap if cap else 0.0)
        for link, cap in link_capacities.items()
    }
