"""Max-min fair rate allocation (progressive water-filling).

Given links with capacities and flows that each traverse a set of links,
repeatedly saturate the most-contended link: every unfrozen flow through
it gets an equal share of its remaining capacity, those flows freeze,
and the procedure recurses on what is left.  The result is the unique
max-min fair allocation -- the equilibrium a lossless fabric with
per-flow congestion control (DCQCN) approximates.

Two entry points:

* :func:`max_min_allocation` -- the from-scratch reference: builds all
  indexing state per call, scans every link per round.  Simple,
  auditable, O(links x rounds).
* :class:`MaxMinSolver` -- the incremental engine behind
  :mod:`repro.flowsim`: per-link membership indexes are maintained
  across :meth:`~MaxMinSolver.add_flow`/:meth:`~MaxMinSolver.remove_flow`
  calls (no per-solve rebuild), flows carry integer *weights* (k
  same-path flows collapse into one entry), and the water-filling uses a
  lazy share heap with early exit once every flow froze -- the solve
  cost scales with the flows actually placed, not with fabric size.
"""

import heapq


def max_min_allocation(link_capacities, flow_paths, weights=None):
    """Compute max-min fair rates.

    ``link_capacities``
        Mapping link-id -> capacity (any consistent unit).
    ``flow_paths``
        One iterable of link-ids per flow.
    ``weights``
        Optional positive integer per flow: a weight-k flow stands for k
        identical flows on that path and the returned rate is the
        *per-unit* rate (each of the k flows gets it).  Default all 1.

    Returns a list of per-flow rates in the same order.

    Raises :class:`ValueError` for an empty capacity map (with flows to
    place), a non-positive capacity, or a non-positive weight, and
    :class:`KeyError` when a path references an unknown link -- garbage
    capacities would otherwise surface as silently wrong allocations
    deep inside a sweep.
    """
    remaining = dict(link_capacities)
    for link, capacity in remaining.items():
        if not capacity > 0:
            raise ValueError(
                "link %r has non-positive capacity %r" % (link, capacity)
            )
    flow_paths = [list(path) for path in flow_paths]
    if weights is None:
        weights = [1] * len(flow_paths)
    else:
        weights = list(weights)
        if len(weights) != len(flow_paths):
            raise ValueError(
                "%d weights for %d flows" % (len(weights), len(flow_paths))
            )
        for idx, weight in enumerate(weights):
            if not weight > 0:
                raise ValueError("flow %d has non-positive weight %r" % (idx, weight))
    if not remaining and any(flow_paths):
        raise ValueError("no link capacities given, but flows have paths")
    flows_on_link = {link: set() for link in remaining}
    for idx, path in enumerate(flow_paths):
        for link in path:
            if link not in flows_on_link:
                raise KeyError("flow %d uses unknown link %r" % (idx, link))
            flows_on_link[link].add(idx)
    rates = [None] * len(flow_paths)
    unfrozen = {idx for idx, path in enumerate(flow_paths) if path}
    for idx, path in enumerate(flow_paths):
        if not path:
            rates[idx] = 0.0
    while unfrozen:
        # The binding link: smallest fair share among links with flows.
        best_link = None
        best_share = None
        for link, flows in flows_on_link.items():
            active = flows & unfrozen
            if not active:
                continue
            share = remaining[link] / sum(weights[idx] for idx in active)
            if best_share is None or share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            # Flows whose every link lost all other flows: capped by
            # nothing else; give each the min remaining capacity on its
            # path (cannot happen with the loop above, defensive).
            for idx in unfrozen:
                rates[idx] = min(remaining[link] for link in flow_paths[idx])
            break
        saturated = flows_on_link[best_link] & unfrozen
        for idx in saturated:
            rates[idx] = best_share
            unfrozen.discard(idx)
            for link in flow_paths[idx]:
                remaining[link] -= best_share * weights[idx]
        # Guard against float drift leaving tiny negative capacities.
        remaining[best_link] = 0.0
        for link in remaining:
            if remaining[link] < 0:
                remaining[link] = 0.0
    return rates


class MaxMinSolver:
    """Incremental max-min state: add/remove flows without rebuilding.

    The per-link membership index (which flows cross which link, and the
    link's total unfrozen weight) is maintained across mutations, so a
    churny caller -- the flow-level simulator recomputing rates at every
    arrival/completion -- pays O(path length) per mutation instead of
    O(total flows) per solve for indexing.

    :meth:`solve` runs progressive filling with a lazy min-share heap:
    each active link is pushed with its current fair share; stale heap
    entries (the link's membership changed since the push) are skipped
    via a version counter; the fill stops as soon as every flow froze,
    so links that are never anyone's bottleneck are never frozen.  The
    result matches :func:`max_min_allocation` (same fixpoint; float
    rounding may differ in the last bits because links freeze in heap
    order rather than scan order).
    """

    __slots__ = ("_capacity", "_members", "_weights", "_paths", "_next_id")

    def __init__(self, link_capacities):
        self._capacity = {}
        self._members = {}
        for link, capacity in link_capacities.items():
            if not capacity > 0:
                raise ValueError(
                    "link %r has non-positive capacity %r" % (link, capacity)
                )
            self._capacity[link] = capacity
            self._members[link] = set()
        self._weights = {}
        self._paths = {}
        self._next_id = 0

    # -- mutations --------------------------------------------------------------

    def add_link(self, link, capacity):
        """Add (or re-rate) one link; existing flows keep their paths."""
        if not capacity > 0:
            raise ValueError("link %r has non-positive capacity %r" % (link, capacity))
        self._capacity[link] = capacity
        self._members.setdefault(link, set())

    def add_flow(self, path, weight=1):
        """Register one flow (or ``weight`` identical flows); returns its id."""
        if not weight > 0:
            raise ValueError("non-positive weight %r" % (weight,))
        # Dedup while preserving order: a link crossed "twice" constrains
        # the flow once (the reference's per-link membership is a set).
        path = tuple(dict.fromkeys(path))
        for link in path:
            if link not in self._capacity:
                raise KeyError("flow uses unknown link %r" % (link,))
        flow_id = self._next_id
        self._next_id += 1
        self._paths[flow_id] = path
        self._weights[flow_id] = weight
        for link in path:
            self._members[link].add(flow_id)
        return flow_id

    def remove_flow(self, flow_id):
        """Withdraw one flow; its links keep their other members."""
        path = self._paths.pop(flow_id)
        self._weights.pop(flow_id)
        for link in path:
            self._members[link].discard(flow_id)

    def set_weight(self, flow_id, weight):
        """Change a flow's weight in place (k arrivals on one path)."""
        if not weight > 0:
            raise ValueError("non-positive weight %r" % (weight,))
        if flow_id not in self._paths:
            raise KeyError(flow_id)
        self._weights[flow_id] = weight

    def weight(self, flow_id):
        return self._weights[flow_id]

    def path(self, flow_id):
        return self._paths[flow_id]

    def flow_ids(self):
        return list(self._paths)

    def __len__(self):
        return len(self._paths)

    # -- solving ----------------------------------------------------------------

    def solve(self):
        """Per-unit max-min rates for every registered flow.

        Returns ``{flow_id: rate}``.  Zero-length paths get rate 0.0.
        """
        weights = self._weights
        paths = self._paths
        rates = {}
        # Per-link unfrozen weight, only for links someone crosses.
        link_weight = {}
        remaining = {}
        for flow_id, path in paths.items():
            if not path:
                rates[flow_id] = 0.0
                continue
            for link in path:
                if link in link_weight:
                    link_weight[link] += weights[flow_id]
                else:
                    link_weight[link] = weights[flow_id]
                    remaining[link] = self._capacity[link]
        unfrozen = len(paths) - len(rates)
        if not unfrozen:
            return rates
        # Lazy share heap: (share, version, link).  A popped entry is
        # live only if its version matches the link's current one.
        version = {link: 0 for link in link_weight}
        heap = [
            (remaining[link] / total, 0, link)
            for link, total in link_weight.items()
        ]
        heapq.heapify(heap)
        members = self._members
        frozen = set()
        while unfrozen and heap:
            share, ver, link = heapq.heappop(heap)
            if version[link] != ver or link_weight[link] <= 0:
                continue
            # Freeze every still-unfrozen flow on this link at `share`.
            for flow_id in members[link]:
                if flow_id in rates:
                    continue
                rates[flow_id] = share
                unfrozen -= 1
                flow_weight = weights[flow_id]
                for other in paths[flow_id]:
                    if other == link:
                        continue
                    if other in frozen:
                        continue
                    link_weight[other] -= flow_weight
                    left = remaining[other] - share * flow_weight
                    remaining[other] = left if left > 0 else 0.0
                    version[other] += 1
                    if link_weight[other] > 0:
                        heapq.heappush(
                            heap,
                            (remaining[other] / link_weight[other],
                             version[other], other),
                        )
            frozen.add(link)
            link_weight[link] = 0
            remaining[link] = 0.0
        if unfrozen:
            # Defensive (mirrors the reference): flows whose every link
            # lost all competitors get their path's remaining minimum.
            for flow_id, path in paths.items():
                if flow_id not in rates:
                    rates[flow_id] = min(remaining.get(link, 0.0) for link in path)
        return rates


def link_utilization(link_capacities, flow_paths, rates):
    """Utilization (0..1) per link given an allocation."""
    load = {link: 0.0 for link in link_capacities}
    for path, rate in zip(flow_paths, rates):
        for link in path:
            load[link] += rate
    return {
        link: (load[link] / cap if cap else 0.0)
        for link, cap in link_capacities.items()
    }
