"""The figure 7 experiment at flow level.

Topology (paper section 5.4): two podsets, each with 24 ToRs and 4 Leaf
switches; the 4 leaves fan out to 64 spines (16 each); all links 40 GbE.
ToR oversubscription 6:1, leaf oversubscription 3:2.  ToR ``i`` of
podset 0 is paired with ToR ``i`` of podset 1; 8 servers per ToR each
run 8 QPs to their counterpart, every QP sending as fast as possible --
3072 QPs over the 128 leaf-spine links.

Path of a podset-0 -> podset-1 flow:

    server -> ToR          (server link, shared by that server's QPs)
    ToR    -> Leaf l0      ECMP over 4 uplinks (five-tuple hash)
    Leaf   -> Spine s      ECMP over 16 uplinks
    Spine  -> Leaf l1      determined (spine s serves exactly one leaf
                           per podset)
    Leaf   -> ToR          determined (direct port)
    ToR    -> server       determined

The leaf-spine hops are the stated bottleneck; ToR uplinks are included
too (they are also oversubscribed).  Rates come from max-min fairness.
"""

from repro.sim.units import GBPS
from repro.switch.ecmp import ecmp_select
from repro.sim.rng import SeededRng
from repro.flows.maxmin import link_utilization, max_min_allocation

ROCEV2_PORT = 4791
UDP_PROTO = 17


class ClosFlowResult:
    """Outcome of one direction-pair evaluation."""

    def __init__(self, rates_bps, paths, link_capacities, n_leaf_spine_links):
        self.rates_bps = rates_bps
        self.paths = paths
        self.link_capacities = link_capacities
        self.n_leaf_spine_links = n_leaf_spine_links

    @property
    def aggregate_bps(self):
        return sum(self.rates_bps)

    @property
    def leaf_spine_capacity_bps(self):
        """The paper's "total 5.12Tb/s network capacity": the 128
        physical leaf-spine links at 40 Gb/s each (each direction of
        traffic can use at most one side's uplinks + the other side's
        downlinks, so physical-links x rate is the right denominator)."""
        return sum(
            cap for link, cap in self.link_capacities.items() if link[0] == "leaf-spine"
        )

    @property
    def utilization(self):
        """Aggregate throughput / leaf-spine capacity: the paper's 60%."""
        return self.aggregate_bps / self.leaf_spine_capacity_bps

    def per_server_gbps(self, qps_per_server=8):
        """Mean per-server throughput in Gb/s (paper: ~8 Gb/s)."""
        n_servers = len(self.rates_bps) // qps_per_server
        return self.aggregate_bps / n_servers / GBPS

    def frames_per_second(self, frame_bytes=1086, payload_bytes=1024):
        """The y-axis of figure 7(b): aggregate frames/second.

        ``rates`` are goodput-equivalent; a 1086-byte frame carries 1024
        payload bytes, so frames/s = aggregate_bps / (8 * payload).
        """
        return self.aggregate_bps / (8 * payload_bytes)

    def leaf_spine_link_loads(self):
        loads = link_utilization(
            self.link_capacities,
            self.paths,
            self.rates_bps,
        )
        return {
            link: value
            for link, value in loads.items()
            if link[0] in ("leaf-spine", "spine-leaf")
        }


class ClosFlowModel:
    """Parameterized figure 7 model."""

    def __init__(
        self,
        tor_pairs=24,
        servers_per_tor=8,
        qps_per_server=8,
        leaves_per_podset=4,
        n_spines=64,
        tor_uplinks=4,
        link_bps=40 * GBPS,
        seed=1,
        bidirectional=True,
    ):
        if n_spines % leaves_per_podset:
            raise ValueError("n_spines must divide evenly across leaves")
        self.tor_pairs = tor_pairs
        self.servers_per_tor = servers_per_tor
        self.qps_per_server = qps_per_server
        self.leaves_per_podset = leaves_per_podset
        self.n_spines = n_spines
        self.spines_per_leaf = n_spines // leaves_per_podset
        self.tor_uplinks = tor_uplinks
        self.link_bps = link_bps
        self.seed = seed
        self.bidirectional = bidirectional

    # -- link naming ------------------------------------------------------------
    # ("server", podset, tor, server, direction)
    # ("tor-leaf", podset, tor, leaf)       ToR uplink toward a leaf
    # ("leaf-tor", podset, tor, leaf)       leaf downlink toward a ToR
    # ("leaf-spine", podset, leaf, spine)   leaf uplink
    # ("spine-leaf", podset, leaf, spine)   spine downlink into a podset

    def _build_links(self):
        links = {}
        for podset in (0, 1):
            for tor in range(self.tor_pairs):
                for server in range(self.servers_per_tor):
                    links[("server", podset, tor, server, "up")] = self.link_bps
                    links[("server", podset, tor, server, "down")] = self.link_bps
                for leaf in range(self.leaves_per_podset):
                    links[("tor-leaf", podset, tor, leaf)] = self.link_bps
                    links[("leaf-tor", podset, tor, leaf)] = self.link_bps
            for leaf in range(self.leaves_per_podset):
                for spine in range(
                    leaf * self.spines_per_leaf, (leaf + 1) * self.spines_per_leaf
                ):
                    links[("leaf-spine", podset, leaf, spine)] = self.link_bps
                    links[("spine-leaf", podset, leaf, spine)] = self.link_bps
        return links

    def _flow_paths(self, src_podset):
        """Hash every QP of one traffic direction onto its path."""
        rng = SeededRng(self.seed, "sports/%d" % src_podset)
        dst_podset = 1 - src_podset
        # Per-switch hash seeds (deterministic from the model seed).
        tor_seed = {}
        leaf_seed = {}
        for podset in (0, 1):
            for tor in range(self.tor_pairs):
                tor_seed[(podset, tor)] = (self.seed * 7919 + podset * 131 + tor) & 0xFFFFFFFF
            for leaf in range(self.leaves_per_podset):
                leaf_seed[(podset, leaf)] = (self.seed * 104729 + podset * 17 + leaf) & 0xFFFFFFFF
        paths = []
        for tor in range(self.tor_pairs):
            for server in range(self.servers_per_tor):
                src_ip = (10 << 24) | (src_podset << 16) | (tor << 8) | (server + 1)
                dst_ip = (10 << 24) | (dst_podset << 16) | (tor << 8) | (server + 1)
                for _qp in range(self.qps_per_server):
                    sport = rng.randint(49152, 65535)
                    tup = (src_ip, dst_ip, UDP_PROTO, sport, ROCEV2_PORT)
                    leaf = ecmp_select(tup, self.tor_uplinks, tor_seed[(src_podset, tor)])
                    spine_local = ecmp_select(
                        tup, self.spines_per_leaf, leaf_seed[(src_podset, leaf)]
                    )
                    spine = leaf * self.spines_per_leaf + spine_local
                    # The spine serves the same leaf index in the other
                    # podset; the leaf reaches the target ToR directly.
                    paths.append(
                        [
                            ("server", src_podset, tor, server, "up"),
                            ("tor-leaf", src_podset, tor, leaf),
                            ("leaf-spine", src_podset, leaf, spine),
                            ("spine-leaf", dst_podset, leaf, spine),
                            ("leaf-tor", dst_podset, tor, leaf),
                            ("server", dst_podset, tor, server, "down"),
                        ]
                    )
        return paths

    def run(self, allocation="pfc-uniform"):
        """Place flows and compute rates under an allocation model.

        ``"pfc-uniform"`` (default, matches the paper)
            All QPs converge to the same rate, set by the fair share of
            the most contended link.  This is what the paper's fabric
            exhibits: PFC backpressure from the hottest leaf-spine link
            propagates into shared upstream queues, and DCQCN with
            uniform parameters equalizes the survivors -- the measured
            signature is "every server was sending and receiving at
            8 Gb/s", i.e. *uniform* per-flow rates, with aggregate
            utilization pinned near 60% by hash imbalance.

        ``"maxmin"``
            Idealized per-bottleneck max-min fairness (what perfect
            per-flow congestion control without PFC coupling could
            reach).  Useful as the ablation upper bound: it shows hash
            collisions alone cost far less than the coupled system
            loses.
        """
        links = self._build_links()
        paths = self._flow_paths(src_podset=0)
        if self.bidirectional:
            paths.extend(self._flow_paths(src_podset=1))
        if allocation == "maxmin":
            rates = max_min_allocation(links, paths)
        elif allocation == "pfc-uniform":
            rates = self._uniform_allocation(links, paths)
        elif allocation == "per-packet":
            rates = self._per_packet_allocation(paths)
        else:
            raise ValueError("unknown allocation model: %r" % (allocation,))
        n_leaf_spine = 2 * self.leaves_per_podset * self.spines_per_leaf
        return ClosFlowResult(rates, paths, links, n_leaf_spine)

    def _per_packet_allocation(self, paths):
        """Idealized per-packet load balancing (the paper's section 8.1
        future work: "there are MPTCP and per-packet routing for better
        network utilization").  Spraying makes the leaf-spine layer one
        fluid pipe, so every flow gets an equal share of the layer
        capacity, bounded by its 40G NIC.
        """
        per_direction_flows = len(paths) // (2 if self.bidirectional else 1)
        layer_capacity = self.leaves_per_podset * self.spines_per_leaf * self.link_bps
        fair = layer_capacity / per_direction_flows
        nic_share = self.link_bps / self.qps_per_server
        rate = min(fair, nic_share)
        return [rate] * len(paths)

    @staticmethod
    def _uniform_allocation(links, paths):
        """One common rate: the fair share of the most contended link."""
        flow_counts = {}
        for path in paths:
            for link in path:
                flow_counts[link] = flow_counts.get(link, 0) + 1
        rate = min(
            links[link] / count for link, count in flow_counts.items()
        )
        return [rate] * len(paths)
