"""Flow-level fast-path simulator (the second simulation tier).

The packet engine (:mod:`repro.sim`) models every frame; this package
models every *flow*: arrivals and completions drive incremental max-min
rate recomputation (:class:`repro.flows.maxmin.MaxMinSolver`) over an
analytic capacity graph, with first-order ECN/DCQCN and aggregate-PFC
models standing in for per-packet congestion control.  Three orders of
magnitude faster -- a 4096-host Clos with 50k flows runs in seconds --
and cross-validated against the packet engine by the differential lane
in :mod:`repro.validation.flowsim_lane`.  Model fidelity and its limits
are documented in docs/flowsim.md.

* :mod:`~repro.flowsim.engine` -- the event loop (:class:`FlowSim`).
* :mod:`~repro.flowsim.topo` -- analytic topologies mirroring
  :mod:`repro.topo.builders` (:class:`FlowTopology`).
* :mod:`~repro.flowsim.models` -- the DCQCN utilization factor and the
  PFC pause-fraction / congestion-spreading model.
* ``python -m repro.flowsim`` -- scale scenarios from the command line.
"""

from repro.flowsim.engine import FlowSim, FlowsimRun
from repro.flowsim.models import dcqcn_capacity_factor, pfc_link_model
from repro.flowsim.topo import (
    EFFICIENCY,
    FlowTopology,
    clos_flow,
    single_switch_flow,
    two_tier_flow,
)

__all__ = [
    "FlowSim",
    "FlowsimRun",
    "FlowTopology",
    "single_switch_flow",
    "two_tier_flow",
    "clos_flow",
    "dcqcn_capacity_factor",
    "pfc_link_model",
    "EFFICIENCY",
]
