"""First-order congestion-control models for the flow-level simulator.

The packet engine simulates DCQCN's control law and PFC's pause frames
per event; at flow level both collapse into capacity adjustments:

* **ECN/DCQCN** (:func:`dcqcn_capacity_factor`): at steady state a
  DCQCN-governed bottleneck runs a shallow sawtooth around the ECN
  marking point -- each marked congestion episode cuts the rate by
  ``alpha/2`` and fast recovery climbs back, so the time-average sits
  below the marking point by about a quarter of the cut.  With one
  alpha update per episode the congestion estimate settles near ``g``,
  giving utilization ``1 - g/4`` (the DCQCN paper's fluid model lands
  >99% for the default ``g = 1/256``; see docs/flowsim.md for what this
  deliberately ignores).
* **PFC** (:func:`pfc_link_model`): unresponsive fixed-rate senders that
  oversubscribe a link do not lose packets -- they pause it upstream.
  The model turns overload into a per-link *pause fraction*
  ``p = 1 - capacity/demand``, propagates it upstream along the
  offending flows' paths (bounded hops -- headroom and buffering
  absorb the rest), and hands the rate solver correspondingly shrunken
  capacities.  Responsive flows that merely share an upstream link with
  the congested tree lose throughput without being oversubscribed
  anywhere themselves -- the paper's congestion-spreading victim
  (section 4.3 / figure 8), reproduced analytically.
"""


def dcqcn_capacity_factor(config=None):
    """Steady-state utilization factor (0..1] of an ECN-marked bottleneck.

    ``config`` is a :class:`repro.dcqcn.rp.DcqcnConfig` (default
    parameters if None).  Only ``g`` enters at first order: the
    steady-state congestion estimate is ~``g`` (one marked alpha-update
    per sawtooth period), each cut removes ``alpha/2`` of the rate, and
    the triangular sawtooth averages half the cut below the peak.
    """
    if config is None:
        g = 1.0 / 256
    else:
        g = config.g
    if not 0.0 < g <= 1.0:
        raise ValueError("DCQCN g out of range: %r" % (g,))
    return 1.0 - g / 4.0


#: Never hand the solver a dead link: a fully paused/consumed link keeps
#: this fraction of its wire rate (control traffic trickles through as
#: pauses toggle; also keeps the max-min solve well-posed).
RESIDUAL_FLOOR = 1e-3


def pfc_link_model(capacities, fixed_groups, propagation_hops=2):
    """Aggregate-PFC capacity adjustment for unresponsive traffic.

    ``capacities``
        Mapping link id -> capacity (goodput bps).
    ``fixed_groups``
        Iterable of ``(path, total_rate)`` -- unresponsive aggregates
        (e.g. an incast fan-in) with the *total* offered rate of the
        group on that path, in the same unit as ``capacities``.
    ``propagation_hops``
        How many hops upstream a paused link's pause fraction spreads
        along the offending paths.  PFC is hop-by-hop: the first
        upstream queue fills first, and each tier of headroom damps the
        spread, so the reach is short but nonzero (figure 8 needs one
        hop to make victims).

    Returns ``(residual, realized, pause)``:

    * ``residual`` -- link id -> capacity left for *responsive* flows
      (>= ``RESIDUAL_FLOOR`` of the original; only links the model
      touched appear -- look up misses mean "unchanged").
    * ``realized`` -- per input group, the fraction (0..1] of its
      offered rate actually delivered (min over its path of
      ``capacity/demand``, then damped by inherited upstream pause).
    * ``pause`` -- link id -> effective pause fraction (own overload
      combined with inherited downstream pause), for reporting.
    """
    fixed_groups = list(fixed_groups)
    demand = {}
    for path, rate in fixed_groups:
        if rate < 0:
            raise ValueError("negative fixed rate %r" % (rate,))
        for link in path:
            if link not in capacities:
                raise KeyError("fixed flow uses unknown link %r" % (link,))
            demand[link] = demand.get(link, 0.0) + rate
    # Own overload: the fraction of time this link's upstream senders
    # must be paused for arrivals to match capacity.
    own_pause = {}
    for link, load in demand.items():
        cap = capacities[link]
        if load > cap:
            own_pause[link] = 1.0 - cap / load
    # Upstream inheritance: walking each offending path, a link within
    # ``propagation_hops`` upstream of paused links inherits their
    # combined pause (independent-fraction combination: 1 - prod(1-p)).
    pause = dict(own_pause)
    inherited_pause = {}
    if own_pause:
        for path, _rate in fixed_groups:
            for i, link in enumerate(path):
                clear = 1.0
                for j in range(i + 1, min(len(path), i + 1 + propagation_hops)):
                    clear *= 1.0 - own_pause.get(path[j], 0.0)
                inherited = 1.0 - clear
                if inherited > 0.0:
                    if inherited > inherited_pause.get(link, 0.0):
                        inherited_pause[link] = inherited
                    combined = 1.0 - (1.0 - own_pause.get(link, 0.0)) * (1.0 - inherited)
                    if combined > pause.get(link, 0.0):
                        pause[link] = combined
    # Delivered fraction per group: throttled to the worst link on the
    # path, further damped by pause inherited from *other* trees.
    realized = []
    for path, rate in fixed_groups:
        frac = 1.0
        for link in path:
            cap = capacities[link]
            load = demand.get(link, 0.0)
            if load > cap:
                frac = min(frac, cap / load)
        realized.append(frac if rate > 0 else 1.0)
    # Residual capacity for responsive flows: pause-scaled wire minus
    # the fixed traffic actually delivered through the link.
    residual = {}
    delivered = {}
    for (path, rate), frac in zip(fixed_groups, realized):
        for link in path:
            delivered[link] = delivered.get(link, 0.0) + rate * frac
    # A link's *own* overload already shows up as delivered fixed bytes,
    # so only pause inherited from downstream scales the usable time --
    # counting both would charge the same stall twice.
    for link in sorted(set(pause) | set(delivered)):
        cap = capacities[link]
        left = cap * (1.0 - inherited_pause.get(link, 0.0)) - delivered.get(link, 0.0)
        floor = cap * RESIDUAL_FLOOR
        residual[link] = left if left > floor else floor
    return residual, realized, pause
