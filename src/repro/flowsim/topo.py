"""Analytic topologies for the flow-level simulator.

A :class:`FlowTopology` is just a capacity graph plus a path function:
directed links (identified by ``"A>B"`` strings), each with a wire rate,
and ``path(src, dst, sport)`` resolving the links a five-tuple's packets
would traverse.  The builders mirror the wiring and routing of the
packet-level builders in :mod:`repro.topo.builders` -- same device
names, same host IP plan (:func:`repro.topo.fabric.host_ip`), same
up-down routing, and the same CRC five-tuple ECMP hash
(:func:`repro.switch.ecmp.ecmp_select`) with a per-switch seed -- but
no devices are instantiated, so a 4096-host Clos costs a dict, not a
packet simulator.

ECMP seeds are pinned to ``crc32(switch_name)`` (the convention
:mod:`repro.bench` uses to pin live fabrics for cross-process
determinism), so path selection is a pure function of (topology shape,
five-tuple) -- no live-fabric RNG draw order involved.  Paths therefore
match a *seed-pinned* packet fabric, not an arbitrary one; the
differential lane (:mod:`repro.validation.flowsim_lane`) sidesteps this
entirely by feeding flowsim the paths traced from the live fabric.
"""

import zlib

from repro.sim.units import gbps
from repro.switch.ecmp import ecmp_select
from repro.topo.fabric import host_ip

#: Goodput payload bytes per wire byte, identical to the differential
#: harness constant (1024-byte MTU payload in a 1086-byte framed slot).
EFFICIENCY = 1024 / 1086.0

UDP_PROTO = 17
ROCEV2_PORT = 4791


def _seed(name):
    """Per-switch ECMP seed: stable across processes and runs."""
    return zlib.crc32(name.encode("ascii"))


def link_id(a, b):
    """Directed link identifier for the hop ``a -> b``."""
    return a + ">" + b


class FlowTopology:
    """Capacity graph + path resolver for :class:`repro.flowsim.FlowSim`.

    ``links``
        Mapping directed-link id -> wire rate (bits/second).
    ``hosts``
        List of host names; flows address endpoints by index.
    ``host_ips``
        Parallel list of IPv4 ints (the packet fabric's address plan).
    """

    __slots__ = ("name", "links", "hosts", "host_ips", "_path_fn")

    def __init__(self, name, links, hosts, host_ips, path_fn):
        self.name = name
        self.links = links
        self.hosts = hosts
        self.host_ips = host_ips
        self._path_fn = path_fn

    @property
    def n_hosts(self):
        return len(self.hosts)

    @property
    def n_links(self):
        return len(self.links)

    def five_tuple(self, src, dst, sport):
        return (self.host_ips[src], self.host_ips[dst], UDP_PROTO,
                sport, ROCEV2_PORT)

    def path(self, src, dst, sport):
        """Directed link ids the flow ``(src, dst, sport)`` traverses."""
        if src == dst:
            raise ValueError("flow from host %r to itself" % (src,))
        return self._path_fn(src, dst, self.five_tuple(src, dst, sport))

    def goodput_capacities(self, efficiency=EFFICIENCY, factor=1.0):
        """Link capacities in goodput bits/second (for the rate solver)."""
        scale = efficiency * factor
        return {link: rate * scale for link, rate in self.links.items()}

    def __repr__(self):
        return "FlowTopology(%r, %d hosts, %d links)" % (
            self.name, self.n_hosts, self.n_links,
        )


def single_switch_flow(n_hosts=2, rate_bps=None):
    """N hosts under one ToR -- mirrors :func:`repro.topo.single_switch`."""
    rate = rate_bps or gbps(40)
    tor = "T0"
    hosts = ["S%d" % i for i in range(n_hosts)]
    host_ips = [host_ip(0, 0, i) for i in range(n_hosts)]
    links = {}
    for name in hosts:
        links[link_id(name, tor)] = rate
        links[link_id(tor, name)] = rate

    def path_fn(src, dst, five_tuple):
        return (link_id(hosts[src], tor), link_id(tor, hosts[dst]))

    return FlowTopology("single_switch/%d" % n_hosts, links, hosts, host_ips, path_fn)


def two_tier_flow(n_tors=2, hosts_per_tor=4, n_leaves=4, rate_bps=None):
    """ToRs each uplinked to every leaf -- mirrors :func:`repro.topo.two_tier`.

    Routing: same-ToR traffic turns around at the ToR; cross-ToR traffic
    ECMPs over all leaves at the source ToR (default route up) and comes
    straight down at the leaf (direct subnet route).
    """
    rate = rate_bps or gbps(40)
    tors = ["T%d" % t for t in range(n_tors)]
    leaves = ["L%d" % l for l in range(n_leaves)]
    hosts, host_ips, host_tor = [], [], []
    for t in range(n_tors):
        for h in range(hosts_per_tor):
            hosts.append("T%d-S%d" % (t, h))
            host_ips.append(host_ip(0, t, h))
            host_tor.append(t)
    links = {}
    for idx, name in enumerate(hosts):
        tor = tors[host_tor[idx]]
        links[link_id(name, tor)] = rate
        links[link_id(tor, name)] = rate
    for tor in tors:
        for leaf in leaves:
            links[link_id(tor, leaf)] = rate
            links[link_id(leaf, tor)] = rate
    tor_seeds = [_seed(t) for t in tors]

    def path_fn(src, dst, five_tuple):
        t_src, t_dst = host_tor[src], host_tor[dst]
        up = link_id(hosts[src], tors[t_src])
        down = link_id(tors[t_dst], hosts[dst])
        if t_src == t_dst:
            return (up, down)
        leaf = leaves[ecmp_select(five_tuple, n_leaves, tor_seeds[t_src])]
        return (up, link_id(tors[t_src], leaf), link_id(leaf, tors[t_dst]), down)

    return FlowTopology(
        "two_tier/%dx%d" % (n_tors, hosts_per_tor), links, hosts, host_ips, path_fn
    )


def clos_flow(
    n_podsets=2,
    tors_per_podset=2,
    hosts_per_tor=2,
    leaves_per_podset=2,
    n_spines=4,
    rate_bps=None,
):
    """3-tier Clos -- mirrors :func:`repro.topo.three_tier_clos`.

    Wiring: leaf ``l`` of every podset connects to spines
    ``[l*spl, (l+1)*spl)`` where ``spl = n_spines / leaves_per_podset``.
    Routing: ToR ECMPs up over its podset's leaves; a leaf routes its
    own podset's ToR subnets straight down and ECMPs remote traffic over
    its ``spl`` spines; a spine reaches every podset through the one
    leaf it is wired to.
    """
    if n_spines % leaves_per_podset:
        raise ValueError("n_spines must be a multiple of leaves_per_podset")
    spl = n_spines // leaves_per_podset
    rate = rate_bps or gbps(40)
    spines = ["SP%d" % s for s in range(n_spines)]
    tor_name = lambda p, t: "P%dT%d" % (p, t)
    leaf_name = lambda p, l: "P%dL%d" % (p, l)
    hosts, host_ips, host_loc = [], [], []
    links = {}
    for p in range(n_podsets):
        for t in range(tors_per_podset):
            tor = tor_name(p, t)
            for h in range(hosts_per_tor):
                name = "P%dT%d-S%d" % (p, t, h)
                hosts.append(name)
                host_ips.append(host_ip(p, t, h))
                host_loc.append((p, t))
                links[link_id(name, tor)] = rate
                links[link_id(tor, name)] = rate
            for l in range(leaves_per_podset):
                leaf = leaf_name(p, l)
                links[link_id(tor, leaf)] = rate
                links[link_id(leaf, tor)] = rate
        for l in range(leaves_per_podset):
            leaf = leaf_name(p, l)
            for s in range(l * spl, (l + 1) * spl):
                links[link_id(leaf, spines[s])] = rate
                links[link_id(spines[s], leaf)] = rate
    tor_seeds = {
        (p, t): _seed(tor_name(p, t))
        for p in range(n_podsets) for t in range(tors_per_podset)
    }
    leaf_seeds = {
        (p, l): _seed(leaf_name(p, l))
        for p in range(n_podsets) for l in range(leaves_per_podset)
    }

    def path_fn(src, dst, five_tuple):
        p_src, t_src = host_loc[src]
        p_dst, t_dst = host_loc[dst]
        src_tor, dst_tor = tor_name(p_src, t_src), tor_name(p_dst, t_dst)
        up = link_id(hosts[src], src_tor)
        down = link_id(dst_tor, hosts[dst])
        if (p_src, t_src) == (p_dst, t_dst):
            return (up, down)
        # ToR: ECMP over the podset's leaves (default route up).
        l = ecmp_select(five_tuple, leaves_per_podset, tor_seeds[(p_src, t_src)])
        src_leaf = leaf_name(p_src, l)
        if p_src == p_dst:
            # The leaf routes its own podset's ToR subnets directly.
            return (up, link_id(src_tor, src_leaf),
                    link_id(src_leaf, dst_tor), down)
        # Leaf: ECMP over its spine group; the spine descends through the
        # single leaf (same index l) it is wired to in the target podset.
        s = l * spl + ecmp_select(five_tuple, spl, leaf_seeds[(p_src, l)])
        dst_leaf = leaf_name(p_dst, l)
        return (
            up,
            link_id(src_tor, src_leaf),
            link_id(src_leaf, spines[s]),
            link_id(spines[s], dst_leaf),
            link_id(dst_leaf, dst_tor),
            down,
        )

    return FlowTopology(
        "clos/%dx%dx%d" % (n_podsets, tors_per_podset, hosts_per_tor),
        links, hosts, host_ips, path_fn,
    )
