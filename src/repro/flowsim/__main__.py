"""``python -m repro.flowsim`` -- run the flow-level simulator at scale.

Subcommands::

    scale      the F1 datacenter scenario (4096-host Clos, 50k+ flows)
    figure7    the F2 cross-check against the analytic Clos model

``scale --repeat N`` reruns the identical scenario and demands
byte-identical fingerprints -- the determinism check CI leans on.
"""

import argparse
import sys
import time

from repro.experiments.flowsim_scale import run_flowsim_figure7, run_flowsim_scale


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.flowsim",
        description="Flow-level fast-path simulator scenarios",
    )
    sub = parser.add_subparsers(dest="command")

    scale = sub.add_parser("scale", help="datacenter-scale Clos run (F1)")
    _scale_args(scale)
    # `python -m repro.flowsim --seed 2` (no subcommand) runs scale.
    _scale_args(parser)

    fig7 = sub.add_parser("figure7", help="flowsim vs analytic Clos model (F2)")
    fig7.add_argument("--seed", type=int, default=1)
    return parser


def _scale_args(parser):
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workload", default="storage")
    parser.add_argument("--podsets", type=int, default=8)
    parser.add_argument("--tors", type=int, default=16, help="ToRs per podset")
    parser.add_argument("--hosts", type=int, default=32, help="hosts per ToR")
    parser.add_argument("--flows-per-pair", type=int, default=13)
    parser.add_argument(
        "--interval-us", type=int, default=2000,
        help="rate-update interval (0 = exact mode)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="rerun N times and require identical fingerprints",
    )
    parser.add_argument(
        "--budget-s", type=float, default=None,
        help="fail if any run's wall time exceeds this many seconds",
    )


def _cmd_scale(args):
    fingerprints = []
    for attempt in range(args.repeat):
        started = time.monotonic()
        result = run_flowsim_scale(
            seed=args.seed,
            workload=args.workload,
            n_podsets=args.podsets,
            tors_per_podset=args.tors,
            hosts_per_tor=args.hosts,
            flows_per_pair=args.flows_per_pair,
            rate_update_interval_us=args.interval_us,
        )
        wall = time.monotonic() - started
        row = result.rows()[0]
        fingerprints.append(row["fingerprint"])
        print(
            "run %d/%d: wall=%.1fs hosts=%d flows=%d completed=%d "
            "events=%d recomputes=%d sim=%.1fms fingerprint=%s"
            % (
                attempt + 1, args.repeat, wall, row["hosts"], row["flows"],
                row["completed"], row["events"], row["recomputes"],
                row["sim_ms"], row["fingerprint"],
            )
        )
        sys.stdout.flush()
        if row["completed"] != row["flows"]:
            print("FAIL: %d flow(s) never completed"
                  % (row["flows"] - row["completed"]))
            return 1
        if args.budget_s is not None and wall > args.budget_s:
            print("FAIL: wall time %.1fs exceeds budget %.1fs"
                  % (wall, args.budget_s))
            return 1
    if len(set(fingerprints)) > 1:
        print("FAIL: fingerprints diverged across identical runs: %s"
              % ", ".join(fingerprints))
        return 1
    if args.repeat > 1:
        print("deterministic: %d identical fingerprints" % args.repeat)
    return 0


def _cmd_figure7(args):
    result = run_flowsim_figure7(seed=args.seed)
    print(result.format_table())
    by_view = {row["view"]: row for row in result.rows()}
    rel_err = by_view["model-paths"]["max_rel_err"]
    if rel_err > 1e-6:
        print("FAIL: flowsim diverges from the analytic max-min allocation "
              "(max rel err %.2e)" % rel_err)
        return 1
    return 0


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "figure7":
        return _cmd_figure7(args)
    return _cmd_scale(args)


if __name__ == "__main__":
    sys.exit(main())
