"""Event-driven flow-level simulator.

The unit of work is a *flow*, not a frame: the only events are flow
arrivals, predicted flow completions, and (optionally) periodic rate
updates.  Between events every flow transfers bytes at its current
max-min fair rate, recomputed with the incremental solver
(:class:`repro.flows.maxmin.MaxMinSolver`) when the flow set changes.

Scaling machinery (what makes 50k flows on a 4096-host Clos take
seconds, not hours):

* **Path groups** -- flows on an identical path are one weighted solver
  entry; a group tracks the *cumulative per-flow service* ``S(t)`` (bytes
  each member has transferred), so a flow arriving at ``t0`` with size
  ``B`` completes exactly when ``S(t) == S(t0) + B`` -- a constant
  threshold computed once at arrival.  Thresholds live in a per-group
  min-heap; only each group's minimum needs a scheduled event.
* **Lazy predicted completions** -- a completion event carries the
  group's rate *version*; any rate change bumps the version and pushes a
  fresh prediction, so stale events are dropped in O(1) on pop.
* **Batched rate updates** -- with ``rate_update_interval_ns=0`` (exact
  mode) rates are recomputed after every batch of same-instant events
  and the simulator's steady-state rates are *exactly* the solver's
  max-min allocation.  With an interval, recomputation happens at the
  next interval boundary after a change; new groups meanwhile run at a
  provisional rate (fair share of their most loaded link), which is the
  documented fidelity trade for datacenter scale (docs/flowsim.md).

Congestion-control models: responsive flows split capacities already
scaled by the first-order DCQCN factor
(:func:`repro.flowsim.models.dcqcn_capacity_factor`); *fixed-rate*
flows (``fixed_rate_bps``) are unresponsive -- they do not join the
max-min split, and when they oversubscribe a link the PFC model
(:func:`repro.flowsim.models.pfc_link_model`) converts the overload
into pause fractions that shrink the capacities responsive flows see,
reproducing congestion-spreading victims.

All times are integer nanoseconds; determinism fingerprints are built
from integer quantities only.
"""

import heapq
import struct
import zlib

from repro.flows.maxmin import MaxMinSolver
from repro.flowsim.models import pfc_link_model

#: Threshold-comparison slack in bytes: far below the 1-byte size
#: granularity, far above double rounding at realistic magnitudes.
_EPS_BYTES = 1e-3

_ARRIVAL, _CHECK, _TICK = 0, 1, 2


class _Group:
    """Flows sharing one path (and responsiveness class)."""

    __slots__ = (
        "index", "path", "fixed_rate", "members", "rate", "s0", "t_last",
        "thresholds", "version", "solver_id",
    )

    def __init__(self, index, path, fixed_rate):
        self.index = index
        self.path = path
        self.fixed_rate = fixed_rate  # None = responsive (max-min)
        self.members = 0
        self.rate = 0.0  # current per-flow goodput bps
        self.s0 = 0.0  # cumulative per-flow service (bytes) at t_last
        self.t_last = 0
        self.thresholds = []  # heap of (threshold_bytes, flow_id)
        self.version = 0
        self.solver_id = None

    def service_at(self, t_ns):
        return self.s0 + self.rate * (t_ns - self.t_last) / 8e9

    def advance(self, t_ns):
        self.s0 = self.service_at(t_ns)
        self.t_last = t_ns


class FlowsimRun:
    """Summary of one :meth:`FlowSim.run`: counters + determinism digest."""

    __slots__ = (
        "n_events", "n_recomputes", "n_completed", "n_active",
        "total_bytes", "sum_fct_ns", "max_fct_ns", "sim_ns", "completion_crc",
    )

    def __init__(self, n_events, n_recomputes, n_completed, n_active,
                 total_bytes, sum_fct_ns, max_fct_ns, sim_ns, completion_crc):
        self.n_events = n_events
        self.n_recomputes = n_recomputes
        self.n_completed = n_completed
        self.n_active = n_active
        self.total_bytes = total_bytes
        self.sum_fct_ns = sum_fct_ns
        self.max_fct_ns = max_fct_ns
        self.sim_ns = sim_ns
        self.completion_crc = completion_crc

    def fingerprint(self):
        """Machine-independent tuple of integers (byte-identical reruns)."""
        return (
            self.n_events, self.n_recomputes, self.n_completed, self.n_active,
            self.total_bytes, self.sum_fct_ns, self.max_fct_ns, self.sim_ns,
            self.completion_crc,
        )

    def to_dict(self):
        return {
            "n_events": self.n_events,
            "n_recomputes": self.n_recomputes,
            "n_completed": self.n_completed,
            "n_active": self.n_active,
            "total_bytes": self.total_bytes,
            "sum_fct_ns": self.sum_fct_ns,
            "max_fct_ns": self.max_fct_ns,
            "sim_ns": self.sim_ns,
            "completion_crc": self.completion_crc,
        }


class FlowSim:
    """The flow-level simulator.

    ``link_capacities``
        Mapping link id -> capacity for responsive traffic, in goodput
        bits/second (callers apply wire->goodput efficiency and the
        DCQCN factor; :meth:`from_topology` does both).
    ``rate_update_interval_ns``
        0 = exact mode (recompute at every event batch); > 0 = batched
        recomputation at interval boundaries (scale mode).
    ``pfc_propagation_hops``
        Upstream reach of the aggregate PFC pause model.
    """

    def __init__(self, link_capacities, rate_update_interval_ns=0,
                 pfc_propagation_hops=2, topology=None):
        if rate_update_interval_ns < 0:
            raise ValueError("negative rate_update_interval_ns")
        self._base_caps = dict(link_capacities)
        self._caps = dict(link_capacities)  # base overlaid with PFC residuals
        self._solver = MaxMinSolver(self._base_caps)
        self._interval = rate_update_interval_ns
        self._pfc_hops = pfc_propagation_hops
        self.topology = topology
        self._heap = []  # (t_ns, seq, kind, a, b)
        self._seq = 0
        self._groups = {}  # (path, fixed_rate) -> _Group
        self._group_list = []
        self._link_weight = {}  # link -> active responsive flow count
        self._flows = {}  # flow_id -> (group, size_bytes, start_ns)
        self._next_flow_id = 0
        self._dirty = False
        self._fixed_dirty = False
        self._tick_pending = False
        self._scaled_links = ()
        self.now = 0
        self.n_events = 0
        self.n_recomputes = 0
        self.completed = []  # (flow_id, start_ns, finish_ns, size_bytes)
        self.pause_fractions = {}

    @classmethod
    def from_topology(cls, topology, rate_update_interval_ns=0,
                      efficiency=None, capacity_factor=1.0,
                      pfc_propagation_hops=2):
        """Build over a :class:`repro.flowsim.topo.FlowTopology`."""
        from repro.flowsim.topo import EFFICIENCY
        caps = topology.goodput_capacities(
            efficiency=EFFICIENCY if efficiency is None else efficiency,
            factor=capacity_factor,
        )
        return cls(caps, rate_update_interval_ns=rate_update_interval_ns,
                   pfc_propagation_hops=pfc_propagation_hops, topology=topology)

    # -- workload -----------------------------------------------------------

    def add_flow(self, path, size_bytes, start_ns=0, fixed_rate_bps=None):
        """Schedule one flow; returns its id.

        ``path`` is an ordered iterable of link ids; ``size_bytes`` is
        goodput payload.  ``fixed_rate_bps`` makes the flow unresponsive
        (PFC model) instead of max-min responsive.
        """
        path = tuple(path)
        if not path:
            raise ValueError("flow with empty path")
        for link in path:
            if link not in self._base_caps:
                raise KeyError("flow uses unknown link %r" % (link,))
        size_bytes = int(size_bytes)
        if size_bytes < 1:
            raise ValueError("flow size must be >= 1 byte, got %r" % (size_bytes,))
        start_ns = int(start_ns)
        if start_ns < self.now:
            raise ValueError("arrival %d before current time %d" % (start_ns, self.now))
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self._push(start_ns, _ARRIVAL, flow_id, (path, size_bytes, fixed_rate_bps))
        return flow_id

    def add_host_flow(self, src, dst, size_bytes, start_ns=0, sport=49152,
                      fixed_rate_bps=None):
        """Topology-addressed :meth:`add_flow` (endpoints by host index)."""
        if self.topology is None:
            raise ValueError("add_host_flow needs a topology")
        path = self.topology.path(src, dst, sport)
        return self.add_flow(path, size_bytes, start_ns=start_ns,
                             fixed_rate_bps=fixed_rate_bps)

    # -- event plumbing -----------------------------------------------------

    def _push(self, t_ns, kind, a, b):
        self._seq += 1
        heapq.heappush(self._heap, (t_ns, self._seq, kind, a, b))

    def _predict(self, group, from_ns):
        """Schedule a completion check for the group's minimum threshold."""
        if not group.thresholds or group.rate <= 0.0:
            return
        theta = group.thresholds[0][0]
        gap_bytes = theta - group.s0
        t_f = group.t_last + gap_bytes * 8e9 / group.rate
        t_check = int(t_f)
        if t_check < t_f:
            t_check += 1
        if t_check < from_ns:
            t_check = from_ns
        self._push(t_check, _CHECK, group.index, group.version)

    def _mark_dirty(self, t_ns):
        self._dirty = True
        if self._interval and not self._tick_pending:
            self._tick_pending = True
            self._push((t_ns // self._interval + 1) * self._interval,
                       _TICK, 0, None)

    # -- event handlers -----------------------------------------------------

    def _on_arrival(self, t_ns, flow_id, spec):
        path, size_bytes, fixed_rate = spec
        key = (path, fixed_rate)
        group = self._groups.get(key)
        if group is None:
            group = _Group(len(self._group_list), path, fixed_rate)
            group.t_last = t_ns
            self._groups[key] = group
            self._group_list.append(group)
        fresh = group.members == 0
        group.members += 1
        if fixed_rate is None:
            weights = self._link_weight
            for link in path:
                weights[link] = weights.get(link, 0) + 1
            if group.solver_id is None:
                group.solver_id = self._solver.add_flow(path, weight=group.members)
            else:
                self._solver.set_weight(group.solver_id, group.members)
            if fresh:
                # Provisional until the next recompute: fair share of the
                # most loaded link on the path (exact mode replaces it
                # within this same instant's batch).
                group.advance(t_ns)
                group.version += 1
                group.rate = min(
                    self._caps[link] / weights[link] for link in path
                )
        else:
            self._fixed_dirty = True
        threshold = group.service_at(t_ns) + size_bytes
        was_min = not group.thresholds or threshold < group.thresholds[0][0]
        heapq.heappush(group.thresholds, (threshold, flow_id))
        self._flows[flow_id] = (group, size_bytes, t_ns)
        self._mark_dirty(t_ns)
        if was_min and group.rate > 0.0:
            self._predict(group, t_ns)

    def _on_check(self, t_ns, group_index, version):
        group = self._group_list[group_index]
        if version != group.version:
            return  # superseded by a rate change
        due = group.service_at(t_ns) + _EPS_BYTES
        thresholds = group.thresholds
        popped = False
        while thresholds and thresholds[0][0] <= due:
            _theta, flow_id = heapq.heappop(thresholds)
            self._complete(flow_id, t_ns)
            popped = True
        if popped:
            self._mark_dirty(t_ns)
        self._predict(group, t_ns + 1)

    def _complete(self, flow_id, t_ns):
        group, size_bytes, start_ns = self._flows.pop(flow_id)
        self.completed.append((flow_id, start_ns, t_ns, size_bytes))
        group.members -= 1
        if group.fixed_rate is None:
            weights = self._link_weight
            for link in group.path:
                weights[link] -= 1
            if group.members:
                self._solver.set_weight(group.solver_id, group.members)
            else:
                self._solver.remove_flow(group.solver_id)
                group.solver_id = None
                group.advance(t_ns)
                group.rate = 0.0
                group.version += 1
        else:
            self._fixed_dirty = True

    # -- rate recomputation -------------------------------------------------

    def _refresh_fixed(self, t_ns):
        fixed = [
            (g, (g.path, g.members * g.fixed_rate))
            for g in self._group_list
            if g.fixed_rate is not None and g.members
        ]
        residual, realized, pause = pfc_link_model(
            self._base_caps, [spec for _g, spec in fixed],
            propagation_hops=self._pfc_hops,
        )
        self.pause_fractions = pause
        # Re-rate the solver's links: restore anything previously scaled
        # that the model no longer touches, then apply the new residuals.
        caps = self._caps
        for link in self._scaled_links:
            if link not in residual:
                caps[link] = self._base_caps[link]
                self._solver.add_link(link, caps[link])
        for link, cap in residual.items():
            caps[link] = cap
            self._solver.add_link(link, cap)
        self._scaled_links = tuple(residual)
        for (group, _spec), frac in zip(fixed, realized):
            group.advance(t_ns)
            group.rate = group.fixed_rate * frac
            group.version += 1
            self._predict(group, t_ns)
        # Emptied fixed groups stop accruing service.
        for group in self._group_list:
            if group.fixed_rate is not None and not group.members and group.rate:
                group.advance(t_ns)
                group.rate = 0.0
                group.version += 1

    def _recompute(self, t_ns):
        if self._fixed_dirty:
            self._refresh_fixed(t_ns)
            self._fixed_dirty = False
        rates = self._solver.solve()
        for group in self._group_list:
            if group.fixed_rate is not None or group.solver_id is None:
                continue
            group.advance(t_ns)
            group.rate = rates[group.solver_id]
            group.version += 1
            self._predict(group, t_ns)
        self._dirty = False
        self.n_recomputes += 1

    # -- running ------------------------------------------------------------

    def run(self, until_ns=None):
        """Process events (up to ``until_ns``, inclusive); returns a
        :class:`FlowsimRun`."""
        heap = self._heap
        while heap and (until_ns is None or heap[0][0] <= until_ns):
            t_ns = heap[0][0]
            self.now = t_ns
            tick = False
            while heap and heap[0][0] == t_ns:
                _t, _seq, kind, a, b = heapq.heappop(heap)
                self.n_events += 1
                if kind == _ARRIVAL:
                    self._on_arrival(t_ns, a, b)
                elif kind == _CHECK:
                    self._on_check(t_ns, a, b)
                else:
                    self._tick_pending = False
                    tick = True
            if (self._dirty or self._fixed_dirty) and (not self._interval or tick):
                self._recompute(t_ns)
        if until_ns is not None and until_ns > self.now:
            self.now = until_ns
        return self.result()

    def result(self):
        total_bytes = 0
        sum_fct = 0
        max_fct = 0
        crc = 0
        pack = struct.Struct("<QQ").pack
        for flow_id, start_ns, finish_ns, size_bytes in self.completed:
            total_bytes += size_bytes
            fct = finish_ns - start_ns
            sum_fct += fct
            if fct > max_fct:
                max_fct = fct
            crc = zlib.crc32(pack(flow_id, finish_ns), crc)
        return FlowsimRun(
            n_events=self.n_events,
            n_recomputes=self.n_recomputes,
            n_completed=len(self.completed),
            n_active=len(self._flows),
            total_bytes=total_bytes,
            sum_fct_ns=sum_fct,
            max_fct_ns=max_fct,
            sim_ns=self.now,
            completion_crc=crc,
        )

    # -- inspection ---------------------------------------------------------

    def current_rates(self):
        """Per-flow goodput bps of every still-active flow.

        In exact mode, after any processed batch, these are exactly the
        incremental solver's max-min rates for the active flow set (plus
        the PFC model's fixed-flow rates).
        """
        return {fid: group.rate for fid, (group, _size, _t0) in self._flows.items()}

    def active_flow_paths(self):
        return {fid: group.path for fid, (group, _size, _t0) in self._flows.items()}

    def link_utilization(self):
        """Responsive+fixed load over base capacity, per link with load."""
        load = {}
        for group in self._group_list:
            if not group.members or group.rate <= 0.0:
                continue
            group_rate = group.rate * group.members
            for link in group.path:
                load[link] = load.get(link, 0.0) + group_rate
        return {
            link: rate / self._base_caps[link] for link, rate in load.items()
        }
