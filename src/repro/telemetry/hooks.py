"""The global telemetry hub: the single is-enabled gate the hot paths check.

Every instrumented module (``net/port.py``, ``switch/{buffer,pfc,ecn,
switch}.py``, ``nic/nic.py``, ``rdma/qp.py``, ``dcqcn/rp.py``) imports
:data:`HUB` once at module load and guards each probe with one attribute
test::

    from repro.telemetry.hooks import HUB as _TELEMETRY
    ...
    if _TELEMETRY.enabled:
        _TELEMETRY.session.on_pause_rx(port, pauses, resumes, duration_ns)

``HUB.enabled`` is a plain bool on a ``__slots__`` object, so the
disabled path costs one load + one branch and nothing else: no event is
scheduled, no RNG drawn, no counter touched -- which is what keeps every
bench fingerprint in ``benchmarks/BASELINE.json`` byte-identical with
telemetry off (asserted by ``tests/test_telemetry.py``).

This module is deliberately import-light (stdlib only, no simulator or
device imports) so the device layers can depend on it without cycles.
The session/registry machinery lives in the sibling modules and is only
reached *through* the hub while a session is active.

Lifecycle
---------
``enabled``/``session`` are set by :class:`~repro.telemetry.session.
TelemetrySession.start` and cleared by ``stop``.  ``armed`` holds a
pending :class:`~repro.telemetry.session.TelemetryConfig`: while set,
:func:`maybe_attach` (called from ``Fabric.boot``) auto-attaches a new
session to every fabric that boots -- that is how the bench, campaign,
validation and experiment CLIs opt whole runs into collection without
threading a flag through every runner.  Finished sessions accumulate in
``completed`` until :func:`drain` collects their artifact lines.
"""


class TelemetryHub:
    """Process-global mutable telemetry state (one per interpreter)."""

    __slots__ = ("enabled", "session", "armed", "completed")

    def __init__(self):
        self.enabled = False
        self.session = None
        self.armed = None
        self.completed = []


#: The one hub instance.  Hot paths alias it as ``_TELEMETRY``.
HUB = TelemetryHub()


def arm(config=None):
    """Arm auto-attach: every subsequent ``Fabric.boot()`` starts a
    telemetry session on that fabric (closing the previous one first).
    Pass a :class:`~repro.telemetry.session.TelemetryConfig` to tune
    intervals/thresholds; ``None`` uses defaults.  Returns the config.
    """
    from repro.telemetry.session import TelemetryConfig

    if config is None:
        config = TelemetryConfig()
    HUB.armed = config
    return config


def disarm():
    """Stop auto-attaching; closes any live session into ``completed``."""
    HUB.armed = None
    if HUB.session is not None:
        HUB.session.stop()


def maybe_attach(fabric):
    """Called by ``Fabric.boot``: attach a session when the hub is armed.

    A still-open previous session (the armed CLIs run scenario after
    scenario) is closed first so its artifact lands in ``completed``.
    Returns the new session, or None when the hub is not armed.
    """
    if HUB.armed is None:
        return None
    if HUB.session is not None:
        HUB.session.stop()
    from repro.telemetry.session import TelemetrySession

    return TelemetrySession(fabric, HUB.armed).start()


def drain():
    """Collect and clear every finished session's artifact lines.

    Closes the live session (if any) first.  Returns a list with one
    entry per session, each a list of artifact record dicts in emission
    order (meta line first).
    """
    if HUB.session is not None:
        HUB.session.stop()
    artifacts = [session.artifact_records() for session in HUB.completed]
    HUB.completed = []
    return artifacts
