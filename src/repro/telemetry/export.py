"""Telemetry artifact serialization: JSONL (canonical), CSV, Prometheus.

The canonical artifact is a JSONL file of typed records in emission
order (see docs/telemetry.md for the full schema)::

    {"type": "meta", "schema": "repro-telemetry/1", ...}
    {"type": "metric", "name": "port.pause_tx", "kind": "counter", ...}
    {"type": "sample", "t_ns": ..., "device": "h0", "values": {...}}
    {"type": "event", "kind": "nic_watchdog_trip", ...}
    {"type": "incident", "kind": "pause_storm", ...}
    {"type": "summary", "t_end_ns": ..., "incidents": {...}, ...}

CSV and Prometheus text are derived views: CSV flattens the sample
records (one row per (t_ns, device, metric)), Prometheus renders the
summary totals in exposition format for scraping-style consumers.
Everything round-trips through plain dicts so ``python -m
repro.telemetry replay`` can re-run the detectors offline.
"""

import json
import os


def write_jsonl(records, path):
    """Write one artifact (list of record dicts) as JSONL."""
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_jsonl(path):
    """Load an artifact back into a list of record dicts."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_artifacts(record_lists, out_dir, stem):
    """Write one ``<stem>-<i>.telemetry.jsonl`` per drained session.

    ``record_lists`` is what :func:`repro.telemetry.drain` returns (one
    record list per collection session).  This is the common tail of
    every CLI integration -- bench, campaign, validation and the
    experiment runner all funnel their drained sessions through here so
    artifacts look the same no matter which harness produced them.
    Returns the written paths (empty when no session attached, e.g. a
    flowsim-only run that never boots a packet fabric).
    """
    paths = []
    for index, records in enumerate(record_lists):
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "%s-%d.telemetry.jsonl" % (stem, index))
        write_jsonl(records, path)
        paths.append(path)
    return paths


def incident_count(record_lists):
    """Total incident records across drained sessions (for CLI summaries)."""
    return sum(
        1
        for records in record_lists
        for record in records
        if record.get("type") == "incident"
    )


def split_records(records):
    """Group an artifact's records by type into a dict of lists."""
    groups = {"meta": [], "metric": [], "sample": [], "event": [],
              "incident": [], "summary": []}
    for record in records:
        groups.setdefault(record.get("type", "unknown"), []).append(record)
    return groups


def write_csv(records, path):
    """Flatten the sample records to CSV: ``t_ns,device,metric,value``."""
    lines = ["t_ns,device,metric,value"]
    for record in records:
        if record.get("type") != "sample":
            continue
        t_ns = record["t_ns"]
        device = record["device"]
        for metric, value in sorted(record["values"].items()):
            lines.append("%d,%s,%s,%s" % (t_ns, device, metric, value))
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def _sanitize(name):
    return name.replace(".", "_").replace("-", "_")


def prometheus_text(records):
    """Final totals in Prometheus exposition format.

    Counters/gauges come from the summary record's ``totals`` map
    (``name|device`` keys become a ``device`` label); histograms export
    ``_count`` and ``_sum``.  Incident counts are exported as
    ``repro_incidents_total{kind=...}``.
    """
    groups = split_records(records)
    by_name = {m["name"]: m for m in groups["metric"]}
    lines = []
    if not groups["summary"]:
        return ""
    summary = groups["summary"][-1]
    seen_headers = set()
    for key, value in summary.get("totals", {}).items():
        name, _, device = key.partition("|")
        spec = by_name.get(name, {})
        metric = "repro_" + _sanitize(name)
        if metric not in seen_headers:
            seen_headers.add(metric)
            lines.append("# HELP %s %s" % (metric, spec.get("help", "")))
            kind = spec.get("kind", "gauge")
            lines.append("# TYPE %s %s" % (
                metric, "counter" if kind == "counter" else
                "histogram" if kind == "histogram" else "gauge"))
        label = '{device="%s"}' % device if device else ""
        if isinstance(value, dict):  # histogram
            lines.append("%s_count%s %d" % (metric, label, value["count"]))
            lines.append("%s_sum%s %d" % (metric, label, value["total"]))
        else:
            lines.append("%s%s %s" % (metric, label, value))
    incidents = summary.get("incidents", {})
    if incidents:
        lines.append("# HELP repro_incidents_total detector incidents by kind")
        lines.append("# TYPE repro_incidents_total counter")
        for kind, count in sorted(incidents.items()):
            lines.append('repro_incidents_total{kind="%s"} %d' % (kind, count))
    return "\n".join(lines) + "\n"


def summarize(records):
    """Human-readable multi-line summary of one artifact."""
    groups = split_records(records)
    meta = groups["meta"][0] if groups["meta"] else {}
    summary = groups["summary"][-1] if groups["summary"] else {}
    out = []
    label = meta.get("label") or "(unlabelled)"
    out.append("telemetry artifact: %s" % label)
    out.append("  schema     %s" % meta.get("schema", "?"))
    out.append("  fabric     %d hosts, %d switches"
               % (meta.get("n_hosts", 0), meta.get("n_switches", 0)))
    t0 = meta.get("t_start_ns", 0)
    t1 = summary.get("t_end_ns", t0)
    out.append("  span       %.3f ms (poll every %.3f ms, %d samples)"
               % ((t1 - t0) / 1e6, meta.get("interval_ns", 0) / 1e6,
                  len(groups["sample"])))
    for event in groups["event"]:
        out.append("  event      t=%.3fms %-20s %s"
                   % (event["t_ns"] / 1e6, event["kind"], event["device"]))
    if groups["incident"]:
        out.append("  incidents  (%d)" % len(groups["incident"]))
        for incident in groups["incident"]:
            end = incident.get("end_ns")
            out.append(
                "    [%s] %-18s %-8s t=%.3f..%sms %s"
                % (incident.get("severity", "warn"), incident["kind"],
                   incident["device"], incident["start_ns"] / 1e6,
                   "%.3f" % (end / 1e6) if end is not None else "?",
                   _incident_detail(incident)))
    else:
        out.append("  incidents  none")
    return "\n".join(out)


def _incident_detail(incident):
    details = incident.get("details", {})
    kind = incident["kind"]
    if kind == "pause_storm":
        return "peak %.0f pause/s over %d windows" % (
            details.get("peak_rate_fps", 0), details.get("windows", 0))
    if kind == "pause_propagation":
        return "depth %d via %s" % (
            details.get("max_depth", 0),
            ",".join(details.get("frontier", []))[:60])
    if kind == "ecn_mark_rate":
        return "peak %.0f marks/s" % details.get("peak_rate_mps", 0)
    if kind == "queue_watermark":
        return "peak %.0f%% of shared pool" % (
            100 * details.get("peak_fraction", 0))
    if kind == "victim_flow":
        return "paused %.0f%% of window, origins %s" % (
            100 * details.get("paused_fraction", 0),
            ",".join(details.get("origins", [])))
    return ""


def replay_detectors(records, thresholds=None):
    """Re-run the detector stack over an artifact's sample records.

    Rebuilds the per-window delta streams from the cumulative sample
    values (no simulator needed) and returns the incident list -- the
    offline twin of the online pipeline, used by ``python -m
    repro.telemetry replay`` and the detector tests.
    """
    from repro.telemetry.detectors import DetectorThresholds, build_detectors

    groups = split_records(records)
    # Reconstruct adjacency is impossible offline; propagation detection
    # degrades to same-window co-activity via a fully-connected graph.
    devices = sorted({s["device"] for s in groups["sample"]})
    adjacency = {d: set(devices) - {d} for d in devices}
    detectors = build_detectors(thresholds or DetectorThresholds(), adjacency)

    by_time = {}
    for sample in groups["sample"]:
        by_time.setdefault(sample["t_ns"], {})[sample["device"]] = sample
    prev = {}
    prev_t = None
    last_t = 0
    for t_ns in sorted(by_time):
        window = {"t_ns": t_ns,
                  "interval_ns": (t_ns - prev_t) if prev_t is not None else 0,
                  "devices": {}}
        for device, sample in by_time[t_ns].items():
            values = sample["values"]
            deltas = {"is_host": sample.get("is_host", False)}
            before = prev.get(device, {})
            for key, value in values.items():
                if key in ("queued_bytes", "shared_in_use",
                           "headroom_in_use", "paused_pgs", "shared_size"):
                    deltas[key] = value
                else:
                    deltas[key] = value - before.get(key, 0)
            window["devices"][device] = deltas
            prev[device] = values
        if window["interval_ns"] > 0:
            for detector in detectors:
                detector.observe(window)
        prev_t = t_ns
        last_t = t_ns
    incidents = []
    for detector in detectors:
        for incident in detector.finish(last_t):
            if incident not in incidents:
                incidents.append(incident)
    incidents.sort(key=lambda i: (i.start_ns, i.kind, i.device))
    return incidents
