"""Telemetry artifact CLI: ``python -m repro.telemetry <command>``.

Commands:

``summarize ARTIFACT``
    Human-readable rendering of a telemetry JSONL artifact: run span,
    fault/watchdog events, every incident the online detectors emitted.
``replay ARTIFACT``
    Re-run the detector stack offline over the artifact's sample
    records (optionally with overridden thresholds) and print the
    resulting incidents -- lets an operator re-triage a stored run with
    tighter or looser thresholds without re-simulating.
``export ARTIFACT --format csv|prom [--out PATH]``
    Derived views: flattened CSV samples or Prometheus-style totals.
``catalog``
    The declared metric catalog (name, kind, unit, source, paper §).
``storm [--seed N] [--out DIR]``
    The worked §4.3 pause-storm demo: runs the storm experiment with
    telemetry armed, writes one artifact per scenario leg into DIR and
    summarizes them (see docs/telemetry.md for the triage walkthrough).
"""

import argparse
import os
import sys

from repro.telemetry.detectors import DetectorThresholds
from repro.telemetry.export import (
    prometheus_text,
    read_jsonl,
    replay_detectors,
    summarize,
    write_csv,
)
from repro.telemetry.registry import CATALOG


def _cmd_summarize(args):
    print(summarize(read_jsonl(args.artifact)))
    return 0


def _cmd_replay(args):
    thresholds = DetectorThresholds(
        storm_host_rate=args.storm_host_rate,
        storm_switch_rate=args.storm_switch_rate,
        storm_min_windows=args.storm_min_windows,
        watermark_fraction=args.watermark_fraction,
    )
    incidents = replay_detectors(read_jsonl(args.artifact), thresholds)
    if not incidents:
        print("replay: no incidents")
        return 0
    print("replay: %d incidents" % len(incidents))
    for incident in incidents:
        record = incident.as_record()
        print("  [%s] %-18s %-8s t=%.3f..%sms %s"
              % (record["severity"], record["kind"], record["device"],
                 record["start_ns"] / 1e6,
                 "%.3f" % (record["end_ns"] / 1e6)
                 if record["end_ns"] is not None else "?",
                 record["details"]))
    return 0


def _cmd_export(args):
    records = read_jsonl(args.artifact)
    if args.format == "csv":
        out = args.out or (os.path.splitext(args.artifact)[0] + ".csv")
        write_csv(records, out)
        print("wrote %s" % out)
    else:
        text = prometheus_text(records)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print("wrote %s" % args.out)
        else:
            sys.stdout.write(text)
    return 0


def _cmd_catalog(args):
    print("%-32s %-10s %-8s %-18s %s" % ("name", "kind", "unit", "source",
                                         "paper"))
    for spec in CATALOG:
        print("%-32s %-10s %-8s %-18s %s" % (spec.name, spec.kind, spec.unit,
                                             spec.source, spec.paper or "-"))
    return 0


def _cmd_storm(args):
    from repro import telemetry
    from repro.experiments.storm import run_storm

    os.makedirs(args.out, exist_ok=True)
    telemetry.arm(telemetry.TelemetryConfig(label="storm seed=%d" % args.seed))
    try:
        run_storm(seed=args.seed)
    finally:
        artifacts = telemetry.drain()
        telemetry.disarm()
    paths = []
    for i, records in enumerate(artifacts):
        path = os.path.join(args.out, "storm-%d.telemetry.jsonl" % i)
        telemetry.write_jsonl(records, path)
        paths.append(path)
    storms = 0
    for path in paths:
        records = read_jsonl(path)
        storms += sum(1 for r in records
                      if r.get("type") == "incident"
                      and r.get("kind") == "pause_storm")
        print(summarize(records))
        print("  artifact   %s" % path)
        print()
    if storms == 0:
        print("storm demo: expected at least one pause_storm incident",
              file=sys.stderr)
        return 1
    print("storm demo: %d pause_storm incident(s) across %d artifact(s)"
          % (storms, len(paths)))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect, replay and export telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="render an artifact for humans")
    p.add_argument("artifact")
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("replay", help="re-run detectors over an artifact")
    p.add_argument("artifact")
    defaults = DetectorThresholds()
    p.add_argument("--storm-host-rate", type=float,
                   default=defaults.storm_host_rate)
    p.add_argument("--storm-switch-rate", type=float,
                   default=defaults.storm_switch_rate)
    p.add_argument("--storm-min-windows", type=int,
                   default=defaults.storm_min_windows)
    p.add_argument("--watermark-fraction", type=float,
                   default=defaults.watermark_fraction)
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("export", help="derived CSV / Prometheus views")
    p.add_argument("artifact")
    p.add_argument("--format", choices=("csv", "prom"), default="csv")
    p.add_argument("--out")
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("catalog", help="print the metric catalog")
    p.set_defaults(fn=_cmd_catalog)

    p = sub.add_parser("storm", help="run the pause-storm triage demo")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", default="telemetry-artifacts")
    p.set_defaults(fn=_cmd_storm)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
