"""Telemetry collection: config, polling session, hook receivers.

A :class:`TelemetrySession` binds one fabric to one metric registry plus
the standard detector stack for the lifetime of a run:

* a self-rearming :class:`~repro.sim.timer.Timer` polls every device's
  counters each ``interval_ns`` (absorbing the sampling semantics of the
  old ``monitoring/counters.py`` collector, including the mandatory
  ``settle_trains()`` before reading per-port stats);
* hot-path hooks (see :mod:`repro.telemetry.hooks`) push the few signals
  polling cannot see -- pause-grant durations, ECN mark-time queue
  depths, headroom spills, CNP/NAK emission, DCQCN rate decreases,
  watchdog trips and injected faults;
* each poll closes a *window* of per-device deltas and feeds it to the
  online detectors (:mod:`repro.telemetry.detectors`);
* everything is accumulated as artifact records (meta, metric catalog,
  samples, events, incidents, summary) that the exporters in
  :mod:`repro.telemetry.export` serialize.

Polling schedules real simulator events, so an *enabled* session does
change a run's event-count fingerprint; the disabled path (no session)
schedules nothing, which is what the telemetry-off bench guard pins.
"""

from repro.sim.timer import Timer
from repro.sim.units import MS
from repro.telemetry import hooks
from repro.telemetry.detectors import DetectorThresholds, build_detectors
from repro.telemetry.registry import CATALOG, MetricRegistry

#: Counter-like sample keys (windows take deltas); everything else in a
#: sample is a gauge and passes through as-is.
_DELTA_KEYS = (
    "pause_tx", "pause_rx", "resume_tx", "resume_rx", "paused_ns",
    "tx_bytes", "rx_bytes", "ecn_marked", "drops", "rx_processed",
    "watchdog_trips",
)


class TelemetryConfig:
    """Knobs for one collection session.

    ``interval_ns``
        Poll period.  1 ms resolves the §4.3 storm signature (a broken
        NIC refreshes pauses every ~0.42 ms at 40G, so every window sees
        2-3 frames) without flooding artifacts on multi-ms runs.
    ``series_capacity``
        Ring-buffer depth per (metric, device) series.
    ``capture_samples``
        Emit per-poll ``sample`` records (detectors need them only for
        offline replay; disabling keeps artifacts tiny).
    ``thresholds``
        :class:`~repro.telemetry.detectors.DetectorThresholds`.
    ``label``
        Free-form run label stamped into the artifact ``meta`` record.
    """

    def __init__(self, interval_ns=1 * MS, series_capacity=4096,
                 capture_samples=True, thresholds=None, label=""):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.interval_ns = interval_ns
        self.series_capacity = series_capacity
        self.capture_samples = capture_samples
        self.thresholds = thresholds or DetectorThresholds()
        self.label = label


class TelemetrySession:
    """Live collection bound to one fabric (see module docstring)."""

    def __init__(self, fabric, config=None):
        self.fabric = fabric
        self.config = config or TelemetryConfig()
        self.registry = MetricRegistry(self.config.series_capacity)
        self.records = []
        self._prev = {}
        self._timer = Timer(fabric.sim, self._poll, name="telemetry")
        self._started = False
        self._stopped = False
        self._prev_t = None
        adjacency = self._adjacency(fabric)
        self.detectors = build_detectors(self.config.thresholds, adjacency)
        self.incidents = []

    @staticmethod
    def _adjacency(fabric):
        """Device-name adjacency from the wired ports (for the
        pause-propagation BFS)."""
        devices = [h.nic for h in fabric.hosts] + list(fabric.switches)
        adjacency = {}
        for device in devices:
            neighbors = set()
            for port in device.ports:
                peer = port.peer
                if peer is not None and peer.device is not None:
                    neighbors.add(peer.device.name)
            adjacency[device.name] = neighbors
        return adjacency

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Install as the hub's live session and begin polling."""
        if self._started:
            return self
        self._started = True
        sim = self.fabric.sim
        self.records.append({
            "type": "meta",
            "schema": "repro-telemetry/1",
            "label": self.config.label,
            "t_start_ns": sim.now,
            "interval_ns": self.config.interval_ns,
            "n_hosts": len(self.fabric.hosts),
            "n_switches": len(self.fabric.switches),
        })
        for spec in CATALOG:
            self.records.append(spec.as_record())
        # Baseline snapshot so the first window's deltas are exact.
        self._prev = self._collect_values()
        self._prev_t = sim.now
        self._timer.start(self.config.interval_ns)
        hooks.HUB.session = self
        hooks.HUB.enabled = True
        return self

    def stop(self):
        """Final poll, close detectors, retire into ``HUB.completed``."""
        if self._stopped or not self._started:
            self._stopped = True
            return self
        self._stopped = True
        self._timer.cancel()
        if hooks.HUB.session is self:
            hooks.HUB.session = None
            hooks.HUB.enabled = False
        now = self.fabric.sim.now
        self._close_window(now)  # capture the tail since the last poll
        for detector in self.detectors:
            for incident in detector.finish(now):
                if incident not in self.incidents:
                    self.incidents.append(incident)
        self.incidents.sort(key=lambda i: (i.start_ns, i.kind, i.device))
        for incident in self.incidents:
            self.records.append(incident.as_record())
        self.records.append(self._summary(now))
        hooks.HUB.completed.append(self)
        return self

    def artifact_records(self):
        """The artifact as a list of JSON-serializable dicts."""
        return self.records

    def _summary(self, t_ns):
        by_kind = {}
        for incident in self.incidents:
            by_kind[incident.kind] = by_kind.get(incident.kind, 0) + 1
        return {
            "type": "summary",
            "t_end_ns": t_ns,
            "label": self.config.label,
            "incidents": by_kind,
            "totals": self.registry.snapshot_values(),
        }

    # -- polling -------------------------------------------------------------

    def _poll(self):
        self._close_window(self.fabric.sim.now)
        self._timer.start(self.config.interval_ns)

    def _collect_values(self):
        """Cumulative counters + gauges per device, CounterCollector
        style: trains are settled first so per-port stats are booked."""
        values = {}
        for switch in self.fabric.switches:
            switch.settle_trains()
            ports = switch.ports
            buffer = switch.buffer
            values[switch.name] = {
                "is_host": False,
                "pause_tx": sum(p.stats.pause_tx for p in ports),
                "pause_rx": sum(p.stats.pause_rx for p in ports),
                "resume_tx": sum(p.stats.resume_tx for p in ports),
                "resume_rx": sum(p.stats.resume_rx for p in ports),
                "paused_ns": sum(p.paused_interval_ns() for p in ports),
                "tx_bytes": sum(p.stats.total_tx_bytes for p in ports),
                "rx_bytes": sum(p.stats.total_rx_bytes for p in ports),
                "ecn_marked": switch.counters.ecn_marked,
                "drops": switch.counters.total_drops,
                "queued_bytes": switch.queued_bytes(),
                "shared_in_use": buffer.shared_in_use if buffer else 0,
                "headroom_in_use": buffer.headroom_in_use if buffer else 0,
                "paused_pgs": buffer.paused_pgs if buffer else 0,
                "shared_size": buffer.shared_size if buffer else 0,
                "watchdog_trips": switch.watchdog_trips(),
            }
        for host in self.fabric.hosts:
            nic = host.nic
            port = nic.port
            values[nic.name] = {
                "is_host": True,
                "pause_tx": nic.stats.pause_generated,
                "resume_tx": nic.stats.resume_generated,
                "pause_rx": port.stats.pause_rx,
                "resume_rx": port.stats.resume_rx,
                "paused_ns": port.paused_interval_ns(),
                "tx_bytes": port.stats.total_tx_bytes,
                "rx_bytes": port.stats.total_rx_bytes,
                "rx_processed": nic.stats.rx_processed,
                "watchdog_trips": nic.watchdog_trips,
            }
        return values

    #: sample-value key -> catalog metric mirrored into the registry.
    _POLLED = {
        "pause_tx": "port.pause_tx",
        "pause_rx": "port.pause_rx",
        "resume_tx": "port.resume_tx",
        "resume_rx": "port.resume_rx",
        "paused_ns": "port.paused_ns",
        "tx_bytes": "port.tx_bytes",
        "rx_bytes": "port.rx_bytes",
        "ecn_marked": "switch.ecn_marked",
        "rx_processed": "nic.rx_processed",
    }
    _POLLED_GAUGES = {
        "queued_bytes": "switch.queued_bytes",
        "shared_in_use": "switch.shared_in_use",
        "headroom_in_use": "switch.headroom_in_use",
        "paused_pgs": "switch.paused_pgs",
    }

    def _close_window(self, t_ns):
        current = self._collect_values()
        registry = self.registry
        window = {"t_ns": t_ns, "interval_ns": 0, "devices": {}}
        for device, values in current.items():
            prev = self._prev.get(device, {})
            deltas = {"is_host": values["is_host"]}
            for key in _DELTA_KEYS:
                if key in values:
                    deltas[key] = values[key] - prev.get(key, 0)
            for key in ("queued_bytes", "shared_in_use", "headroom_in_use",
                        "paused_pgs", "shared_size"):
                if key in values:
                    deltas[key] = values[key]
            window["devices"][device] = deltas
            for key, metric_name in self._POLLED.items():
                if key in values:
                    registry.get(metric_name, device).set_absolute(values[key])
                    registry.record_sample(t_ns, metric_name, device,
                                           values[key])
            for key, metric_name in self._POLLED_GAUGES.items():
                if key in values:
                    registry.get(metric_name, device).set(values[key])
                    registry.record_sample(t_ns, metric_name, device,
                                           values[key])
            if self.config.capture_samples:
                sample = {k: v for k, v in values.items() if k != "is_host"}
                self.records.append({
                    "type": "sample",
                    "t_ns": t_ns,
                    "device": device,
                    "is_host": values["is_host"],
                    "values": sample,
                })
        t_prev = self._prev_t if self._prev_t is not None else t_ns
        window["interval_ns"] = max(0, t_ns - t_prev)
        self._prev = current
        self._prev_t = t_ns
        if window["interval_ns"] > 0:
            self._observe(window)

    def _observe(self, window):
        for detector in self.detectors:
            detector.observe(window)
        # Closed incidents accumulate on the detectors; fold them in so
        # mid-run exports see them without waiting for stop().
        for detector in self.detectors:
            for incident in detector.incidents:
                if incident not in self.incidents:
                    self.incidents.append(incident)

    # -- hot-path hook receivers ---------------------------------------------
    # Called only via ``if HUB.enabled: HUB.session.on_*(...)`` guards in
    # the device modules; each is a handful of dict/int operations.

    def on_pause_rx(self, port, duration_ns):
        device = port.device.name if port.device is not None else ""
        self.registry.get("port.pause_duration_ns", device).observe(duration_ns)

    def on_pfc_pause(self, switch):
        self.registry.get("switch.pfc_pause_sent", switch.name).inc()

    def on_pfc_resume(self, switch):
        self.registry.get("switch.pfc_resume_sent", switch.name).inc()

    def on_ecn_mark(self, queue_bytes):
        # EcnConfig carries no device context; the fabric-wide histogram
        # still answers "at what depth do we mark?" (Kmin/Kmax tuning).
        self.registry.get("switch.ecn_queue_bytes").observe(queue_bytes)

    def on_headroom_spill(self, owner_name, nbytes):
        self.registry.get("switch.headroom_spill_bytes", owner_name).inc(nbytes)

    def on_buffer_drop(self, owner_name, lossless):
        name = ("switch.headroom_overflow_drops" if lossless
                else "switch.lossy_drops")
        self.registry.get(name, owner_name).inc()

    def on_nic_watchdog(self, nic):
        self.registry.get("nic.watchdog_trips", nic.name).inc()
        self.records.append({
            "type": "event", "kind": "nic_watchdog_trip",
            "t_ns": self.fabric.sim.now, "device": nic.name,
        })

    def on_switch_watchdog(self, switch, port):
        self.registry.get("switch.watchdog_trips", switch.name).inc()
        self.records.append({
            "type": "event", "kind": "switch_watchdog_trip",
            "t_ns": self.fabric.sim.now, "device": switch.name,
            "port": port.name,
        })

    def on_fault(self, device_name, kind):
        self.registry.get("nic.rx_pipeline_faults", device_name).inc()
        self.records.append({
            "type": "event", "kind": "fault", "fault": kind,
            "t_ns": self.fabric.sim.now, "device": device_name,
        })

    def on_cnp_sent(self, qp):
        self.registry.get("qp.cnps_sent", qp.host.name).inc()

    def on_nak_sent(self, qp):
        self.registry.get("qp.naks_sent", qp.host.name).inc()

    def on_rate_decrease(self, rp):
        owner = getattr(rp, "owner", "")
        self.registry.get("dcqcn.cnps_handled", owner).inc()
        self.registry.get("dcqcn.rate_bps", owner).set(rp.rate_bps)
