"""Unified fabric observability: metrics, detectors, exporters.

This package is the simulator's counterpart of the paper's §4 operations
story -- the continuously collected pause/ECN/buffer/transport signals
and the incident detection built on top of them.  It has four parts:

``hooks``
    The process-global :data:`~repro.telemetry.hooks.HUB` whose single
    ``enabled`` flag gates every hot-path probe (disabled costs one
    attribute load + branch; nothing else runs).
``registry`` / ``session``
    Metric primitives (counters/gauges/histograms + ring series behind a
    declared catalog) and the per-run collection session that polls the
    fabric and receives the hook pushes.
``detectors``
    Online pause-storm, pause-propagation, ECN mark-rate, queue
    watermark and victim-flow detectors emitting structured incidents.
``export``
    JSONL artifact (canonical), CSV and Prometheus-style text views, a
    human summary and an offline detector replay.

Typical embedding (what ``repro.bench --telemetry``, ``repro.campaign
--telemetry``, ``repro.validation sweep --telemetry`` and the experiment
CLI's ``--telemetry-dir`` do)::

    from repro import telemetry

    telemetry.arm(telemetry.TelemetryConfig(label="my-run"))
    ...build fabrics and run (Fabric.boot auto-attaches a session)...
    for records in telemetry.drain():
        telemetry.write_jsonl(records, path)

See docs/telemetry.md for the operator's handbook and ``python -m
repro.telemetry --help`` for the artifact CLI.
"""

from repro.telemetry.detectors import (
    DetectorThresholds,
    Incident,
    build_detectors,
)
from repro.telemetry.export import (
    incident_count,
    prometheus_text,
    read_jsonl,
    replay_detectors,
    split_records,
    summarize,
    write_artifacts,
    write_csv,
    write_jsonl,
)
from repro.telemetry.hooks import HUB, arm, disarm, drain, maybe_attach
from repro.telemetry.registry import CATALOG, MetricRegistry
from repro.telemetry.session import TelemetryConfig, TelemetrySession

__all__ = [
    "HUB",
    "arm",
    "disarm",
    "drain",
    "maybe_attach",
    "TelemetryConfig",
    "TelemetrySession",
    "DetectorThresholds",
    "Incident",
    "build_detectors",
    "MetricRegistry",
    "CATALOG",
    "write_jsonl",
    "read_jsonl",
    "write_artifacts",
    "incident_count",
    "write_csv",
    "prometheus_text",
    "summarize",
    "split_records",
    "replay_detectors",
]
