"""Metric primitives: counters, gauges, histograms, ring-buffered series.

The registry is the passive half of the telemetry subsystem: it owns the
metric objects and their declared metadata (unit, source module, paper
counterpart) but never touches the simulator.  The active half --
:mod:`repro.telemetry.session` -- feeds it from hot-path hooks and from
the periodic poll timer, and the detectors/exporters read it back out.

Design notes
------------
* Metrics are keyed on ``(name, device)`` so one catalog entry fans out
  to per-device instances; the catalog (``MetricSpec``) is declared once
  in :data:`CATALOG` and rendered into docs/telemetry.md.
* ``Histogram`` uses power-of-two buckets: ``observe(v)`` lands in
  bucket ``ceil(log2(v+1))``, giving fixed memory and merge-free
  percentile estimates good to a factor of two -- plenty for queue-depth
  and pause-duration distributions.
* ``RingSeries`` is a fixed-capacity ring of ``(t_ns, value)`` samples;
  when full it overwrites the oldest and counts the drop, so long runs
  degrade to a sliding window instead of growing without bound.
"""

from collections import OrderedDict


class MetricSpec:
    """Catalog metadata for one metric family (see docs/telemetry.md)."""

    __slots__ = ("name", "kind", "unit", "source", "paper", "help")

    def __init__(self, name, kind, unit, source, paper, help):
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.unit = unit
        self.source = source  # module that feeds it
        self.paper = paper  # paper §4 counterpart, "" when none
        self.help = help

    def as_record(self):
        return {
            "type": "metric",
            "name": self.name,
            "kind": self.kind,
            "unit": self.unit,
            "source": self.source,
            "paper": self.paper,
            "help": self.help,
        }


#: The full metric catalog.  Every metric the session emits is declared
#: here; docs/telemetry.md and ``python -m repro.telemetry catalog``
#: render from this list, and tests assert the two stay in sync.
CATALOG = [
    # -- port / link layer (net/port.py) --------------------------------
    MetricSpec("port.pause_tx", "counter", "frames", "net/port.py",
               "§4.1", "PFC pause frames transmitted by the port"),
    MetricSpec("port.pause_rx", "counter", "frames", "net/port.py",
               "§4.1", "PFC pause frames received by the port"),
    MetricSpec("port.resume_tx", "counter", "frames", "net/port.py",
               "§4.1", "PFC resume (zero-quanta) frames transmitted"),
    MetricSpec("port.resume_rx", "counter", "frames", "net/port.py",
               "§4.1", "PFC resume (zero-quanta) frames received"),
    MetricSpec("port.paused_ns", "counter", "ns", "net/port.py",
               "§4.1", "cumulative time the port spent pause-throttled"),
    MetricSpec("port.pause_duration_ns", "histogram", "ns", "net/port.py",
               "§4.1", "distribution of individual pause grants"),
    MetricSpec("port.tx_bytes", "counter", "bytes", "net/port.py",
               "", "payload bytes transmitted (polled)"),
    MetricSpec("port.rx_bytes", "counter", "bytes", "net/port.py",
               "", "payload bytes received (polled)"),
    # -- switch buffer / ECN / PFC (switch/) ----------------------------
    MetricSpec("switch.queued_bytes", "gauge", "bytes", "switch/switch.py",
               "§3", "total bytes queued across egress ports (polled)"),
    MetricSpec("switch.shared_in_use", "gauge", "bytes", "switch/buffer.py",
               "§3", "shared-pool occupancy (polled)"),
    MetricSpec("switch.headroom_in_use", "gauge", "bytes", "switch/buffer.py",
               "§3", "PFC headroom occupancy (polled)"),
    MetricSpec("switch.paused_pgs", "gauge", "pgs", "switch/buffer.py",
               "§4.1", "priority groups currently pause-asserted (polled)"),
    MetricSpec("switch.ecn_marked", "counter", "packets", "switch/switch.py",
               "§3", "packets CE-marked at enqueue"),
    MetricSpec("switch.ecn_queue_bytes", "histogram", "bytes", "switch/ecn.py",
               "§3", "egress queue depth seen at each ECN mark"),
    MetricSpec("switch.lossy_drops", "counter", "packets", "switch/buffer.py",
               "§3", "tail drops on lossy (non-PFC) priorities"),
    MetricSpec("switch.headroom_overflow_drops", "counter", "packets",
               "switch/buffer.py", "§4.1",
               "lossless drops after headroom exhaustion"),
    MetricSpec("switch.headroom_spill_bytes", "counter", "bytes",
               "switch/buffer.py", "§4.1",
               "bytes admitted into PFC headroom after pause assert"),
    MetricSpec("switch.pfc_pause_sent", "counter", "frames", "switch/pfc.py",
               "§4.1", "pauses asserted by the switch-side signaler"),
    MetricSpec("switch.pfc_resume_sent", "counter", "frames", "switch/pfc.py",
               "§4.1", "resumes sent by the switch-side signaler"),
    MetricSpec("switch.watchdog_trips", "counter", "trips", "switch/switch.py",
               "§4.3", "switch PFC-storm watchdog activations"),
    # -- NIC (nic/nic.py) ----------------------------------------------
    MetricSpec("nic.pause_generated", "counter", "frames", "nic/nic.py",
               "§4.1", "pause frames generated by the host NIC"),
    MetricSpec("nic.resume_generated", "counter", "frames", "nic/nic.py",
               "§4.1", "resume frames generated by the host NIC"),
    MetricSpec("nic.rx_processed", "counter", "packets", "nic/nic.py",
               "", "packets drained by the NIC receive pipeline (polled)"),
    MetricSpec("nic.watchdog_trips", "counter", "trips", "nic/nic.py",
               "§4.3", "NIC pause-storm watchdog activations"),
    MetricSpec("nic.rx_pipeline_faults", "counter", "faults", "nic/nic.py",
               "§4.3", "injected receive-pipeline stalls (fault marker)"),
    # -- RDMA transport / DCQCN (rdma/qp.py, dcqcn/rp.py) ---------------
    MetricSpec("qp.cnps_sent", "counter", "packets", "rdma/qp.py",
               "§3", "congestion notification packets sent by receivers"),
    MetricSpec("qp.naks_sent", "counter", "packets", "rdma/qp.py",
               "§2", "NAKs sent (go-back-N retransmit requests)"),
    MetricSpec("dcqcn.cnps_handled", "counter", "packets", "dcqcn/rp.py",
               "§3", "CNPs absorbed by reaction points (rate decreases)"),
    MetricSpec("dcqcn.rate_bps", "gauge", "bps", "dcqcn/rp.py",
               "§3", "reaction-point current rate after each decrease"),
]

CATALOG_BY_NAME = {spec.name: spec for spec in CATALOG}


class Counter:
    """Monotonic accumulator (hook-fed or polled-absolute)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def set_absolute(self, value):
        # Polled metrics mirror a device counter directly.
        self.value = value


class Gauge:
    """Point-in-time value; keeps the running peak for summaries."""

    __slots__ = ("value", "peak")
    kind = "gauge"

    def __init__(self):
        self.value = 0
        self.peak = 0

    def set(self, value):
        self.value = value
        if value > self.peak:
            self.peak = value


class Histogram:
    """Power-of-two bucketed histogram: bucket i counts values in
    ``[2**(i-1), 2**i)`` (bucket 0 is exactly zero)."""

    __slots__ = ("buckets", "count", "total")
    kind = "histogram"

    def __init__(self):
        self.buckets = {}
        self.count = 0
        self.total = 0

    def observe(self, value):
        self.count += 1
        self.total += value
        bucket = int(value).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def quantile(self, q):
        """Upper bound of the bucket containing quantile ``q`` (0..1)."""
        if not self.count:
            return 0
        target = q * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return (1 << bucket) if bucket else 0
        return 1 << max(self.buckets)

    def as_dict(self):
        return {
            "count": self.count,
            "total": self.total,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class RingSeries:
    """Fixed-capacity ring buffer of ``(t_ns, value)`` samples."""

    __slots__ = ("capacity", "_items", "_head", "dropped")

    def __init__(self, capacity=4096):
        self.capacity = capacity
        self._items = []
        self._head = 0
        self.dropped = 0

    def append(self, t_ns, value):
        if len(self._items) < self.capacity:
            self._items.append((t_ns, value))
        else:
            self._items[self._head] = (t_ns, value)
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def __len__(self):
        return len(self._items)

    def items(self):
        """Samples in chronological order."""
        return self._items[self._head:] + self._items[:self._head]


class MetricRegistry:
    """All live metric instances for one session, keyed ``(name, device)``.

    ``device`` is the owning device's name string ("h0", "tor1", ...) or
    ``""`` for fabric-wide aggregates.  Unknown metric names are
    rejected so the catalog stays authoritative.
    """

    _FACTORY = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, series_capacity=4096):
        self.series_capacity = series_capacity
        self._metrics = OrderedDict()
        self._series = OrderedDict()

    def get(self, name, device=""):
        key = (name, device)
        metric = self._metrics.get(key)
        if metric is None:
            spec = CATALOG_BY_NAME.get(name)
            if spec is None:
                raise KeyError("metric %r is not in the telemetry catalog"
                               % (name,))
            metric = self._FACTORY[spec.kind]()
            self._metrics[key] = metric
        return metric

    def series(self, name, device=""):
        key = (name, device)
        ring = self._series.get(key)
        if ring is None:
            ring = self._series[key] = RingSeries(self.series_capacity)
        return ring

    def record_sample(self, t_ns, name, device, value):
        """Append one polled sample to the metric's ring series."""
        self.series(name, device).append(t_ns, value)

    def metrics(self):
        """Iterate ``(name, device, metric)`` in insertion order."""
        for (name, device), metric in self._metrics.items():
            yield name, device, metric

    def all_series(self):
        """Iterate ``(name, device, ring)`` in insertion order."""
        for (name, device), ring in self._series.items():
            yield name, device, ring

    def snapshot_values(self):
        """Flat ``{name|device: value}`` map for summaries/exports."""
        out = OrderedDict()
        for name, device, metric in self.metrics():
            key = "%s|%s" % (name, device) if device else name
            if metric.kind == "histogram":
                out[key] = metric.as_dict()
            else:
                out[key] = metric.value
        return out
