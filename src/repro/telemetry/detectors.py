"""Online detectors layered on the polled telemetry streams.

Each detector consumes the per-poll *window* the session computes -- a
dict of per-device deltas and gauges for one poll interval -- and emits
structured :class:`Incident` records.  They mirror the monitoring
practice of paper §4: the pause-storm detector is the NIC/switch
watchdog's observer-side twin (§4.3), pause-propagation-depth follows
the cascading-pause analysis of §4.1/§5, ECN mark-rate and queue
watermark track the §3 congestion signals, and the victim-flow detector
captures the collateral-damage flows §4.3 calls victims.

Window shape (produced by ``TelemetrySession._poll``)::

    {
      "t_ns": <window end>, "interval_ns": <window length>,
      "devices": {
        name: {
          "is_host": bool,
          "pause_tx": <pause frames generated this window>,
          "paused_ns": <ns the device's ports spent pause-throttled>,
          "tx_bytes": <payload bytes transmitted this window>,
          "ecn_marked": <CE marks this window (switches)>,
          "shared_in_use": <gauge>, "shared_size": <const>,
          "queued_bytes": <gauge>,
        }, ...
      },
    }

Detectors never reach into the simulator; replaying the same windows
(``python -m repro.telemetry replay``) reproduces the same incidents.

Relation to older modules: ``monitoring/incidents.py`` keeps its
offline, snapshot-list based ``IncidentDetector``; the detectors here
are the online equivalents that run *during* the simulation and cover
more signal classes.  ``faults/invariants.py`` audits correctness
invariants (conservation, monotonicity) and raises on violation;
telemetry detectors record operational pathologies without failing the
run.
"""


class Incident:
    """One structured incident record (artifact line ``type: incident``)."""

    __slots__ = ("kind", "device", "start_ns", "end_ns", "severity",
                 "details")

    def __init__(self, kind, device, start_ns, end_ns=None, severity="warn",
                 details=None):
        self.kind = kind
        self.device = device
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.severity = severity
        self.details = details or {}

    def as_record(self):
        return {
            "type": "incident",
            "kind": self.kind,
            "device": self.device,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "severity": self.severity,
            "details": self.details,
        }

    def __repr__(self):
        return "Incident(%s, %s, %d..%s)" % (
            self.kind, self.device, self.start_ns, self.end_ns)


class DetectorThresholds:
    """Tunable knobs shared by all detectors (see docs/telemetry.md for
    the rationale behind each default)."""

    __slots__ = (
        "storm_host_rate", "storm_switch_rate", "storm_min_windows",
        "propagation_min_depth", "ecn_rate", "ecn_min_windows",
        "watermark_fraction", "victim_paused_fraction",
        "victim_tx_floor_bytes",
    )

    def __init__(self, storm_host_rate=500.0, storm_switch_rate=1000000.0,
                 storm_min_windows=2, propagation_min_depth=2,
                 ecn_rate=200000.0, ecn_min_windows=2,
                 watermark_fraction=0.7, victim_paused_fraction=0.5,
                 victim_tx_floor_bytes=1500):
        # A healthy congested fabric (clos_slice) shows essentially zero
        # *host*-generated pauses but heavy legitimate switch-side
        # backpressure (leaf switches sustain >100k pause/s there); a
        # §4.3 storm is a NIC refreshing pauses every half-quantum
        # (~2.4k frames/s at 40G).  Hence the host threshold sits well
        # below the refresh rate and well above noise, while the switch
        # threshold defaults far above healthy backpressure -- switch
        # participation in a storm surfaces through the propagation
        # detector instead of a raw rate trigger.
        self.storm_host_rate = storm_host_rate
        self.storm_switch_rate = storm_switch_rate
        self.storm_min_windows = storm_min_windows
        self.propagation_min_depth = propagation_min_depth
        self.ecn_rate = ecn_rate
        self.ecn_min_windows = ecn_min_windows
        self.watermark_fraction = watermark_fraction
        self.victim_paused_fraction = victim_paused_fraction
        self.victim_tx_floor_bytes = victim_tx_floor_bytes


class PauseStormDetector:
    """Sustained pause *generation* above threshold ⇒ pause storm.

    Fires per device after ``storm_min_windows`` consecutive windows
    whose pause-frame generation rate exceeds the role-specific
    threshold (hosts betray §4.3 storms at far lower rates than
    switches, because healthy hosts essentially never generate pauses).
    The incident stays open while the rate holds and closes on the
    first quiet window, recording the peak rate.
    """

    kind = "pause_storm"

    def __init__(self, thresholds):
        self.thresholds = thresholds
        self._hot = {}      # device -> consecutive hot windows
        self._open = {}     # device -> Incident
        self.incidents = []

    def active_devices(self):
        return set(self._open)

    def observe(self, window):
        interval_s = window["interval_ns"] / 1e9
        if interval_s <= 0:
            return
        t_ns = window["t_ns"]
        for device, values in window["devices"].items():
            rate = values.get("pause_tx", 0) / interval_s
            limit = (self.thresholds.storm_host_rate if values["is_host"]
                     else self.thresholds.storm_switch_rate)
            incident = self._open.get(device)
            if rate >= limit:
                hot = self._hot.get(device, 0) + 1
                self._hot[device] = hot
                if incident is None and hot >= self.thresholds.storm_min_windows:
                    span = hot * window["interval_ns"]
                    incident = Incident(
                        self.kind, device, max(0, t_ns - span),
                        severity="critical" if values["is_host"] else "warn",
                        details={"peak_rate_fps": rate, "windows": hot,
                                 "is_host": values["is_host"]},
                    )
                    self._open[device] = incident
                if incident is not None:
                    incident.details["windows"] = hot
                    if rate > incident.details["peak_rate_fps"]:
                        incident.details["peak_rate_fps"] = rate
            else:
                self._hot[device] = 0
                if incident is not None:
                    incident.end_ns = t_ns
                    self.incidents.append(self._open.pop(device))

    def finish(self, t_ns):
        for device, incident in sorted(self._open.items()):
            incident.end_ns = t_ns
            self.incidents.append(incident)
        self._open.clear()
        return self.incidents


class PausePropagationDetector:
    """How deep did pause pressure spread from a storm origin?

    Only meaningful while the storm detector holds an open incident:
    each window, BFS from every active storm origin through the fabric
    adjacency restricted to devices showing pause activity; the hop
    count is the propagation depth of §4.1's cascading-pause analysis
    (healthy backpressure pauses too, so depth is only attributed to a
    confirmed storm, never computed free-standing).  Emits one incident
    per origin once depth reaches ``propagation_min_depth``, upgrading
    the recorded peak afterwards.
    """

    kind = "pause_propagation"

    def __init__(self, thresholds, adjacency, storm_detector):
        self.thresholds = thresholds
        self.adjacency = adjacency  # device name -> set of neighbor names
        self.storm = storm_detector
        self._emitted = {}          # origin -> Incident
        self.incidents = []

    def observe(self, window):
        origins = self.storm.active_devices()
        if not origins:
            return
        devices = window["devices"]
        paused = {name for name, v in devices.items()
                  if v.get("pause_tx", 0) > 0 or v.get("paused_ns", 0) > 0}
        if not paused:
            return
        for origin in origins:
            depth = self._bfs_depth(origin, paused)
            if depth < self.thresholds.propagation_min_depth:
                continue
            incident = self._emitted.get(origin)
            if incident is None:
                incident = Incident(
                    self.kind, origin, window["t_ns"],
                    details={"max_depth": depth,
                             "frontier": sorted(paused)},
                )
                self._emitted[origin] = incident
                self.incidents.append(incident)
            elif depth > incident.details["max_depth"]:
                incident.details["max_depth"] = depth
                incident.details["frontier"] = sorted(paused)
            incident.end_ns = window["t_ns"]

    def _bfs_depth(self, origin, paused):
        depth = 0
        frontier = [origin]
        seen = {origin}
        while frontier:
            nxt = []
            for node in frontier:
                for neighbor in self.adjacency.get(node, ()):
                    if neighbor in seen or neighbor not in paused:
                        continue
                    seen.add(neighbor)
                    nxt.append(neighbor)
            if not nxt:
                break
            depth += 1
            frontier = nxt
        return depth

    def finish(self, t_ns):
        return self.incidents


class EcnMarkRateDetector:
    """Sustained CE-mark rate above threshold on one switch."""

    kind = "ecn_mark_rate"

    def __init__(self, thresholds):
        self.thresholds = thresholds
        self._hot = {}
        self._open = {}
        self.incidents = []

    def observe(self, window):
        interval_s = window["interval_ns"] / 1e9
        if interval_s <= 0:
            return
        t_ns = window["t_ns"]
        for device, values in window["devices"].items():
            if values["is_host"]:
                continue
            rate = values.get("ecn_marked", 0) / interval_s
            incident = self._open.get(device)
            if rate >= self.thresholds.ecn_rate:
                hot = self._hot.get(device, 0) + 1
                self._hot[device] = hot
                if incident is None and hot >= self.thresholds.ecn_min_windows:
                    incident = Incident(
                        self.kind, device,
                        max(0, t_ns - hot * window["interval_ns"]),
                        details={"peak_rate_mps": rate},
                    )
                    self._open[device] = incident
                if incident is not None and rate > incident.details["peak_rate_mps"]:
                    incident.details["peak_rate_mps"] = rate
            else:
                self._hot[device] = 0
                if incident is not None:
                    incident.end_ns = t_ns
                    self.incidents.append(self._open.pop(device))

    def finish(self, t_ns):
        for device, incident in sorted(self._open.items()):
            incident.end_ns = t_ns
            self.incidents.append(incident)
        self._open.clear()
        return self.incidents


class QueueWatermarkDetector:
    """Shared-pool occupancy crossing a fraction of pool size."""

    kind = "queue_watermark"

    def __init__(self, thresholds):
        self.thresholds = thresholds
        self._open = {}
        self.incidents = []

    def observe(self, window):
        t_ns = window["t_ns"]
        for device, values in window["devices"].items():
            if values["is_host"]:
                continue
            size = values.get("shared_size", 0)
            if not size:
                continue
            fraction = values.get("shared_in_use", 0) / size
            incident = self._open.get(device)
            if fraction >= self.thresholds.watermark_fraction:
                if incident is None:
                    incident = Incident(
                        self.kind, device, t_ns,
                        details={"peak_fraction": fraction,
                                 "shared_size": size},
                    )
                    self._open[device] = incident
                elif fraction > incident.details["peak_fraction"]:
                    incident.details["peak_fraction"] = fraction
            elif incident is not None:
                incident.end_ns = t_ns
                self.incidents.append(self._open.pop(device))

    def finish(self, t_ns):
        for device, incident in sorted(self._open.items()):
            incident.end_ns = t_ns
            self.incidents.append(incident)
        self._open.clear()
        return self.incidents


class VictimFlowDetector:
    """Hosts collaterally damaged while a pause storm is active (§4.3).

    Only scans windows during which the pause-storm detector holds an
    open incident: a *non-origin* host whose port spent most of the
    window pause-throttled while moving almost no payload is a victim.
    """

    kind = "victim_flow"

    def __init__(self, thresholds, storm_detector):
        self.thresholds = thresholds
        self.storm = storm_detector
        self._emitted = {}
        self.incidents = []

    def observe(self, window):
        origins = self.storm.active_devices()
        if not origins:
            return
        interval_ns = window["interval_ns"]
        for device, values in window["devices"].items():
            if not values["is_host"] or device in origins:
                continue
            paused_fraction = values.get("paused_ns", 0) / interval_ns
            if (paused_fraction < self.thresholds.victim_paused_fraction
                    or values.get("tx_bytes", 0)
                    > self.thresholds.victim_tx_floor_bytes):
                continue
            incident = self._emitted.get(device)
            if incident is None:
                incident = Incident(
                    self.kind, device, window["t_ns"],
                    details={"paused_fraction": paused_fraction,
                             "origins": sorted(origins)},
                )
                self._emitted[device] = incident
                self.incidents.append(incident)
            else:
                incident.details["paused_fraction"] = max(
                    incident.details["paused_fraction"], paused_fraction)
            incident.end_ns = window["t_ns"]

    def finish(self, t_ns):
        return self.incidents


def build_detectors(thresholds, adjacency):
    """The standard detector stack, wired so the victim-flow detector
    observes the storm detector's live state."""
    storm = PauseStormDetector(thresholds)
    return [
        storm,
        PausePropagationDetector(thresholds, adjacency, storm),
        EcnMarkRateDetector(thresholds),
        QueueWatermarkDetector(thresholds),
        VictimFlowDetector(thresholds, storm),
    ]
