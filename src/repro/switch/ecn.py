"""RED/ECN marking at the egress queue -- DCQCN's congestion point (CP).

DCQCN (Zhu et al. [42], deployed by the paper) has the switch mark
ECN-capable packets based on the *instantaneous* egress queue length with
RED-style probabilities:

* queue <= Kmin          -> never mark
* Kmin < queue < Kmax    -> mark with probability rising linearly to Pmax
* queue >= Kmax          -> always mark

"Small queue lengths reduce the PFC generation and propagation
probability" (section 2) -- ECN marks slow senders *before* the PFC XOFF
threshold is hit, so DCQCN's Kmin/Kmax sit well below XOFF.
"""

from repro.sim.units import KB
from repro.telemetry.hooks import HUB as _TELEMETRY


class EcnConfig:
    """RED/ECN marking parameters for lossless egress queues."""

    def __init__(self, kmin_bytes=40 * KB, kmax_bytes=160 * KB, pmax=0.1, enabled=True):
        if kmin_bytes > kmax_bytes:
            raise ValueError("Kmin must not exceed Kmax")
        if not 0 <= pmax <= 1:
            raise ValueError("Pmax is a probability: %r" % (pmax,))
        self.kmin_bytes = kmin_bytes
        self.kmax_bytes = kmax_bytes
        self.pmax = pmax
        self.enabled = enabled

    def mark_probability(self, queue_bytes):
        """Marking probability at an instantaneous queue depth."""
        if not self.enabled or queue_bytes <= self.kmin_bytes:
            return 0.0
        if queue_bytes >= self.kmax_bytes:
            return 1.0
        span = self.kmax_bytes - self.kmin_bytes
        return self.pmax * (queue_bytes - self.kmin_bytes) / span

    def should_mark(self, queue_bytes, rng):
        """Bernoulli draw at the current queue depth."""
        probability = self.mark_probability(queue_bytes)
        if probability <= 0.0:
            return False
        if probability < 1.0 and not rng.random() < probability:
            return False
        # Telemetry sees the queue depth at every mark (the histogram
        # that answers "where inside [Kmin, Kmax] do we actually mark?").
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_ecn_mark(queue_bytes)
        return True

    def __repr__(self):
        return "EcnConfig(Kmin=%dB, Kmax=%dB, Pmax=%.3f%s)" % (
            self.kmin_bytes,
            self.kmax_bytes,
            self.pmax,
            "" if self.enabled else ", disabled",
        )
