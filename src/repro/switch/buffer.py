"""The shared-buffer manager.

The paper's switches (section 2) are shallow-buffer shared-memory parts
(9 MB or 12 MB): "an ingress queue is implemented simply as a counter --
all packets share a common buffer pool."  This module reproduces that
design:

* every buffered packet is accounted against its **ingress** port and
  priority group (PG);
* a lossless PG that exceeds its XOFF threshold triggers a PFC pause to
  the upstream; packets that keep arriving during the pause's "gray
  period" land in that PG's reserved **headroom**;
* a lossy PG that exceeds its threshold simply drops;
* thresholds are either **static** or **dynamic**: the dynamic threshold
  is ``alpha x (unallocated shared buffer)``, the exact rule at the heart
  of the section 6.2 incident (alpha silently changing from 1/16 to 1/64
  on a new switch model made pauses fire far earlier).

XON hysteresis: pause is released when the PG drains ``xon_delta_bytes``
below the threshold in force at release-evaluation time.
"""

from repro.sim.units import KB, MB, SEC, propagation_delay_ns, serialization_delay_ns
from repro.telemetry.hooks import HUB as _TELEMETRY


def headroom_bytes(rate_bps, cable_meters, mtu_bytes=1100, response_ns=1000):
    """PFC headroom needed per lossless PG on one port (section 2).

    Worst case between the XOFF decision and the upstream actually
    stopping:

    * one maximum-size frame already being serialized upstream when the
      pause lands (cannot be preempted), plus one being serialized locally
      when the decision is made;
    * the pause frame's own serialization;
    * 2x the propagation delay (pause travels up, in-flight data travels
      down);
    * the upstream's response/processing time.

    With 300 m cables at 40 Gb/s this comes to roughly 26 KB per PG per
    port -- which is why the paper can afford only **two** lossless
    classes in a 9-12 MB buffer (section 2).
    """
    propagation = propagation_delay_ns(cable_meters)
    pause_frame_ns = serialization_delay_ns(64, rate_bps)
    gray_period_ns = 2 * propagation + pause_frame_ns + response_ns
    in_flight = gray_period_ns * rate_bps // (8 * SEC)
    return int(in_flight + 2 * mtu_bytes)


class BufferConfig:
    """Configuration of a switch's shared packet buffer.

    ``alpha``
        Dynamic-threshold fraction; the shared-buffer threshold for every
        PG is ``alpha x (shared_size - shared_in_use)``.  The paper's ToR
        default is 1/16; the section 6.2 incident was a switch shipping
        with 1/64.  Set to ``None`` to use ``xoff_static_bytes`` instead.
    ``xoff_static_bytes``
        Static per-PG XOFF threshold (used when ``alpha is None``).
    ``xon_delta_bytes``
        Hysteresis: resume when the PG is this far below the threshold.
    ``headroom_per_pg_bytes``
        Reserved headroom per (port, lossless priority).
    ``guaranteed_per_pg_bytes``
        Per-PG guaranteed minimum that does not draw from the shared pool.
    """

    def __init__(
        self,
        total_bytes=12 * MB,
        alpha=1.0 / 16,
        xoff_static_bytes=96 * KB,
        xon_delta_bytes=4 * KB,
        headroom_per_pg_bytes=26 * KB,
        guaranteed_per_pg_bytes=2 * KB,
        lossy_egress_cap_bytes=None,
    ):
        if total_bytes <= 0:
            raise ValueError("buffer must have positive size")
        if alpha is not None and alpha <= 0:
            raise ValueError("alpha must be positive (e.g. 1/16), got %r" % (alpha,))
        self.total_bytes = total_bytes
        self.alpha = alpha
        self.xoff_static_bytes = xoff_static_bytes
        self.xon_delta_bytes = xon_delta_bytes
        self.headroom_per_pg_bytes = headroom_per_pg_bytes
        self.guaranteed_per_pg_bytes = guaranteed_per_pg_bytes
        # Per-egress-queue byte cap for *lossy* classes (None: uncapped).
        # Synchronized incast overflows at the egress queue -- "packet
        # drops due to congestion, while rare, are not entirely absent"
        # (section 1) -- which is where TCP's latency tail comes from.
        self.lossy_egress_cap_bytes = lossy_egress_cap_bytes

    @property
    def is_dynamic(self):
        return self.alpha is not None

    def copy(self, **overrides):
        """A new config with ``overrides`` applied.

        Builders share one BufferConfig instance across every switch, so
        drifting a single device (the section 6.2 incident: one switch
        model shipping alpha=1/64) must copy-then-assign, never mutate.
        """
        kwargs = dict(
            total_bytes=self.total_bytes,
            alpha=self.alpha,
            xoff_static_bytes=self.xoff_static_bytes,
            xon_delta_bytes=self.xon_delta_bytes,
            headroom_per_pg_bytes=self.headroom_per_pg_bytes,
            guaranteed_per_pg_bytes=self.guaranteed_per_pg_bytes,
            lossy_egress_cap_bytes=self.lossy_egress_cap_bytes,
        )
        kwargs.update(overrides)
        return BufferConfig(**kwargs)


class PgState:
    """Accounting for one (ingress port, priority) pair."""

    __slots__ = ("occupancy", "headroom_used", "paused")

    def __init__(self):
        self.occupancy = 0  # bytes buffered, excluding headroom usage
        self.headroom_used = 0
        self.paused = False  # pause currently asserted toward upstream

    def shared_occupancy(self, guaranteed):
        """Bytes this PG draws from the shared pool (above guaranteed)."""
        return max(0, self.occupancy - guaranteed)


class SharedBuffer:
    """Ingress-accounted shared buffer for one switch.

    The buffer does not know about pause frames; it returns *decisions*
    (:meth:`admit`, :meth:`should_pause`, :meth:`should_resume`) and the
    switch acts on them.  Lossless PGs must have been declared via
    ``lossless`` at admit time so headroom accounting applies.
    """

    def __init__(self, config, n_ports, lossless_priorities=(3,)):
        self.config = config
        self.n_ports = n_ports
        self.lossless_priorities = frozenset(lossless_priorities)
        self._pgs = {}
        # Headroom and guaranteed pools are carved out of the total;
        # what remains is the shared pool that dynamic alpha divides.
        n_lossless_pgs = n_ports * len(self.lossless_priorities)
        self.headroom_total = config.headroom_per_pg_bytes * n_lossless_pgs
        self.shared_size = (
            config.total_bytes
            - self.headroom_total
            - config.guaranteed_per_pg_bytes * n_ports * 8
        )
        if self.shared_size <= 0:
            raise ValueError(
                "buffer config leaves no shared space: total=%d headroom=%d"
                % (config.total_bytes, self.headroom_total)
            )
        self.shared_in_use = 0
        # Aggregates consulted by the event-coalescing train gate: how
        # many PGs currently assert pause, and total headroom bytes in
        # use (either non-zero makes lazy settlement unsafe).
        self.paused_pgs = 0
        self.headroom_in_use = 0
        # Counters.
        self.lossy_drops = 0
        self.headroom_overflow_drops = 0
        self.peak_shared_in_use = 0
        # Telemetry attribution: the owning switch's name (set by
        # ``Switch.finalize``; "" for buffers built standalone in tests).
        self.owner_name = ""

    def pg(self, port_idx, priority):
        key = (port_idx, priority)
        state = self._pgs.get(key)
        if state is None:
            state = PgState()
            self._pgs[key] = state
        return state

    # -- thresholds ----------------------------------------------------------

    def threshold(self):
        """Current per-PG shared-pool threshold in bytes."""
        if self.config.is_dynamic:
            free = self.shared_size - self.shared_in_use
            return max(0, int(self.config.alpha * free))
        return self.config.xoff_static_bytes

    def xon_threshold(self):
        """Occupancy below which a paused PG resumes."""
        return max(0, self.threshold() - self.config.xon_delta_bytes)

    # -- admission -----------------------------------------------------------

    def admit(self, port_idx, priority, nbytes, lossless):
        """Try to buffer ``nbytes`` arriving at ``(port_idx, priority)``.

        Returns True if admitted.  A lossy PG over threshold drops.  A
        lossless PG over threshold is admitted into headroom; only
        headroom exhaustion drops it (a *violation*: with correctly sized
        headroom this never happens, and tests assert it doesn't).
        """
        # Hot path: every forwarded packet passes through here once.  The
        # config object is read afresh on every call -- fault injection
        # (``drift_buffer_alpha``) swaps scalar values under us and the
        # next admit must already see them, so nothing here may be cached
        # across calls.
        state = self._pgs.get((port_idx, priority))
        if state is None:
            state = self.pg(port_idx, priority)
        config = self.config
        guaranteed = config.guaranteed_per_pg_bytes
        occupancy = state.occupancy
        if occupancy + nbytes <= guaranteed:
            over_threshold = False
        else:
            shared_occ = occupancy - guaranteed
            if shared_occ < 0:
                shared_occ = 0
            alpha = config.alpha
            if alpha is not None:
                threshold = int(alpha * (self.shared_size - self.shared_in_use))
                if threshold < 0:
                    threshold = 0
            else:
                threshold = config.xoff_static_bytes
            over_threshold = shared_occ + nbytes > threshold
        if not over_threshold:
            self._charge(state, nbytes)
            return True
        if not lossless:
            self.lossy_drops += 1
            return False
        # Lossless and over threshold: spill into this PG's headroom.
        if state.headroom_used + nbytes > config.headroom_per_pg_bytes:
            self.headroom_overflow_drops += 1
            if _TELEMETRY.enabled:
                _TELEMETRY.session.on_buffer_drop(self.owner_name, True)
            return False
        state.headroom_used += nbytes
        self.headroom_in_use += nbytes
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_headroom_spill(self.owner_name, nbytes)
        return True

    def _charge(self, state, nbytes):
        guaranteed = self.config.guaranteed_per_pg_bytes
        before = max(0, state.occupancy - guaranteed)
        state.occupancy += nbytes
        after = max(0, state.occupancy - guaranteed)
        self.shared_in_use += after - before
        if self.shared_in_use > self.peak_shared_in_use:
            self.peak_shared_in_use = self.shared_in_use

    def release(self, port_idx, priority, nbytes):
        """Return ``nbytes`` of ``(port_idx, priority)`` to the pool.

        Headroom usage is drained first (LIFO relative to admission order
        does not matter for totals).
        """
        state = self._pgs.get((port_idx, priority))
        if state is None:
            state = self.pg(port_idx, priority)
        headroom = state.headroom_used
        if headroom:
            from_headroom = headroom if headroom < nbytes else nbytes
            state.headroom_used = headroom - from_headroom
            self.headroom_in_use -= from_headroom
            remainder = nbytes - from_headroom
        else:
            remainder = nbytes
        occupancy = state.occupancy
        if remainder > occupancy:
            raise RuntimeError(
                "buffer release underflow at pg(%d, %d): %d > %d"
                % (port_idx, priority, remainder, occupancy)
            )
        guaranteed = self.config.guaranteed_per_pg_bytes
        before = occupancy - guaranteed
        if before < 0:
            before = 0
        occupancy -= remainder
        state.occupancy = occupancy
        after = occupancy - guaranteed
        if after < 0:
            after = 0
        self.shared_in_use -= before - after

    # -- pause decisions -----------------------------------------------------

    def evaluate_pause(self, port_idx, priority):
        """Combined pause decision for one PG in a single pass.

        Returns ``1`` (assert pause), ``-1`` (release pause) or ``0`` (no
        change) -- semantically ``should_pause`` / ``should_resume``
        folded together so the per-event PFC evaluation does one PG
        lookup and one threshold computation instead of up to two each.
        Thresholds are read from the live config (see :meth:`admit`).
        """
        state = self._pgs.get((port_idx, priority))
        if state is None:
            state = self.pg(port_idx, priority)
        return self.evaluate_pause_state(state)

    def evaluate_pause_state(self, state):
        """:meth:`evaluate_pause` for a caller already holding the
        :class:`PgState` (PG objects live as long as the buffer, so
        signalers cache them to skip the per-event dict lookup)."""
        if not state.paused:
            if state.headroom_used > 0:
                return 1
            config = self.config
            guaranteed = config.guaranteed_per_pg_bytes
            shared_occ = state.occupancy - guaranteed
            if shared_occ < 0:
                shared_occ = 0
            alpha = config.alpha
            if alpha is not None:
                threshold = int(alpha * (self.shared_size - self.shared_in_use))
                if threshold < 0:
                    threshold = 0
            else:
                threshold = config.xoff_static_bytes
            return 1 if shared_occ > threshold else 0
        if state.headroom_used > 0:
            return 0
        config = self.config
        guaranteed = config.guaranteed_per_pg_bytes
        shared_occ = state.occupancy - guaranteed
        if shared_occ < 0:
            shared_occ = 0
        alpha = config.alpha
        if alpha is not None:
            threshold = int(alpha * (self.shared_size - self.shared_in_use))
            if threshold < 0:
                threshold = 0
        else:
            threshold = config.xoff_static_bytes
        xon = threshold - config.xon_delta_bytes
        if xon < 0:
            xon = 0
        return -1 if shared_occ <= xon else 0

    def should_pause(self, port_idx, priority):
        """True when the PG is above XOFF and not already paused."""
        state = self.pg(port_idx, priority)
        if state.paused:
            return False
        if state.headroom_used > 0:
            return True
        guaranteed = self.config.guaranteed_per_pg_bytes
        return state.shared_occupancy(guaranteed) > self.threshold()

    def should_resume(self, port_idx, priority):
        """True when a paused PG has drained below XON."""
        state = self.pg(port_idx, priority)
        if not state.paused:
            return False
        if state.headroom_used > 0:
            return False
        guaranteed = self.config.guaranteed_per_pg_bytes
        return state.shared_occupancy(guaranteed) <= self.xon_threshold()

    def occupancy(self, port_idx, priority):
        """Total bytes held by a PG (including headroom usage)."""
        state = self.pg(port_idx, priority)
        return state.occupancy + state.headroom_used

    @property
    def total_occupancy(self):
        return sum(s.occupancy + s.headroom_used for s in self._pgs.values())

    def __repr__(self):
        return "SharedBuffer(shared %d/%d B, threshold=%dB)" % (
            self.shared_in_use,
            self.shared_size,
            self.threshold(),
        )
