"""Deterministic five-tuple ECMP hashing.

RoCEv2's UDP encapsulation exists precisely so that "the intermediate
switches use standard five-tuple hashing" (section 2): each queue pair
picks a random UDP source port, so different QPs -- even between the same
pair of hosts -- ride different paths, while one QP stays on one path
(in-order delivery).

The hash must be deterministic per switch yet different *between*
switches (real ASICs mix in a per-device seed); otherwise a 3-tier Clos
would polarize, with every switch making the same choice.
"""

import struct
import zlib


def ecmp_hash(five_tuple, seed=0):
    """A stable 32-bit hash of ``(src, dst, proto, sport, dport)``."""
    src, dst, proto, sport, dport = five_tuple
    packed = struct.pack("!IIBHH", src & 0xFFFFFFFF, dst & 0xFFFFFFFF, proto & 0xFF, sport, dport)
    return zlib.crc32(packed, seed & 0xFFFFFFFF)


def ecmp_select(five_tuple, n_choices, seed=0):
    """Pick one of ``n_choices`` next hops for a flow."""
    if n_choices <= 0:
        raise ValueError("no next hops to choose from")
    if n_choices == 1:
        return 0
    return ecmp_hash(five_tuple, seed) % n_choices
