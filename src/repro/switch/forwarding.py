"""Forwarding state: L3 routes with ECMP, and the ToR's L2 machinery.

Section 4.2 of the paper explains how a ToR forwards an IP packet to a
directly attached server, and why that process can end in *flooding*:

* the **ARP table** (IP -> MAC) is maintained by the switch CPU from ARP
  packets and times out after ~4 hours;
* the **MAC address table** (MAC -> port) is refreshed in hardware by
  received traffic and times out after ~5 minutes;
* the disparity means a dead server's MAC-table entry expires while its
  ARP entry survives -- an "incomplete" entry.  A packet for such a MAC
  has a known next-hop MAC but no port, and "the standard behavior in
  this case is for the switch to flood the packet to all its ports".

That flooding, combined with PFC, is what builds the cyclic buffer
dependency of figure 4.  The fix the paper chose (option 3) is
:attr:`ForwardingTables.drop_lossless_on_incomplete_arp`.
"""

from repro.sim.units import SEC

ARP_TIMEOUT_NS = 4 * 3600 * SEC  # 4 hours (section 4.2)
MAC_TIMEOUT_NS = 5 * 60 * SEC  # 5 minutes (section 4.2)


class _Entry:
    __slots__ = ("value", "expires_at")

    def __init__(self, value, expires_at):
        self.value = value
        self.expires_at = expires_at


class AgingTable:
    """A table whose entries expire; expiry is evaluated lazily on lookup."""

    def __init__(self, sim, timeout_ns, name):
        self.sim = sim
        self.timeout_ns = timeout_ns
        self.name = name
        self._entries = {}

    def learn(self, key, value):
        """Insert or refresh an entry."""
        self._entries[key] = _Entry(value, self.sim.now + self.timeout_ns)

    def lookup(self, key):
        """Return the live value for ``key`` or None."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expires_at <= self.sim.now:
            del self._entries[key]
            return None
        return entry.value

    def expire(self, key):
        """Administratively remove an entry (models timeout without
        simulating minutes of idle time)."""
        self._entries.pop(key, None)

    def __contains__(self, key):
        return self.lookup(key) is not None

    def __len__(self):
        now = self.sim.now
        return sum(1 for e in self._entries.values() if e.expires_at > now)


class Route:
    """One L3 route: ``prefix/prefix_len`` -> a set of next-hop ports."""

    __slots__ = ("prefix", "prefix_len", "mask", "ports", "decision")

    def __init__(self, prefix, prefix_len, ports):
        if not 0 <= prefix_len <= 32:
            raise ValueError("bad prefix length: %r" % (prefix_len,))
        if not ports:
            raise ValueError("route needs at least one next-hop port")
        self.mask = _mask(prefix_len)
        self.prefix = prefix & self.mask
        self.prefix_len = prefix_len
        self.ports = list(ports)
        # A route's FORWARD outcome never varies per packet; build it once
        # so the per-packet lookup allocates nothing.
        self.decision = ForwardDecision(
            ForwardDecision.FORWARD, self.ports, reason="l3-route"
        )

    def matches(self, addr):
        return (addr & self.mask) == self.prefix


def _mask(prefix_len):
    if prefix_len == 0:
        return 0
    return ((1 << prefix_len) - 1) << (32 - prefix_len)


class ForwardDecision:
    """Outcome of a forwarding lookup."""

    __slots__ = ("action", "ports", "reason")

    FORWARD = "forward"
    FLOOD = "flood"
    DROP = "drop"

    def __init__(self, action, ports=(), reason=""):
        self.action = action
        self.ports = list(ports)
        self.reason = reason

    def __repr__(self):
        return "ForwardDecision(%s, ports=%r, %s)" % (self.action, self.ports, self.reason)


class ForwardingTables:
    """Routing + L2 state for one switch.

    ``local_subnet``
        ``(prefix, prefix_len)`` of the directly attached server subnet
        (ToRs only); packets to it go through ARP + MAC resolution.
    ``drop_lossless_on_incomplete_arp``
        The paper's deadlock fix: instead of flooding a lossless packet
        whose ARP entry is incomplete, drop it.
    """

    def __init__(
        self,
        sim,
        local_subnet=None,
        arp_timeout_ns=ARP_TIMEOUT_NS,
        mac_timeout_ns=MAC_TIMEOUT_NS,
        drop_lossless_on_incomplete_arp=False,
    ):
        self.sim = sim
        self.local_subnet = local_subnet
        # Precompute the local-subnet match (evaluated for every packet).
        if local_subnet is not None:
            prefix, prefix_len = local_subnet
            self._local_mask = _mask(prefix_len)
            self._local_prefix = prefix & self._local_mask
        else:
            self._local_mask = None
            self._local_prefix = None
        self.arp_table = AgingTable(sim, arp_timeout_ns, "arp")
        self.mac_table = AgingTable(sim, mac_timeout_ns, "mac")
        self.routes = []
        self.drop_lossless_on_incomplete_arp = drop_lossless_on_incomplete_arp
        # Reusable per-outcome decisions (one allocation per *state*, not
        # per packet): L2 hits keyed by egress port, plus the constant
        # flood/drop outcomes.
        self._l2_decisions = {}
        self._flood_decision = ForwardDecision(
            ForwardDecision.FLOOD, reason="incomplete-arp"
        )
        self._drop_arp_miss = ForwardDecision(ForwardDecision.DROP, reason="arp-miss")
        self._drop_incomplete = ForwardDecision(
            ForwardDecision.DROP, reason="incomplete-arp-lossless"
        )
        self._drop_no_route = ForwardDecision(ForwardDecision.DROP, reason="no-route")
        # Counters.
        self.floods = 0
        self.arp_miss_drops = 0
        self.incomplete_arp_drops = 0
        self.no_route_drops = 0

    # -- table maintenance ---------------------------------------------------

    def add_route(self, prefix, prefix_len, ports):
        """Install an L3 route (ports are ECMP next hops)."""
        self.routes.append(Route(prefix, prefix_len, ports))
        # Longest prefix first so lookup can take the first match.
        self.routes.sort(key=lambda r: -r.prefix_len)

    def learn_mac(self, mac, port_idx):
        """Hardware MAC learning from a received frame's source address."""
        self.mac_table.learn(mac, port_idx)

    def learn_arp(self, ip, mac):
        """Switch-CPU ARP learning from an ARP packet."""
        self.arp_table.learn(ip, mac)

    def is_local(self, addr):
        """True when ``addr`` is in the directly attached subnet."""
        if self._local_mask is None:
            return False
        return (addr & self._local_mask) == self._local_prefix

    # -- lookup --------------------------------------------------------------

    def decide(self, dst_ip, lossless, flood_port_count=None):
        """Forwarding decision for a packet to ``dst_ip``.

        ``lossless`` enables the incomplete-ARP drop policy.  Flood port
        selection is left to the switch (it knows the ingress port);
        this returns the *action* only.
        """
        if self._local_mask is not None and (dst_ip & self._local_mask) == self._local_prefix:
            mac = self.arp_table.lookup(dst_ip)
            if mac is None:
                self.arp_miss_drops += 1
                return self._drop_arp_miss
            port = self.mac_table.lookup(mac)
            if port is not None:
                decision = self._l2_decisions.get(port)
                if decision is None:
                    decision = ForwardDecision(
                        ForwardDecision.FORWARD, [port], reason="l2-hit"
                    )
                    self._l2_decisions[port] = decision
                return decision
            # Incomplete ARP entry: IP->MAC known, MAC->port unknown.
            if lossless and self.drop_lossless_on_incomplete_arp:
                self.incomplete_arp_drops += 1
                return self._drop_incomplete
            self.floods += 1
            return self._flood_decision
        for route in self.routes:
            if (dst_ip & route.mask) == route.prefix:
                return route.decision
        self.no_route_drops += 1
        return self._drop_no_route

    def resolve_local_mac(self, dst_ip):
        """The ARP-resolved MAC for a local destination (None on miss)."""
        return self.arp_table.lookup(dst_ip)
