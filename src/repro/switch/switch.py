"""The shared-buffer switch device.

Pipeline for a data frame arriving on an ingress port:

1. classify priority (VLAN PCP or IP DSCP per :class:`PfcConfig`);
2. apply the experiment's ingress drop filter, if any (the section 4.1
   livelock experiment drops "any packet with the least significant byte
   of IP ID equals to 0xff" this way);
3. learn the source MAC (server-facing ports);
4. forwarding decision: L3 ECMP route, L2 deliver, flood (incomplete ARP
   entry) or drop;
5. shared-buffer admission against the ingress PG (lossy drop / headroom
   spill per :mod:`repro.switch.buffer`);
6. optional ECN marking against the *egress* queue depth (DCQCN CP);
7. enqueue at the egress port(s); flooded copies share one buffer claim
   (refcounted) and are flagged so routed ports can drop them at the head
   of the queue, exactly as in the paper's figure 4 narrative.

Dequeue (or head-drop) releases the buffer claim and may send XON.
Crossing XOFF sends pause out of the *ingress* port toward the sender.
"""

from repro.packets.ip import IPV4_HEADER_BYTES
from repro.packets.packet import Packet, compile_priority_resolver
from repro.net.device import Device
from repro.switch.buffer import BufferConfig, SharedBuffer
from repro.switch.ecmp import ecmp_select
from repro.switch.ecn import EcnConfig
from repro.switch.forwarding import ForwardingTables
from repro.switch.pfc import PauseSignaler, PfcConfig
from repro.switch.watchdog import PortStormWatchdog, SwitchWatchdogConfig
from repro.telemetry.hooks import HUB as _TELEMETRY
from repro.tracing.hooks import HUB as _TRACE


class _BufferClaim:
    """Shared-buffer charge for one admitted packet (refcounted across
    flood copies)."""

    __slots__ = ("port_idx", "priority", "nbytes", "refs")

    def __init__(self, port_idx, priority, nbytes, refs):
        self.port_idx = port_idx
        self.priority = priority
        self.nbytes = nbytes
        self.refs = refs


class _EgressMeta:
    """Per-copy egress queue annotation."""

    __slots__ = ("claim", "flood_copy")

    def __init__(self, claim, flood_copy):
        self.claim = claim
        self.flood_copy = flood_copy


class SwitchCounters:
    """Aggregate per-switch counters for monitoring (section 5.2)."""

    def __init__(self):
        self.rx_packets = 0
        self.tx_enqueued = 0
        self.flood_events = 0
        self.flood_copies = 0
        self.ecn_marked = 0
        self.drops = {
            "filter": 0,  # experiment-injected drops (livelock setup)
            "ttl": 0,
            "no-route": 0,
            "arp-miss": 0,
            "incomplete-arp-lossless": 0,  # the deadlock fix in action
            "buffer-lossy": 0,
            "buffer-headroom-overflow": 0,  # must stay 0: PFC violation
            "watchdog-lossless": 0,  # storm watchdog discarding
            "pause-ignored": 0,
            "vlan-port-mode": 0,  # trunk port dropping untagged (PXE!)
            "egress-lossy": 0,  # lossy egress queue cap (incast drops)
        }

    @property
    def total_drops(self):
        return sum(self.drops.values())


class Switch(Device):
    """A shared-buffer, PFC-capable, L3 ECMP switch."""

    # Same-nanosecond arrivals from different ports race for the shared
    # buffer; peers must deliver per-frame (see Device docstring).
    coalesced_delivery_ok = False

    def __init__(
        self,
        sim,
        name,
        buffer_config=None,
        pfc_config=None,
        ecn_config=None,
        local_subnet=None,
        ecmp_seed=None,
        mark_rng=None,
        base_mac=None,
        forwarding_kwargs=None,
    ):
        super().__init__(sim, name)
        self.buffer_config = buffer_config or BufferConfig()
        self.pfc_config = pfc_config or PfcConfig()
        self.ecn_config = ecn_config or EcnConfig(enabled=False)
        self.tables = ForwardingTables(
            sim, local_subnet=local_subnet, **(forwarding_kwargs or {})
        )
        self.ecmp_seed = hash(name) & 0xFFFFFFFF if ecmp_seed is None else ecmp_seed
        self._mark_rng = mark_rng
        self.base_mac = base_mac if base_mac is not None else (hash(name) & 0xFFFF) << 16
        self.counters = SwitchCounters()
        self.buffer = None  # built lazily once port count is known
        self._signalers = {}
        self._watchdogs = {}
        self._lossless_disabled_ports = set()
        self._server_port_idxs = set()
        # Experiment hook: callable(packet) -> True to drop at ingress.
        self.ingress_drop_filter = None
        # Per-config compiled classification caches.  pfc_config objects
        # are replaced wholesale (deployment steps, fault injection),
        # never mutated in place, so the caches key on object identity
        # and recompile the moment a new config is installed.
        self._classify_for = None
        self._classify = None
        self._lossless_set = frozenset()
        # ECMP choice cache: (five_tuple, n_choices) -> index, valid for
        # one seed (bench scenarios re-seed switches before booting).
        self._ecmp_cache = {}
        self._ecmp_cache_seed = None
        # Event coalescing: ports with a committed departure train in
        # flight, plus reentrancy guards for settle/uncoalesce.
        self._train_ports = set()
        self._settling = False
        self._uncoalesce_requested = False
        self._train_hooks_registered = False

    def add_port(self, **kwargs):
        port = super().add_port(**kwargs)
        # Switch dequeue callbacks are pure buffer accounting, so switch
        # egress ports may coalesce departure trains (NIC ports may not).
        port.coalesce_ok = True
        return port

    def _classifier(self):
        """The compiled ``packet -> priority`` function for the current
        pfc_config (recompiled on config replacement)."""
        pfc = self.pfc_config
        if pfc is not self._classify_for:
            self._classify = compile_priority_resolver(
                pfc.priority_mode,
                dscp_to_priority=pfc.dscp_to_priority,
                default_priority=pfc.default_priority,
            )
            self._lossless_set = (
                pfc.lossless_priorities if pfc.enabled else frozenset()
            )
            self._classify_for = pfc
        return self._classify

    def _lossless(self, priority):
        """Live-config lossless check through the identity-keyed cache."""
        if self.pfc_config is not self._classify_for:
            self._classifier()
        return priority in self._lossless_set

    # -- construction --------------------------------------------------------

    def add_server_port(self, vlan_port_mode=None):
        """A server-facing (L2 subnet) port.

        ``vlan_port_mode`` is None (no 802.1Q enforcement), ``"access"``
        (untagged only) or ``"trunk"`` (tagged only -- what VLAN-based
        PFC forces, breaking PXE boot per section 3).
        """
        port = self.add_port()
        port.is_server_facing = True
        port.vlan_port_mode = vlan_port_mode
        self._server_port_idxs.add(port.index)
        return port

    def set_server_port_modes(self, vlan_port_mode):
        """Reconfigure the 802.1Q mode of every server-facing port."""
        for idx in self._server_port_idxs:
            self.ports[idx].vlan_port_mode = vlan_port_mode

    def add_uplink_port(self, drop_flood_at_head=True):
        """A routed uplink port.  ``drop_flood_at_head`` reproduces the
        ASIC behaviour of section 4.2: flood copies reaching the head of a
        routed port's queue are dropped because the destination MAC does
        not match."""
        port = self.add_port(drop_flood_at_head=drop_flood_at_head)
        port.is_server_facing = False
        return port

    def finalize(self):
        """Build the shared buffer once all ports exist.  Idempotent."""
        if self.buffer is None:
            self.buffer = SharedBuffer(
                self.buffer_config,
                n_ports=len(self.ports),
                lossless_priorities=self.pfc_config.lossless_priorities,
            )
            # Telemetry attributes buffer-level signals to this switch.
            self.buffer.owner_name = self.name
        return self

    def enable_storm_watchdog(self, config=None):
        """Arm the section 4.3 switch-side watchdog on server-facing ports."""
        config = config or SwitchWatchdogConfig()
        for idx in self._server_port_idxs:
            port = self.ports[idx]
            if idx not in self._watchdogs:
                self._watchdogs[idx] = PortStormWatchdog(self.sim, self, port, config)
        return self

    def mac_for_port(self, port):
        """The switch's own MAC on ``port`` (pause frame source address)."""
        return self.base_mac + port.index

    def _signaler(self, port, priority):
        key = (port.index, priority)
        signaler = self._signalers.get(key)
        if signaler is None:
            signaler = PauseSignaler(self.sim, self, port, priority)
            self._signalers[key] = signaler
        return signaler

    # -- receive path --------------------------------------------------------

    def handle_packet(self, port, packet):
        """Device entry point for every frame arriving on ``port``.

        Dispatches pause frames to the port's pause state (unless the
        storm watchdog disabled lossless on that port), ARP to the
        forwarding tables, and data frames into the ingress pipeline
        described in the module docstring."""
        if self.buffer is None:
            self.finalize()
        if self._train_ports:
            # Every arrival can read or perturb shared-buffer / pause
            # state, so lazily-settled train frames are booked first.
            self.settle_trains()
        if packet.is_pause:
            if port.index in self._lossless_disabled_ports:
                # Watchdog tripped: the malfunctioning NIC's pauses are
                # ignored so they cannot propagate into the network.
                self.counters.drops["pause-ignored"] += 1
                return
            port.receive_pause(packet.pause)
            return
        if packet.is_arp:
            self._handle_arp(port, packet)
            return
        self._ingress_data(port, packet)

    def _handle_arp(self, port, packet):
        """Switch-CPU ARP processing: learn, then flood within the subnet."""
        arp = packet.arp
        self.tables.learn_arp(arp.sender_ip, arp.sender_mac)
        self.tables.learn_mac(arp.sender_mac, port.index)
        # Broadcast/flood the ARP to the other server-facing ports (ARP is
        # lossy: "broadcast and multicast packets should not be put into
        # lossless classes", section 4.2).
        for idx in self._server_port_idxs:
            if idx == port.index:
                continue
            egress = self.ports[idx]
            if egress.connected:
                egress.enqueue(packet, self.pfc_config.default_priority, meta=None)

    def _ingress_data(self, port, packet):
        self.counters.rx_packets += 1
        mode = port.vlan_port_mode
        if mode is not None:
            if mode == "trunk" and packet.vlan is None:
                # Trunk ports "can only send packets with VLAN tag" -- an
                # untagged PXE-boot exchange dies right here (section 3).
                self.counters.drops["vlan-port-mode"] += 1
                return
            if mode == "access" and packet.vlan is not None:
                self.counters.drops["vlan-port-mode"] += 1
                return
        classify = (
            self._classify
            if self.pfc_config is self._classify_for
            else self._classifier()
        )
        priority = classify(packet)
        port.record_rx(packet, priority)
        lossless = priority in self._lossless_set
        if lossless and port.index in self._lossless_disabled_ports:
            # Storm watchdog: discard lossless packets *from* the NIC.
            self.counters.drops["watchdog-lossless"] += 1
            return
        if self.ingress_drop_filter is not None and self.ingress_drop_filter(packet):
            self.counters.drops["filter"] += 1
            return
        ip = packet.ip
        if ip is not None:
            if ip.ttl <= 1:
                self.counters.drops["ttl"] += 1
                return
            ip.ttl -= 1
        if port.is_server_facing:
            self.tables.learn_mac(packet.src_mac, port.index)
        decision = self.tables.decide(ip.dst if ip is not None else 0, lossless)
        if decision.action == decision.DROP:
            self.counters.drops[decision.reason] = (
                self.counters.drops.get(decision.reason, 0) + 1
            )
            return
        if decision.action == decision.FORWARD:
            self._forward(port, packet, priority, lossless, decision)
        else:
            self._flood(port, packet, priority, lossless)

    # -- forward / flood -----------------------------------------------------

    def _forward(self, port, packet, priority, lossless, decision):
        ports = decision.ports
        n_ports = len(ports)
        if n_ports > 1:
            # Flow-sticky by construction, so the (five_tuple, n) -> index
            # mapping is memoizable; the CRC runs once per flow per path
            # width instead of once per packet.
            seed = self.ecmp_seed
            cache = self._ecmp_cache
            if seed != self._ecmp_cache_seed:
                cache.clear()
                self._ecmp_cache_seed = seed
            key = (packet.five_tuple, n_ports)
            choice = cache.get(key)
            if choice is None:
                choice = ecmp_select(key[0], n_ports, seed)
                cache[key] = choice
            egress_idx = ports[choice]
        else:
            egress_idx = ports[0]
        egress = self.ports[egress_idx]
        if decision.reason == "l2-hit":
            # Local delivery: rewrite the MAC to the ARP-resolved station.
            mac = self.tables.resolve_local_mac(packet.ip.dst)
            if mac is not None:
                packet.dst_mac = mac
        elif (
            decision.reason == "l3-route"
            and packet.vlan is not None
            and not self.pfc_config.vlan_pcp_preserved_across_l3
        ):
            # Crossing a subnet boundary: the 802.1Q tag (and with it the
            # PCP priority) is not regenerated -- the section 3 failure
            # of VLAN-based PFC on an IP-routed fabric.  Note the packet
            # was already *classified at this hop* before the tag is lost.
            packet.vlan = None
        if lossless and egress.index in self._lossless_disabled_ports:
            # Storm watchdog: discard lossless packets *to* the NIC.
            self.counters.drops["watchdog-lossless"] += 1
            return
        if not self._admit(port, priority, packet.size_bytes, lossless):
            return
        claim = _BufferClaim(port.index, priority, packet.size_bytes, refs=1)
        self._enqueue_egress(egress, packet, priority, _EgressMeta(claim, False))

    def _flood(self, port, packet, priority, lossless):
        """Unknown-unicast flooding "to all its ports" except the ingress
        (section 4.2) -- including routed uplinks, whose copies are later
        dropped at the head of the queue."""
        mac = self.tables.resolve_local_mac(packet.ip.dst) if packet.ip else None
        if mac is not None:
            packet.dst_mac = mac
        targets = [
            p
            for p in self.ports
            if p.index != port.index
            and p.connected
            and not (
                lossless and p.index in self._lossless_disabled_ports
            )
        ]
        if not targets:
            return
        if not self._admit(port, priority, packet.size_bytes, lossless):
            return
        self.counters.flood_events += 1
        claim = _BufferClaim(port.index, priority, packet.size_bytes, refs=len(targets))
        for egress in targets:
            copy = packet if egress is targets[-1] else _clone_for_flood(packet)
            self.counters.flood_copies += 1
            self._enqueue_egress(egress, copy, priority, _EgressMeta(claim, True))

    def _admit(self, port, priority, nbytes, lossless):
        admitted = self.buffer.admit(port.index, priority, nbytes, lossless)
        if not admitted:
            if lossless:
                self.counters.drops["buffer-headroom-overflow"] += 1
            else:
                self.counters.drops["buffer-lossy"] += 1
            return False
        if lossless:
            self._signaler(port, priority).evaluate()
        if self._train_ports:
            # The charge shrank the dynamic threshold; a train's lossless
            # PG may have passively crossed it, in which case its next
            # release would emit a pause -- too late under lazy
            # settlement, so fall back to per-frame mode now.
            self._check_trains_after_charge()
        return True

    def _check_trains_after_charge(self):
        buffer = self.buffer
        threshold = buffer.threshold()
        guaranteed = buffer.config.guaranteed_per_pg_bytes
        for port in self._train_ports:
            for state in port._train.pgs:
                if not state.paused and state.occupancy - guaranteed > threshold:
                    self._uncoalesce_trains()
                    return

    def _enqueue_egress(self, egress, packet, priority, meta):
        cap = self.buffer_config.lossy_egress_cap_bytes
        if (
            cap is not None
            and not self._lossless(priority)
            and egress._queue_bytes[priority] + packet.size_bytes > cap
        ):
            self.counters.drops["egress-lossy"] += 1
            if meta is not None:
                # Release this copy's share of the buffer claim.
                self._on_port_dequeue(packet, meta, True)
            return
        ecn = self.ecn_config
        if (
            ecn.enabled
            and packet.ip is not None
            and packet.ip.ect_capable
            and self._mark_rng is not None
            and ecn.should_mark(egress._queue_bytes[priority], self._mark_rng)
        ):
            packet.ip.mark_ce()
            self.counters.ecn_marked += 1
        self.counters.tx_enqueued += 1
        egress.enqueue(packet, priority, meta)

    def _on_port_dequeue(self, packet, meta, dropped_at_head):
        if meta is None:
            return  # control/ARP enqueues carry no buffer claim
        claim = meta.claim
        claim.refs -= 1
        if claim.refs == 0:
            self.buffer.release(claim.port_idx, claim.priority, claim.nbytes)
            if self._lossless(claim.priority):
                ingress = self.ports[claim.port_idx]
                self._signaler(ingress, claim.priority).evaluate()

    # -- event coalescing ------------------------------------------------------

    def train_precheck(self):
        """O(1) pre-gate: the expensive part of :meth:`train_gate` is the
        per-entry claim scan, so refuse before it whenever the silent-
        settlement conditions already fail globally."""
        buffer = self.buffer
        return (
            buffer is not None
            and not buffer.paused_pgs
            and not buffer.headroom_in_use
        )

    def train_gate(self, port, priority, entries):
        """Decide whether ``port`` may commit a departure train.

        A train is only safe while the whole settlement window is
        provably *silent*: every buffer release it will book must come
        back with "no pause state change" (otherwise the pause/resume
        frame would be emitted at settle time instead of at the frame's
        real departure time, perturbing timing).  That holds when:

        * no PG is currently paused (a paused PG's release could emit
          resume) and no headroom is in use (a headroom release changes
          the XON condition);
        * none of the train's own lossless PGs sits above the live
          shared-pool threshold (its release would emit pause).

        Admissions *during* the train window re-check the last condition
        (see :meth:`_admit`); every other perturbation (pause frames,
        control frames, faults, watchdog) uncoalesces explicitly.
        Returns the train's lossless PG states, or None to refuse.
        """
        buffer = self.buffer
        if buffer is None:
            return None
        if buffer.paused_pgs or buffer.headroom_in_use:
            return None
        pgs = []
        seen = set()
        for entry in entries:
            meta = entry.meta
            if meta is None:
                continue
            claim = meta.claim
            if not self._lossless(claim.priority):
                continue
            key = (claim.port_idx, claim.priority)
            if key in seen:
                continue
            seen.add(key)
            pgs.append(buffer.pg(claim.port_idx, claim.priority))
        guaranteed = buffer.config.guaranteed_per_pg_bytes
        threshold = buffer.threshold()
        for state in pgs:
            if state.occupancy - guaranteed > threshold:
                return None
        if not self._train_hooks_registered:
            self._train_hooks_registered = True
            self.sim.add_settle_hook(self.settle_trains)
            self.sim.add_uncoalesce_hook(self._uncoalesce_trains)
        return pgs

    def register_train_port(self, port):
        self._train_ports.add(port)

    def train_port_done(self, port):
        self._train_ports.discard(port)

    def settle_trains(self):
        """Book every train frame that has departed by now (exactly as
        the per-frame path would have at its departure time)."""
        ports = self._train_ports
        if not ports:
            return
        self._settling = True
        now = self.sim.now
        try:
            for port in list(ports):
                port._train_settle(now)
        finally:
            self._settling = False
        if self._uncoalesce_requested:
            self._uncoalesce_requested = False
            self._uncoalesce_trains()

    def _uncoalesce_trains(self):
        """Settle, then abort every committed train (fall back to
        per-frame scheduling).  Deferred if currently mid-settlement."""
        if self._settling:
            self._uncoalesce_requested = True
            return
        self.settle_trains()
        for port in list(self._train_ports):
            port._uncoalesce()

    # -- watchdog callbacks ----------------------------------------------------

    def on_watchdog_trip(self, port):
        """Switch watchdog: disable lossless mode on ``port``."""
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_switch_watchdog(self, port)
        if _TRACE.enabled:
            _TRACE.session.on_switch_watchdog(self, port)
        self._uncoalesce_trains()
        self._lossless_disabled_ports.add(port.index)
        # Stop honouring the pause state the NIC already imposed.
        port.force_resume_all()
        # Stop pausing the NIC ourselves.
        for priority in self.pfc_config.lossless_priorities:
            key = (port.index, priority)
            if key in self._signalers:
                self._signalers[key].stop()

    def on_watchdog_reenable(self, port):
        """Switch watchdog: pause frames gone; restore lossless mode."""
        self._lossless_disabled_ports.discard(port.index)

    def lossless_disabled(self, port):
        """True while the storm watchdog has lossless mode off on ``port``."""
        return port.index in self._lossless_disabled_ports

    # -- monitoring ------------------------------------------------------------

    def iter_buffer_claims(self):
        """Yield each distinct :class:`_BufferClaim` currently holding
        shared-buffer space (flood copies share one claim).  Used by the
        buffer-conservation auditor."""
        seen = set()
        for port in self.ports:
            for _priority, _packet, meta, _enqueued_ns in port.iter_entries():
                if meta is None:
                    continue
                claim = meta.claim
                if id(claim) not in seen:
                    seen.add(id(claim))
                    yield claim

    def watchdog_trips(self):
        """Total storm-watchdog trips across this switch's ports."""
        return sum(w.trips for w in self._watchdogs.values())

    def pause_frames_sent(self):
        """Total pause frames emitted by this switch (all ports)."""
        return sum(p.stats.pause_tx for p in self.ports)

    def pause_frames_received(self):
        """Total pause frames received by this switch (all ports)."""
        return sum(p.stats.pause_rx for p in self.ports)

    def queued_bytes(self):
        """Bytes currently queued across every egress port."""
        return sum(p.total_queued_bytes for p in self.ports)


def _clone_for_flood(packet):
    """A shallow copy with an independent IP header, so per-copy TTL/ECN
    mutation downstream cannot corrupt sibling copies."""
    from repro.packets.ip import Ipv4Header

    ip = packet.ip
    ip_copy = None
    if ip is not None:
        ip_copy = Ipv4Header(
            src=ip.src,
            dst=ip.dst,
            protocol=ip.protocol,
            dscp=ip.dscp,
            ecn=ip.ecn,
            total_length=ip.total_length,
            identification=ip.identification,
            ttl=ip.ttl,
        )
    return Packet(
        dst_mac=packet.dst_mac,
        src_mac=packet.src_mac,
        vlan=packet.vlan,
        ip=ip_copy,
        udp=packet.udp,
        tcp=packet.tcp,
        bth=packet.bth,
        aeth=packet.aeth,
        payload_bytes=packet.payload_bytes,
        created_ns=packet.created_ns,
        flow=packet.flow,
        context=packet.context,
    )
