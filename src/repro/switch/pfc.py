"""PFC configuration and the per-PG pause signalling state machine.

The switch asserts pause toward an upstream neighbour when an ingress PG
crosses XOFF, keeps refreshing the pause while the PG stays congested (a
pause frame only lasts its quanta, so real switches re-send before
expiry), and sends an explicit zero-quanta XON when the PG drains below
the XON threshold -- exactly the mechanism of the paper's figure 2.
"""

from repro.packets.packet import Packet, PriorityMode
from repro.packets.pause import MAX_QUANTA, PfcPauseFrame, pause_quanta_to_ns
from repro.sim.timer import Timer
from repro.telemetry.hooks import HUB as _TELEMETRY
from repro.tracing.hooks import HUB as _TRACE


class PfcConfig:
    """PFC / priority classification config shared by switches and NICs.

    ``priority_mode``
        :attr:`PriorityMode.DSCP` (the paper's contribution) or
        :attr:`PriorityMode.VLAN` (the original design).
    ``lossless_priorities``
        Which priorities are PFC-protected.  The paper uses two: "one
        lossless class for real-time traffic and the other for bulk data
        transfer"; TCP rides a third, lossy class.
    ``pause_quanta``
        Duration encoded in emitted pause frames.  Refresh happens at
        half this duration while congestion persists.
    """

    __slots__ = (
        "priority_mode",
        "lossless_priorities",
        "dscp_to_priority",
        "default_priority",
        "pause_quanta",
        "enabled",
        "vlan_pcp_preserved_across_l3",
    )

    def __init__(
        self,
        priority_mode=PriorityMode.DSCP,
        lossless_priorities=(3, 4),
        dscp_to_priority=None,
        default_priority=0,
        pause_quanta=MAX_QUANTA,
        enabled=True,
        vlan_pcp_preserved_across_l3=False,
    ):
        self.priority_mode = priority_mode
        self.lossless_priorities = frozenset(lossless_priorities)
        self.dscp_to_priority = dscp_to_priority
        self.default_priority = default_priority
        self.pause_quanta = pause_quanta
        self.enabled = enabled
        # Section 3: "in a layer-3 network, there is no standard way to
        # preserve the VLAN PCP value when crossing subnet boundaries."
        # Under VLAN mode with this False (the realistic default), the tag
        # is not regenerated after an L3 hop, so the packet loses its
        # priority -- and with it, PFC protection.
        self.vlan_pcp_preserved_across_l3 = vlan_pcp_preserved_across_l3

    def is_lossless(self, priority):
        return self.enabled and priority in self.lossless_priorities

    def copy(self, **overrides):
        """A modified copy (configuration-management experiments diff
        desired vs running configs)."""
        values = {
            "priority_mode": self.priority_mode,
            "lossless_priorities": self.lossless_priorities,
            "dscp_to_priority": self.dscp_to_priority,
            "default_priority": self.default_priority,
            "pause_quanta": self.pause_quanta,
            "enabled": self.enabled,
            "vlan_pcp_preserved_across_l3": self.vlan_pcp_preserved_across_l3,
        }
        values.update(overrides)
        return PfcConfig(**values)


class PauseSignaler:
    """Drives pause/resume frames for one ingress (port, priority) PG.

    Owned by the switch; consults the shared buffer's decisions and emits
    control frames out of the *ingress* port (back toward the sender).
    """

    __slots__ = (
        "sim",
        "switch",
        "port",
        "priority",
        "_refresh",
        "_buffer",
        "_state",
        "pauses_sent",
        "resumes_sent",
    )

    def __init__(self, sim, switch, port, priority):
        self.sim = sim
        self.switch = switch
        self.port = port
        self.priority = priority
        self._refresh = Timer(
            sim, self._on_refresh, name="%s.pfc%d" % (port.name, priority)
        )
        # Cached (buffer, PgState) pair; re-resolved if the switch ever
        # rebuilds its buffer.
        self._buffer = None
        self._state = None
        self.pauses_sent = 0
        self.resumes_sent = 0

    @property
    def _pg_state(self):
        buffer = self.switch.buffer
        if buffer is not self._buffer:
            self._buffer = buffer
            self._state = buffer.pg(self.port.index, self.priority)
        return self._state

    def evaluate(self):
        """Re-check buffer state; assert or release pause as needed."""
        # One combined buffer query (this runs on every lossless admit
        # and release); equivalent to should_pause / elif should_resume.
        state = self._pg_state
        action = self._buffer.evaluate_pause_state(state)
        if action > 0:
            state.paused = True
            self._buffer.paused_pgs += 1
            if self.switch._train_ports:
                # Committed departure trains assume no PG is paused;
                # fall back to per-frame scheduling before emitting.
                self.switch._uncoalesce_trains()
            self._send_pause()
        elif action < 0:
            state.paused = False
            self._buffer.paused_pgs -= 1
            self._refresh.cancel()
            self._send_resume()

    def _send_pause(self):
        quanta = self.switch.pfc_config.pause_quanta
        frame = PfcPauseFrame({self.priority: quanta})
        if _TRACE.enabled:
            _TRACE.session.on_switch_pause_emit(self, frame)
        self._emit(frame)
        self.pauses_sent += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_pfc_pause(self.switch)
        if self.port.link is not None:
            duration = pause_quanta_to_ns(quanta, self.port.link.rate_bps)
            self._refresh.start(max(1, duration // 2))

    def _send_resume(self):
        frame = PfcPauseFrame.resume([self.priority])
        if _TRACE.enabled:
            _TRACE.session.on_switch_resume_emit(self, frame)
        self._emit(frame)
        self.resumes_sent += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_pfc_resume(self.switch)

    def _emit(self, frame):
        if self.port.link is None:
            return
        packet = Packet.pfc_pause(
            dst_mac=0x0180C2000001,  # 802.1Qbb destination group address
            src_mac=self.switch.mac_for_port(self.port),
            pause=frame,
            created_ns=self.sim.now,
        )
        self.port.enqueue_control(packet)

    def _on_refresh(self):
        """Pause about to expire upstream; re-send while still congested."""
        if self._pg_state.paused:
            self._send_pause()

    def stop(self):
        """Stop refreshing (watchdog disabled lossless on this port)."""
        self._refresh.cancel()
        state = self._pg_state
        if state.paused:
            state.paused = False
            self._buffer.paused_pgs -= 1
