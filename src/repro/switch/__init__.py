"""The shared-buffer Ethernet switch model.

This subpackage reproduces the switch behaviour the paper depends on:

* :mod:`~repro.switch.buffer` -- ingress-accounted shared buffer with
  static or dynamic-alpha XOFF thresholds, XON hysteresis and PFC headroom
  (sections 2 and 6.2);
* :mod:`~repro.switch.pfc` -- per-(ingress-port, priority) pause state
  machine: assert, refresh, resume (802.1Qbb semantics);
* :mod:`~repro.switch.forwarding` -- L3 longest-prefix routing with ECMP,
  plus the ToR's L2 machinery: ARP table (4 h timeout), MAC table (5 min
  timeout), MAC learning and unknown-unicast flooding -- the exact
  ingredients of the section 4.2 deadlock;
* :mod:`~repro.switch.ecmp` -- deterministic five-tuple hashing;
* :mod:`~repro.switch.ecn` -- RED/ECN marking at the egress queue
  (DCQCN's congestion point);
* :mod:`~repro.switch.watchdog` -- the switch-side NIC-PFC-storm watchdog
  of section 4.3;
* :mod:`~repro.switch.switch` -- the :class:`Switch` device gluing it all
  together.
"""

from repro.switch.buffer import BufferConfig, SharedBuffer, headroom_bytes
from repro.switch.ecmp import ecmp_hash, ecmp_select
from repro.switch.ecn import EcnConfig
from repro.switch.forwarding import ForwardingTables
from repro.switch.pfc import PfcConfig
from repro.switch.switch import Switch
from repro.switch.watchdog import SwitchWatchdogConfig

__all__ = [
    "BufferConfig",
    "SharedBuffer",
    "headroom_bytes",
    "PfcConfig",
    "EcnConfig",
    "ForwardingTables",
    "ecmp_hash",
    "ecmp_select",
    "Switch",
    "SwitchWatchdogConfig",
]
