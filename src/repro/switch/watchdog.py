"""The switch-side NIC-PFC-storm watchdog (section 4.3).

The paper's ToR switches "monitor the server facing ports.  Once a server
facing egress port is queuing packets which cannot be drained, and at the
same time, the port is receiving continuous pause frames from the NIC,
the switch will disable the lossless mode for the port and discard the
lossless packets to and from the NIC."  Once pause frames stay absent for
a period (default 200 ms), lossless mode is re-enabled -- unlike the
NIC-side watchdog, the switch watchdog *does* re-arm.
"""

from repro.sim.units import MS
from repro.sim.timer import Timer


class SwitchWatchdogConfig:
    """Tunables for the switch-side storm watchdog."""

    def __init__(self, poll_interval_ns=10 * MS, reenable_after_ns=200 * MS, enabled=True):
        self.poll_interval_ns = poll_interval_ns
        self.reenable_after_ns = reenable_after_ns
        self.enabled = enabled


class PortStormWatchdog:
    """Watches one server-facing port of a switch."""

    def __init__(self, sim, switch, port, config):
        self.sim = sim
        self.switch = switch
        self.port = port
        self.config = config
        self.lossless_disabled = False
        self.trips = 0
        self.reenables = 0
        self._last_tx_packets = 0
        self._last_pause_rx = 0
        self._last_pause_seen_at = 0
        self._poll = Timer(sim, self._check, name="%s.wdog" % port.name)
        if config.enabled:
            self._poll.start(config.poll_interval_ns)

    def _check(self):
        stats = self.port.stats
        pause_delta = stats.pause_rx - self._last_pause_rx
        if pause_delta > 0:
            self._last_pause_seen_at = self.sim.now
        if not self.lossless_disabled:
            stuck = (
                self.port.total_queued_packets > 0
                and stats.total_tx_packets == self._last_tx_packets
            )
            if stuck and pause_delta > 0:
                self._trip()
        else:
            quiet_for = self.sim.now - self._last_pause_seen_at
            if quiet_for >= self.config.reenable_after_ns:
                self._reenable()
        self._last_tx_packets = stats.total_tx_packets
        self._last_pause_rx = stats.pause_rx
        self._poll.start(self.config.poll_interval_ns)

    def _trip(self):
        """Disable lossless mode: ignore the NIC's pauses and discard
        lossless packets to/from it, confining the storm to one port."""
        self.lossless_disabled = True
        self.trips += 1
        self.switch.on_watchdog_trip(self.port)

    def _reenable(self):
        """Pause frames gone (e.g. the server was repaired/rebooted):
        restore lossless service on the port."""
        self.lossless_disabled = False
        self.reenables += 1
        self.switch.on_watchdog_reenable(self.port)

    def stop(self):
        self._poll.cancel()
