"""Span objects for the causal tracing plane.

These are the in-memory side-table values a live
:class:`~repro.tracing.session.TraceSession` keeps while a run is in
flight, plus the serializers that turn them into the JSONL artifact
records (schema ``repro-trace/1``) every offline surface -- attribution,
causality, the CLI, the Chrome exporter -- consumes.

Design constraints (see docs/tracing.md):

* **No packet-field changes.**  Spans are keyed by ``id(packet)`` /
  ``id(frame)`` in dicts holding *strong* references; packets are
  single Python objects end to end (retransmissions are new objects,
  so each transmission instance gets its own :class:`PacketTrace`).
* **Timestamps only from the scheduler.**  Every event tuple records
  ``sim.now`` at a hook site; attribution later decomposes an op's
  completion time purely by differencing these timestamps, which is
  what makes the exact-sum invariant possible.
* **Compact events.**  Per-packet hop events are small tuples, not
  objects -- a traced op touches every hop of every segment, so this is
  the memory-bearing structure of the subsystem.

Event tuple shapes (first element is the tag)::

    ("tx",      t_ns, retransmit_flag)          # QP built a data packet
    ("ctrl",    t_ns)                           # QP built an ACK/NAK/CNP
    ("enq",     t_ns, port, device, priority)   # egress queue admit
    ("wire",    t_ns, port, ser_ns, prop_ns)    # serialization start
    ("nicrx",   t_ns, nic)                      # NIC rx-buffer admit
    ("nicdone", t_ns)                           # NIC rx pipeline done
    ("drop",    t_ns, device, reason)           # terminal loss
"""


class OpTrace:
    """Life of one traced work request (WQE post -> CQE)."""

    __slots__ = (
        "wr_id",
        "qp_name",
        "qpn",
        "host",
        "kind",
        "size_bytes",
        "posted_ns",
        "completed_ns",
        "start_psn",
        "end_psn",
        "tx_count",
        "retx_count",
        "chain",
        "packets",
        "packets_dropped",
    )

    def __init__(self, wr_id, qp_name, qpn, host, kind, size_bytes,
                 posted_ns, start_psn, end_psn):
        self.wr_id = wr_id
        self.qp_name = qp_name
        self.qpn = qpn
        self.host = host
        self.kind = kind
        self.size_bytes = size_bytes
        self.posted_ns = posted_ns
        self.completed_ns = None
        self.start_psn = start_psn
        self.end_psn = end_psn
        self.tx_count = 0
        self.retx_count = 0
        #: completion chain, CQE-side first: [ack PacketTrace, data
        #: PacketTrace] for SEND/WRITE, [response PacketTrace] for READ.
        self.chain = ()
        #: every PacketTrace of this op, in tx order (capped).
        self.packets = []
        self.packets_dropped = 0


class PacketTrace:
    """Hop-by-hop history of one transmission instance of one packet."""

    __slots__ = ("kind", "psn", "first_tx_ns", "parent", "events")

    def __init__(self, kind, psn=None, first_tx_ns=None, parent=None):
        self.kind = kind
        self.psn = psn
        #: for data packets: first-ever tx time of this (qp, psn) --
        #: differs from events[0] on retransmissions.
        self.first_tx_ns = first_tx_ns
        #: the PacketTrace whose rx dispatch created this packet
        #: (e.g. the data segment an ACK acknowledges); None for data.
        self.parent = parent
        self.events = []


class PauseNode:
    """One pause *episode*: an XOFF assert plus its refreshes, until
    resume.  Nodes are the vertices of the pause-causality DAG; a
    ``causes`` edge points at the upstream episode whose pause was
    stalling this device's egress when it crossed its own threshold."""

    __slots__ = (
        "node_id",
        "device",
        "port",
        "device_kind",
        "kind",
        "trigger",
        "priority",
        "start_ns",
        "end_ns",
        "emissions",
        "occupancy",
        "threshold",
        "causes",
    )

    def __init__(self, node_id, device, port, device_kind, kind, trigger,
                 priority, start_ns, occupancy, threshold):
        self.node_id = node_id
        self.device = device
        self.port = port
        self.device_kind = device_kind          # "switch" | "nic"
        self.kind = kind                        # "switch-pg" | "nic-rx"
        self.trigger = trigger                  # what crossed: see session
        self.priority = priority                # int, or None for NIC all-PG
        self.start_ns = start_ns
        self.end_ns = None                      # None while open
        self.emissions = 1                      # assert + refresh count
        self.occupancy = occupancy              # bytes at first assert
        self.threshold = threshold              # XOFF threshold crossed
        self.causes = set()                     # upstream node_ids

    def as_record(self):
        return {
            "type": "pause_node",
            "id": self.node_id,
            "device": self.device,
            "port": self.port,
            "device_kind": self.device_kind,
            "kind": self.kind,
            "trigger": self.trigger,
            "priority": self.priority,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "emissions": self.emissions,
            "occupancy_bytes": self.occupancy,
            "threshold_bytes": self.threshold,
            "causes": sorted(self.causes),
        }


def packet_record(trace):
    """Serialize a PacketTrace (events as lists, parent elided -- chains
    serialize parents as separate chain entries)."""
    record = {
        "kind": trace.kind,
        "events": [list(event) for event in trace.events],
    }
    if trace.psn is not None:
        record["psn"] = trace.psn
    if trace.first_tx_ns is not None:
        record["first_tx_ns"] = trace.first_tx_ns
    return record


def op_record(op):
    """Serialize an OpTrace into its artifact line."""
    return {
        "type": "op",
        "wr_id": op.wr_id,
        "qp": op.qp_name,
        "qpn": op.qpn,
        "host": op.host,
        "kind": op.kind,
        "size_bytes": op.size_bytes,
        "posted_ns": op.posted_ns,
        "completed_ns": op.completed_ns,
        "start_psn": op.start_psn,
        "end_psn": op.end_psn,
        "tx_count": op.tx_count,
        "retx_count": op.retx_count,
        "chain": [packet_record(trace) for trace in op.chain],
        "packets": [packet_record(trace) for trace in op.packets],
        "packets_dropped": op.packets_dropped,
    }


def merge_pause_timeline(timeline):
    """Reconstruct closed pause intervals from raw pause-wire events.

    ``timeline`` holds ``(t_ns, port, device, device_kind, priority,
    deadline_ns)`` tuples in time order, one per priority per received
    pause/resume frame (``deadline_ns <= t_ns`` encodes a resume).  The
    port model *overwrites* its deadline on every frame (``Port.
    receive_pause``), so a refresh with a shorter quanta shortens the
    interval -- this merge mirrors that semantic exactly, which is what
    attribution's pause-overlap arithmetic relies on.

    Returns ``{(port, priority): [(start_ns, end_ns), ...]}`` with
    non-overlapping, time-ordered intervals, plus per-key device info
    in a second dict ``{(port, priority): (device, device_kind)}``.
    """
    events = {}
    info = {}
    for t_ns, port, device, device_kind, priority, deadline_ns in timeline:
        key = (port, priority)
        events.setdefault(key, []).append((t_ns, deadline_ns))
        info[key] = (device, device_kind)
    intervals = {}
    for key, series in events.items():
        out = []
        start = end = None
        for t_ns, deadline_ns in series:
            if deadline_ns <= t_ns:
                # resume (or zero-quanta frame): close any open interval
                if start is not None:
                    closed = min(end, t_ns)
                    if closed > start:
                        out.append((start, closed))
                    start = end = None
                continue
            if start is None:
                start, end = t_ns, deadline_ns
            elif t_ns > end:
                # previous pause expired untouched before this one
                out.append((start, end))
                start, end = t_ns, deadline_ns
            else:
                # refresh: the port overwrites its deadline
                end = deadline_ns
        if start is not None and end > start:
            out.append((start, end))
        if out:
            intervals[key] = out
    return intervals, info
