"""Pause-causality graphs: from pause episodes to the initial trigger.

The session records every pause *episode* (a ``pause_node`` artifact
record) with ``causes`` edges pointing at the upstream episode whose
pause was stalling the emitter's egress when it crossed its own
threshold.  This module turns those records into a DAG and answers the
DCFIT-style question the paper's section 6 war stories all reduce to:
*which device emitted the first pause, and who merely propagated it?*

* **Roots** are episodes with no cause -- the initial triggers.  In the
  section 4.3 NIC pause storm the root is the broken NIC
  (``trigger: rx_pipeline_broken``); in an ordinary incast it is the
  congested ToR PG (``trigger: ingress-xoff``).
* **Propagators** are switch episodes caused by other episodes -- the
  pause tree spreading hop by hop toward the sources.
* **Victims** are leaves that only *suffered*: ports (NIC-side
  especially) that accumulated paused time without emitting pauses of
  their own, plus -- when attributions are supplied -- the traced ops
  that paid ``pause_ns`` for it.

Cycles (the section 4.2 CBD deadlock) have no root by definition;
:func:`build_dag` reports the cycle members instead of picking one
arbitrarily.

Pure functions over artifact records, shared by the tests and the
``python -m repro.tracing storm`` CLI.
"""


class StormDag:
    """The assembled causality graph plus victim annotations."""

    def __init__(self, nodes, roots, cyclic, victims):
        #: {node_id: pause_node record}
        self.nodes = nodes
        #: root node_ids (no causes), DCFIT initial-trigger candidates
        self.roots = roots
        #: node_ids on a causes-cycle (CBD deadlock); empty normally
        self.cyclic = cyclic
        #: [{"device", "port", "paused_ns", "flows": [...]}, ...]
        self.victims = victims

    @property
    def edges(self):
        """(cause_id, effect_id) pairs."""
        out = []
        for node in self.nodes.values():
            for cause in node["causes"]:
                out.append((cause, node["id"]))
        return out

    def children(self, node_id):
        return sorted(
            node["id"] for node in self.nodes.values() if node_id in node["causes"]
        )

    def root_records(self):
        return [self.nodes[node_id] for node_id in self.roots]

    def descendant_count(self, node_id):
        """Episodes transitively caused by ``node_id``."""
        seen = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for child in self.children(current):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return len(seen)

    def initial_trigger(self):
        """The DCFIT-style initial trigger: the root whose causal tree
        is largest (most propagated episodes), earliest start breaking
        ties.  None when nothing paused or the graph is all cycle."""
        if not self.roots:
            return None
        best = max(
            self.roots,
            key=lambda node_id: (
                self.descendant_count(node_id),
                -self.nodes[node_id]["start_ns"],
            ),
        )
        return self.nodes[best]


def build_dag(records, attributions=None):
    """Assemble the pause-causality DAG from artifact records.

    ``attributions`` (optional, from :func:`repro.tracing.attribution.
    attribute_records`) adds per-victim flow attribution: ops that paid
    ``pause_ns`` are listed under the victims summary.
    """
    nodes = {
        record["id"]: record
        for record in records
        if record.get("type") == "pause_node"
    }
    roots = sorted(
        node["id"] for node in nodes.values() if not node["causes"]
    )
    cyclic = _find_cycle_members(nodes) if not roots and nodes else []

    # Victims: ports that spent time paused.  A NIC-side paused port is
    # a stalled *sender* (the classic storm victim); emitters are
    # excluded -- they are nodes already.
    emitting_devices = {node["device"] for node in nodes.values()}
    paused = {}
    for record in records:
        if record.get("type") != "pause_interval":
            continue
        key = (record["device"], record["port"], record["device_kind"])
        paused[key] = paused.get(key, 0) + (
            record["end_ns"] - record["start_ns"]
        )
    victims = []
    for (device, port, device_kind), paused_ns in sorted(paused.items()):
        if device in emitting_devices:
            continue
        victims.append(
            {
                "device": device,
                "port": port,
                "device_kind": device_kind,
                "paused_ns": paused_ns,
                "flows": [],
            }
        )
    if attributions:
        by_host = {}
        for attribution in attributions:
            if attribution.get("complete") and attribution.get("pause_ns", 0) > 0:
                host = attribution.get("host") or attribution["qp"].split(".")[0]
                by_host.setdefault(host, []).append(
                    {
                        "qp": attribution["qp"],
                        "wr_id": attribution["wr_id"],
                        "pause_ns": attribution["pause_ns"],
                        "fct_ns": attribution["fct_ns"],
                    }
                )
        for victim in victims:
            flows = by_host.get(victim["device"], [])
            victim["flows"] = sorted(
                flows, key=lambda flow: -flow["pause_ns"]
            )
    return StormDag(nodes, roots, cyclic, victims)


def _find_cycle_members(nodes):
    """Node ids that sit on a causes-cycle (every node reachable from
    itself).  Small graphs; a simple reachability walk is fine."""
    members = []
    for node_id in nodes:
        seen = set()
        frontier = set(nodes[node_id]["causes"])
        while frontier:
            current = frontier.pop()
            if current == node_id:
                members.append(node_id)
                break
            if current in seen or current not in nodes:
                continue
            seen.add(current)
            frontier.update(nodes[current]["causes"])
    return sorted(members)


def _node_line(node):
    window = "%.3f-%s ms" % (
        node["start_ns"] / 1e6,
        "..." if node["end_ns"] is None else "%.3f" % (node["end_ns"] / 1e6),
    )
    return "%s %s (%s, prio %s, %d emission%s, %s, %d/%d B)" % (
        node["device"],
        node["port"],
        node["trigger"],
        "all" if node["priority"] is None else node["priority"],
        node["emissions"],
        "" if node["emissions"] == 1 else "s",
        window,
        node["occupancy_bytes"],
        node["threshold_bytes"],
    )


def render_text(dag, max_trees=None):
    """Human-readable causal view.

    Isolated episodes (no causes, no effects -- ordinary transient
    congestion asserting and releasing on its own) are *collapsed*
    into one summary line per (device, trigger); only the connected
    causal trees -- the storm -- are rendered node by node, largest
    first, with the DCFIT initial trigger called out up top.  A
    saturated fabric emits thousands of self-contained pause episodes;
    the storm is the tree, not the noise.  ``max_trees`` caps how many
    trees are rendered (largest first; the rest are counted).
    """
    lines = []
    if not dag.nodes:
        return "no pause episodes recorded"
    if dag.cyclic:
        lines.append(
            "CYCLE (no root -- CBD deadlock candidate): nodes %s"
            % ", ".join(str(node_id) for node_id in dag.cyclic)
        )
        starts = dag.cyclic[:1]
    else:
        starts = sorted(
            dag.roots,
            key=lambda node_id: (
                -dag.descendant_count(node_id),
                dag.nodes[node_id]["start_ns"],
            ),
        )
    trigger = dag.initial_trigger()
    if trigger is not None:
        lines.append(
            "initial trigger: %s %s (%s), %d downstream episode%s"
            % (
                trigger["device"],
                trigger["port"],
                trigger["trigger"],
                dag.descendant_count(trigger["id"]),
                "" if dag.descendant_count(trigger["id"]) == 1 else "s",
            )
        )
    seen = set()

    def walk(node_id, depth):
        marker = "ROOT" if depth == 0 else "└─"
        indent = "  " * depth
        suffix = " (revisited)" if node_id in seen else ""
        lines.append(
            "%s%s %s%s" % (indent, marker, _node_line(dag.nodes[node_id]), suffix)
        )
        if node_id in seen:
            return
        seen.add(node_id)
        for child in dag.children(node_id):
            walk(child, depth + 1)

    isolated = {}
    trees_rendered = 0
    trees_elided = 0
    for node_id in starts:
        node = dag.nodes[node_id]
        if not node["causes"] and not dag.children(node_id):
            key = (node["device"], node["trigger"])
            entry = isolated.setdefault(
                key, {"count": 0, "emissions": 0, "first": None, "last": None}
            )
            entry["count"] += 1
            entry["emissions"] += node["emissions"]
            start = node["start_ns"]
            if entry["first"] is None or start < entry["first"]:
                entry["first"] = start
            if entry["last"] is None or start > entry["last"]:
                entry["last"] = start
            seen.add(node_id)
            continue
        if max_trees is not None and trees_rendered >= max_trees:
            trees_elided += 1
            seen.add(node_id)
            seen.update(
                child for child in dag.children(node_id)
            )
            continue
        walk(node_id, 0)
        trees_rendered += 1
    if trees_elided:
        lines.append(
            "... %d further causal tree(s) elided (pass max_trees=None "
            "or --full for all)" % trees_elided
        )
    if max_trees is None:
        orphans = [
            node_id for node_id in sorted(dag.nodes) if node_id not in seen
        ]
        for node_id in orphans:
            walk(node_id, 0)
    if isolated:
        lines.append(
            "isolated congestion episodes (no causal edges, collapsed):"
        )
        for (device, trigger_kind), entry in sorted(isolated.items()):
            lines.append(
                "  %s: %d episodes (%d emissions, %s) %.3f-%.3f ms"
                % (
                    device,
                    entry["count"],
                    entry["emissions"],
                    trigger_kind,
                    entry["first"] / 1e6,
                    entry["last"] / 1e6,
                )
            )
    if dag.victims:
        lines.append("victims:")
        for victim in dag.victims:
            lines.append(
                "  %s %s paused %.3f ms"
                % (victim["device"], victim["port"], victim["paused_ns"] / 1e6)
            )
            for flow in victim["flows"][:5]:
                lines.append(
                    "    %s wr %d: %.1f%% of %.3f ms FCT stalled by pause"
                    % (
                        flow["qp"],
                        flow["wr_id"],
                        100.0 * flow["pause_ns"] / max(1, flow["fct_ns"]),
                        flow["fct_ns"] / 1e6,
                    )
                )
    return "\n".join(lines)
