"""Trace artifact I/O: JSONL, Chrome trace events, incident windows.

Artifact layout (one JSON object per line, schema ``repro-trace/1``)::

    {"type": "meta", "schema": "repro-trace/1", ...}
    {"type": "op", "wr_id": ..., "chain": [...], "packets": [...]}
    {"type": "pause_node", "id": ..., "causes": [...]}
    {"type": "pause_interval", "port": ..., "start_ns": ..., ...}
    {"type": "event" | "rate_decrease", ...}
    {"type": "summary", ...}

The Chrome trace-event export (:func:`chrome_trace`) produces a JSON
object loadable by Perfetto / ``chrome://tracing``: each traced op is
an async span on its posting host, each hop of its completion-chain
packets a duration slice on the device/port that held it, and each
pause episode a slice on the emitting device -- the storm literally
renders as a wall of pause slices with the victim ops stretched
underneath.

:func:`windows_from_telemetry` bridges the two observability planes:
give it a *telemetry* artifact's records and it returns the incident
time windows (padded), ready for :func:`filter_window` -- the
"telemetry incident -> trace window" triage step docs/telemetry.md and
docs/tracing.md walk through.
"""

import json


def write_jsonl(records, path):
    """Write records (dicts) as JSON Lines; returns the path."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path):
    """Read a JSONL artifact back into a list of dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_artifacts(record_lists, out_dir, stem):
    """Write one ``<stem>-<i>.trace.jsonl`` per drained session.

    ``record_lists`` is what :func:`repro.tracing.hooks.drain` returns.
    Returns the list of paths written.
    """
    import os

    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for index, records in enumerate(record_lists):
        path = os.path.join(out_dir, "%s-%d.trace.jsonl" % (stem, index))
        write_jsonl(records, path)
        paths.append(path)
    return paths


def summary_of(records):
    """The summary record of an artifact (or an empty dict)."""
    for record in records:
        if record.get("type") == "summary":
            return record
    return {}


# ---------------------------------------------------------------- windows


def windows_from_telemetry(telemetry_records, pad_ns=1_000_000):
    """Incident time windows from a *telemetry* artifact's records.

    Returns ``[{"kind", "device", "start_ns", "end_ns"}, ...]`` with
    each incident's window padded by ``pad_ns`` on both sides (clamped
    at zero; open-ended incidents stay open -- ``end_ns`` None means
    "until the end of the trace").
    """
    windows = []
    for record in telemetry_records:
        if record.get("type") != "incident":
            continue
        end = record.get("end_ns")
        windows.append(
            {
                "kind": record.get("kind"),
                "device": record.get("device"),
                "start_ns": max(0, record["start_ns"] - pad_ns),
                "end_ns": None if end is None else end + pad_ns,
            }
        )
    return windows


def _overlaps(start, end, lo, hi):
    if start is None:
        return False
    if hi is None:
        hi = float("inf")
    if end is None:
        end = start
    return start <= hi and end >= lo


def filter_window(records, start_ns, end_ns=None):
    """Keep the records relevant to ``[start_ns, end_ns]``.

    Meta and summary records always pass; ops pass when their
    ``[posted_ns, completed_ns]`` span overlaps the window; pause
    nodes/intervals and point events pass on overlap too.  ``end_ns``
    None means "to the end".
    """
    out = []
    for record in records:
        rtype = record.get("type")
        if rtype in ("meta", "summary"):
            out.append(record)
        elif rtype == "op":
            if _overlaps(
                record.get("posted_ns"), record.get("completed_ns"),
                start_ns, end_ns,
            ):
                out.append(record)
        elif rtype in ("pause_node", "pause_interval"):
            if _overlaps(
                record.get("start_ns"), record.get("end_ns"), start_ns, end_ns
            ):
                out.append(record)
        elif "t_ns" in record:
            if _overlaps(record["t_ns"], record["t_ns"], start_ns, end_ns):
                out.append(record)
        else:
            out.append(record)
    return out


# ----------------------------------------------------------- Chrome export


def _us(t_ns):
    return t_ns / 1000.0


def chrome_trace(records, max_ops=None):
    """Records -> Chrome trace-event JSON object (Perfetto-loadable).

    ``max_ops`` caps how many ops get per-hop slices (the async span is
    always emitted); None means no cap.
    """
    events = []
    op_count = 0
    for record in records:
        rtype = record.get("type")
        if rtype == "op":
            name = "%s wr%d %s %dB" % (
                record["qp"], record["wr_id"], record["kind"],
                record["size_bytes"],
            )
            completed = record.get("completed_ns")
            events.append(
                {
                    "ph": "b", "cat": "op", "id": record["wr_id"],
                    "name": name, "pid": record.get("host", record["qp"]),
                    "tid": "ops", "ts": _us(record["posted_ns"]),
                }
            )
            events.append(
                {
                    "ph": "e", "cat": "op", "id": record["wr_id"],
                    "name": name, "pid": record.get("host", record["qp"]),
                    "tid": "ops",
                    "ts": _us(
                        completed
                        if completed is not None
                        else record["posted_ns"]
                    ),
                }
            )
            op_count += 1
            if max_ops is not None and op_count > max_ops:
                continue
            for packet in record.get("chain", ()):
                events.extend(_packet_slices(packet, record["wr_id"]))
        elif rtype == "pause_node":
            end = record.get("end_ns")
            if end is None:
                end = record["start_ns"]
            events.append(
                {
                    "ph": "X", "cat": "pause",
                    "name": "pause (%s)" % record["trigger"],
                    "pid": record["device"], "tid": record["port"],
                    "ts": _us(record["start_ns"]),
                    "dur": _us(end - record["start_ns"]),
                    "args": {
                        "emissions": record["emissions"],
                        "causes": record["causes"],
                        "priority": record["priority"],
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def _packet_slices(packet, wr_id):
    """Queue + serialization slices for one chain packet's hops."""
    slices = []
    events = packet["events"]
    label = packet["kind"]
    if "psn" in packet:
        label = "%s psn %d" % (label, packet["psn"])
    pending = None  # (enq_t, port, device)
    for event in events:
        tag = event[0]
        if tag == "enq":
            pending = (event[1], event[2], event[3])
        elif tag == "wire" and pending is not None:
            enq_t, port, device = pending
            pending = None
            if event[1] > enq_t:
                slices.append(
                    {
                        "ph": "X", "cat": "queue",
                        "name": "queued %s" % label,
                        "pid": device, "tid": port,
                        "ts": _us(enq_t), "dur": _us(event[1] - enq_t),
                        "args": {"wr_id": wr_id},
                    }
                )
            slices.append(
                {
                    "ph": "X", "cat": "wire",
                    "name": "serialize %s" % label,
                    "pid": device, "tid": port,
                    "ts": _us(event[1]), "dur": _us(event[3]),
                    "args": {"wr_id": wr_id},
                }
            )
        elif tag == "nicrx":
            nicrx_t, nic = event[1], event[2]
            done = [e for e in events if e[0] == "nicdone" and e[1] >= nicrx_t]
            if done:
                slices.append(
                    {
                        "ph": "X", "cat": "nic",
                        "name": "rx pipeline %s" % label,
                        "pid": nic, "tid": "rx",
                        "ts": _us(nicrx_t), "dur": _us(done[0][1] - nicrx_t),
                        "args": {"wr_id": wr_id},
                    }
                )
    return slices
