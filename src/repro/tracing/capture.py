"""Packet tracing: a tcpdump for the simulated fabric.

Attach a :class:`PacketTracer` to any set of links and every frame
crossing them is recorded with its timing and a decoded summary --
invaluable when debugging pause loops ("which PG paused whom, when?")
and usable from tests to assert on wire-level behaviour.

    tracer = PacketTracer(sim)
    tracer.attach(link)
    ... run ...
    pauses = tracer.select(kind="pause")
    tracer.to_jsonl("trace.jsonl")

Records are plain dicts, cheap to filter and serialize.  Tracing is
strictly observational: attaching never changes simulation behaviour.

The tracer is one of four granularities of the same observability
story (see ARCHITECTURE.md): telemetry aggregates *counters*
fabric-wide on a poll interval and runs incident detectors over them;
the causal tracing plane (:mod:`repro.tracing.session`) follows
*sampled ops* end to end and attributes their latency; this module
captures *every frame* on chosen links (a packet capture -- exact but
heavy, bounded by ``max_records``); and pingmesh measures *end-to-end
probe RTTs* from the outside.  Triage typically starts from a
telemetry incident ("pause_storm on P0T0-S0.nic at t=2ms"), narrows to
a trace window (``python -m repro.tracing export
--window-from-telemetry``), and only then drops down to a tracer
attached around the implicated links to see the individual pause
frames; docs/telemetry.md and docs/tracing.md walk through exactly
that.  Note one behavioural difference: telemetry's poll timer does
add events to the simulation schedule (changing determinism
fingerprints), whereas an attached tracer or trace session never does.
"""

import json

from repro.packets.packet import Packet


class TraceRecord:
    """One captured frame."""

    __slots__ = ("t_ns", "link", "src_port", "kind", "fields")

    def __init__(self, t_ns, link, src_port, kind, fields):
        self.t_ns = t_ns
        self.link = link
        self.src_port = src_port
        self.kind = kind
        self.fields = fields

    def as_dict(self):
        record = {
            "t_ns": self.t_ns,
            "link": self.link,
            "src_port": self.src_port,
            "kind": self.kind,
        }
        record.update(self.fields)
        return record

    def __repr__(self):
        return "TraceRecord(t=%d, %s, %s)" % (self.t_ns, self.src_port, self.kind)


def summarize(packet):
    """(kind, fields) decoded from a packet for the trace record."""
    if packet.is_pause:
        return "pause", {
            "paused": packet.pause.paused_priorities,
            "resumed": packet.pause.resumed_priorities,
        }
    if packet.is_arp:
        return "arp", {
            "op": "request" if packet.arp.is_request else "reply",
            "sender_ip": packet.arp.sender_ip,
        }
    if packet.is_rocev2:
        fields = {
            "opcode": packet.bth.opcode.name,
            "qp": packet.bth.dest_qp,
            "psn": packet.bth.psn,
            "bytes": packet.size_bytes,
            "dscp": packet.ip.dscp,
            "ecn": packet.ip.ecn,
        }
        if packet.vlan is not None:
            fields["pcp"] = packet.vlan.pcp
        return "rocev2", fields
    if packet.is_tcp:
        return "tcp", {
            "seq": packet.tcp.seq,
            "ack": packet.tcp.ack,
            "bytes": packet.size_bytes,
            "payload": packet.payload_bytes,
        }
    return "other", {"bytes": packet.size_bytes}


class PacketTracer:
    """Records frames crossing the links it is attached to."""

    def __init__(self, sim, max_records=100_000):
        self.sim = sim
        self.max_records = max_records
        self.records = []
        self.dropped_records = 0
        self._attached = []

    def attach(self, link):
        """Start capturing on ``link``.  Idempotent per link."""
        if link in self._attached:
            return
        self._attached.append(link)
        original_transmit = link.transmit

        def traced_transmit(from_port, packet, _original=original_transmit):
            self._record(link, from_port, packet)
            return _original(from_port, packet)

        link.transmit = traced_transmit

    def attach_all(self, fabric):
        """Capture on every link of a fabric."""
        for link in fabric.links:
            self.attach(link)
        return self

    def _record(self, link, from_port, packet):
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        kind, fields = summarize(packet)
        self.records.append(
            TraceRecord(self.sim.now, link.name, from_port.name, kind, fields)
        )

    # -- queries -----------------------------------------------------------------

    def select(self, kind=None, link=None, since_ns=None):
        """Filter records by kind, link-name substring and/or start time."""
        out = []
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if link is not None and link not in record.link:
                continue
            if since_ns is not None and record.t_ns < since_ns:
                continue
            out.append(record)
        return out

    def counts_by_kind(self):
        counts = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def to_jsonl(self, path):
        """Write one JSON object per captured frame."""
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.as_dict()) + "\n")
        return path

    def __len__(self):
        return len(self.records)
