"""repro.tracing -- the causal tracing plane (and packet capture).

Two tools share this package:

* The **causal tracing plane**: sampled life-of-an-op spans, latency
  attribution with an exact-sum invariant, and pause-causality graphs
  whose roots are the DCFIT-style initial triggers.  Arm it like
  telemetry (``repro.tracing.arm()`` before ``Fabric.boot``, or
  ``--trace`` on the bench/experiment CLIs), drain artifacts after the
  run, and analyse online or via ``python -m repro.tracing``.
  See docs/tracing.md.

* The original **packet capture** (:class:`PacketTracer`), absorbed
  from the old top-level ``repro/tracing.py`` module as
  :mod:`repro.tracing.capture`.  The historical import surface is
  preserved: ``from repro.tracing import PacketTracer, TraceRecord,
  summarize`` keeps working.

Quick start::

    from repro import tracing

    tracing.arm(tracing.TraceConfig(sample_rate=0.1, sample_seed=7))
    fabric.boot()           # session auto-attaches
    ... run ...
    tracing.disarm()
    for records in tracing.drain():
        attributions = tracing.attribute_records(records)
        dag = tracing.build_dag(records, attributions)

The dark path is a single disabled-bool check per probe: with the hub
unarmed every bench fingerprint in benchmarks/BASELINE.json stays
byte-identical (CI's dark-path gate), and because a session schedules
no events, fingerprints stay identical even while armed.
"""

from repro.tracing.capture import PacketTracer, TraceRecord, summarize
from repro.tracing.hooks import HUB, TraceHub, arm, disarm, drain, maybe_attach
from repro.tracing.session import TraceConfig, TraceSession
from repro.tracing.attribution import (
    COMPONENTS,
    aggregate,
    attribute_op,
    attribute_records,
    pause_intervals_from_records,
    pause_overlap,
)
from repro.tracing.causality import StormDag, build_dag, render_text
from repro.tracing.export import (
    chrome_trace,
    filter_window,
    read_jsonl,
    summary_of,
    windows_from_telemetry,
    write_artifacts,
    write_jsonl,
)

__all__ = [
    # packet capture (legacy surface)
    "PacketTracer",
    "TraceRecord",
    "summarize",
    # hub lifecycle
    "HUB",
    "TraceHub",
    "arm",
    "disarm",
    "drain",
    "maybe_attach",
    "TraceConfig",
    "TraceSession",
    # attribution
    "COMPONENTS",
    "aggregate",
    "attribute_op",
    "attribute_records",
    "pause_intervals_from_records",
    "pause_overlap",
    # causality
    "StormDag",
    "build_dag",
    "render_text",
    # artifacts
    "chrome_trace",
    "filter_window",
    "read_jsonl",
    "summary_of",
    "windows_from_telemetry",
    "write_artifacts",
    "write_jsonl",
]
