"""Trace artifact CLI: ``python -m repro.tracing <command>``.

Commands:

``summarize ARTIFACT``
    Human-readable rendering of a trace JSONL artifact: the run span,
    op/packet counts, pause episodes and a latency-attribution
    aggregate.
``attribute ARTIFACT [--top N] [--json]``
    Per-op latency decomposition (the exact-sum components) plus the
    aggregate share-of-FCT view; ``--top`` lists the N slowest ops.
``storm [ARTIFACT | --demo] [--json]``
    Render the pause-causality DAG.  With ``--demo`` the §4.3
    NIC-pause-storm experiment runs with tracing armed and the
    resulting graph (root: the broken NIC) is rendered directly;
    ``--out DIR`` keeps the artifacts.
``export ARTIFACT --chrome OUT [--window-from-telemetry T.jsonl]``
    Chrome trace-event (Perfetto-loadable) export, optionally narrowed
    to the incident windows of a *telemetry* artifact -- the
    "incident -> trace window" triage step in docs/tracing.md.
``pingmesh PROBES.jsonl``
    Summarize an exported pingmesh probe log: RTT percentiles
    (p50/p90/p99/p999) and the per-error-code breakdown.
"""

import argparse
import json
import os
import sys

from repro.tracing.attribution import COMPONENTS, aggregate, attribute_records
from repro.tracing.causality import build_dag, render_text
from repro.tracing.export import (
    chrome_trace,
    filter_window,
    read_jsonl,
    summary_of,
    windows_from_telemetry,
    write_jsonl,
)


def _meta_of(records):
    for record in records:
        if record.get("type") == "meta":
            return record
    return {}


def _render_summary(records):
    meta = _meta_of(records)
    summary = summary_of(records)
    lines = []
    label = (meta.get("config") or {}).get("label") or "-"
    lines.append(
        "trace %s: %.3f..%.3f ms, %d hosts, %d switches"
        % (
            label,
            meta.get("t_start_ns", 0) / 1e6,
            meta.get("t_stop_ns", 0) / 1e6,
            meta.get("hosts", 0),
            meta.get("switches", 0),
        )
    )
    lines.append(
        "  ops      %d traced (%d completed, %d sampled out, %d dropped)"
        % (
            summary.get("ops_traced", 0),
            summary.get("ops_completed", 0),
            summary.get("ops_sampled_out", 0),
            summary.get("dropped_ops", 0),
        )
    )
    lines.append(
        "  packets  %d traced (%d dropped)"
        % (summary.get("packets_traced", 0), summary.get("dropped_packets", 0))
    )
    lines.append(
        "  pauses   %d episodes, %d rx intervals; %d events, %d rate decreases"
        % (
            summary.get("pause_nodes", 0),
            summary.get("pause_intervals", 0),
            summary.get("events", 0),
            summary.get("rate_decreases", 0),
        )
    )
    attributions = attribute_records(records)
    if attributions:
        agg = aggregate(attributions)
        lines.append(
            "  latency  %d/%d ops attributed, mean FCT %.3f ms"
            % (agg["complete"], agg["ops"], agg["fct_mean_ns"] / 1e6)
        )
        for name in COMPONENTS:
            share = agg[name.replace("_ns", "_share")]
            if agg[name]:
                lines.append(
                    "    %-16s %6.1f%%  (%.3f ms total)"
                    % (name[:-3], 100.0 * share, agg[name] / 1e6)
                )
    return "\n".join(lines)


def _cmd_summarize(args):
    for artifact in args.artifact:
        print(_render_summary(read_jsonl(artifact)))
        print("  artifact %s" % artifact)
    return 0


def _cmd_attribute(args):
    records = read_jsonl(args.artifact)
    attributions = attribute_records(records)
    if args.json:
        for attribution in attributions:
            print(json.dumps(attribution))
        return 0
    agg = aggregate(attributions)
    print(
        "%d ops (%d attributed, %d incomplete), mean FCT %.3f ms"
        % (agg["ops"], agg["complete"], agg["incomplete"], agg["fct_mean_ns"] / 1e6)
    )
    for name in COMPONENTS:
        print(
            "  %-16s %6.1f%%  %.3f ms"
            % (
                name[:-3],
                100.0 * agg[name.replace("_ns", "_share")],
                agg[name] / 1e6,
            )
        )
    slowest = sorted(
        (a for a in attributions if a["complete"]),
        key=lambda a: -a["fct_ns"],
    )[: args.top]
    if slowest:
        print("slowest %d:" % len(slowest))
        for attribution in slowest:
            dominant = max(COMPONENTS, key=lambda name: attribution[name])
            print(
                "  %s wr %d  %s %dB  FCT %.3f ms  dominated by %s (%.1f%%)"
                % (
                    attribution["qp"],
                    attribution["wr_id"],
                    attribution["kind"],
                    attribution["size_bytes"],
                    attribution["fct_ns"] / 1e6,
                    dominant[:-3],
                    100.0 * attribution[dominant] / max(1, attribution["fct_ns"]),
                )
            )
    return 0


def _storm_dag(records):
    return build_dag(records, attribute_records(records))


def _cmd_storm(args):
    if args.demo:
        from repro import tracing
        from repro.experiments.storm import run_storm

        tracing.arm(tracing.TraceConfig(label="storm seed=%d" % args.seed))
        try:
            run_storm(seed=args.seed)
        finally:
            artifacts = tracing.drain()
            tracing.disarm()
        if args.out:
            os.makedirs(args.out, exist_ok=True)
        status = 1
        for index, records in enumerate(artifacts):
            if args.out:
                path = os.path.join(args.out, "storm-%d.trace.jsonl" % index)
                write_jsonl(records, path)
                print("artifact %s" % path)
            dag = _storm_dag(records)
            print(render_text(dag, max_trees=None if args.full else 8))
            print()
            if any(
                dag.nodes[root]["trigger"] == "rx_pipeline_broken"
                for root in dag.roots
            ):
                status = 0
        if status:
            print(
                "storm demo: no DAG rooted at a broken-NIC trigger",
                file=sys.stderr,
            )
        return status
    if not args.artifact:
        print("storm: need an ARTIFACT or --demo", file=sys.stderr)
        return 2
    records = read_jsonl(args.artifact)
    dag = _storm_dag(records)
    if args.json:
        print(
            json.dumps(
                {
                    "roots": dag.roots,
                    "cyclic": dag.cyclic,
                    "nodes": [dag.nodes[k] for k in sorted(dag.nodes)],
                    "victims": dag.victims,
                }
            )
        )
    else:
        print(render_text(dag, max_trees=None if args.full else 8))
    return 0


def _cmd_export(args):
    records = read_jsonl(args.artifact)
    if args.window_from_telemetry:
        windows = windows_from_telemetry(
            read_jsonl(args.window_from_telemetry), pad_ns=args.pad_us * 1000
        )
        if not windows:
            print("no incidents in %s; exporting the full trace"
                  % args.window_from_telemetry)
        else:
            start = min(w["start_ns"] for w in windows)
            open_ended = any(w["end_ns"] is None for w in windows)
            end = (
                None
                if open_ended
                else max(w["end_ns"] for w in windows)
            )
            records = filter_window(records, start, end)
            print(
                "windowed to %d incident(s): %.3f..%s ms"
                % (
                    len(windows),
                    start / 1e6,
                    "end" if end is None else "%.3f" % (end / 1e6),
                )
            )
    trace = chrome_trace(records, max_ops=args.max_ops)
    with open(args.chrome, "w") as handle:
        json.dump(trace, handle)
    print(
        "wrote %s (%d events) -- load in Perfetto / chrome://tracing"
        % (args.chrome, len(trace["traceEvents"]))
    )
    return 0


def _cmd_pingmesh(args):
    from repro.monitoring.pingmesh import read_probe_jsonl, summarize_probe_records

    records = read_probe_jsonl(args.probes)
    summary = summarize_probe_records(records)
    if args.json:
        print(json.dumps(summary))
        return 0
    print(
        "%d probes, %d ok, error rate %.4f"
        % (summary["probes"], summary["ok"], summary["error_rate"])
    )
    rtt = summary["rtt_us"]
    if rtt["count"]:
        print(
            "  rtt us: p50 %.1f  p90 %.1f  p99 %.1f  p999 %.1f"
            % (rtt["p50"], rtt["p90"], rtt["p99"], rtt["p999"])
        )
    for code, count in sorted(summary["errors"].items()):
        print("  error %-12s %d" % (code, count))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tracing",
        description="Inspect, attribute and export causal trace artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="render artifacts for humans")
    p.add_argument("artifact", nargs="+")
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("attribute", help="latency attribution per op")
    p.add_argument("artifact")
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_attribute)

    p = sub.add_parser("storm", help="render the pause-causality DAG")
    p.add_argument("artifact", nargs="?")
    p.add_argument("--demo", action="store_true",
                   help="run the §4.3 storm experiment with tracing armed")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", help="with --demo: keep artifacts in DIR")
    p.add_argument("--full", action="store_true",
                   help="render every causal tree, not just the largest 8")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_storm)

    p = sub.add_parser("export", help="Chrome trace-event export")
    p.add_argument("artifact")
    p.add_argument("--chrome", required=True, help="output JSON path")
    p.add_argument("--max-ops", type=int, default=None,
                   help="cap per-hop slices to the first N ops")
    p.add_argument("--window-from-telemetry", metavar="TELEMETRY_JSONL",
                   help="narrow to that artifact's incident windows")
    p.add_argument("--pad-us", type=int, default=1000,
                   help="window padding in microseconds (default 1000)")
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("pingmesh", help="summarize an exported probe log")
    p.add_argument("probes")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_pingmesh)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
