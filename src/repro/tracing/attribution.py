"""Latency attribution: decompose a traced op's FCT, exactly.

Given an op record and the session's pause intervals, :func:`attribute_op`
splits ``completed_ns - posted_ns`` into seven components that **sum to
the FCT exactly** (integer nanoseconds, no residual) -- the exact-sum
invariant tests/test_tracing.py asserts over the canonical bench
scenarios:

``source_ns``
    WQE post until the completion-relevant data packet first went to the
    NIC: send-queue wait, pacing (DCQCN rate limiting), window stalls,
    and -- for READs -- the request's forward path plus responder
    turnaround (the op's clock starts at the requester's post).
``retransmit_ns``
    First-ever transmission of that (qp, psn) until the transmission
    instance that finally completed the op (zero without loss).
``queue_ns``
    Egress-queue residency not covered by a pause interval, plus
    NIC-internal handoff (ctrl-queue wait between packet build and
    port admit).
``pause_ns``
    Egress-queue residency while the (port, priority) was paused -- the
    PFC head-of-line component.
``serialization_ns``
    Sum of per-hop store-and-forward serialization delays.
``propagation_ns``
    Sum of per-hop cable flight times (plus any injected fault delay).
``nic_ns``
    Receive-side NIC pipeline residency (rx buffer wait + per-packet
    processing + MTT stalls), on every chain hop including the final
    dispatch that raised the CQE.

The decomposition walks the *completion chain* backwards: the control
packet whose arrival completed the op, then the data packet whose
arrival triggered that control packet.  Every boundary is a recorded
hook timestamp and every link between consecutive events is synchronous
in the simulator, so the components tile ``[posted_ns, completed_ns]``
by construction.  Ops whose chain is broken (sampling below 1.0 traced
the op but not the ACK's trigger; the run stopped mid-flight; the
completing ACK rode an untraced packet) are returned with
``complete: False`` and no component claims.

Components are *signed*: under go-back-N a duplicate retransmission of
an older PSN can carry the cumulative ACK that completes a younger op,
making ``source_ns`` negative and ``retransmit_ns`` correspondingly
larger.  The sum stays exact; docs/tracing.md discusses reading such
cases.

Everything here is a pure function over artifact records (dicts), so it
works identically online (tests draining a session) and offline (the
``python -m repro.tracing attribute`` CLI reading JSONL).
"""

COMPONENTS = (
    "source_ns",
    "retransmit_ns",
    "queue_ns",
    "pause_ns",
    "serialization_ns",
    "propagation_ns",
    "nic_ns",
)

#: chain-terminating packet kinds that carry ``first_tx_ns``
_DATA_KINDS = ("data", "read_response", "read_request")


def pause_intervals_from_records(records):
    """``{(port, priority): [(start_ns, end_ns), ...]}`` from an artifact."""
    intervals = {}
    for record in records:
        if record.get("type") != "pause_interval":
            continue
        key = (record["port"], record["priority"])
        intervals.setdefault(key, []).append(
            (record["start_ns"], record["end_ns"])
        )
    for series in intervals.values():
        series.sort()
    return intervals


def pause_overlap(intervals, start_ns, end_ns):
    """Total overlap of ``[start_ns, end_ns)`` with the interval list."""
    total = 0
    for lo, hi in intervals:
        if hi <= start_ns:
            continue
        if lo >= end_ns:
            break
        total += min(hi, end_ns) - max(lo, start_ns)
    return total


def _parse_hops(events):
    """Pair up (enq, wire) hop events; None if the shape is unexpected."""
    hops = [e for e in events if e[0] in ("enq", "wire")]
    parsed = []
    index = 0
    while index < len(hops):
        if (
            hops[index][0] != "enq"
            or index + 1 >= len(hops)
            or hops[index + 1][0] != "wire"
        ):
            return None
        parsed.append((hops[index], hops[index + 1]))
        index += 2
    return parsed


def _incomplete(op, reason):
    result = {
        "wr_id": op.get("wr_id"),
        "qp": op.get("qp"),
        "host": op.get("host"),
        "kind": op.get("kind"),
        "size_bytes": op.get("size_bytes"),
        "complete": False,
        "reason": reason,
        "fct_ns": None,
    }
    for name in COMPONENTS:
        result[name] = 0
    return result


def attribute_op(op, pause_intervals):
    """Decompose one op record's FCT; see the module docstring."""
    if op.get("completed_ns") is None:
        return _incomplete(op, "op never completed (run stopped mid-flight)")
    chain = op.get("chain") or ()
    if not chain:
        return _incomplete(op, "empty completion chain")
    posted = op["posted_ns"]
    completed = op["completed_ns"]
    components = dict.fromkeys(COMPONENTS, 0)
    boundary = completed
    for depth, packet in enumerate(chain):
        events = packet["events"]
        arrivals = [e for e in events if e[0] == "nicrx"]
        if not arrivals:
            return _incomplete(op, "chain packet never reached a NIC")
        arrival = arrivals[-1][1]
        # Receive-side pipeline: rx-buffer admit until the dispatch (or
        # next chain hop's creation) at ``boundary``.
        components["nic_ns"] += boundary - arrival
        hops = _parse_hops(events)
        if not hops:
            return _incomplete(op, "malformed hop events")
        created = events[0][1]
        # Handoff from packet build to first egress admit (ctrl-queue /
        # NIC scheduler wait) counts as queueing.
        components["queue_ns"] += hops[0][0][1] - created
        for index, (enq, wire) in enumerate(hops):
            t_enq, port, priority = enq[1], enq[2], enq[4]
            t_wire, serialization = wire[1], wire[3]
            waited = t_wire - t_enq
            paused = pause_overlap(
                pause_intervals.get((port, priority), ()), t_enq, t_wire
            )
            components["pause_ns"] += paused
            components["queue_ns"] += waited - paused
            components["serialization_ns"] += serialization
            if index + 1 < len(hops):
                next_arrival = hops[index + 1][0][1]
            else:
                next_arrival = arrival
            components["propagation_ns"] += next_arrival - (t_wire + serialization)
        boundary = created
        if depth == len(chain) - 1:
            # Innermost packet must be the completing data segment.
            if packet["kind"] not in _DATA_KINDS or "first_tx_ns" not in packet:
                return _incomplete(op, "chain does not end at a data packet")
            first_tx = packet["first_tx_ns"]
            components["retransmit_ns"] += boundary - first_tx
            components["source_ns"] += first_tx - posted
            boundary = posted
    fct = completed - posted
    residual = fct - sum(components.values())
    result = {
        "wr_id": op["wr_id"],
        "qp": op["qp"],
        "host": op.get("host"),
        "kind": op.get("kind"),
        "size_bytes": op.get("size_bytes"),
        "complete": residual == 0,
        "reason": None if residual == 0 else "residual %d ns" % residual,
        "fct_ns": fct,
        "residual_ns": residual,
    }
    result.update(components)
    return result


def attribute_records(records):
    """Attribute every op in an artifact record list.

    Returns ``[attribution dict, ...]`` in op order; pass the full
    record list (pause intervals are pulled from it).
    """
    intervals = pause_intervals_from_records(records)
    return [
        attribute_op(record, intervals)
        for record in records
        if record.get("type") == "op"
    ]


def aggregate(attributions):
    """Sum components over the complete attributions; the triage view.

    Returns a dict with ``ops`` / ``incomplete`` counts, total and
    mean FCT, and per-component totals plus share-of-total fractions.
    """
    complete = [a for a in attributions if a["complete"]]
    totals = dict.fromkeys(COMPONENTS, 0)
    fct_total = 0
    for attribution in complete:
        fct_total += attribution["fct_ns"]
        for name in COMPONENTS:
            totals[name] += attribution[name]
    out = {
        "ops": len(attributions),
        "complete": len(complete),
        "incomplete": len(attributions) - len(complete),
        "fct_total_ns": fct_total,
        "fct_mean_ns": fct_total // len(complete) if complete else 0,
    }
    for name in COMPONENTS:
        out[name] = totals[name]
        out[name.replace("_ns", "_share")] = (
            totals[name] / fct_total if fct_total else 0.0
        )
    return out
