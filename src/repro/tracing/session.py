"""The live trace session: life-of-an-op spans and pause causality.

A :class:`TraceSession` attaches to one fabric (usually via the armed
hub from ``Fabric.boot``, see :mod:`repro.tracing.hooks`) and receives
the ``on_*`` probe calls the device layers make behind their single
``_TRACE.enabled`` check.  It follows three kinds of state:

**Ops** -- sampled work requests, from WQE post to CQE, with every
transmission instance of every segment recorded hop by hop
(:class:`~repro.tracing.spans.PacketTrace` side tables keyed by
``id(packet)``; no packet field is ever touched).  At completion the
session snapshots the *completion chain*: the control packet whose rx
dispatch completed the op, plus the data packet whose arrival triggered
that control packet.  Attribution (:mod:`repro.tracing.attribution`)
later decomposes the op's FCT along this chain with an exact-sum
invariant.

**Pause episodes** -- every pause frame emission is folded into an
episode node (assert + refreshes, until resume) that records what
crossed which threshold (:class:`~repro.tracing.spans.PauseNode`).
When a switch asserts pause while its own egress toward some port is
itself paused, the session adds a causal edge to the upstream episode
responsible -- these edges are the pause-causality DAG
(:mod:`repro.tracing.causality`); DCFIT-style initial triggers are the
roots.

**Pause intervals** -- the raw receive-side pause timeline per (port,
priority), reconstructed into closed intervals at stop; attribution
uses them to split queueing delay into pause-stall vs. plain queueing.

Determinism: a session schedules no events, draws no RNG, and touches
no device state except ``sim.coalesce_enabled`` (departure trains
bypass ``Link.transmit``, so tracing disables event coalescing for the
session's lifetime -- coalescing is fingerprint-neutral by design, so
even an *armed* run keeps every bench fingerprint byte-identical;
tests/test_tracing.py asserts this).  Sampling is a pure hash of
``(seed, qpn, wr_id)``, reproducible across runs and processes.
"""

import zlib

from repro.tracing.spans import (
    OpTrace,
    PacketTrace,
    PauseNode,
    merge_pause_timeline,
    op_record,
)

_N_PRIORITIES = 8
_SCHEMA = "repro-trace/1"


class TraceConfig:
    """Tunables for a trace session."""

    def __init__(
        self,
        label="",
        sample_rate=1.0,
        sample_seed=0,
        max_ops=100_000,
        max_packets=2_000_000,
        packets_per_op=256,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.label = label
        #: fraction of ops traced; 1.0 additionally traces unmatched
        #: data packets (READ responses, which carry no local WR).
        self.sample_rate = sample_rate
        self.sample_seed = sample_seed
        self.max_ops = max_ops
        self.max_packets = max_packets
        #: per-op cap on serialized transmission instances (the chain
        #: is always kept in full).
        self.packets_per_op = packets_per_op

    def as_dict(self):
        return {
            "label": self.label,
            "sample_rate": self.sample_rate,
            "sample_seed": self.sample_seed,
            "max_ops": self.max_ops,
            "max_packets": self.max_packets,
            "packets_per_op": self.packets_per_op,
        }


class TraceSession:
    """One attached causal-tracing session over one fabric run."""

    def __init__(self, fabric, config=None):
        self.fabric = fabric
        self.sim = fabric.sim
        self.config = config or TraceConfig()
        self.t_start_ns = None
        self.t_stop_ns = None
        self._saved_coalesce = None
        # -- op side tables ----------------------------------------------------
        self._ops = {}              # wr_id -> OpTrace, in post order
        self._ranges = {}           # id(qp) -> [(start_psn, end_psn, OpTrace)]
        self._first_tx = {}         # (id(qp), psn) -> first tx t_ns
        self._packets = {}          # id(packet) -> PacketTrace (strong refs)
        self._keepalive = []        # traced packets (id() keys must not be reused)
        self._current_rx = None     # PacketTrace under rx dispatch, or None
        # -- pause side tables -------------------------------------------------
        self.pause_nodes = []       # every PauseNode ever opened
        self._episodes = {}         # (device, port, priority|None) -> open node
        self._frame_nodes = {}      # id(frame) -> (frame, {priority: node})
        self._active_pause = {}     # (port_name, prio) -> (node|None, deadline)
        self._pause_timeline = []   # raw rx-side events, see spans.py
        # -- aux event streams -------------------------------------------------
        self.events = []            # (t_ns, event, device, detail)
        self.rate_events = []       # (t_ns, owner, rate_bps)
        # -- counters ----------------------------------------------------------
        self.ops_sampled_out = 0
        self.dropped_ops = 0
        self.dropped_packets = 0

    # ------------------------------------------------------------- lifecycle

    def start(self):
        from repro.tracing.hooks import HUB

        if HUB.session is not None:
            raise RuntimeError("a trace session is already active")
        self.t_start_ns = self.sim.now
        # Departure trains bypass Link.transmit; disable coalescing so
        # every frame crosses the wire hook (fingerprint-neutral).
        self._saved_coalesce = self.sim.coalesce_enabled
        self.sim.coalesce_enabled = False
        HUB.session = self
        HUB.enabled = True
        return self

    def stop(self):
        from repro.tracing.hooks import HUB

        if HUB.session is not self:
            return self
        self.t_stop_ns = self.sim.now
        self.sim.coalesce_enabled = self._saved_coalesce
        HUB.session = None
        HUB.enabled = False
        HUB.completed.append(self)
        return self

    # -------------------------------------------------------------- sampling

    def _sampled(self, qpn, wr_id):
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        key = b"%d:%d:%d" % (self.config.sample_seed, qpn, wr_id)
        return zlib.crc32(key) < int(rate * 4294967296.0)

    @staticmethod
    def _qp_name(qp):
        return "%s.qp%d" % (qp.host.name, qp.qpn)

    @staticmethod
    def _device_kind(device):
        # NICs expose rx_pipeline_broken; switches do not.  Duck-typed
        # so this module needs no device imports.
        return "nic" if hasattr(device, "rx_pipeline_broken") else "switch"

    def _op_for_psn(self, qp_key, psn):
        ranges = self._ranges.get(qp_key)
        if not ranges:
            return None
        # Retransmissions sit near the tail of the active window.
        for start, end, op in reversed(ranges):
            if start <= psn <= end:
                return op
        return None

    def _track(self, packet, trace):
        self._packets[id(packet)] = trace
        self._keepalive.append(packet)

    # ----------------------------------------------------------- QP receivers

    def on_post(self, qp, wr, message):
        """A work request entered the send queue (WQE post)."""
        if not self._sampled(qp.qpn, wr.wr_id):
            self.ops_sampled_out += 1
            return
        if len(self._ops) >= self.config.max_ops:
            self.dropped_ops += 1
            return
        op = OpTrace(
            wr_id=wr.wr_id,
            qp_name=self._qp_name(qp),
            qpn=qp.qpn,
            host=qp.host.name,
            kind=wr.kind,
            size_bytes=wr.size_bytes,
            posted_ns=wr.posted_ns,
            start_psn=message.start_psn,
            end_psn=message.end_psn,
        )
        self._ops[wr.wr_id] = op
        self._ranges.setdefault(id(qp), []).append(
            (message.start_psn, message.end_psn, op)
        )

    def on_data_tx(self, qp, packet, psn, retransmit):
        """The QP built a data packet (segment, READ request/response)."""
        op = self._op_for_psn(id(qp), psn)
        if op is None and self.config.sample_rate < 1.0:
            return  # unsampled op's segment
        if len(self._packets) >= self.config.max_packets:
            self.dropped_packets += 1
            return
        now = self.sim.now
        key = (id(qp), psn)
        first = self._first_tx.get(key)
        if first is None:
            first = self._first_tx[key] = now
        trace = PacketTrace(
            kind=packet.context.kind, psn=psn, first_tx_ns=first
        )
        trace.events.append(("tx", now, 1 if retransmit else 0))
        self._track(packet, trace)
        if op is not None:
            op.tx_count += 1
            if retransmit:
                op.retx_count += 1
            if len(op.packets) < self.config.packets_per_op:
                op.packets.append(trace)
            else:
                op.packets_dropped += 1

    def on_ctrl_created(self, qp, packet):
        """The QP built a control packet (ACK/NAK/RNR-NAK/CNP)."""
        parent = self._current_rx
        if parent is None:
            return  # response to an untraced packet: chain unusable
        if len(self._packets) >= self.config.max_packets:
            self.dropped_packets += 1
            return
        ctx = packet.context
        if ctx.nak_psn is not None:
            syndrome = getattr(getattr(packet, "aeth", None), "syndrome", None)
            kind = "rnr_nak" if getattr(syndrome, "name", "") == "RNR_NAK" else "nak"
        elif ctx.ack_psn is not None:
            kind = "ack"
        else:
            kind = "cnp"
        trace = PacketTrace(kind=kind, parent=parent)
        trace.events.append(("ctrl", self.sim.now))
        self._track(packet, trace)

    def on_cqe(self, qp, wr):
        """A work request completed (CQE): snapshot the completion chain."""
        op = self._ops.get(wr.wr_id)
        if op is None:
            return
        op.completed_ns = wr.completed_ns
        chain = []
        trace = self._current_rx
        while trace is not None and len(chain) < 4:
            chain.append(trace)
            trace = trace.parent
        op.chain = tuple(chain)

    def on_rto(self, qp):
        self.events.append((self.sim.now, "rto", self._qp_name(qp), qp.una))

    # ---------------------------------------------------------- NIC receivers

    def on_nic_rx(self, nic, packet):
        trace = self._packets.get(id(packet))
        if trace is not None:
            trace.events.append(("nicrx", self.sim.now, nic.name))

    def on_nic_rx_drop(self, nic, packet, reason):
        trace = self._packets.get(id(packet))
        if trace is not None:
            trace.events.append(("drop", self.sim.now, nic.name, reason))

    def on_nic_rx_done(self, nic, packet):
        """Rx pipeline finished a packet; its dispatch runs next, at this
        same instant -- anything created during dispatch (ACKs, CQEs)
        is causally downstream of this packet."""
        trace = self._packets.get(id(packet))
        if trace is not None:
            trace.events.append(("nicdone", self.sim.now))
        self._current_rx = trace

    def on_nic_rx_dispatched(self, nic):
        self._current_rx = None

    def on_nic_pause_emit(self, nic, frame, quanta):
        now = self.sim.now
        key = (nic.name, nic.port.name, None)
        node = self._episodes.get(key)
        if quanta == 0:
            if node is not None:
                node.end_ns = now
                self._episodes.pop(key, None)
            return
        trigger = "rx_pipeline_broken" if nic.rx_pipeline_broken else "rx-xoff"
        if node is None:
            node = PauseNode(
                node_id=len(self.pause_nodes),
                device=nic.name,
                port=nic.port.name,
                device_kind="nic",
                kind="nic-rx",
                trigger=trigger,
                priority=None,
                start_ns=now,
                occupancy=nic.rx_occupancy_bytes,
                threshold=nic.config.rx_xoff_bytes,
            )
            self.pause_nodes.append(node)
            self._episodes[key] = node
        else:
            node.emissions += 1
            if trigger == "rx_pipeline_broken":
                node.trigger = trigger
        self._frame_nodes[id(frame)] = (
            frame,
            {p: node for p in frame.paused_priorities},
        )

    def on_nic_resume_emit(self, nic, frame):
        node = self._episodes.pop((nic.name, nic.port.name, None), None)
        if node is not None:
            node.end_ns = self.sim.now

    def on_nic_watchdog(self, nic):
        self.events.append((self.sim.now, "nic_watchdog_trip", nic.name, None))

    # ------------------------------------------------------- switch receivers

    def on_switch_pause_emit(self, signaler, frame):
        now = self.sim.now
        switch = signaler.switch
        priority = signaler.priority
        key = (switch.name, signaler.port.name, priority)
        node = self._episodes.get(key)
        if node is None:
            state = signaler._pg_state
            node = PauseNode(
                node_id=len(self.pause_nodes),
                device=switch.name,
                port=signaler.port.name,
                device_kind="switch",
                kind="switch-pg",
                trigger="ingress-xoff",
                priority=priority,
                start_ns=now,
                occupancy=state.occupancy + state.headroom_used,
                threshold=switch.buffer.threshold(),
            )
            self.pause_nodes.append(node)
            self._episodes[key] = node
        else:
            node.emissions += 1
        # Causal edges: this PG filled because some egress of this
        # switch cannot drain -- every port currently paused at this
        # priority points at the upstream episode that paused it.
        for port in switch.ports:
            if port._paused_until[priority] > now:
                entry = self._active_pause.get((port.name, priority))
                if entry is not None:
                    upstream, deadline = entry
                    if (
                        deadline > now
                        and upstream is not None
                        and upstream.node_id != node.node_id
                    ):
                        node.causes.add(upstream.node_id)
        self._frame_nodes[id(frame)] = (frame, {priority: node})

    def on_switch_resume_emit(self, signaler, frame):
        key = (signaler.switch.name, signaler.port.name, signaler.priority)
        node = self._episodes.pop(key, None)
        if node is not None:
            node.end_ns = self.sim.now

    def on_switch_watchdog(self, switch, port):
        self.events.append(
            (self.sim.now, "switch_watchdog_trip", switch.name, port.name)
        )

    # --------------------------------------------------------- port receivers

    def on_port_enqueue(self, port, packet, priority):
        trace = self._packets.get(id(packet))
        if trace is not None:
            trace.events.append(
                ("enq", self.sim.now, port.name, port.device.name, priority)
            )

    def on_wire(self, link, from_port, packet, serialization_ns):
        trace = self._packets.get(id(packet))
        if trace is not None:
            trace.events.append(
                ("wire", self.sim.now, from_port.name, serialization_ns, link.delay_ns)
            )

    def on_pause_rx_port(self, port, frame):
        """A pause/resume frame took effect on ``port`` (deadlines are
        already updated -- the hook sits after the ``_paused_until``
        loop in ``Port.receive_pause``)."""
        now = self.sim.now
        device = port.device
        device_kind = self._device_kind(device)
        entry = self._frame_nodes.pop(id(frame), None)
        nodes = entry[1] if entry is not None else {}
        for priority, quanta in enumerate(frame.quanta):
            if quanta is None:
                continue
            deadline = port._paused_until[priority]
            self._pause_timeline.append(
                (now, port.name, device.name, device_kind, priority, deadline)
            )
            key = (port.name, priority)
            if deadline <= now:
                self._active_pause.pop(key, None)
            else:
                self._active_pause[key] = (nodes.get(priority), deadline)

    def on_force_resume(self, port):
        """Watchdog force-resumed every priority on ``port``."""
        now = self.sim.now
        device = port.device
        device_kind = self._device_kind(device)
        for priority in range(_N_PRIORITIES):
            self._pause_timeline.append(
                (now, port.name, device.name, device_kind, priority, now)
            )
            self._active_pause.pop((port.name, priority), None)

    # -------------------------------------------------------- DCQCN receivers

    def on_rate_decrease(self, rp):
        self.rate_events.append((self.sim.now, rp.owner, int(rp.rate_bps)))

    # -------------------------------------------------------------- artifacts

    def artifact_records(self):
        """The session as JSONL-able records (schema ``repro-trace/1``)."""
        t_stop = self.t_stop_ns if self.t_stop_ns is not None else self.sim.now
        records = [
            {
                "type": "meta",
                "schema": _SCHEMA,
                "t_start_ns": self.t_start_ns,
                "t_stop_ns": t_stop,
                "hosts": len(self.fabric.hosts),
                "switches": len(self.fabric.switches),
                "config": self.config.as_dict(),
            }
        ]
        completed = 0
        for op in self._ops.values():
            if op.completed_ns is not None:
                completed += 1
            records.append(op_record(op))
        for node in self.pause_nodes:
            records.append(node.as_record())
        intervals, info = merge_pause_timeline(self._pause_timeline)
        n_intervals = 0
        for key in sorted(intervals):
            port, priority = key
            device, device_kind = info[key]
            for start, end in intervals[key]:
                records.append(
                    {
                        "type": "pause_interval",
                        "port": port,
                        "device": device,
                        "device_kind": device_kind,
                        "priority": priority,
                        "start_ns": start,
                        "end_ns": min(end, t_stop),
                    }
                )
                n_intervals += 1
        for t_ns, event, device, detail in self.events:
            records.append(
                {
                    "type": "event",
                    "t_ns": t_ns,
                    "event": event,
                    "device": device,
                    "detail": detail,
                }
            )
        for t_ns, owner, rate_bps in self.rate_events:
            records.append(
                {
                    "type": "rate_decrease",
                    "t_ns": t_ns,
                    "owner": owner,
                    "rate_bps": rate_bps,
                }
            )
        records.append(
            {
                "type": "summary",
                "ops_traced": len(self._ops),
                "ops_completed": completed,
                "ops_sampled_out": self.ops_sampled_out,
                "dropped_ops": self.dropped_ops,
                "packets_traced": len(self._packets),
                "dropped_packets": self.dropped_packets,
                "pause_nodes": len(self.pause_nodes),
                "pause_intervals": n_intervals,
                "events": len(self.events),
                "rate_decreases": len(self.rate_events),
            }
        )
        return records
