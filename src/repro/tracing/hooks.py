"""The global trace hub: the single is-enabled gate the hot paths check.

This mirrors :mod:`repro.telemetry.hooks` exactly -- same lifecycle,
same guarantees -- but for the *causal tracing plane*: per-op spans,
per-packet hop events and pause-causality edges instead of aggregate
counters.  Every instrumented module (``rdma/qp.py``, ``nic/nic.py``,
``net/{port,link}.py``, ``switch/{pfc,switch}.py``, ``dcqcn/rp.py``)
imports :data:`HUB` once at module load and guards each probe with one
attribute test::

    from repro.tracing.hooks import HUB as _TRACE
    ...
    if _TRACE.enabled:
        _TRACE.session.on_port_enqueue(port, packet, priority)

``HUB.enabled`` is a plain bool on a ``__slots__`` object, so the
disabled path costs one load + one branch and nothing else: no event is
scheduled, no RNG drawn, no packet field touched -- which is what keeps
every bench fingerprint in ``benchmarks/BASELINE.json`` byte-identical
with tracing off (asserted by ``tests/test_tracing.py`` and the CI
dark-path gate).  Unlike telemetry, a trace session schedules *no*
events of its own either, so fingerprints stay identical even while a
session is attached.

This module is deliberately import-light (stdlib only, no simulator or
device imports) so the device layers can depend on it without cycles.
The session machinery lives in the sibling modules and is only reached
*through* the hub while a session is active.

Lifecycle
---------
``enabled``/``session`` are set by :class:`~repro.tracing.session.
TraceSession.start` and cleared by ``stop``.  ``armed`` holds a pending
:class:`~repro.tracing.session.TraceConfig`: while set,
:func:`maybe_attach` (called from ``Fabric.boot``) auto-attaches a new
session to every fabric that boots -- that is how the bench and
experiment CLIs opt whole runs into tracing without threading a flag
through every runner.  Finished sessions accumulate in ``completed``
until :func:`drain` collects their artifact lines.
"""


class TraceHub:
    """Process-global mutable tracing state (one per interpreter)."""

    __slots__ = ("enabled", "session", "armed", "completed")

    def __init__(self):
        self.enabled = False
        self.session = None
        self.armed = None
        self.completed = []


#: The one hub instance.  Hot paths alias it as ``_TRACE``.
HUB = TraceHub()


def arm(config=None):
    """Arm auto-attach: every subsequent ``Fabric.boot()`` starts a
    trace session on that fabric (closing the previous one first).
    Pass a :class:`~repro.tracing.session.TraceConfig` to tune sampling
    and caps; ``None`` uses defaults.  Returns the config.
    """
    from repro.tracing.session import TraceConfig

    if config is None:
        config = TraceConfig()
    HUB.armed = config
    return config


def disarm():
    """Stop auto-attaching; closes any live session into ``completed``."""
    HUB.armed = None
    if HUB.session is not None:
        HUB.session.stop()


def maybe_attach(fabric):
    """Called by ``Fabric.boot``: attach a session when the hub is armed.

    A still-open previous session (the armed CLIs run scenario after
    scenario) is closed first so its artifact lands in ``completed``.
    Returns the new session, or None when the hub is not armed.
    """
    if HUB.armed is None:
        return None
    if HUB.session is not None:
        HUB.session.stop()
    from repro.tracing.session import TraceSession

    return TraceSession(fabric, HUB.armed).start()


def drain():
    """Collect and clear every finished session's artifact lines.

    Closes the live session (if any) first.  Returns a list with one
    entry per session, each a list of artifact record dicts in emission
    order (meta line first).
    """
    if HUB.session is not None:
        HUB.session.stop()
    artifacts = [session.artifact_records() for session in HUB.completed]
    HUB.completed = []
    return artifacts
