"""Transport-neutral send channels.

Workloads call ``channel.send(nbytes, on_delivered)`` where
``on_delivered(latency_ns)`` fires when the data has fully reached the
peer application; what "reached" means per transport:

* RDMA: the sender's work completion (requires the responder's ACK, so
  the wire was crossed both ways);
* TCP: the receiving application got the last byte out of its kernel.
"""

from repro.rdma.verbs import post_send


class RdmaChannel:
    """Adapter over a queue pair."""

    def __init__(self, qp):
        self.qp = qp
        self.sent_messages = 0

    def send(self, nbytes, on_delivered=None):
        posted = self.qp.sim.now
        self.sent_messages += 1

        def complete(wr, completed_ns):
            if on_delivered is not None:
                on_delivered(completed_ns - posted)

        post_send(self.qp, nbytes, on_complete=complete)

    @property
    def name(self):
        return "rdma-qp%d" % self.qp.qpn


class TcpChannel:
    """Adapter over a TCP connection."""

    def __init__(self, connection):
        self.connection = connection
        self.sent_messages = 0

    def send(self, nbytes, on_delivered=None):
        self.sent_messages += 1
        self.connection.send_message(nbytes, on_delivered=on_delivered)

    @property
    def name(self):
        return "tcp:%d" % self.connection.local_port
