"""Traffic pattern generators.

Message sizes: generators that hold a seeded rng (``PeriodicIncast``,
``PoissonRequests``) accept either a plain byte count or a sampler from
:mod:`repro.workloads.distributions` (anything with ``sample(rng)``), so
packet-level runs can draw from the same storage/web CDFs the flow-level
simulator uses.
"""

from repro.sim.timer import Timer
from repro.workloads.distributions import interarrival_ns, resolve_size


class ClosedLoopSender:
    """Sends ``message_bytes`` back to back "as fast as possible".

    Used by the livelock experiment (4 MB SENDs), the figure 7/8
    saturation runs, and anywhere the paper says a connection "sent data
    as fast as possible".  ``max_messages`` bounds the run (None =
    forever); ``pipeline_depth`` keeps several messages posted so the
    transport never idles between completions.
    """

    def __init__(self, channel, message_bytes, max_messages=None, pipeline_depth=2):
        self.channel = channel
        self.message_bytes = message_bytes
        self.max_messages = max_messages
        self.pipeline_depth = pipeline_depth
        self.completed_messages = 0
        self.completed_bytes = 0
        self.latencies_ns = []
        self._posted = 0
        self._started = False
        self._stopped = False

    def start(self):
        self._started = True
        for _ in range(self.pipeline_depth):
            self._post_next()
        return self

    def stop(self):
        """Stop posting new messages; in-flight messages still complete.

        Afterwards the loop quiesces once ``completed_messages`` catches
        up with ``posted_messages`` -- the drain condition the
        validation harness waits on."""
        self._stopped = True
        return self

    @property
    def posted_messages(self):
        return self._posted

    def _post_next(self):
        if self._stopped:
            return
        if self.max_messages is not None and self._posted >= self.max_messages:
            return
        self._posted += 1
        self.channel.send(self.message_bytes, on_delivered=self._on_delivered)

    def _on_delivered(self, latency_ns):
        self.completed_messages += 1
        self.completed_bytes += self.message_bytes
        self.latencies_ns.append(latency_ns)
        self._post_next()

    def goodput_bps(self, elapsed_ns):
        """Application goodput over an observation window."""
        if elapsed_ns <= 0:
            return 0.0
        return self.completed_bytes * 8e9 / elapsed_ns


class PeriodicIncast:
    """Many-to-one bursts: every ``period_ns`` all fan-in channels fire
    ``burst_bytes`` at once toward the victim.

    This is the paper's recurring villain: "the traffic was bursty with
    the typical many-to-one incast traffic pattern" (figure 6's service)
    and "once the responses came back to the chatty servers, incast
    happened" (the section 6.2 alpha incident).
    """

    def __init__(self, sim, channels, burst_bytes, period_ns, rng=None, jitter_ns=0, max_rounds=None):
        self.sim = sim
        self.channels = channels
        self.burst_bytes = burst_bytes
        self.period_ns = period_ns
        self.rng = rng
        self.jitter_ns = jitter_ns
        self.max_rounds = max_rounds
        self.rounds_fired = 0
        self.deliveries = 0
        self.latencies_ns = []
        self._timer = Timer(sim, self._fire, name="incast")
        self._running = False

    def start(self, initial_delay_ns=0):
        self._running = True
        self._timer.start(initial_delay_ns)
        return self

    def stop(self):
        self._running = False
        self._timer.cancel()

    def _fire(self):
        self.rounds_fired += 1
        for channel in self.channels:
            delay = 0
            if self.jitter_ns and self.rng is not None:
                delay = int(self.rng.uniform(0, self.jitter_ns))
            self.sim.schedule(delay, self._send_one, channel)
        if self._running and (
            self.max_rounds is None or self.rounds_fired < self.max_rounds
        ):
            self._timer.start(self.period_ns)

    def _send_one(self, channel):
        nbytes = self.burst_bytes
        if hasattr(nbytes, "sample"):
            if self.rng is None:
                raise ValueError("burst size sampler requires an rng")
            nbytes = resolve_size(nbytes, self.rng)
        channel.send(nbytes, on_delivered=self._on_delivered)

    def _on_delivered(self, latency_ns):
        self.deliveries += 1
        self.latencies_ns.append(latency_ns)

    def offered_load_bps(self):
        """Average per-victim offered rate."""
        nbytes = self.burst_bytes
        if hasattr(nbytes, "mean"):
            nbytes = nbytes.mean()
        return len(self.channels) * nbytes * 8e9 / self.period_ns


class PoissonRequests:
    """Open-loop request generator: messages of ``message_bytes`` at
    exponential inter-arrivals over a pool of channels (one channel
    drawn uniformly per request).  ``message_bytes`` may be an int or a
    size sampler (e.g. :data:`repro.workloads.distributions.WEB_CDF`)."""

    def __init__(self, sim, channels, message_bytes, rate_per_second, rng, max_requests=None):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.channels = channels
        self.message_bytes = message_bytes
        self.rate_per_second = rate_per_second
        self.rng = rng
        self.max_requests = max_requests
        self.sent = 0
        self.latencies_ns = []
        self._timer = Timer(sim, self._fire, name="poisson")
        self._running = False

    def start(self):
        self._running = True
        self._schedule_next()
        return self

    def stop(self):
        self._running = False
        self._timer.cancel()

    def _schedule_next(self):
        self._timer.start(interarrival_ns(self.rng, self.rate_per_second))

    def _fire(self):
        if self.max_requests is not None and self.sent >= self.max_requests:
            self._running = False
            return
        self.sent += 1
        channel = self.rng.choice(self.channels)
        nbytes = resolve_size(self.message_bytes, self.rng)
        channel.send(nbytes, on_delivered=self.latencies_ns.append)
        if self._running:
            self._schedule_next()
