"""Traffic generators for the experiments.

* :mod:`~repro.workloads.channels` -- a uniform ``send(nbytes, cb)``
  facade over RDMA QPs and TCP connections, so one workload drives both
  transports (figure 6 compares them on identical traffic).
* :mod:`~repro.workloads.generators` -- the paper's traffic patterns:
  saturating senders ("as fast as possible", sections 4.1 and 5.4),
  periodic many-to-one incast (the latency-sensitive service of figure 6
  and the chatty servers of the section 6.2 incident), and Poisson
  request/response clients.
* :mod:`~repro.workloads.distributions` -- storage/web flow-size CDFs
  and Poisson interarrival sampling, shared between the packet-level
  generators above and the flow-level simulator (:mod:`repro.flowsim`).
"""

from repro.workloads.channels import RdmaChannel, TcpChannel
from repro.workloads.distributions import (
    NAMED_CDFS,
    STORAGE_CDF,
    WEB_CDF,
    PoissonFlowArrivals,
    SizeCDF,
    interarrival_ns,
    resolve_size,
)
from repro.workloads.generators import (
    ClosedLoopSender,
    PeriodicIncast,
    PoissonRequests,
)

__all__ = [
    "RdmaChannel",
    "TcpChannel",
    "ClosedLoopSender",
    "PeriodicIncast",
    "PoissonRequests",
    "SizeCDF",
    "WEB_CDF",
    "STORAGE_CDF",
    "NAMED_CDFS",
    "PoissonFlowArrivals",
    "interarrival_ns",
    "resolve_size",
]
