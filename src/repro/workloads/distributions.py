"""Shared flow-size and interarrival distributions.

Both simulation tiers draw workloads from here: the packet-level
generators (:mod:`repro.workloads.generators`) sample message sizes per
request, and the flow-level simulator (:mod:`repro.flowsim`) samples
flow sizes and arrival gaps for datacenter-scale scenarios.  One home
keeps the two tiers literally comparable -- a flowsim run and a packet
run of "the storage workload" mean the same byte distribution.

The two canonical CDFs follow the shapes the datacenter-measurement
literature keeps reporting (DCTCP's web-search trace, the Hadoop/storage
mixes in the FB/MS fabric studies, both cited in PAPERS.md):

* ``WEB_CDF`` -- RPC-dominated: mostly single-MTU-scale messages with a
  thin tail to ~1 MB (mice).
* ``STORAGE_CDF`` -- bulk-dominated: chunk reads/writes from 64 KB up to
  32 MB, byte volume carried by the elephants.

Sampling is inverse-transform over a piecewise-linear CDF and draws
exactly one ``rng.random()`` per sample, so adding a sampler to a
component does not perturb any other seeded stream.
"""

from bisect import bisect_left

from repro.sim.units import KB, MB, SEC


class SizeCDF:
    """A flow/message size distribution as an empirical CDF.

    ``points`` is a sequence of ``(size_bytes, cumulative_probability)``
    pairs, strictly increasing in both coordinates, ending at
    probability 1.0.  Sampling interpolates linearly in bytes between
    the bracketing points (the conventional rendering of published
    workload CDF figures).
    """

    __slots__ = ("name", "_sizes", "_probs")

    def __init__(self, name, points):
        if not points:
            raise ValueError("empty CDF")
        sizes = [int(size) for size, _prob in points]
        probs = [float(prob) for _size, prob in points]
        if probs[-1] != 1.0:
            raise ValueError("CDF must end at probability 1.0, got %r" % probs[-1])
        for i in range(1, len(points)):
            if sizes[i] <= sizes[i - 1] or probs[i] <= probs[i - 1]:
                raise ValueError(
                    "CDF points must be strictly increasing: %r -> %r"
                    % (points[i - 1], points[i])
                )
        if probs[0] < 0:
            raise ValueError("negative probability %r" % probs[0])
        self.name = name
        self._sizes = sizes
        self._probs = probs

    def sample(self, rng):
        """Draw one size in bytes (>= 1); consumes one uniform draw."""
        u = rng.random()
        probs, sizes = self._probs, self._sizes
        idx = bisect_left(probs, u)
        if idx >= len(probs):
            return sizes[-1]
        if idx == 0:
            # Below the first point: scale linearly from 0 bytes.
            lo_size, lo_prob = 0, 0.0
        else:
            lo_size, lo_prob = sizes[idx - 1], probs[idx - 1]
        hi_size, hi_prob = sizes[idx], probs[idx]
        span = hi_prob - lo_prob
        frac = (u - lo_prob) / span if span > 0 else 1.0
        return max(1, int(lo_size + frac * (hi_size - lo_size)))

    def mean(self):
        """Analytic mean of the piecewise-linear CDF (bytes)."""
        total = 0.0
        lo_size, lo_prob = 0, 0.0
        for size, prob in zip(self._sizes, self._probs):
            # Uniform over [lo_size, size] with mass (prob - lo_prob).
            total += (prob - lo_prob) * (lo_size + size) / 2.0
            lo_size, lo_prob = size, prob
        return total

    def quantile(self, q):
        """The size at cumulative probability ``q`` (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile out of range: %r" % (q,))
        probs, sizes = self._probs, self._sizes
        idx = bisect_left(probs, q)
        if idx >= len(probs):
            return sizes[-1]
        lo_size, lo_prob = (0, 0.0) if idx == 0 else (sizes[idx - 1], probs[idx - 1])
        hi_size, hi_prob = sizes[idx], probs[idx]
        span = hi_prob - lo_prob
        frac = (q - lo_prob) / span if span > 0 else 1.0
        return int(lo_size + frac * (hi_size - lo_size))

    def __repr__(self):
        return "SizeCDF(%r, %d points, mean=%.0fB)" % (
            self.name, len(self._sizes), self.mean()
        )


#: Web/RPC-style: mice-dominated with a modest tail (DCTCP web-search shape).
WEB_CDF = SizeCDF(
    "web",
    [
        (1 * KB, 0.15),
        (2 * KB, 0.35),
        (4 * KB, 0.50),
        (16 * KB, 0.70),
        (64 * KB, 0.85),
        (256 * KB, 0.95),
        (1 * MB, 1.0),
    ],
)

#: Storage/bulk-style: chunk transfers, byte volume in the elephants.
STORAGE_CDF = SizeCDF(
    "storage",
    [
        (64 * KB, 0.10),
        (256 * KB, 0.30),
        (1 * MB, 0.60),
        (4 * MB, 0.85),
        (16 * MB, 0.97),
        (32 * MB, 1.0),
    ],
)

#: name -> SizeCDF for CLI/config lookup.
NAMED_CDFS = {cdf.name: cdf for cdf in (WEB_CDF, STORAGE_CDF)}


def resolve_size(spec, rng):
    """One message/flow size from either a plain int or a sampler.

    The packet generators historically took ``message_bytes`` as an
    int; passing a :class:`SizeCDF` (anything with ``sample``) makes
    them draw per message instead -- same seeded stream discipline.
    """
    if hasattr(spec, "sample"):
        return spec.sample(rng)
    return int(spec)


def interarrival_ns(rng, rate_per_second):
    """One exponential arrival gap in integer ns (Poisson process)."""
    if rate_per_second <= 0:
        raise ValueError("rate must be positive, got %r" % (rate_per_second,))
    return max(1, int(rng.expovariate(rate_per_second) * SEC))


class PoissonFlowArrivals:
    """Seeded (start_ns, src, dst, size) draws for flow-level workloads.

    ``pair_fn(rng) -> (src, dst)`` picks endpoints per flow -- callers
    encode their traffic matrix there (uniform random, tor-pair
    permutation, incast, ...).  Arrivals are Poisson at ``rate_per_second``
    and sizes come from ``size_cdf``.  Purely generative: no simulator
    coupling, so both tiers can consume the identical sequence.
    """

    __slots__ = ("rng", "rate_per_second", "size_cdf", "pair_fn")

    def __init__(self, rng, rate_per_second, size_cdf, pair_fn):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rng = rng
        self.rate_per_second = rate_per_second
        self.size_cdf = size_cdf
        self.pair_fn = pair_fn

    def draw(self, n_flows, start_ns=0):
        """The first ``n_flows`` arrivals as (start_ns, src, dst, bytes)."""
        flows = []
        now = start_ns
        for _ in range(n_flows):
            now += interarrival_ns(self.rng, self.rate_per_second)
            src, dst = self.pair_fn(self.rng)
            flows.append((now, src, dst, resolve_size(self.size_cdf, self.rng)))
        return flows
