"""repro -- a reproduction of "RDMA over Commodity Ethernet at Scale"
(Guo et al., SIGCOMM 2016).

The package is a packet-level discrete-event simulator of a RoCEv2
deployment on a commodity Ethernet Clos fabric, plus the paper's
contributions built on top of it:

* DSCP-based PFC (vs the original VLAN-based design) -- :mod:`repro.core`
* the safety fixes: go-back-N recovery, the incomplete-ARP drop that
  prevents the figure-4 deadlock, both PFC-storm watchdogs, and the
  slow-receiver mitigations -- :mod:`repro.rdma`, :mod:`repro.core`,
  :mod:`repro.nic`, :mod:`repro.switch`
* DCQCN congestion control -- :mod:`repro.dcqcn`
* management and monitoring (config drift, PFC counters, RDMA
  Pingmesh) -- :mod:`repro.monitoring`
* every table and figure of the evaluation -- :mod:`repro.experiments`

Quickstart::

    from repro import single_switch, connect_qp_pair, post_send, SeededRng

    topo = single_switch(n_hosts=2).boot()
    qp, _ = connect_qp_pair(topo.hosts[0], topo.hosts[1], SeededRng(1))
    post_send(qp, 4 * 1024 * 1024, on_complete=lambda wr, t: print("done", t))
    topo.sim.run(until=10_000_000)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.sim import SeededRng, Simulator
from repro.rdma import (
    GoBack0,
    GoBackN,
    QpConfig,
    TrafficClass,
    connect_qp_pair,
    post_read,
    post_send,
    post_write,
)
from repro.dcqcn import DcqcnConfig, enable_dcqcn
from repro.topo import deadlock_quad, single_switch, three_tier_clos, two_tier

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "SeededRng",
    "QpConfig",
    "TrafficClass",
    "GoBack0",
    "GoBackN",
    "connect_qp_pair",
    "post_send",
    "post_write",
    "post_read",
    "DcqcnConfig",
    "enable_dcqcn",
    "single_switch",
    "two_tier",
    "three_tier_clos",
    "deadlock_quad",
    "__version__",
]
