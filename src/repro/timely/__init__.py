"""TIMELY: RTT-gradient congestion control (Mittal et al. [27]).

The paper deploys DCQCN but notes that "the lessons we have learned in
this paper apply to the networks using TIMELY as well" (section 2) --
both are rate-based controllers whose job, in a PFC fabric, is to keep
queues short enough that pauses rarely fire.  This extension implements
TIMELY so that claim can be exercised: the ablation bench runs the same
congested fabric under no CC / DCQCN / TIMELY and compares pause
generation and latency.
"""

from repro.timely.engine import TimelyConfig, TimelyRp, enable_timely

__all__ = ["TimelyConfig", "TimelyRp", "enable_timely"]
