"""The TIMELY rate controller.

Per the TIMELY paper's control loop, evaluated once per RTT sample:

* compute the smoothed RTT difference ("gradient"), normalized by a
  minimum-RTT scale;
* ``rtt < t_low``  -> additive increase (no queueing to speak of);
* ``rtt > t_high`` -> multiplicative decrease proportional to how far
  past the ceiling the RTT is (queue must shrink *now*);
* otherwise gradient-based: negative gradient -> additive increase (with
  hyper-step after N consecutive decreases in RTT), positive gradient ->
  multiplicative decrease scaled by the normalized gradient.

The controller plugs into a QP exactly like DCQCN's reaction point: it
exposes ``rate_bps`` and the QP paces against it.
"""

from repro.sim.units import US


class TimelyConfig:
    """TIMELY parameters (defaults scaled to this simulator's RTTs)."""

    def __init__(
        self,
        t_low_ns=20 * US,
        t_high_ns=100 * US,
        min_rtt_ns=10 * US,
        additive_step_bps=50 * 10**6,
        beta=0.8,
        ewma_alpha=0.3,
        hai_threshold=5,
        min_rate_bps=40 * 10**6,
    ):
        if t_low_ns >= t_high_ns:
            raise ValueError("need t_low < t_high")
        self.t_low_ns = t_low_ns
        self.t_high_ns = t_high_ns
        self.min_rtt_ns = min_rtt_ns
        self.additive_step_bps = additive_step_bps
        self.beta = beta
        self.ewma_alpha = ewma_alpha
        self.hai_threshold = hai_threshold
        self.min_rate_bps = min_rate_bps


class TimelyRp:
    """Rate state for one sending QP, driven by RTT samples."""

    def __init__(self, line_rate_bps, config=None):
        self.config = config or TimelyConfig()
        self.line_rate_bps = line_rate_bps
        self.rate = float(line_rate_bps)
        self._prev_rtt = None
        self._rtt_diff = 0.0
        self._consecutive_decreases = 0
        # Counters.
        self.samples = 0
        self.increases = 0
        self.decreases = 0

    @property
    def rate_bps(self):
        return int(self.rate)

    def on_rtt_sample(self, rtt_ns):
        """The control law; call once per new RTT measurement."""
        config = self.config
        self.samples += 1
        if self._prev_rtt is None:
            self._prev_rtt = rtt_ns
            return
        new_diff = rtt_ns - self._prev_rtt
        self._prev_rtt = rtt_ns
        self._rtt_diff = (
            (1 - config.ewma_alpha) * self._rtt_diff + config.ewma_alpha * new_diff
        )
        gradient = self._rtt_diff / config.min_rtt_ns
        if rtt_ns < config.t_low_ns:
            self._increase(1)
            return
        if rtt_ns > config.t_high_ns:
            factor = 1 - config.beta * (1 - config.t_high_ns / rtt_ns)
            self._decrease(factor)
            return
        if gradient <= 0:
            self._consecutive_decreases += 1
            steps = 5 if self._consecutive_decreases >= config.hai_threshold else 1
            self._increase(steps)
        else:
            self._consecutive_decreases = 0
            self._decrease(1 - config.beta * min(1.0, gradient))

    def on_cnp(self):
        """TIMELY is RTT-driven: ECN congestion notifications are
        ignored (the QP calls this hook on any attached controller)."""

    def on_bytes_sent(self, nbytes):
        """No byte-counter stage in TIMELY; QP hook is a no-op."""

    def _increase(self, steps):
        self.rate = min(
            self.line_rate_bps, self.rate + steps * self.config.additive_step_bps
        )
        self.increases += 1

    def _decrease(self, factor):
        self.rate = max(self.config.min_rate_bps, self.rate * factor)
        self.decreases += 1
        self._consecutive_decreases = 0

    def __repr__(self):
        return "TimelyRp(rate=%.0f, samples=%d)" % (self.rate, self.samples)


def enable_timely(qp, config=None):
    """Attach TIMELY to a connected QP (mutually exclusive with DCQCN)."""
    link = qp.host.nic.port.link
    if link is None:
        raise RuntimeError("enable_timely: host %s is not connected yet" % qp.host.name)
    if qp.rp is not None:
        raise RuntimeError("QP already has a DCQCN reaction point attached")
    rp = TimelyRp(line_rate_bps=link.rate_bps, config=config)
    qp.rp = rp  # the QP paces against rp.rate_bps
    qp.on_rtt_sample = rp.on_rtt_sample
    return rp
