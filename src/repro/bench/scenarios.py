"""The canonical benchmark scenarios.

Each scenario is a self-contained build-and-run function returning a
:class:`ScenarioRun`: how many events fired, how many packets crossed a
link, how much simulated time elapsed — and a **fingerprint** digesting
every counter that could diverge between two runs.  The fingerprint is
the optimization safety net: a hot-path change that alters event
ordering, drops accounting, or perturbs a single RNG draw produces a
different fingerprint, and ``tests/test_bench.py`` pins the fingerprints
against ``benchmarks/BASELINE.json``.

Scenarios are chosen to stress complementary parts of the packet path:

========================  ====================================================
``engine_churn``          raw event dispatch + timer re-arm (no packets)
``single_flow``           one QP through one ToR, 1%% loss, go-back-N recovery
``incast_tor``            7-to-1 incast into one ToR, PFC pause/resume active
``pause_storm``           a broken NIC storms a 3-tier Clos; watchdogs confine
``clos_slice``            saturating cross-podset traffic on a 3-tier Clos
``clos_pod``              one full podset (~4x clos_slice), same traffic shape
``clos_pod_parallel``     clos_pod sharded across processes, windowed sync
``tcp_baseline``          TCP incast with lossy-egress drops and recovery
``flowsim_churn``         flow-level tier: exact-mode churn on a two-tier pod
``flowsim_clos``          flow-level tier: 512-host Clos, interval batching
========================  ====================================================

The two ``flowsim_*`` scenarios benchmark the *flow-level* simulator
(:mod:`repro.flowsim`) -- there ``packets`` counts completed flows, so
``packets_per_sec`` reads as flows/s, and ``events_per_packet`` as
events per completed flow.  Their fingerprints digest the engine's
integer-only run tuple (completion CRC included), pinned exactly like
the packet scenarios'.

Cross-process determinism: every scenario pins each switch's ECMP seed
to ``crc32(name)`` before traffic starts (the constructor default uses
``hash()``, which varies per process under hash randomization) and all
flow keys are integers, so fingerprints are stable across processes,
machines and Python versions — which is what lets the baseline file be
checked in at all.
"""

import hashlib
import zlib

from repro.sim import SeededRng, Simulator
from repro.sim.timer import Timer
from repro.sim.units import KB, MB, MS, US


class ScenarioRun:
    """The outcome of one scenario execution (simulated side only).

    ``events`` is the logical event count (invariant under train
    coalescing, so it participates in fingerprints); ``dispatches`` is
    the number of callbacks the engine actually invoked -- the
    machine-independent cost that ``events_per_packet`` is derived from.
    """

    __slots__ = ("events", "dispatches", "packets", "sim_ns", "fingerprint", "detail")

    def __init__(
        self, events, packets, sim_ns, fingerprint_tuple, dispatches=None, detail=None
    ):
        self.events = events
        self.dispatches = events if dispatches is None else dispatches
        self.packets = packets
        self.sim_ns = sim_ns
        self.fingerprint = digest(fingerprint_tuple)
        self.detail = detail or {}


class BenchScenario:
    """One named scenario: metadata plus its runner."""

    __slots__ = ("name", "title", "paper_ref", "fn")

    def __init__(self, name, title, paper_ref, fn):
        self.name = name
        self.title = title
        self.paper_ref = paper_ref
        self.fn = fn

    def run(self, seed=1):
        return self.fn(seed)


def digest(fingerprint_tuple):
    """A short stable digest of a nested int/str tuple."""
    return hashlib.sha256(repr(fingerprint_tuple).encode()).hexdigest()[:16]


def _pin_ecmp_seeds(topo):
    """Replace per-process ``hash(name)`` ECMP seeds with ``crc32(name)``
    so multi-path scenarios fingerprint identically across processes."""
    for switch in topo.fabric.switches:
        switch.ecmp_seed = zlib.crc32(switch.name.encode())
    return topo


def _link_counters(fabric):
    return tuple((link.delivered, link.lost) for link in fabric.links)


def _switch_counters(fabric):
    return tuple(
        (
            sw.counters.rx_packets,
            sw.counters.tx_enqueued,
            sw.counters.total_drops,
            sw.pause_frames_sent(),
            sw.pause_frames_received(),
        )
        for sw in fabric.switches
    )


def _packets_delivered(fabric):
    return sum(link.delivered for link in fabric.links)


def _sum_tuples(rows):
    """Elementwise sum of equally-shaped nested int tuples.

    The parallel merge: every device (and every sender) is live in
    exactly one shard replica and inert (all-zero counters) in the rest,
    except cut links, whose two transmit directions are counted by the
    two owning replicas -- so summing per-shard counter tuples
    reconstructs the serial tuples exactly.
    """
    return tuple(
        _sum_tuples(cells) if isinstance(cells[0], tuple) else sum(cells)
        for cells in zip(*rows)
    )


# -- scenarios ---------------------------------------------------------------


def engine_churn(seed):
    """Raw substrate cost: chained events plus timer re-arm churn.

    No packets: this floor is what every packet-level scenario pays per
    event before any model code runs.
    """
    sim = Simulator()
    rng = SeededRng(seed, "bench/engine")
    remaining = [200_000]
    timer = Timer(sim, lambda: None, name="churn")

    def tick():
        remaining[0] -= 1
        # Re-arm a timer on every tick: the RTO/pause-refresh pattern.
        timer.start(rng.randint(5, 50))
        if remaining[0] > 0:
            sim.schedule(10, tick)

    sim.schedule(0, tick)
    sim.run_until_idle()
    return ScenarioRun(
        events=sim.events_fired,
        dispatches=sim.dispatches,
        packets=0,
        sim_ns=sim.now,
        fingerprint_tuple=(sim.events_fired, sim.now),
    )


def single_flow(seed):
    """One go-back-N QP through one ToR with 1% link loss (section 4.1's
    recovery machinery on the wire, minus the livelock)."""
    from repro.rdma import GoBackN, QpConfig, connect_qp_pair, post_send
    from repro.topo import single_switch

    topo = _pin_ecmp_seeds(single_switch(n_hosts=2, seed=seed)).boot()
    link = topo.fabric.links[0]
    link.loss_rate = 0.01
    link._loss_rng = SeededRng(seed, "bench/loss")
    rng = SeededRng(seed, "bench/flow")
    config = QpConfig(recovery=GoBackN(), rto_ns=200 * US)
    qp, _ = connect_qp_pair(
        topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=config
    )
    wr = post_send(qp, 8 * MB)
    topo.sim.run(until=topo.sim.now + 25 * MS)
    return ScenarioRun(
        events=topo.sim.events_fired,
        dispatches=topo.sim.dispatches,
        packets=_packets_delivered(topo.fabric),
        sim_ns=topo.sim.now,
        fingerprint_tuple=(
            topo.sim.events_fired,
            int(wr.completed),
            qp.stats.data_packets_sent,
            qp.stats.retransmitted_packets,
            qp.stats.naks_received,
            qp.stats.timeouts,
            _link_counters(topo.fabric),
        ),
    )


def incast_tor(seed):
    """7-to-1 incast under one ToR: the PFC pause/resume and shared-buffer
    admission hot path (section 2's mechanism at full boil)."""
    from repro.rdma import connect_qp_pair
    from repro.switch.buffer import BufferConfig
    from repro.topo import single_switch
    from repro.workloads import ClosedLoopSender, RdmaChannel

    topo = _pin_ecmp_seeds(
        single_switch(
            n_hosts=8,
            seed=seed,
            buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
        )
    ).boot()
    rng = SeededRng(seed, "bench/incast")
    victim = topo.hosts[0]
    qps = []
    for src in topo.hosts[1:]:
        qp, _ = connect_qp_pair(src, victim, rng)
        qps.append(qp)
        ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
    topo.sim.run(until=topo.sim.now + 5 * MS)
    return ScenarioRun(
        events=topo.sim.events_fired,
        dispatches=topo.sim.dispatches,
        packets=_packets_delivered(topo.fabric),
        sim_ns=topo.sim.now,
        fingerprint_tuple=(
            topo.sim.events_fired,
            tuple(qp.stats.data_packets_sent for qp in qps),
            tuple(qp.stats.bytes_completed for qp in qps),
            topo.tor.buffer.peak_shared_in_use,
            _switch_counters(topo.fabric),
            _link_counters(topo.fabric),
        ),
    )


def pause_storm(seed):
    """A NIC whose receive pipeline dies mid-run storms a 3-tier Clos;
    both watchdogs are armed (section 4.3, timescales compressed)."""
    from repro.nic.nic import NicConfig, NicWatchdogConfig
    from repro.switch.buffer import BufferConfig
    from repro.switch.watchdog import SwitchWatchdogConfig
    from repro.topo import three_tier_clos
    from repro.workloads import ClosedLoopSender, RdmaChannel
    from repro.rdma import connect_qp_pair

    nic_config = NicConfig(
        watchdog_config=NicWatchdogConfig(
            stall_threshold_ns=1 * MS, poll_interval_ns=250 * US
        )
    )
    topo = _pin_ecmp_seeds(
        three_tier_clos(
            n_podsets=2,
            tors_per_podset=2,
            hosts_per_tor=2,
            leaves_per_podset=2,
            n_spines=2,
            seed=seed,
            nic_config=nic_config,
            buffer_config=BufferConfig(alpha=None, xoff_static_bytes=96 * KB),
        )
    ).boot()
    for podset in topo.podsets:
        for tor in podset["tors"]:
            tor.enable_storm_watchdog(
                SwitchWatchdogConfig(poll_interval_ns=250 * US, reenable_after_ns=2 * MS)
            )
    sim = topo.sim
    rng = SeededRng(seed, "bench/storm")
    hosts = topo.hosts
    victim = hosts[0]
    qps = []
    for src in hosts[1:4]:
        qp, _ = connect_qp_pair(src, victim, rng)
        qps.append(qp)
        ClosedLoopSender(RdmaChannel(qp), 512 * KB).start()
    for a, b in zip(hosts[4:6], hosts[6:8]):
        qp, _ = connect_qp_pair(a, b, rng)
        qps.append(qp)
        ClosedLoopSender(RdmaChannel(qp), 512 * KB).start()
    sim.schedule(1 * MS, victim.nic.break_rx_pipeline)
    sim.run(until=sim.now + 6 * MS)
    return ScenarioRun(
        events=sim.events_fired,
        dispatches=sim.dispatches,
        packets=_packets_delivered(topo.fabric),
        sim_ns=sim.now,
        fingerprint_tuple=(
            sim.events_fired,
            victim.nic.stats.pause_generated,
            victim.nic.watchdog_trips,
            sum(sw.watchdog_trips() for sw in topo.fabric.switches),
            tuple(qp.stats.bytes_completed for qp in qps),
            _switch_counters(topo.fabric),
            _link_counters(topo.fabric),
        ),
    )


def clos_slice(seed):
    """The flagship: saturating cross-podset RDMA pairs on a 3-tier Clos
    slice — ECMP, PFC, multi-hop forwarding and NIC scheduling all hot
    (the packet-level cross-check of figure 7's fabric)."""
    from repro.topo import three_tier_clos
    from repro.experiments.common import saturate_pairs

    topo = _pin_ecmp_seeds(
        three_tier_clos(
            n_podsets=2,
            tors_per_podset=2,
            hosts_per_tor=2,
            leaves_per_podset=2,
            n_spines=2,
            seed=seed,
        )
    ).boot()
    sim = topo.sim
    rng = SeededRng(seed, "bench/clos")
    hosts = topo.hosts
    half = len(hosts) // 2
    pairs = [(hosts[i], hosts[half + i]) for i in range(half)]
    pairs += [(hosts[half + i], hosts[i]) for i in range(half)]
    senders = saturate_pairs(sim, pairs, 1 * MB, rng)
    start = sim.now
    sim.run(until=start + 4 * MS)
    total_bytes = sum(s.completed_bytes for s in senders)
    return ScenarioRun(
        events=sim.events_fired,
        dispatches=sim.dispatches,
        packets=_packets_delivered(topo.fabric),
        sim_ns=sim.now,
        fingerprint_tuple=(
            sim.events_fired,
            tuple(s.completed_bytes for s in senders),
            topo.fabric.total_drops(),
            _switch_counters(topo.fabric),
            _link_counters(topo.fabric),
        ),
        detail={"aggregate_gbps": total_bytes * 8.0 / (sim.now - start)},
    )


def clos_pod(seed):
    """One full podset of the paper's fabric at ~4x the clos_slice scale:
    4 ToRs x 4 hosts per podset, 4 leaves, 4 spines — the scaling check
    that the engine's per-event cost stays flat as the topology grows."""
    from repro.topo import three_tier_clos
    from repro.experiments.common import saturate_pairs

    topo = _pin_ecmp_seeds(
        three_tier_clos(
            n_podsets=2,
            tors_per_podset=4,
            hosts_per_tor=4,
            leaves_per_podset=4,
            n_spines=4,
            seed=seed,
        )
    ).boot()
    sim = topo.sim
    rng = SeededRng(seed, "bench/pod")
    hosts = topo.hosts
    half = len(hosts) // 2
    pairs = [(hosts[i], hosts[half + i]) for i in range(half)]
    pairs += [(hosts[half + i], hosts[i]) for i in range(half)]
    senders = saturate_pairs(sim, pairs, 1 * MB, rng)
    start = sim.now
    sim.run(until=start + 2 * MS)
    total_bytes = sum(s.completed_bytes for s in senders)
    return ScenarioRun(
        events=sim.events_fired,
        dispatches=sim.dispatches,
        packets=_packets_delivered(topo.fabric),
        sim_ns=sim.now,
        fingerprint_tuple=(
            sim.events_fired,
            tuple(s.completed_bytes for s in senders),
            topo.fabric.total_drops(),
            _switch_counters(topo.fabric),
            _link_counters(topo.fabric),
        ),
        detail={"aggregate_gbps": total_bytes * 8.0 / (sim.now - start)},
    )


#: Worker count for ``clos_pod_parallel`` -- ``python -m repro.bench
#: --workers N`` rebinds it.  The fingerprint is worker-count invariant
#: (that is the whole point); only wall-clock changes.
PARALLEL_WORKERS = 4


def _clos_pod_build(seed):
    """clos_pod's exact topology, unbooted (the parallel runner boots
    each shard's replica itself)."""
    from repro.topo import three_tier_clos

    return _pin_ecmp_seeds(
        three_tier_clos(
            n_podsets=2,
            tors_per_podset=4,
            hosts_per_tor=4,
            leaves_per_podset=4,
            n_spines=4,
            seed=seed,
        )
    )


def _clos_pod_start(topo, seed, harness):
    """clos_pod's exact workload construction, run in every replica so
    the RNG stream and QP wiring match the serial run byte-for-byte;
    only senders whose source host the shard owns actually start."""
    from repro.experiments.common import saturate_pairs

    rng = SeededRng(seed, "bench/pod")
    hosts = topo.hosts
    half = len(hosts) // 2
    pairs = [(hosts[i], hosts[half + i]) for i in range(half)]
    pairs += [(hosts[half + i], hosts[i]) for i in range(half)]
    index_of = {id(host): i for i, host in enumerate(topo.fabric.hosts)}
    return saturate_pairs(
        topo.sim,
        pairs,
        1 * MB,
        rng,
        start_filter=lambda _i, pair: index_of[id(pair[0])] in harness.local_hosts,
    )


def _clos_pod_report(topo, senders, harness):
    """One shard's counter contribution (zeros everywhere it is inert)."""
    return {
        "completed": tuple(s.completed_bytes for s in senders),
        "drops": topo.fabric.total_drops(),
        "switches": _switch_counters(topo.fabric),
        "links": _link_counters(topo.fabric),
    }


def clos_pod_parallel(seed):
    """clos_pod executed by the space-parallel engine: the fabric split
    into :data:`PARALLEL_WORKERS` shards, one process each, synchronized
    with lookahead windows (see docs/parallel.md).  Merged counters
    reproduce clos_pod's fingerprint byte-for-byte -- this scenario
    exists to pin that identity and to measure the wall-clock speedup
    next to clos_pod's serial number.
    """
    from repro.sim.parallel import run_parallel
    from repro.telemetry.hooks import HUB
    from repro.tracing.hooks import HUB as TRACE_HUB

    if HUB.armed is not None or TRACE_HUB.armed is not None:
        plane = "telemetry" if HUB.armed is not None else "tracing"
        print(
            "clos_pod_parallel: %s armed -- forcing the serial "
            "clos_pod path (sharded replicas cannot host one coherent "
            "collection session; see docs/%s.md)" % (plane, plane)
        )
        return clos_pod(seed)
    result = run_parallel(
        _clos_pod_build,
        PARALLEL_WORKERS,
        duration_ns=2 * MS,
        seed=seed,
        settle_ns=100_000,
        start=_clos_pod_start,
        report=_clos_pod_report,
    )
    reports = result.shard_reports
    completed = _sum_tuples([r["completed"] for r in reports])
    switches = _sum_tuples([r["switches"] for r in reports])
    links = _sum_tuples([r["links"] for r in reports])
    drops = sum(r["drops"] for r in reports)
    total_bytes = sum(completed)
    return ScenarioRun(
        events=result.events,
        dispatches=result.dispatches,
        packets=sum(delivered for delivered, _lost in links),
        sim_ns=result.sim_ns,
        fingerprint_tuple=(
            result.events,
            completed,
            drops,
            switches,
            links,
        ),
        detail={
            "workers": result.workers,
            "executor": result.executor,
            "window_ns": result.window_ns,
            "exchanges": result.exchanges,
            "frames_crossed": result.frames_crossed,
            "sync_wait_s": result.sync_wait_s,
            "aggregate_gbps": total_bytes * 8.0 / (2 * MS),
        },
    )


def tcp_baseline(seed):
    """TCP incast through one ToR with a lossy egress cap: the kernel
    stack, Reno recovery and egress drops (the figure 6 contrast)."""
    from repro.switch.buffer import BufferConfig
    from repro.tcp import connect_tcp_pair
    from repro.topo import single_switch
    from repro.workloads import ClosedLoopSender, TcpChannel

    topo = _pin_ecmp_seeds(
        single_switch(
            n_hosts=6,
            seed=seed,
            buffer_config=BufferConfig(lossy_egress_cap_bytes=120 * KB),
        )
    ).boot()
    rng = SeededRng(seed, "bench/tcp")
    victim = topo.hosts[0]
    conns = []
    for src in topo.hosts[1:]:
        conn, _ = connect_tcp_pair(src, victim, rng)
        conns.append(conn)
        ClosedLoopSender(TcpChannel(conn), 256 * KB).start()
    topo.sim.run(until=topo.sim.now + 6 * MS)
    return ScenarioRun(
        events=topo.sim.events_fired,
        dispatches=topo.sim.dispatches,
        packets=_packets_delivered(topo.fabric),
        sim_ns=topo.sim.now,
        fingerprint_tuple=(
            topo.sim.events_fired,
            tuple(c.stats.bytes_delivered for c in conns),
            tuple(c.stats.retransmits for c in conns),
            _switch_counters(topo.fabric),
            _link_counters(topo.fabric),
        ),
    )


def flowsim_churn(seed):
    """The flow-level tier's dispatch floor: exact-mode arrival/completion
    churn on a two-tier pod, every batch a full incremental max-min
    recompute (the solver and heap hot path, no interval batching)."""
    from repro.flowsim import FlowSim, two_tier_flow
    from repro.workloads.distributions import WEB_CDF

    topology = two_tier_flow(n_tors=4, hosts_per_tor=8)
    sim = FlowSim.from_topology(topology, rate_update_interval_ns=0)
    rng = SeededRng(seed, "bench/flowsim-churn")
    n_hosts = topology.n_hosts
    window_ns = 20 * MS
    for _ in range(4000):
        src = rng.randint(0, n_hosts - 1)
        dst = (src + rng.randint(1, n_hosts - 1)) % n_hosts
        sim.add_host_flow(
            src,
            dst,
            WEB_CDF.sample(rng),
            start_ns=rng.randint(0, window_ns - 1),
            sport=rng.randint(49152, 65535),
        )
    run = sim.run()
    return ScenarioRun(
        events=run.n_events,
        packets=run.n_completed,
        sim_ns=run.sim_ns,
        fingerprint_tuple=run.fingerprint(),
        detail={"recomputes": run.n_recomputes},
    )


def flowsim_clos(seed):
    """The flow-level tier at fabric scale: a 512-host three-tier Clos
    carrying cross-podset pair traffic from the storage CDF, rates
    re-solved on 500us interval boundaries (the F1 scenario's shape at
    bench-friendly size)."""
    from repro.experiments.flowsim_scale import build_scale_workload
    from repro.flowsim import FlowSim, clos_flow
    from repro.sim.units import US

    topology = clos_flow(
        n_podsets=4,
        tors_per_podset=8,
        hosts_per_tor=16,
        leaves_per_podset=4,
        n_spines=8,
    )
    sim = FlowSim.from_topology(topology, rate_update_interval_ns=500 * US)
    build_scale_workload(sim, topology, seed, workload="storage", n_podsets=4)
    run = sim.run()
    return ScenarioRun(
        events=run.n_events,
        packets=run.n_completed,
        sim_ns=run.sim_ns,
        fingerprint_tuple=run.fingerprint(),
        detail={"recomputes": run.n_recomputes},
    )


#: name -> BenchScenario, in presentation order.
SCENARIOS = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            "engine_churn",
            "event dispatch + timer re-arm floor",
            "substrate (no paper section)",
            engine_churn,
        ),
        BenchScenario(
            "single_flow",
            "one lossy QP, go-back-N recovery",
            "section 4.1 machinery",
            single_flow,
        ),
        BenchScenario(
            "incast_tor",
            "7-to-1 incast, PFC active",
            "section 2 (figure 2)",
            incast_tor,
        ),
        BenchScenario(
            "pause_storm",
            "NIC pause storm + watchdogs on 3-tier Clos",
            "section 4.3 (figures 5, 9)",
            pause_storm,
        ),
        BenchScenario(
            "clos_slice",
            "saturating cross-podset Clos slice",
            "section 5.4 (figure 7 check)",
            clos_slice,
        ),
        BenchScenario(
            "clos_pod",
            "one full podset, saturating cross-podset pairs",
            "section 3 fabric scale check",
            clos_pod,
        ),
        BenchScenario(
            "clos_pod_parallel",
            "clos_pod sharded across worker processes",
            "section 3 fabric scale (parallel engine)",
            clos_pod_parallel,
        ),
        BenchScenario(
            "tcp_baseline",
            "TCP incast with egress drops",
            "section 5.4 (figure 6 contrast)",
            tcp_baseline,
        ),
        BenchScenario(
            "flowsim_churn",
            "flow-level exact-mode churn, two-tier pod",
            "sections 1, 5.4 (flow-level tier)",
            flowsim_churn,
        ),
        BenchScenario(
            "flowsim_clos",
            "flow-level 512-host Clos, interval batching",
            "sections 1, 5.4 (flow-level tier)",
            flowsim_clos,
        ),
    )
}


def run_scenario(name, seed=1):
    """Execute one scenario by name; returns its :class:`ScenarioRun`."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (have: %s)" % (name, ", ".join(SCENARIOS))
        )
    return scenario.run(seed)
