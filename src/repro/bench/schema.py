"""The ``BENCH_simulator.json`` report schema, and a dependency-free
validator.

The container has no ``jsonschema`` package, so the shape is expressed
as a small declarative spec interpreted by :func:`validate_report`.
``SCHEMA`` doubles as machine-readable documentation of the format; CI
and ``tests/test_bench.py`` both call the validator so a malformed
report fails loudly instead of silently rotting the perf trajectory.
"""

SCHEMA_ID = "repro-bench/1"

#: Required scalar fields of a per-scenario entry, name -> type(s).
SCENARIO_FIELDS = {
    "title": str,
    "paper_ref": str,
    "seed": int,
    "events": int,
    "dispatches": int,
    "packets": int,
    "sim_ns": int,
    "wall_s": (int, float),
    "wall_s_all": list,
    "events_per_sec": (int, float),
    "packets_per_sec": (int, float),
    "events_per_packet": (int, float),
    "fingerprint": str,
}

#: Required top-level fields, name -> type(s).  ``baseline`` may be None
#: (first run ever); ``comparison`` may be empty but must exist.
REPORT_FIELDS = {
    "schema": str,
    "generated_utc": str,
    "code_version": str,
    "python": str,
    "platform": str,
    "repeat": int,
    "scenarios": dict,
    "comparison": dict,
}

#: Documentation-shaped summary; the authoritative structure is
#: REPORT_FIELDS/SCENARIO_FIELDS above and docs/benchmarking.md.
SCHEMA = {
    "id": SCHEMA_ID,
    "report_fields": sorted(REPORT_FIELDS),
    "scenario_fields": sorted(SCENARIO_FIELDS),
}


class SchemaViolation(ValueError):
    """Raised when a report does not match the ``repro-bench/1`` shape."""


def _check(condition, message, *args):
    if not condition:
        raise SchemaViolation(message % args if args else message)


def validate_report(report):
    """Validate a report object against ``repro-bench/1``.

    Returns the report (for chaining); raises :class:`SchemaViolation`
    naming the first offending field otherwise.
    """
    _check(isinstance(report, dict), "report must be an object, got %s", type(report).__name__)
    for name, types in REPORT_FIELDS.items():
        _check(name in report, "report missing required field %r", name)
        _check(
            isinstance(report[name], types),
            "report field %r must be %s, got %s",
            name,
            types,
            type(report[name]).__name__,
        )
    _check(report["schema"] == SCHEMA_ID, "schema id %r != %r", report["schema"], SCHEMA_ID)
    _check("baseline" in report, "report missing required field 'baseline'")
    _check(
        report["baseline"] is None or isinstance(report["baseline"], dict),
        "report field 'baseline' must be an object or null",
    )
    _check(len(report["scenarios"]) > 0, "report has no scenarios")
    for name, entry in report["scenarios"].items():
        _check(isinstance(entry, dict), "scenario %r must be an object", name)
        for field, types in SCENARIO_FIELDS.items():
            _check(field in entry, "scenario %r missing field %r", name, field)
            _check(
                isinstance(entry[field], types) and not isinstance(entry[field], bool),
                "scenario %r field %r must be %s, got %r",
                name,
                field,
                types,
                entry[field],
            )
        _check(entry["wall_s"] > 0, "scenario %r wall_s must be positive", name)
        _check(entry["events"] > 0, "scenario %r fired no events", name)
        _check(
            len(entry["fingerprint"]) == 16,
            "scenario %r fingerprint must be a 16-hex-char digest",
            name,
        )
        if "profile" in entry:
            _check(isinstance(entry["profile"], dict), "scenario %r profile must be an object", name)
            for bucket, cost in entry["profile"].items():
                _check(
                    isinstance(cost, dict) and "seconds" in cost and "fraction" in cost,
                    "scenario %r profile bucket %r needs seconds+fraction",
                    name,
                    bucket,
                )
    for name, row in report["comparison"].items():
        _check(
            name in report["scenarios"],
            "comparison names unknown scenario %r",
            name,
        )
        for field in ("baseline_events_per_sec", "speedup", "fingerprint_match"):
            _check(field in row, "comparison %r missing field %r", name, field)
    return report
