"""Tracked simulator benchmarks: ``python -m repro.bench``.

The experiments under ``benchmarks/`` regenerate the *paper*; this
package benchmarks the *simulator* — events/sec, packets/sec and wall
time over a fixed set of canonical scenarios — and records the results
to ``BENCH_simulator.json`` so every PR leaves a performance trajectory
behind it.  A discrete-event packet simulator lives or dies on
per-packet event cost, and the ROADMAP's "as fast as the hardware
allows" goal is unenforceable without numbers.

Three pieces:

* :mod:`repro.bench.scenarios` — the canonical scenario set (engine
  churn, a single RDMA flow, a ToR incast, a PFC pause storm, a 3-tier
  Clos slice, a TCP baseline), each returning a determinism fingerprint
  alongside its counters;
* :mod:`repro.bench.harness` — wall-clock measurement, optional
  cProfile attribution per subsystem, baseline comparison, report
  emission;
* :mod:`repro.bench.schema` — the report's JSON shape, validated by a
  dependency-free checker (the regression tests and CI both call it).

See ``docs/benchmarking.md`` for how to run and read the results.
"""

from repro.bench.harness import (
    load_baseline,
    run_benchmarks,
    write_report,
)
from repro.bench.scenarios import SCENARIOS, run_scenario
from repro.bench.schema import SchemaViolation, validate_report

__all__ = [
    "SCENARIOS",
    "SchemaViolation",
    "load_baseline",
    "run_benchmarks",
    "run_scenario",
    "validate_report",
    "write_report",
]
