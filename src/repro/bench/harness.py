"""Measurement harness: wall clock, cProfile attribution, report emission.

``run_benchmarks`` times each scenario ``repeat`` times (best-of wall
time — the minimum is the least noisy estimator of intrinsic cost),
derives events/sec and packets/sec, optionally runs one extra profiled
pass whose time is attributed per subsystem, compares against the
checked-in baseline (``benchmarks/BASELINE.json``), and emits the
schema-validated ``BENCH_simulator.json``.

The report stamps :func:`repro.campaign.cache.code_version` — the digest
of every file under ``src/repro`` — so a result is always attributable
to the exact code that produced it.
"""

import cProfile
import json
import os
import platform
import pstats
import sys
import time

from repro.bench.scenarios import SCENARIOS
from repro.bench.schema import SCHEMA_ID, validate_report

#: Source-path fragment -> subsystem bucket for profile attribution.
#: Ordered: first match wins (os.sep-normalized at match time).
_SUBSYSTEM_BUCKETS = (
    ("repro/sim/", "engine"),
    ("repro/packets/", "packets"),
    ("repro/net/", "net"),
    ("repro/switch/", "switch"),
    ("repro/nic/", "nic"),
    ("repro/rdma/", "rdma"),
    ("repro/tcp/", "tcp"),
    ("repro/dcqcn/", "cc"),
    ("repro/timely/", "cc"),
    ("repro/flowsim/", "flowsim"),
    ("repro/flows/", "flowsim"),
    ("repro/telemetry/", "telemetry"),
    ("repro/", "other-repro"),
)


def _bucket_for(filename):
    normalized = filename.replace(os.sep, "/")
    for fragment, bucket in _SUBSYSTEM_BUCKETS:
        if fragment in normalized:
            return bucket
    if "heapq" in normalized or filename.startswith("~"):
        return "engine"
    return "stdlib"


def profile_scenario(name, seed=1):
    """Run one scenario under cProfile; return ``{bucket: seconds}``.

    Attribution uses *total* time (time inside the function itself,
    excluding callees), so buckets sum to roughly the run's wall time
    and answer "where are the cycles actually spent", not "who is on
    the call stack".
    """
    scenario = SCENARIOS[name]
    profiler = cProfile.Profile()
    profiler.enable()
    scenario.run(seed)
    profiler.disable()
    stats = pstats.Stats(profiler)
    buckets = {}
    for (filename, _lineno, _fn), row in stats.stats.items():
        tottime = row[2]
        bucket = _bucket_for(filename)
        buckets[bucket] = buckets.get(bucket, 0.0) + tottime
    total = sum(buckets.values()) or 1.0
    return {
        bucket: {"seconds": round(seconds, 4), "fraction": round(seconds / total, 4)}
        for bucket, seconds in sorted(buckets.items(), key=lambda kv: -kv[1])
    }


def run_benchmarks(names=None, seed=1, repeat=3, profile=False, progress=None, warmup=True):
    """Time the named scenarios (all of them by default).

    Each scenario gets one *untimed* warmup execution first (unless
    ``warmup=False``): the first run pays allocator growth, lazy imports
    and branch-predictor/cache cold starts that the steady-state runs do
    not, and letting it into the sample was a reliable source of phantom
    "regressions" on fingerprint-identical code.

    Returns the ``scenarios`` mapping of the report: per scenario, the
    counters, best-of-``repeat`` wall time, derived rates, fingerprint,
    and (with ``profile=True``) the per-subsystem attribution.
    """
    names = list(names) if names else list(SCENARIOS)
    results = {}
    for name in names:
        scenario = SCENARIOS[name]
        if progress:
            progress("%-14s %s ..." % (name, scenario.title))
        walls = []
        run = None
        if warmup:
            scenario.run(seed)
        for _ in range(max(1, repeat)):
            started = time.perf_counter()
            run = scenario.run(seed)
            walls.append(time.perf_counter() - started)
        best = min(walls)
        entry = {
            "title": scenario.title,
            "paper_ref": scenario.paper_ref,
            "seed": seed,
            "events": run.events,
            "dispatches": run.dispatches,
            "packets": run.packets,
            "sim_ns": run.sim_ns,
            "wall_s": round(best, 4),
            "wall_s_all": [round(w, 4) for w in walls],
            "events_per_sec": round(run.events / best, 1),
            "packets_per_sec": round(run.packets / best, 1) if run.packets else 0.0,
            # Machine-independent cost: callbacks actually dispatched per
            # delivered packet (0.0 for packet-free scenarios).
            "events_per_packet": (
                round(run.dispatches / run.packets, 4) if run.packets else 0.0
            ),
            "fingerprint": run.fingerprint,
        }
        for key, value in run.detail.items():
            entry[key] = round(value, 3) if isinstance(value, float) else value
        if profile:
            entry["profile"] = profile_scenario(name, seed)
        if progress:
            progress(
                "%-14s %8.3fs  %11s events/s  fp=%s"
                % (name, best, "{:,.0f}".format(entry["events_per_sec"]), run.fingerprint)
            )
        results[name] = entry
    return results


def collect_telemetry(scenarios, out_dir, seed=1, progress=None):
    """One extra *untimed* instrumented pass per already-benchmarked scenario.

    The timing loop in :func:`run_benchmarks` never runs with telemetry
    enabled: an armed hub adds poll-timer events, which would shift both
    the wall clocks and the determinism fingerprints that
    ``tests/test_bench.py`` pins.  So artifact collection is always this
    separate pass -- arm, re-run once, drain, write
    ``<scenario>-<i>.telemetry.jsonl`` under ``out_dir``.

    Annotates each scenario entry with a ``telemetry`` block (artifact
    paths + incident count, landing in the report as extra keys the
    ``repro-bench/1`` schema permits) and returns the mapping.
    """
    from repro import telemetry

    for name, entry in scenarios.items():
        telemetry.arm(telemetry.TelemetryConfig(label="bench:%s" % name))
        try:
            SCENARIOS[name].run(seed)
        finally:
            telemetry.disarm()
        sessions = telemetry.drain()
        paths = telemetry.write_artifacts(sessions, out_dir, name)
        incidents = telemetry.incident_count(sessions)
        entry["telemetry"] = {"artifacts": paths, "incidents": incidents}
        if progress:
            progress(
                "%-14s telemetry: %d artifact(s), %d incident(s)"
                % (name, len(paths), incidents)
            )
    return scenarios


def collect_traces(scenarios, out_dir, seed=1, progress=None, config=None):
    """One extra *untimed* traced pass per already-benchmarked scenario.

    The mirror of :func:`collect_telemetry` for the causal tracing
    plane: arm the trace hub, re-run once, drain, write
    ``<scenario>-<i>.trace.jsonl`` under ``out_dir``.  (Tracing itself
    is fingerprint-neutral even while armed, but it is a memory-heavy
    observer, so it stays out of the timing loop just like telemetry.)

    Annotates each scenario entry with a ``trace`` block (artifact
    paths + op/pause counts) and returns the mapping.  ``config`` is an
    optional :class:`repro.tracing.TraceConfig` template whose sampling
    fields are reused per scenario.
    """
    from repro import tracing

    for name, entry in scenarios.items():
        if config is not None:
            scenario_config = tracing.TraceConfig(
                label="bench:%s" % name,
                sample_rate=config.sample_rate,
                sample_seed=config.sample_seed,
                max_ops=config.max_ops,
                max_packets=config.max_packets,
                packets_per_op=config.packets_per_op,
            )
        else:
            scenario_config = tracing.TraceConfig(label="bench:%s" % name)
        tracing.arm(scenario_config)
        try:
            SCENARIOS[name].run(seed)
        finally:
            tracing.disarm()
        sessions = tracing.drain()
        paths = tracing.write_artifacts(sessions, out_dir, name)
        ops = completed = pauses = 0
        for records in sessions:
            summary = tracing.summary_of(records)
            ops += summary.get("ops_traced", 0)
            completed += summary.get("ops_completed", 0)
            pauses += summary.get("pause_nodes", 0)
        entry["trace"] = {
            "artifacts": paths,
            "ops": ops,
            "ops_completed": completed,
            "pause_nodes": pauses,
        }
        if progress:
            progress(
                "%-14s trace: %d artifact(s), %d op(s), %d pause episode(s)"
                % (name, len(paths), ops, pauses)
            )
    return scenarios


def load_baseline(path):
    """Load ``benchmarks/BASELINE.json``; returns None when absent."""
    if not path or not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def compare_to_baseline(scenarios, baseline):
    """Per-scenario speedup and fingerprint agreement vs the baseline.

    Each row also carries ``noise`` -- this run's relative wall-clock
    spread, ``(max - min) / min`` over the timed repeats -- and
    ``within_noise``: true when ``|speedup - 1|`` is smaller than that
    spread.  A speedup inside the run's own jitter band is not evidence
    of a regression (or an improvement); consumers should treat such
    rows as "unchanged" rather than alerting on them.
    """
    comparison = {}
    if not baseline:
        return comparison
    base_scenarios = baseline.get("scenarios", {})
    for name, entry in scenarios.items():
        base = base_scenarios.get(name)
        if not base:
            continue
        speedup = round(entry["events_per_sec"] / base["events_per_sec"], 3)
        walls = entry.get("wall_s_all") or [entry["wall_s"]]
        noise = round((max(walls) - min(walls)) / min(walls), 3)
        row = {
            "baseline_events_per_sec": base["events_per_sec"],
            "speedup": speedup,
            "noise": noise,
            "within_noise": abs(speedup - 1.0) <= noise,
            "fingerprint_match": entry["fingerprint"] == base["fingerprint"],
        }
        base_epp = base.get("events_per_packet")
        if base_epp:
            row["baseline_events_per_packet"] = base_epp
            # < 1.0 means the engine now dispatches fewer callbacks per
            # delivered packet than the baseline did (machine-independent).
            row["events_per_packet_ratio"] = round(
                entry["events_per_packet"] / base_epp, 4
            )
        comparison[name] = row
    return comparison


def build_report(scenarios, baseline=None, repeat=3):
    """Assemble (and schema-validate) the full report object."""
    from repro.campaign.cache import code_version

    report = {
        "schema": SCHEMA_ID,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "code_version": code_version(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": repeat,
        "scenarios": scenarios,
        "baseline": baseline,
        "comparison": compare_to_baseline(scenarios, baseline),
    }
    validate_report(report)
    return report


def write_report(report, path):
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_baseline(scenarios, path):
    """Record the current numbers as the new baseline file.

    Only the fields future runs compare against are kept, so the
    baseline survives harness-report schema evolution.
    """
    from repro.campaign.cache import code_version

    baseline = {
        "recorded_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "code_version": code_version(),
        "python": platform.python_version(),
        "note": (
            "Pre-PR hot-path baseline. events_per_sec is machine-relative; "
            "fingerprints are machine-independent and pinned by tests/test_bench.py."
        ),
        "scenarios": {
            name: {
                "events_per_sec": entry["events_per_sec"],
                "events": entry["events"],
                "dispatches": entry["dispatches"],
                "packets": entry["packets"],
                "events_per_packet": entry["events_per_packet"],
                "wall_s": entry["wall_s"],
                "fingerprint": entry["fingerprint"],
            }
            for name, entry in scenarios.items()
        },
    }
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
