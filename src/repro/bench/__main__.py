"""CLI: ``python -m repro.bench [scenarios...] [options]``.

Examples::

    python -m repro.bench --all                   # full set -> BENCH_simulator.json
    python -m repro.bench clos_slice --repeat 5   # one scenario, more samples
    python -m repro.bench --all --profile         # + per-subsystem attribution
    python -m repro.bench --list                  # what exists
    python -m repro.bench --all --write-baseline benchmarks/BASELINE.json
"""

import argparse
import json
import sys

from repro.bench.harness import (
    build_report,
    collect_telemetry,
    collect_traces,
    load_baseline,
    run_benchmarks,
    write_baseline,
    write_report,
)
import repro.bench.scenarios as bench_scenarios
from repro.bench.scenarios import SCENARIOS


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the simulator's hot path and track the results.",
    )
    parser.add_argument("scenarios", nargs="*", help="scenario names (default: --all)")
    parser.add_argument("--all", action="store_true", help="run every scenario")
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument("--seed", type=int, default=1, help="scenario seed (default 1)")
    parser.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="timing repeats, best-of (default: 5 when comparing against a "
        "baseline, else 3 -- the comparison verdict needs the extra samples "
        "to estimate run-to-run noise)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard count for the parallel scenarios (default: %d; see "
        "docs/parallel.md -- fingerprints are worker-count invariant)"
        % bench_scenarios.PARALLEL_WORKERS,
    )
    parser.add_argument(
        "--no-warmup",
        action="store_true",
        help="skip the untimed warmup pass before each scenario's timing loop",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="add a cProfile pass attributing time per subsystem",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help="also run each scenario once instrumented (untimed) and write "
        "telemetry artifacts to DIR (see docs/telemetry.md)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        help="also run each scenario once with the causal tracing plane "
        "armed (untimed) and write trace artifacts to DIR (see "
        "docs/tracing.md)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_simulator.json",
        help="report path (default: BENCH_simulator.json)",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/BASELINE.json",
        help="baseline to compare against (default: benchmarks/BASELINE.json)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record this run as the new baseline file and exit",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print the report without writing it"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, scenario in SCENARIOS.items():
            print("%-14s %-42s [%s]" % (name, scenario.title, scenario.paper_ref))
        return 0

    names = args.scenarios or None
    if args.all or not names:
        names = list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(
            "unknown scenario(s) %s; try --list" % ", ".join(repr(n) for n in unknown)
        )

    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        bench_scenarios.PARALLEL_WORKERS = args.workers

    # Comparison verdicts quote run-to-run noise, so the comparing path
    # defaults to more samples than a plain measurement or a baseline
    # re-record does.
    comparing = not args.write_baseline and load_baseline(args.baseline) is not None
    repeat = args.repeat if args.repeat is not None else (5 if comparing else 3)

    scenarios = run_benchmarks(
        names,
        seed=args.seed,
        repeat=repeat,
        profile=args.profile,
        progress=lambda line: print(line, file=sys.stderr),
        warmup=not args.no_warmup,
    )

    if args.telemetry:
        collect_telemetry(
            scenarios,
            args.telemetry,
            seed=args.seed,
            progress=lambda line: print(line, file=sys.stderr),
        )

    if args.trace:
        collect_traces(
            scenarios,
            args.trace,
            seed=args.seed,
            progress=lambda line: print(line, file=sys.stderr),
        )

    if args.write_baseline:
        path = write_baseline(scenarios, args.write_baseline)
        print("baseline written: %s" % path)
        return 0

    report = build_report(
        scenarios, baseline=load_baseline(args.baseline), repeat=repeat
    )
    if args.no_write:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        write_report(report, args.out)
        print("report written: %s" % args.out)
    for name, row in sorted(report["comparison"].items()):
        flag = "" if row["fingerprint_match"] else "  !! FINGERPRINT DRIFT"
        if not flag and row.get("within_noise"):
            flag = "  ~ within noise (spread %.1f%%)" % (row["noise"] * 100.0)
        print(
            "%-18s %6.2fx vs baseline (%s -> %s events/s)%s"
            % (
                name,
                row["speedup"],
                "{:,.0f}".format(row["baseline_events_per_sec"]),
                "{:,.0f}".format(report["scenarios"][name]["events_per_sec"]),
                flag,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
