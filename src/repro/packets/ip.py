"""IPv4 header with first-class DSCP and ECN fields.

DSCP (the six high bits of the old ToS byte) is the field the paper moves
packet priority into (figure 3b): unlike the VLAN PCP, it survives IP
routing across subnets and requires no trunk-mode ports.  ECN (the two low
bits) carries DCQCN's congestion signal.
"""

import struct

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

IPV4_HEADER_BYTES = 20

# ECN codepoints (RFC 3168).
ECN_NOT_ECT = 0b00
ECN_ECT1 = 0b01
ECN_ECT0 = 0b10
ECN_CE = 0b11


def ip_to_str(addr):
    """Render a 32-bit integer IPv4 address dotted-quad."""
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_from_str(text):
    """Parse a dotted-quad IPv4 address to a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("malformed IPv4 address: %r" % (text,))
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("malformed IPv4 address: %r" % (text,))
        value = (value << 8) | octet
    return value


def checksum16(data):
    """RFC 1071 ones'-complement checksum over ``data``."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class Ipv4Header:
    """A 20-byte (no options) IPv4 header.

    ``identification`` matters here beyond its usual role: the livelock
    experiment in section 4.1 drops "any packet with the least significant
    byte of IP ID equals to 0xff", exploiting the NIC's sequential ID
    assignment to get a deterministic 1/256 drop rate.
    """

    __slots__ = (
        "dscp",
        "ecn",
        "total_length",
        "identification",
        "ttl",
        "protocol",
        "src",
        "dst",
    )

    def __init__(
        self,
        src,
        dst,
        protocol=IPPROTO_UDP,
        dscp=0,
        ecn=ECN_NOT_ECT,
        total_length=IPV4_HEADER_BYTES,
        identification=0,
        ttl=64,
    ):
        if not 0 <= dscp <= 63:
            raise ValueError("DSCP is 6 bits: %r" % (dscp,))
        if not 0 <= ecn <= 3:
            raise ValueError("ECN is 2 bits: %r" % (ecn,))
        if not 0 <= identification <= 0xFFFF:
            raise ValueError("IP ID is 16 bits: %r" % (identification,))
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.dscp = dscp
        self.ecn = ecn
        self.total_length = total_length
        self.identification = identification
        self.ttl = ttl

    @property
    def size_bytes(self):
        return IPV4_HEADER_BYTES

    @property
    def ect_capable(self):
        """True if the packet advertises ECN-capable transport."""
        return self.ecn in (ECN_ECT0, ECN_ECT1)

    @property
    def ce_marked(self):
        """True if a congested switch has marked the packet."""
        return self.ecn == ECN_CE

    def mark_ce(self):
        """Set the Congestion Experienced codepoint (switch-side marking)."""
        self.ecn = ECN_CE

    def pack(self):
        """Serialize to 20 bytes with a valid header checksum."""
        version_ihl = (4 << 4) | 5
        tos = (self.dscp << 2) | self.ecn
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            tos,
            self.total_length,
            self.identification,
            0,  # flags + fragment offset: never fragmented in a DCN
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src,
            self.dst,
        )
        cksum = checksum16(header)
        return header[:10] + struct.pack("!H", cksum) + header[12:]

    @classmethod
    def unpack(cls, data):
        """Parse 20 bytes; raises on a bad checksum or non-IPv4 version."""
        if len(data) < IPV4_HEADER_BYTES:
            raise ValueError("IPv4 header too short: %d bytes" % len(data))
        fields = struct.unpack("!BBHHHBBHII", data[:IPV4_HEADER_BYTES])
        version_ihl, tos, total_length, ident, _frag, ttl, proto, cksum, src, dst = fields
        if version_ihl >> 4 != 4:
            raise ValueError("not IPv4: version=%d" % (version_ihl >> 4))
        if checksum16(data[:IPV4_HEADER_BYTES]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        return cls(
            src=src,
            dst=dst,
            protocol=proto,
            dscp=tos >> 2,
            ecn=tos & 0b11,
            total_length=total_length,
            identification=ident,
            ttl=ttl,
        )

    def __repr__(self):
        return "Ipv4Header(%s -> %s, proto=%d, dscp=%d, ecn=%d, id=0x%04x)" % (
            ip_to_str(self.src),
            ip_to_str(self.dst),
            self.protocol,
            self.dscp,
            self.ecn,
            self.identification,
        )
