"""Byte-accurate packet and frame models.

The paper's section 3 (figure 3) turns on the exact layout of the VLAN tag,
the IPv4 DSCP field and the PFC pause frame, so this subpackage models
headers at byte granularity, with ``pack()``/``unpack()`` round-tripping to
real wire bytes.  The discrete-event simulator passes the structured
objects around (cheap), while tests assert on the serialized form
(faithful).

Layers provided:

* :mod:`~repro.packets.ethernet` -- Ethernet II frame, 802.1Q VLAN tag.
* :mod:`~repro.packets.ip`       -- IPv4 header with DSCP and ECN.
* :mod:`~repro.packets.udp`      -- UDP header (RoCEv2 runs on port 4791).
* :mod:`~repro.packets.rocev2`   -- InfiniBand BTH / AETH carried in UDP,
  CNP (DCQCN congestion notification packet).
* :mod:`~repro.packets.pause`    -- 802.1Qbb PFC pause frame and 802.3x
  global pause.
* :mod:`~repro.packets.arp`      -- ARP request/reply (the deadlock in
  section 4.2 hinges on ARP/MAC-table interplay).
* :mod:`~repro.packets.packet`   -- the simulation-level envelope with
  convenience accessors (five-tuple, priority resolution, sizes).
"""

from repro.packets.arp import ArpPacket
from repro.packets.ethernet import (
    BROADCAST_MAC,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_MAC_CONTROL,
    ETHERTYPE_VLAN,
    EthernetFrame,
    VlanTag,
    mac_to_str,
)
from repro.packets.ip import (
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ipv4Header,
    ip_to_str,
)
from repro.packets.packet import Packet, PriorityMode, resolve_priority
from repro.packets.tcp import TcpHeader
from repro.packets.pause import (
    GLOBAL_PAUSE_OPCODE,
    PFC_PAUSE_OPCODE,
    PAUSE_QUANTUM_BITS,
    PfcPauseFrame,
    pause_quanta_to_ns,
    ns_to_pause_quanta,
)
from repro.packets.rocev2 import (
    AETH_BYTES,
    BTH_BYTES,
    ICRC_BYTES,
    ROCEV2_UDP_PORT,
    Aeth,
    BthOpcode,
    BaseTransportHeader,
)
from repro.packets.udp import UdpHeader

__all__ = [
    "ArpPacket",
    "EthernetFrame",
    "VlanTag",
    "mac_to_str",
    "BROADCAST_MAC",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "ETHERTYPE_ARP",
    "ETHERTYPE_MAC_CONTROL",
    "Ipv4Header",
    "ip_to_str",
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "IPPROTO_UDP",
    "IPPROTO_TCP",
    "UdpHeader",
    "BaseTransportHeader",
    "BthOpcode",
    "Aeth",
    "ROCEV2_UDP_PORT",
    "BTH_BYTES",
    "AETH_BYTES",
    "ICRC_BYTES",
    "PfcPauseFrame",
    "PFC_PAUSE_OPCODE",
    "GLOBAL_PAUSE_OPCODE",
    "PAUSE_QUANTUM_BITS",
    "pause_quanta_to_ns",
    "ns_to_pause_quanta",
    "Packet",
    "PriorityMode",
    "resolve_priority",
    "TcpHeader",
]
