"""Ethernet II frames and the 802.1Q VLAN tag.

The VLAN tag layout (figure 3a of the paper) is the crux of the paper's
section 3: the tag couples the 3-bit PCP priority with the 12-bit VLAN ID,
and that coupling is what DSCP-based PFC removes.  The tag is therefore
modelled bit-exactly.
"""

import struct

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100  # TPID; fixed by 802.1Q
ETHERTYPE_MAC_CONTROL = 0x8808  # PFC / global pause frames

ETH_HEADER_BYTES = 14
ETH_FCS_BYTES = 4
VLAN_TAG_BYTES = 4
# Preamble (7) + SFD (1) + minimum inter-packet gap (12): consumed on the
# wire but never buffered, so links account for it separately.
ETH_WIRE_OVERHEAD_BYTES = 20

BROADCAST_MAC = 0xFFFFFFFFFFFF

_MAC_MASK = (1 << 48) - 1


def mac_to_str(mac):
    """Render a 48-bit integer MAC as ``aa:bb:cc:dd:ee:ff``."""
    return ":".join("%02x" % ((mac >> shift) & 0xFF) for shift in range(40, -8, -8))


def mac_from_str(text):
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError("malformed MAC address: %r" % (text,))
    value = 0
    for part in parts:
        value = (value << 8) | int(part, 16)
    return value


class VlanTag:
    """An 802.1Q tag: TPID(16) | PCP(3) DEI(1) VID(12).

    ``pcp`` carries the packet priority in VLAN-based PFC; ``vid`` is the
    VLAN the packet belongs to.  The paper's observation is that only the
    PCP is needed for PFC, yet it cannot be carried without also carrying a
    VID and putting switch ports into trunk mode.
    """

    __slots__ = ("pcp", "dei", "vid")

    def __init__(self, pcp=0, dei=0, vid=0):
        if not 0 <= pcp <= 7:
            raise ValueError("PCP is 3 bits: %r" % (pcp,))
        if dei not in (0, 1):
            raise ValueError("DEI is 1 bit: %r" % (dei,))
        if not 0 <= vid <= 0xFFF:
            raise ValueError("VID is 12 bits: %r" % (vid,))
        self.pcp = pcp
        self.dei = dei
        self.vid = vid

    def pack(self):
        """Serialize TPID + TCI to 4 bytes."""
        tci = (self.pcp << 13) | (self.dei << 12) | self.vid
        return struct.pack("!HH", ETHERTYPE_VLAN, tci)

    @classmethod
    def unpack(cls, data):
        """Parse 4 bytes of TPID + TCI."""
        tpid, tci = struct.unpack("!HH", data[:4])
        if tpid != ETHERTYPE_VLAN:
            raise ValueError("not a VLAN tag: TPID=0x%04x" % tpid)
        return cls(pcp=tci >> 13, dei=(tci >> 12) & 1, vid=tci & 0xFFF)

    def __eq__(self, other):
        return (
            isinstance(other, VlanTag)
            and (self.pcp, self.dei, self.vid) == (other.pcp, other.dei, other.vid)
        )

    def __repr__(self):
        return "VlanTag(pcp=%d, dei=%d, vid=%d)" % (self.pcp, self.dei, self.vid)


class EthernetFrame:
    """An Ethernet II frame, optionally 802.1Q-tagged.

    ``payload`` is a structured upper-layer object (e.g. an
    :class:`~repro.packets.ip.Ipv4Header`-led packet body) or raw bytes;
    ``payload_bytes_len`` gives its on-wire size without forcing
    serialization in the simulator hot path.
    """

    __slots__ = ("dst", "src", "ethertype", "vlan", "payload", "_payload_len")

    def __init__(self, dst, src, ethertype, payload=b"", vlan=None, payload_len=None):
        if not 0 <= dst <= _MAC_MASK or not 0 <= src <= _MAC_MASK:
            raise ValueError("MAC addresses are 48-bit integers")
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.vlan = vlan
        self.payload = payload
        if payload_len is None:
            if isinstance(payload, (bytes, bytearray)):
                payload_len = len(payload)
            else:
                payload_len = payload.size_bytes
        self._payload_len = payload_len

    @property
    def is_tagged(self):
        """True when the frame carries an 802.1Q tag."""
        return self.vlan is not None

    @property
    def size_bytes(self):
        """Buffered frame size: header + optional tag + payload + FCS."""
        size = ETH_HEADER_BYTES + self._payload_len + ETH_FCS_BYTES
        if self.vlan is not None:
            size += VLAN_TAG_BYTES
        return size

    @property
    def wire_bytes(self):
        """Frame size as clocked on the wire (adds preamble + IPG)."""
        return self.size_bytes + ETH_WIRE_OVERHEAD_BYTES

    def pack(self):
        """Serialize header + payload (zero-filled FCS)."""
        dst = self.dst.to_bytes(6, "big")
        src = self.src.to_bytes(6, "big")
        if isinstance(self.payload, (bytes, bytearray)):
            body = bytes(self.payload)
        else:
            body = self.payload.pack()
        parts = [dst, src]
        if self.vlan is not None:
            parts.append(self.vlan.pack())
        parts.append(struct.pack("!H", self.ethertype))
        parts.append(body)
        parts.append(b"\x00" * ETH_FCS_BYTES)
        return b"".join(parts)

    @classmethod
    def unpack(cls, data):
        """Parse a frame; the payload is returned as raw bytes (without FCS)."""
        if len(data) < ETH_HEADER_BYTES + ETH_FCS_BYTES:
            raise ValueError("frame too short: %d bytes" % len(data))
        dst = int.from_bytes(data[0:6], "big")
        src = int.from_bytes(data[6:12], "big")
        offset = 12
        vlan = None
        (ethertype,) = struct.unpack_from("!H", data, offset)
        if ethertype == ETHERTYPE_VLAN:
            vlan = VlanTag.unpack(data[offset : offset + 4])
            offset += 4
            (ethertype,) = struct.unpack_from("!H", data, offset)
        offset += 2
        payload = bytes(data[offset : len(data) - ETH_FCS_BYTES])
        return cls(dst=dst, src=src, ethertype=ethertype, payload=payload, vlan=vlan)

    def __repr__(self):
        tag = " %r" % (self.vlan,) if self.vlan else ""
        return "EthernetFrame(%s -> %s, type=0x%04x%s, %dB)" % (
            mac_to_str(self.src),
            mac_to_str(self.dst),
            self.ethertype,
            tag,
            self.size_bytes,
        )
