"""UDP header.

RoCEv2 encapsulates the InfiniBand transport in UDP so that commodity
switches can apply standard five-tuple ECMP hashing (paper section 2).  The
destination port is always 4791; the *source* port is chosen per queue pair,
which is what spreads QPs across ECMP paths.
"""

import struct

UDP_HEADER_BYTES = 8


class UdpHeader:
    """An 8-byte UDP header (checksum carried but not enforced, as is
    common for RoCEv2 which has its own ICRC)."""

    __slots__ = ("src_port", "dst_port", "length", "checksum")

    def __init__(self, src_port, dst_port, length=UDP_HEADER_BYTES, checksum=0):
        for name, port in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError("%s out of range: %r" % (name, port))
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length
        self.checksum = checksum

    @property
    def size_bytes(self):
        return UDP_HEADER_BYTES

    def pack(self):
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, self.checksum)

    @classmethod
    def unpack(cls, data):
        if len(data) < UDP_HEADER_BYTES:
            raise ValueError("UDP header too short: %d bytes" % len(data))
        src, dst, length, cksum = struct.unpack("!HHHH", data[:UDP_HEADER_BYTES])
        return cls(src_port=src, dst_port=dst, length=length, checksum=cksum)

    def __repr__(self):
        return "UdpHeader(%d -> %d, len=%d)" % (self.src_port, self.dst_port, self.length)
