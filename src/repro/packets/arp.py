"""ARP request/reply packets.

ARP matters to the reproduction because the PFC deadlock of section 4.2 is
triggered by the *disparate timeouts* of the switch's ARP table (4 hours,
refreshed by ARP packets through the switch CPU) and MAC address table
(5 minutes, refreshed in hardware by received traffic).  When a server dies,
its MAC-table entry expires long before its ARP entry, producing an
"incomplete" entry whose packets are flooded.
"""

import struct

ARP_BYTES = 28

OP_REQUEST = 1
OP_REPLY = 2


class ArpPacket:
    """An Ethernet/IPv4 ARP packet."""

    __slots__ = ("op", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(self, op, sender_mac, sender_ip, target_mac, target_ip):
        if op not in (OP_REQUEST, OP_REPLY):
            raise ValueError("ARP op must be request(1) or reply(2): %r" % (op,))
        self.op = op
        self.sender_mac = sender_mac
        self.sender_ip = sender_ip
        self.target_mac = target_mac
        self.target_ip = target_ip

    @classmethod
    def request(cls, sender_mac, sender_ip, target_ip):
        return cls(OP_REQUEST, sender_mac, sender_ip, 0, target_ip)

    @classmethod
    def reply(cls, sender_mac, sender_ip, target_mac, target_ip):
        return cls(OP_REPLY, sender_mac, sender_ip, target_mac, target_ip)

    @property
    def is_request(self):
        return self.op == OP_REQUEST

    @property
    def size_bytes(self):
        return ARP_BYTES

    def pack(self):
        return struct.pack(
            "!HHBBH6sI6sI",
            1,  # htype: Ethernet
            0x0800,  # ptype: IPv4
            6,
            4,
            self.op,
            self.sender_mac.to_bytes(6, "big"),
            self.sender_ip,
            self.target_mac.to_bytes(6, "big"),
            self.target_ip,
        )

    @classmethod
    def unpack(cls, data):
        htype, ptype, hlen, plen, op, smac, sip, tmac, tip = struct.unpack(
            "!HHBBH6sI6sI", data[:ARP_BYTES]
        )
        if (htype, ptype, hlen, plen) != (1, 0x0800, 6, 4):
            raise ValueError("unsupported ARP encoding")
        return cls(
            op=op,
            sender_mac=int.from_bytes(smac, "big"),
            sender_ip=sip,
            target_mac=int.from_bytes(tmac, "big"),
            target_ip=tip,
        )

    def __repr__(self):
        kind = "request" if self.is_request else "reply"
        return "ArpPacket(%s, sender_ip=%d, target_ip=%d)" % (kind, self.sender_ip, self.target_ip)
