"""The simulation-level packet envelope.

Every object travelling across a simulated link is a :class:`Packet`.  A
packet either carries a normal Ethernet frame (RoCEv2 data, TCP, ARP) or a
MAC control frame (PFC pause), plus simulation metadata: creation time, an
opaque flow label, and a monotonically increasing uid for tracing.

Priority classification is deliberately *not* baked into the packet: a
switch configured for VLAN-based PFC reads the 802.1Q PCP, a switch
configured for DSCP-based PFC reads the IP DSCP.  :func:`resolve_priority`
implements both policies, which lets the experiments of section 3 show the
same packet stream behaving differently under the two configurations.
"""

import enum
import itertools

from repro.packets.ethernet import (
    ETH_FCS_BYTES,
    ETH_HEADER_BYTES,
    ETH_WIRE_OVERHEAD_BYTES,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_MAC_CONTROL,
    VLAN_TAG_BYTES,
    mac_to_str,
)
from repro.packets.ip import IPPROTO_TCP, IPPROTO_UDP, IPV4_HEADER_BYTES
from repro.packets.rocev2 import AETH_BYTES, BTH_BYTES, ICRC_BYTES, ROCEV2_UDP_PORT
from repro.packets.tcp import TCP_HEADER_BYTES
from repro.packets.udp import UDP_HEADER_BYTES

_uid_counter = itertools.count()


class PriorityMode(enum.Enum):
    """How a device derives the PFC priority of a data packet."""

    VLAN = "vlan"  # 802.1Q PCP field (the original design, figure 3a)
    DSCP = "dscp"  # IP DSCP field (the paper's contribution, figure 3b)


class Packet:
    """One simulated frame.

    Exactly one of the layer stacks is populated:

    * PFC pause:  ``pause`` is a :class:`~repro.packets.pause.PfcPauseFrame`.
    * ARP:        ``arp`` is an :class:`~repro.packets.arp.ArpPacket`.
    * RoCEv2:     ``ip`` + ``udp`` + ``bth`` (+ optional ``aeth``).
    * TCP:        ``ip`` + ``tcp``.

    ``payload_bytes`` counts application payload only; ``size_bytes``
    derives the full buffered frame size from the populated layers.
    """

    __slots__ = (
        "uid",
        "dst_mac",
        "src_mac",
        "_vlan",
        "ip",
        "udp",
        "tcp",
        "bth",
        "aeth",
        "pause",
        "arp",
        "payload_bytes",
        "created_ns",
        "flow",
        "context",
        "_size",
        "_ftuple",
    )

    def __init__(
        self,
        dst_mac=0,
        src_mac=0,
        vlan=None,
        ip=None,
        udp=None,
        tcp=None,
        bth=None,
        aeth=None,
        pause=None,
        arp=None,
        payload_bytes=0,
        created_ns=0,
        flow=None,
        context=None,
    ):
        self.uid = next(_uid_counter)
        self.dst_mac = dst_mac
        self.src_mac = src_mac
        self._vlan = vlan
        self.ip = ip
        self.udp = udp
        self.tcp = tcp
        self.bth = bth
        self.aeth = aeth
        self.pause = pause
        self.arp = arp
        self.payload_bytes = payload_bytes
        self.created_ns = created_ns
        self.flow = flow
        # Free-form slot for transports to stash per-packet state (e.g. the
        # message a segment belongs to); never read by switches.
        self.context = context
        # Lazily computed caches.  A packet's layers are immutable after
        # construction except for dst_mac (MAC rewrite, size-irrelevant)
        # and vlan (tag strip -- the vlan setter invalidates the size).
        self._size = None
        self._ftuple = None

    @property
    def vlan(self):
        """The 802.1Q tag, or None.  Settable: switches strip the tag when
        forwarding out an untagged (access/server-facing) port."""
        return self._vlan

    @vlan.setter
    def vlan(self, tag):
        self._vlan = tag
        self._size = None

    # -- factories ----------------------------------------------------------

    @classmethod
    def rocev2(
        cls,
        dst_mac,
        src_mac,
        ip,
        udp,
        bth,
        aeth=None,
        payload_bytes=0,
        vlan=None,
        created_ns=0,
        flow=None,
        context=None,
    ):
        """A RoCEv2 data/ack packet (Ethernet/IPv4/UDP/BTH[/AETH])."""
        if udp.dst_port != ROCEV2_UDP_PORT:
            raise ValueError(
                "RoCEv2 requires UDP destination port %d, got %d"
                % (ROCEV2_UDP_PORT, udp.dst_port)
            )
        return cls(
            dst_mac=dst_mac,
            src_mac=src_mac,
            vlan=vlan,
            ip=ip,
            udp=udp,
            bth=bth,
            aeth=aeth,
            payload_bytes=payload_bytes,
            created_ns=created_ns,
            flow=flow,
            context=context,
        )

    @classmethod
    def tcp_segment(
        cls, dst_mac, src_mac, ip, tcp, payload_bytes=0, vlan=None, created_ns=0, flow=None, context=None
    ):
        """A TCP segment (Ethernet/IPv4/TCP)."""
        return cls(
            dst_mac=dst_mac,
            src_mac=src_mac,
            vlan=vlan,
            ip=ip,
            tcp=tcp,
            payload_bytes=payload_bytes,
            created_ns=created_ns,
            flow=flow,
            context=context,
        )

    @classmethod
    def pfc_pause(cls, dst_mac, src_mac, pause, created_ns=0):
        """A PFC pause frame.  Note: never VLAN-tagged (figure 3)."""
        return cls(dst_mac=dst_mac, src_mac=src_mac, pause=pause, created_ns=created_ns)

    @classmethod
    def arp_packet(cls, dst_mac, src_mac, arp, created_ns=0):
        """An ARP request/reply frame."""
        return cls(dst_mac=dst_mac, src_mac=src_mac, arp=arp, created_ns=created_ns)

    # -- classification -----------------------------------------------------

    @property
    def is_pause(self):
        return self.pause is not None

    @property
    def is_arp(self):
        return self.arp is not None

    @property
    def is_rocev2(self):
        return self.bth is not None

    @property
    def is_tcp(self):
        return self.tcp is not None

    @property
    def ethertype(self):
        if self.pause is not None:
            return ETHERTYPE_MAC_CONTROL
        if self.arp is not None:
            return ETHERTYPE_ARP
        return ETHERTYPE_IPV4

    @property
    def five_tuple(self):
        """(src_ip, dst_ip, protocol, src_port, dst_port) for ECMP hashing.

        Computed once per packet -- ECMP re-hashes it at every Clos tier.
        """
        ftuple = self._ftuple
        if ftuple is not None:
            return ftuple
        ip = self.ip
        if ip is None:
            return None
        if self.udp is not None:
            ftuple = (ip.src, ip.dst, IPPROTO_UDP, self.udp.src_port, self.udp.dst_port)
        elif self.tcp is not None:
            ftuple = (ip.src, ip.dst, IPPROTO_TCP, self.tcp.src_port, self.tcp.dst_port)
        else:
            ftuple = (ip.src, ip.dst, ip.protocol, 0, 0)
        self._ftuple = ftuple
        return ftuple

    @property
    def size_bytes(self):
        """Full buffered frame size derived from the populated layers.

        Computed once and cached -- every buffer admit, scheduler pick and
        link serialization reads it, several times per hop.  The cache is
        invalidated when (only) the VLAN tag changes.
        """
        size = self._size
        if size is not None:
            return size
        size = ETH_HEADER_BYTES + ETH_FCS_BYTES
        if self._vlan is not None:
            size += VLAN_TAG_BYTES
        if self.pause is not None:
            size += self.pause.size_bytes
        elif self.arp is not None:
            size += self.arp.size_bytes
        else:
            if self.ip is not None:
                size += IPV4_HEADER_BYTES
                if self.udp is not None:
                    size += UDP_HEADER_BYTES
                    if self.bth is not None:
                        size += BTH_BYTES + ICRC_BYTES
                        if self.aeth is not None:
                            size += AETH_BYTES
                elif self.tcp is not None:
                    size += TCP_HEADER_BYTES
            size += self.payload_bytes
        self._size = size
        return size

    @property
    def wire_bytes(self):
        """Frame size as clocked on the wire (adds preamble + SFD + IPG)."""
        return self.size_bytes + ETH_WIRE_OVERHEAD_BYTES

    def __repr__(self):
        if self.pause is not None:
            body = repr(self.pause)
        elif self.arp is not None:
            body = repr(self.arp)
        elif self.bth is not None:
            body = repr(self.bth)
        elif self.tcp is not None:
            body = repr(self.tcp)
        else:
            body = "raw"
        return "Packet(#%d, %s -> %s, %s, %dB)" % (
            self.uid,
            mac_to_str(self.src_mac),
            mac_to_str(self.dst_mac),
            body,
            self.size_bytes,
        )


def resolve_priority(packet, mode, dscp_to_priority=None, default_priority=0):
    """Derive the PFC priority of a data packet under a classification mode.

    * Under :attr:`PriorityMode.VLAN`, priority is the 802.1Q PCP; untagged
      packets fall back to ``default_priority``.  (This is why VLAN-based
      PFC forces trunk-mode ports -- an untagged packet cannot carry a
      priority.)
    * Under :attr:`PriorityMode.DSCP`, priority is looked up from the IP
      DSCP via ``dscp_to_priority`` (identity modulo 8 when omitted, the
      paper's "we simply map DSCP value i to PFC priority i").  Non-IP
      packets (e.g. ARP) fall back to ``default_priority``.

    Pause frames are MAC *control* frames: they are never classified or
    queued, and callers must handle them before calling this function.
    """
    if packet.is_pause:
        raise ValueError("pause frames are control frames and carry no data priority")
    if mode == PriorityMode.VLAN:
        if packet.vlan is not None:
            return packet.vlan.pcp
        return default_priority
    if mode == PriorityMode.DSCP:
        if packet.ip is not None:
            dscp = packet.ip.dscp
            if dscp_to_priority is not None:
                return dscp_to_priority.get(dscp, default_priority)
            return dscp % 8
        return default_priority
    raise ValueError("unknown priority mode: %r" % (mode,))


def compile_priority_resolver(mode, dscp_to_priority=None, default_priority=0):
    """Bake a classification policy into a fast ``fn(packet) -> priority``.

    Semantically identical to calling :func:`resolve_priority` with the
    same arguments, with the mode dispatch and table binding done once
    instead of per packet.  Devices on the forwarding hot path compile
    a resolver whenever their :class:`~repro.switch.pfc.PfcConfig`
    changes (configs are replaced, never mutated, so object identity is
    a sound cache key).

    Unlike :func:`resolve_priority`, the compiled function does *not*
    reject pause frames -- callers classify only data packets, having
    already branched on ``packet.is_pause``.
    """
    if mode == PriorityMode.VLAN:
        def classify(packet):
            vlan = packet._vlan
            return default_priority if vlan is None else vlan.pcp
    elif mode == PriorityMode.DSCP:
        if dscp_to_priority is None:
            def classify(packet):
                ip = packet.ip
                return default_priority if ip is None else ip.dscp % 8
        else:
            lookup = dscp_to_priority.get
            def classify(packet):
                ip = packet.ip
                return default_priority if ip is None else lookup(ip.dscp, default_priority)
    else:
        raise ValueError("unknown priority mode: %r" % (mode,))
    return classify
