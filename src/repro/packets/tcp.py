"""A minimal TCP header model for the baseline transport.

The paper's figure 6 compares RDMA against the production TCP stack.  The
reproduction's TCP baseline (:mod:`repro.tcp`) needs sequence/ack numbers,
the SYN/FIN/ACK flags and the ECE/CWR ECN bits; nothing more exotic.
"""

import struct

TCP_HEADER_BYTES = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_ECE = 0x40
FLAG_CWR = 0x80


class TcpHeader:
    """A 20-byte (no options) TCP header."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window")

    def __init__(self, src_port, dst_port, seq=0, ack=0, flags=FLAG_ACK, window=0xFFFF):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window

    @property
    def size_bytes(self):
        return TCP_HEADER_BYTES

    def has(self, flag):
        """True when ``flag`` (e.g. :data:`FLAG_SYN`) is set."""
        return bool(self.flags & flag)

    def pack(self):
        offset_flags = (5 << 12) | (self.flags & 0x1FF)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            0,  # checksum: not modelled
            0,  # urgent pointer
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < TCP_HEADER_BYTES:
            raise ValueError("TCP header too short: %d bytes" % len(data))
        sport, dport, seq, ack, offset_flags, window, _cksum, _urg = struct.unpack(
            "!HHIIHHHH", data[:TCP_HEADER_BYTES]
        )
        return cls(
            src_port=sport,
            dst_port=dport,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x1FF,
            window=window,
        )

    def __repr__(self):
        names = []
        for flag, name in (
            (FLAG_SYN, "SYN"),
            (FLAG_FIN, "FIN"),
            (FLAG_RST, "RST"),
            (FLAG_ACK, "ACK"),
            (FLAG_ECE, "ECE"),
            (FLAG_CWR, "CWR"),
        ):
            if self.flags & flag:
                names.append(name)
        return "TcpHeader(%d -> %d, seq=%d, ack=%d, %s)" % (
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            "|".join(names) or "none",
        )
