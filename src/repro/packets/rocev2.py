"""RoCEv2 transport headers: BTH, AETH and the DCQCN CNP.

RoCEv2 carries the InfiniBand Base Transport Header (BTH) inside
Ethernet/IPv4/UDP (paper section 2, figure 3).  The fields the reproduction
relies on:

* ``opcode``     -- distinguishes SEND/WRITE/READ segments, ACK, CNP.
* ``dest_qp``    -- 24-bit destination queue pair number.
* ``psn``        -- 24-bit packet sequence number; NAKs name the PSN to
  resume from, which is where go-back-0 vs go-back-N differ.

The AETH (ACK extended transport header) carries the ACK/NAK syndrome.
"""

import enum
import struct

ROCEV2_UDP_PORT = 4791

BTH_BYTES = 12
AETH_BYTES = 4
ICRC_BYTES = 4  # invariant CRC appended to every RoCEv2 packet

PSN_MASK = (1 << 24) - 1
QPN_MASK = (1 << 24) - 1


class BthOpcode(enum.IntEnum):
    """The subset of IB opcodes the reproduction uses (RC transport)."""

    SEND_FIRST = 0x00
    SEND_MIDDLE = 0x01
    SEND_LAST = 0x02
    SEND_ONLY = 0x04
    RDMA_WRITE_FIRST = 0x06
    RDMA_WRITE_MIDDLE = 0x07
    RDMA_WRITE_LAST = 0x08
    RDMA_WRITE_ONLY = 0x0A
    RDMA_READ_REQUEST = 0x0C
    RDMA_READ_RESPONSE_FIRST = 0x0D
    RDMA_READ_RESPONSE_MIDDLE = 0x0E
    RDMA_READ_RESPONSE_LAST = 0x0F
    RDMA_READ_RESPONSE_ONLY = 0x10
    ACKNOWLEDGE = 0x11
    CNP = 0x81  # DCQCN congestion notification packet

    @property
    def is_data(self):
        """True for opcodes that carry (or solicit) message payload."""
        return self not in (BthOpcode.ACKNOWLEDGE, BthOpcode.CNP)

    @property
    def is_read_response(self):
        return self in (
            BthOpcode.RDMA_READ_RESPONSE_FIRST,
            BthOpcode.RDMA_READ_RESPONSE_MIDDLE,
            BthOpcode.RDMA_READ_RESPONSE_LAST,
            BthOpcode.RDMA_READ_RESPONSE_ONLY,
        )

    @property
    def is_last_segment(self):
        """True when the opcode closes a message."""
        return self in (
            BthOpcode.SEND_LAST,
            BthOpcode.SEND_ONLY,
            BthOpcode.RDMA_WRITE_LAST,
            BthOpcode.RDMA_WRITE_ONLY,
            BthOpcode.RDMA_READ_RESPONSE_LAST,
            BthOpcode.RDMA_READ_RESPONSE_ONLY,
        )


class BaseTransportHeader:
    """A 12-byte IB BTH."""

    __slots__ = ("opcode", "solicited", "pad_count", "pkey", "dest_qp", "ack_req", "psn")

    def __init__(self, opcode, dest_qp, psn, ack_req=False, solicited=False, pad_count=0, pkey=0xFFFF):
        if not 0 <= dest_qp <= QPN_MASK:
            raise ValueError("QPN is 24 bits: %r" % (dest_qp,))
        if not 0 <= psn <= PSN_MASK:
            raise ValueError("PSN is 24 bits: %r" % (psn,))
        self.opcode = BthOpcode(opcode)
        self.dest_qp = dest_qp
        self.psn = psn
        self.ack_req = bool(ack_req)
        self.solicited = bool(solicited)
        self.pad_count = pad_count
        self.pkey = pkey

    @property
    def size_bytes(self):
        return BTH_BYTES

    def pack(self):
        flags = (int(self.solicited) << 7) | ((self.pad_count & 0b11) << 4)
        word2 = self.dest_qp  # high byte reserved
        word3 = (int(self.ack_req) << 31) | self.psn
        return struct.pack("!BBHII", int(self.opcode), flags, self.pkey, word2, word3)

    @classmethod
    def unpack(cls, data):
        if len(data) < BTH_BYTES:
            raise ValueError("BTH too short: %d bytes" % len(data))
        opcode, flags, pkey, word2, word3 = struct.unpack("!BBHII", data[:BTH_BYTES])
        return cls(
            opcode=opcode,
            dest_qp=word2 & QPN_MASK,
            psn=word3 & PSN_MASK,
            ack_req=bool(word3 >> 31),
            solicited=bool(flags >> 7),
            pad_count=(flags >> 4) & 0b11,
            pkey=pkey,
        )

    def __repr__(self):
        return "BTH(%s, qp=%d, psn=%d%s)" % (
            self.opcode.name,
            self.dest_qp,
            self.psn,
            ", ack_req" if self.ack_req else "",
        )


class AethSyndrome(enum.IntEnum):
    """ACK/NAK syndrome classes carried in the AETH high bits."""

    ACK = 0b000
    RNR_NAK = 0b001
    NAK = 0b011  # PSN sequence error: triggers the sender's recovery policy


class Aeth:
    """A 4-byte AETH: syndrome (8 bits) + MSN (24 bits)."""

    __slots__ = ("syndrome", "msn")

    def __init__(self, syndrome, msn=0):
        self.syndrome = AethSyndrome(syndrome)
        self.msn = msn & PSN_MASK

    @property
    def size_bytes(self):
        return AETH_BYTES

    @property
    def is_nak(self):
        return self.syndrome == AethSyndrome.NAK

    def pack(self):
        return struct.pack("!I", (int(self.syndrome) << 29) | self.msn)

    @classmethod
    def unpack(cls, data):
        (word,) = struct.unpack("!I", data[:AETH_BYTES])
        return cls(syndrome=word >> 29, msn=word & PSN_MASK)

    def __repr__(self):
        return "Aeth(%s, msn=%d)" % (self.syndrome.name, self.msn)


def psn_add(psn, delta):
    """24-bit wrapping PSN arithmetic."""
    return (psn + delta) & PSN_MASK


def psn_distance(newer, older):
    """Forward distance from ``older`` to ``newer`` in 24-bit PSN space."""
    return (newer - older) & PSN_MASK
