"""PFC pause frames (IEEE 802.1Qbb) and the legacy 802.3x global pause.

A PFC pause frame is a MAC control frame (ethertype 0x8808, opcode 0x0101)
carrying a class-enable vector naming which of the eight priorities to
pause, and one 16-bit pause duration per priority measured in *quanta* of
512 bit-times.  A pause with zero quanta is the XON/resume signal.

As the paper stresses (figure 3), the pause frame itself is **untagged** --
it has no VLAN tag and no IP header -- which is exactly why priority can be
moved from the VLAN tag to DSCP without touching PFC itself.
"""

import struct

from repro.sim.units import SEC

PFC_PAUSE_OPCODE = 0x0101
GLOBAL_PAUSE_OPCODE = 0x0001

# A pause quantum is 512 bit-times at the port speed (802.1Qbb).
PAUSE_QUANTUM_BITS = 512
MAX_QUANTA = 0xFFFF

N_PRIORITIES = 8

# Control frame body: opcode(2) + class-enable vector(2) + 8 * quanta(2),
# padded to the 46-byte Ethernet minimum payload.
PFC_BODY_BYTES = 2 + 2 + 2 * N_PRIORITIES
PFC_PAD_BYTES = 46 - PFC_BODY_BYTES


def pause_quanta_to_ns(quanta, link_rate_bps):
    """Duration (ns) that ``quanta`` pause quanta represent at a link rate."""
    bits = quanta * PAUSE_QUANTUM_BITS
    return bits * SEC // link_rate_bps


def ns_to_pause_quanta(duration_ns, link_rate_bps):
    """Quanta (clamped to 16 bits) covering ``duration_ns`` at a link rate."""
    bits = duration_ns * link_rate_bps // SEC
    quanta = -(-bits // PAUSE_QUANTUM_BITS)
    return min(int(quanta), MAX_QUANTA)


class PfcPauseFrame:
    """The body of a per-priority pause frame.

    ``quanta`` is a mapping (or 8-list) of priority -> pause duration in
    quanta.  Priorities listed with zero quanta are *resumed* (XON);
    priorities absent from the class-enable vector are untouched.
    """

    __slots__ = ("quanta",)

    def __init__(self, quanta):
        if isinstance(quanta, dict):
            table = [None] * N_PRIORITIES
            for priority, value in quanta.items():
                if not 0 <= priority < N_PRIORITIES:
                    raise ValueError("priority out of range: %r" % (priority,))
                table[priority] = int(value)
        else:
            table = [None if q is None else int(q) for q in quanta]
            if len(table) != N_PRIORITIES:
                raise ValueError("need exactly %d per-priority entries" % N_PRIORITIES)
        for value in table:
            if value is not None and not 0 <= value <= MAX_QUANTA:
                raise ValueError("quanta is 16 bits: %r" % (value,))
        self.quanta = table

    @classmethod
    def pause(cls, priorities, quanta=MAX_QUANTA):
        """A frame pausing ``priorities`` for ``quanta`` quanta each."""
        return cls({priority: quanta for priority in priorities})

    @classmethod
    def resume(cls, priorities):
        """A zero-duration frame resuming ``priorities`` (XON)."""
        return cls({priority: 0 for priority in priorities})

    @property
    def class_enable_vector(self):
        """Bitmap of priorities this frame addresses."""
        vector = 0
        for priority, value in enumerate(self.quanta):
            if value is not None:
                vector |= 1 << priority
        return vector

    @property
    def paused_priorities(self):
        """Priorities this frame pauses (non-zero quanta)."""
        return [p for p, q in enumerate(self.quanta) if q]

    @property
    def resumed_priorities(self):
        """Priorities this frame resumes (zero quanta)."""
        return [p for p, q in enumerate(self.quanta) if q == 0]

    @property
    def size_bytes(self):
        return PFC_BODY_BYTES + PFC_PAD_BYTES

    def pack(self):
        parts = [struct.pack("!HH", PFC_PAUSE_OPCODE, self.class_enable_vector)]
        for value in self.quanta:
            parts.append(struct.pack("!H", value or 0))
        parts.append(b"\x00" * PFC_PAD_BYTES)
        return b"".join(parts)

    @classmethod
    def unpack(cls, data):
        opcode, vector = struct.unpack("!HH", data[:4])
        if opcode != PFC_PAUSE_OPCODE:
            raise ValueError("not a PFC pause frame: opcode=0x%04x" % opcode)
        quanta = {}
        for priority in range(N_PRIORITIES):
            (value,) = struct.unpack_from("!H", data, 4 + 2 * priority)
            if vector & (1 << priority):
                quanta[priority] = value
        return cls(quanta)

    def __repr__(self):
        parts = []
        for priority, value in enumerate(self.quanta):
            if value is None:
                continue
            parts.append("%d:%s" % (priority, "XON" if value == 0 else value))
        return "PfcPauseFrame(%s)" % ", ".join(parts)
