"""Analysis helpers: percentiles, CDFs, time series."""

from repro.analysis.percentiles import Cdf, percentile, summarize_latencies_us

__all__ = ["percentile", "Cdf", "summarize_latencies_us"]
