"""Percentiles and CDFs for latency analysis.

The paper reports tail percentiles (p99, p99.9) of Pingmesh latency;
these helpers compute them with linear interpolation (matching numpy's
default) without requiring numpy at runtime.
"""

from repro.sim.units import US


def percentile(samples, q):
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be within [0, 100]: %r" % (q,))
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


class Cdf:
    """An empirical CDF over a sample set."""

    def __init__(self, samples):
        if not samples:
            raise ValueError("no samples")
        self._sorted = sorted(samples)

    def quantile(self, q):
        """Value at cumulative probability ``q`` in [0, 1]."""
        return percentile(self._sorted, q * 100)

    def fraction_below(self, value):
        """P(X <= value)."""
        import bisect

        return bisect.bisect_right(self._sorted, value) / len(self._sorted)

    @property
    def median(self):
        return self.quantile(0.5)

    @property
    def min(self):
        return self._sorted[0]

    @property
    def max(self):
        return self._sorted[-1]

    def points(self, n=100):
        """``n`` evenly spaced (value, cumulative_fraction) pairs for
        plotting."""
        total = len(self._sorted)
        step = max(1, total // n)
        return [
            (self._sorted[i], (i + 1) / total) for i in range(0, total, step)
        ]

    def __len__(self):
        return len(self._sorted)


def summarize_latencies_us(samples_ns, percentiles=(50, 99, 99.9)):
    """A dict of microsecond percentiles from nanosecond samples."""
    return {
        ("p%g" % q): percentile(samples_ns, q) / US for q in percentiles
    }
