"""Loss-recovery policies for the RDMA requester.

Section 4.1: the NIC vendor's transport originally recovered from a NAK
by restarting *the whole message from packet 0* ("go-back-0"), because a
lossless fabric was assumed and stateless recovery is cheapest in NIC
silicon.  With a deterministic 1/256 drop the paper measured **zero**
application goodput at full line rate -- a transport livelock.  The fix,
negotiated with the vendor, was go-back-N: resume from the first dropped
packet.  "We recommend that the RDMA transport should implement
go-back-N and should not implement go-back-0."
"""


class RecoveryPolicy:
    """Strategy interface: where should transmission resume after a loss
    signalled at ``nak_psn`` (NAK) or ``una_psn`` (timeout)?"""

    name = "abstract"

    #: Whether the matching responder firmware *resets message reassembly*
    #: when it sees a first-of-message packet again.  The stateless
    #: go-back-0 firmware restarts the whole message, so its responder
    #: cannot bank partial progress across passes -- which is precisely
    #: why a drop every 256 packets starves a 4096-packet message
    #: forever.  Go-back-N responders keep normal cumulative semantics.
    responder_restarts = False

    def resume_psn(self, signal_psn, message_start_psn):
        """PSN to rewind the send pointer to.

        ``signal_psn``
            First missing PSN (from the NAK's expected-PSN, or the lowest
            unacknowledged PSN on a timeout).
        ``message_start_psn``
            First PSN of the message containing ``signal_psn``.
        """
        raise NotImplementedError

    def __repr__(self):
        return "%s()" % type(self).__name__


class GoBack0(RecoveryPolicy):
    """Restart the in-flight message from its first packet.

    The sender keeps *no* retransmission state beyond the message itself
    -- which is exactly why the vendor chose it, and exactly why a
    deterministic drop every 256 packets starves a 4000-packet message
    forever.
    """

    name = "go-back-0"
    responder_restarts = True

    def resume_psn(self, signal_psn, message_start_psn):
        return message_start_psn


class GoBackN(RecoveryPolicy):
    """Resume from the first dropped packet.

    "Go-back-N is not ideal as up to RTT x C bytes ... can be wasted for
    a single packet drop.  But go-back-N is almost as simple as go-back-0,
    and it avoids livelock."
    """

    name = "go-back-n"

    def resume_psn(self, signal_psn, message_start_psn):
        return signal_psn
