"""The user-facing verbs API.

Mirrors the small slice of the verbs interface the paper's services use:
connect a reliable-connected QP pair between two hosts, then post SEND,
WRITE or READ work requests.

    qp_a, qp_b = connect_qp_pair(sim, host_a, host_b, rng)
    post_send(qp_a, 4 * MB, on_complete=record)
    post_read(qp_b, 4 * MB)   # B reads from A

Each QP picks a random UDP source port from the ephemeral range, which
is what spreads QPs over ECMP paths (section 2).
"""

from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.qp import QpConfig, WorkRequest

EPHEMERAL_PORT_LO = 49152
EPHEMERAL_PORT_HI = 65535


def connect_qp_pair(host_a, host_b, rng, config_a=None, config_b=None):
    """Create and connect a QP on each host; returns ``(qp_a, qp_b)``.

    ``rng`` draws the per-QP random UDP source ports.  ``config_a`` /
    ``config_b`` default to a fresh :class:`QpConfig` each.
    """
    if host_a is host_b:
        raise ValueError("loopback QPs are not modelled")
    engine_a = _engine_of(host_a)
    engine_b = _engine_of(host_b)
    qp_a = engine_a.create_qp(
        config_a or QpConfig(), rng.randint(EPHEMERAL_PORT_LO, EPHEMERAL_PORT_HI)
    )
    qp_b = engine_b.create_qp(
        config_b or QpConfig(), rng.randint(EPHEMERAL_PORT_LO, EPHEMERAL_PORT_HI)
    )
    qp_a.remote_qpn = qp_b.qpn
    qp_b.remote_qpn = qp_a.qpn
    qp_a.remote_ip = host_b.ip
    qp_b.remote_ip = host_a.ip
    qp_a.remote_mac = host_b.mac
    qp_b.remote_mac = host_a.mac
    return qp_a, qp_b


def _engine_of(host):
    engine = getattr(host, "rdma", None)
    if engine is None:
        from repro.rdma.engine import RdmaEngine

        engine = RdmaEngine(host)
        host.rdma = engine
    return engine


def _post(qp, kind, size_bytes, on_complete, cq):
    if cq is not None:
        user_callback = on_complete

        def on_complete(wr, completed_ns):
            cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    kind=wr.kind,
                    size_bytes=wr.size_bytes,
                    completed_ns=completed_ns,
                )
            )
            if user_callback is not None:
                user_callback(wr, completed_ns)

    return qp.post(WorkRequest(kind, size_bytes, on_complete))


def post_send(qp, size_bytes, on_complete=None, cq=None):
    """Post an RDMA SEND of ``size_bytes`` to the peer.

    Completion is signalled via ``on_complete(wr, t_ns)`` and/or a
    :class:`~repro.rdma.cq.CompletionQueue` entry when ``cq`` is given.
    """
    return _post(qp, "send", size_bytes, on_complete, cq)


def post_write(qp, size_bytes, on_complete=None, cq=None):
    """Post an RDMA WRITE of ``size_bytes`` into the peer's memory."""
    return _post(qp, "write", size_bytes, on_complete, cq)


def post_read(qp, size_bytes, on_complete=None, cq=None):
    """Post an RDMA READ of ``size_bytes`` from the peer's memory.

    Completion fires when the full response stream has arrived."""
    return _post(qp, "read", size_bytes, on_complete, cq)


def post_recv(qp, count=1):
    """Post ``count`` receive work requests on ``qp``.

    Only meaningful with ``QpConfig(require_posted_receives=True)``:
    each incoming SEND message consumes one; with none available the
    responder answers RNR NAK and the sender retries after its backoff.
    """
    if count <= 0:
        raise ValueError("post at least one receive WQE")
    qp.recv_credits += count
    return qp.recv_credits
