"""Per-host RDMA transport engine.

Owns the host's queue pairs, dispatches incoming RoCEv2 packets to them
and exposes aggregate statistics (application goodput, NAK counts) that
the experiments read.
"""


class RdmaEngine:
    """The RDMA transport instance on one host."""

    def __init__(self, host, qpn_base=None):
        self.host = host
        self.sim = host.sim
        self._qps = {}
        # QPNs only need to be unique per host (the wire carries the
        # destination QPN); offsetting by IP keeps debug output readable.
        self._next_qpn = (host.ip & 0xFF) << 12 if qpn_base is None else qpn_base
        self.unknown_qp_drops = 0
        host.install_handler("rocev2", self._on_packet)

    def create_qp(self, config, src_udp_port):
        """Allocate a queue pair (use verbs.connect_qp_pair to wire two)."""
        from repro.rdma.qp import QueuePair

        qpn = self._next_qpn
        self._next_qpn += 1
        qp = QueuePair(self, qpn, config, src_udp_port)
        self._qps[qpn] = qp
        self.host.nic.register_source(qp)
        return qp

    def destroy_qp(self, qp):
        self._qps.pop(qp.qpn, None)
        self.host.nic.unregister_source(qp)

    def qp(self, qpn):
        return self._qps.get(qpn)

    @property
    def qps(self):
        return list(self._qps.values())

    def _on_packet(self, packet):
        qp = self._qps.get(packet.bth.dest_qp)
        if qp is None:
            self.unknown_qp_drops += 1
            return
        qp.on_network_packet(packet)

    # -- aggregate statistics ---------------------------------------------------

    def total_bytes_completed(self):
        """Application-level goodput numerator across all QPs."""
        return sum(qp.stats.bytes_completed for qp in self._qps.values())

    def total_messages_completed(self):
        return sum(qp.stats.messages_completed for qp in self._qps.values())

    def total_naks(self):
        return sum(qp.stats.naks_received for qp in self._qps.values())

    def total_data_packets_sent(self):
        return sum(qp.stats.data_packets_sent for qp in self._qps.values())
