"""The RoCEv2 RDMA transport.

* :mod:`~repro.rdma.qp` -- reliable-connected queue pairs: segmentation
  into MTU-sized BTH packets, PSN accounting, ACK/NAK generation and the
  requester's retransmission machinery.
* :mod:`~repro.rdma.recovery` -- the pluggable loss-recovery policy:
  **go-back-0** (the vendor's original firmware, which livelocks under a
  deterministic 1/256 drop -- section 4.1) and **go-back-N** (the fix the
  paper deployed).
* :mod:`~repro.rdma.engine` -- per-host transport engine: packet
  dispatch, the DCQCN notification point (CNP generation), verbs-level
  completions.
* :mod:`~repro.rdma.verbs` -- the user-facing API: connect a QP pair,
  post SEND / WRITE / READ work requests.
"""

from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.engine import RdmaEngine
from repro.rdma.qp import QpConfig, QueuePair, TrafficClass, WorkRequest
from repro.rdma.recovery import GoBack0, GoBackN, RecoveryPolicy
from repro.rdma.verbs import (
    connect_qp_pair,
    post_read,
    post_recv,
    post_send,
    post_write,
)

__all__ = [
    "RdmaEngine",
    "QueuePair",
    "QpConfig",
    "TrafficClass",
    "WorkRequest",
    "RecoveryPolicy",
    "GoBack0",
    "GoBackN",
    "connect_qp_pair",
    "post_send",
    "post_write",
    "post_read",
    "post_recv",
    "CompletionQueue",
    "WorkCompletion",
]
