"""Reliable-connected queue pairs.

A :class:`QueuePair` is one end of an RC connection.  It is both:

* a **requester**: it segments posted work requests (SEND / WRITE /
  READ) into MTU-sized BTH packets with consecutive PSNs, paces them at
  its current rate (DCQCN's reaction point adjusts this), and recovers
  from NAKs/timeouts via its :class:`~repro.rdma.recovery.RecoveryPolicy`;
* a **responder**: it tracks the expected PSN, delivers in-order data,
  generates coalesced ACKs, answers READ requests with a response stream,
  and NAKs the first out-of-sequence packet of a gap (suppressing
  duplicates until the gap heals -- standard IB behaviour).

Simulator conveniences, documented deviations from the IB spec:

* PSNs are unwrapped integers internally (the BTH still carries the low
  24 bits); experiments never push one QP past 2^24 *distinct* PSNs but
  livelock reruns the same PSN range indefinitely, which unwrapped
  arithmetic keeps unambiguous.
* The AETH's MSN field carries the cumulative acked PSN instead of a
  message sequence number (the paper's NICs coalesce ACKs similarly).
"""

from repro.packets.ethernet import VlanTag
from repro.packets.ip import ECN_ECT0, ECN_NOT_ECT, IPV4_HEADER_BYTES, Ipv4Header
from repro.packets.packet import Packet
from repro.packets.rocev2 import (
    AETH_BYTES,
    BTH_BYTES,
    ICRC_BYTES,
    PSN_MASK,
    ROCEV2_UDP_PORT,
    Aeth,
    AethSyndrome,
    BaseTransportHeader,
    BthOpcode,
)
from repro.packets.udp import UDP_HEADER_BYTES, UdpHeader
from repro.rdma.recovery import GoBackN
from repro.sim.timer import Timer
from repro.sim.units import SEC, US
from repro.telemetry.hooks import HUB as _TELEMETRY
from repro.tracing.hooks import HUB as _TRACE


class TrafficClass:
    """How a QP's packets are coloured: DSCP, PFC priority, optional VLAN.

    Under DSCP-based PFC only ``dscp`` matters (and ``priority`` must be
    what the fabric maps that DSCP to).  Under VLAN-based PFC the packets
    also need an 802.1Q tag carrying ``priority`` as the PCP -- with a
    VLAN ID along for the ride, which is the section 3 problem.
    """

    def __init__(self, dscp=3, priority=3, vlan_id=None):
        self.dscp = dscp
        self.priority = priority
        self.vlan_id = vlan_id

    def vlan_tag(self):
        if self.vlan_id is None:
            return None
        return VlanTag(pcp=self.priority, vid=self.vlan_id)


class QpConfig:
    """Queue pair tunables."""

    def __init__(
        self,
        mtu_payload=1024,
        traffic_class=None,
        window_packets=512,
        ack_coalesce=16,
        rto_ns=500 * US,
        recovery=None,
        ecn_capable=True,
        cnp_interval_ns=50 * US,
        cnp_dscp=48,
        cnp_priority=6,
        require_posted_receives=False,
        rnr_retry_delay_ns=100 * US,
    ):
        if mtu_payload <= 0:
            raise ValueError("mtu_payload must be positive")
        self.mtu_payload = mtu_payload
        self.traffic_class = traffic_class or TrafficClass()
        self.window_packets = window_packets
        self.ack_coalesce = ack_coalesce
        self.rto_ns = rto_ns
        self.recovery = recovery or GoBackN()
        self.ecn_capable = ecn_capable
        self.cnp_interval_ns = cnp_interval_ns
        self.cnp_dscp = cnp_dscp
        self.cnp_priority = cnp_priority
        # Verbs receive-queue semantics: an incoming SEND consumes a
        # posted receive WQE; with none available the responder returns
        # RNR NAK and the requester retries after a backoff.  Off by
        # default (most experiments model pre-posted rings).
        self.require_posted_receives = require_posted_receives
        self.rnr_retry_delay_ns = rnr_retry_delay_ns


class WorkRequest:
    """One verbs-level operation posted to a QP's send queue."""

    _next_id = 0

    def __init__(self, kind, size_bytes, on_complete=None):
        if kind not in ("send", "write", "read"):
            raise ValueError("unknown work request kind: %r" % (kind,))
        if size_bytes <= 0:
            raise ValueError("work requests carry at least one byte")
        self.kind = kind
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.wr_id = WorkRequest._next_id
        WorkRequest._next_id += 1
        self.posted_ns = None
        self.completed_ns = None

    @property
    def completed(self):
        return self.completed_ns is not None

    def __repr__(self):
        return "WorkRequest(#%d, %s, %dB%s)" % (
            self.wr_id,
            self.kind,
            self.size_bytes,
            ", done" if self.completed else "",
        )


class _Message:
    """A segmented unit on the send side: a SEND/WRITE payload, a READ
    request (one packet) or a READ response stream."""

    __slots__ = ("kind", "wr", "start_psn", "n_packets", "payload_total", "read_id")

    DATA = "data"
    READ_REQUEST = "read_request"
    READ_RESPONSE = "read_response"

    def __init__(self, kind, wr, start_psn, n_packets, payload_total, read_id=None):
        self.kind = kind
        self.wr = wr
        self.start_psn = start_psn
        self.n_packets = n_packets
        self.payload_total = payload_total
        self.read_id = read_id

    @property
    def end_psn(self):
        return self.start_psn + self.n_packets - 1


class _PacketCtx:
    """Out-of-band per-packet context (unwrapped PSN etc.)."""

    __slots__ = (
        "psn",
        "kind",
        "is_msg_first",
        "is_msg_last",
        "read_id",
        "read_size",
        "ack_psn",
        "nak_psn",
    )

    def __init__(
        self,
        psn=None,
        kind=None,
        is_msg_first=False,
        is_msg_last=False,
        read_id=None,
        read_size=None,
        ack_psn=None,
        nak_psn=None,
    ):
        self.psn = psn
        self.kind = kind
        self.is_msg_first = is_msg_first
        self.is_msg_last = is_msg_last
        self.read_id = read_id
        self.read_size = read_size
        self.ack_psn = ack_psn
        self.nak_psn = nak_psn


class QpStats:
    """Per-QP transport counters."""

    def __init__(self):
        self.data_packets_sent = 0
        self.retransmitted_packets = 0
        self.bytes_completed = 0
        self.messages_completed = 0
        self.acks_sent = 0
        self.naks_sent = 0
        self.naks_received = 0
        self.timeouts = 0
        self.cnps_sent = 0
        self.cnps_received = 0
        self.duplicates_received = 0
        self.out_of_order_discarded = 0
        self.rnr_naks_sent = 0
        self.rnr_naks_received = 0
        self.stale_naks_discarded = 0


_OPCODES = {
    ("send", "only"): BthOpcode.SEND_ONLY,
    ("send", "first"): BthOpcode.SEND_FIRST,
    ("send", "middle"): BthOpcode.SEND_MIDDLE,
    ("send", "last"): BthOpcode.SEND_LAST,
    ("write", "only"): BthOpcode.RDMA_WRITE_ONLY,
    ("write", "first"): BthOpcode.RDMA_WRITE_FIRST,
    ("write", "middle"): BthOpcode.RDMA_WRITE_MIDDLE,
    ("write", "last"): BthOpcode.RDMA_WRITE_LAST,
    ("read_response", "only"): BthOpcode.RDMA_READ_RESPONSE_ONLY,
    ("read_response", "first"): BthOpcode.RDMA_READ_RESPONSE_FIRST,
    ("read_response", "middle"): BthOpcode.RDMA_READ_RESPONSE_MIDDLE,
    ("read_response", "last"): BthOpcode.RDMA_READ_RESPONSE_LAST,
}


class QueuePair:
    """One end of an RC connection.  Create pairs with
    :func:`repro.rdma.verbs.connect_qp_pair`."""

    def __init__(self, engine, qpn, config, src_udp_port):
        self.engine = engine
        self.host = engine.host
        self.sim = engine.sim
        self.qpn = qpn
        self.config = config
        self.src_udp_port = src_udp_port
        self.stats = QpStats()
        # Peer identity, filled in by verbs.connect_qp_pair().
        self.remote_qpn = None
        self.remote_ip = None
        self.remote_mac = None
        # Requester state.
        self.send_ptr = 0  # next PSN to put on the wire
        self.una = 0  # lowest unacknowledged PSN
        self.high_sent = 0  # PSNs below this have been sent at least once
        self._total_end = 0  # next unused PSN (end of enqueued messages)
        self._messages = []
        self._next_read_id = 0
        self._pending_reads = {}
        self._rto = Timer(self.sim, self._on_timeout, name="qp%d.rto" % qpn)
        self._next_allowed_ns = 0
        self.rate_bps = None  # None -> line rate; DCQCN RP overrides
        self.rp = None  # DCQCN reaction point, attached by verbs
        # Responder state.
        self.epsn = 0
        self._in_gap = False
        self._ack_backlog = 0
        self._last_cnp_ns = None
        # Control packets (ACK/NAK/CNP) ready to transmit.
        self._ctrl_queue = []
        # Upcall for completed incoming messages: fn(qp, kind, size_bytes).
        self.on_message = None
        # RTT probing (for RTT-based congestion control a la TIMELY):
        # send times of ack-requesting packets, sampled when acked.
        self._rtt_probes = {}
        self.on_rtt_sample = None
        # Receive queue credits (verbs post_recv); only consulted when
        # config.require_posted_receives is set.
        self.recv_credits = 0

    # ----------------------------------------------------------------- audit

    def audit_state(self):
        """Published transport state for the runtime invariant auditors.

        ``una``/``epsn`` only promise monotonicity when the recovery
        policy never restarts messages (``responder_restarts`` False):
        go-back-0 legitimately rewinds both on every loss, which is the
        section 4.1 livelock itself, not an implementation bug.
        """
        return {
            "una": self.una,
            "send_ptr": self.send_ptr,
            "high_sent": self.high_sent,
            "total_end": self._total_end,
            "epsn": self.epsn,
            "bytes_completed": self.stats.bytes_completed,
            "messages_completed": self.stats.messages_completed,
            "data_packets_sent": self.stats.data_packets_sent,
            "responder_restarts": self.config.recovery.responder_restarts,
        }

    # ------------------------------------------------------------------ post

    def post(self, wr):
        """Post a work request to the send queue."""
        wr.posted_ns = self.sim.now
        if wr.kind == "read":
            read_id = self._next_read_id
            self._next_read_id += 1
            self._pending_reads[read_id] = wr
            message = _Message(
                _Message.READ_REQUEST, wr, self._total_end, 1, 0, read_id=read_id
            )
        else:
            n_packets = -(-wr.size_bytes // self.config.mtu_payload)
            message = _Message(
                _Message.DATA, wr, self._total_end, n_packets, wr.size_bytes
            )
        self._enqueue_message(message)
        if _TRACE.enabled:
            _TRACE.session.on_post(self, wr, message)
        self.host.nic.notify_tx_ready()
        return wr

    def _enqueue_message(self, message):
        self._messages.append(message)
        self._total_end = message.end_psn + 1

    @property
    def outstanding_packets(self):
        return self.send_ptr - self.una

    @property
    def backlog_packets(self):
        """Packets enqueued but not yet (re)transmitted."""
        return self._total_end - self.send_ptr

    # ----------------------------------------------------------- tx source API

    def next_ready_ns(self):
        """NIC scheduler probe: when can this QP transmit next?"""
        if self._ctrl_queue:
            return 0
        if self._can_send_data():
            return self._next_allowed_ns
        return None

    def _can_send_data(self):
        if self.send_ptr >= self._total_end:
            return False
        return self.outstanding_packets < self.config.window_packets

    def pull(self):
        """NIC scheduler: take the next packet.  Returns (packet, priority)."""
        if self._ctrl_queue:
            packet, priority = self._ctrl_queue.pop(0)
            return packet, priority
        if not self._can_send_data():
            return None, 0
        packet = self._build_data_packet(self.send_ptr)
        if _TRACE.enabled:
            _TRACE.session.on_data_tx(
                self, packet, self.send_ptr, self.send_ptr < self.high_sent
            )
        if self.send_ptr < self.high_sent:
            self.stats.retransmitted_packets += 1
            # A retransmitted probe would alias queueing with recovery.
            self._rtt_probes.pop(self.send_ptr, None)
        else:
            self.high_sent = self.send_ptr + 1
            if self.on_rtt_sample is not None and packet.bth.ack_req:
                self._rtt_probes[self.send_ptr] = self.sim.now
        self.send_ptr += 1
        self.stats.data_packets_sent += 1
        self._pace(packet)
        if self.rp is not None:
            self.rp.on_bytes_sent(packet.wire_bytes)
        if not self._rto.armed:
            self._rto.start(self.config.rto_ns)
        return packet, self.config.traffic_class.priority

    def _pace(self, packet):
        rate = self.effective_rate_bps()
        now = self.sim.now
        if rate is None:
            self._next_allowed_ns = now
            return
        gap_ns = packet.wire_bytes * 8 * SEC // max(1, int(rate))
        base = max(now, self._next_allowed_ns)
        self._next_allowed_ns = base + gap_ns

    def effective_rate_bps(self):
        """The pacing rate: DCQCN's RC if attached, else the static rate,
        else None (line rate -- NIC port is the only limiter)."""
        if self.rp is not None:
            return self.rp.rate_bps
        return self.rate_bps

    # ------------------------------------------------------------ packet build

    def _message_for(self, psn):
        for message in self._messages:
            if message.start_psn <= psn <= message.end_psn:
                return message
        raise LookupError("PSN %d not in any active message on qp%d" % (psn, self.qpn))

    def _build_data_packet(self, psn):
        message = self._message_for(psn)
        index = psn - message.start_psn
        if message.kind == _Message.READ_REQUEST:
            opcode = BthOpcode.RDMA_READ_REQUEST
            payload = 0
            is_first = True
            is_last = True
        else:
            payload = min(
                self.config.mtu_payload,
                message.payload_total - index * self.config.mtu_payload,
            )
            if message.n_packets == 1:
                position = "only"
            elif index == 0:
                position = "first"
            elif index == message.n_packets - 1:
                position = "last"
            else:
                position = "middle"
            kind = "send" if message.kind == _Message.DATA and message.wr is not None and message.wr.kind == "send" else None
            if message.kind == _Message.READ_RESPONSE:
                opcode = _OPCODES[("read_response", position)]
            elif kind == "send":
                opcode = _OPCODES[("send", position)]
            else:
                opcode = _OPCODES[("write", position)]
            is_first = position in ("only", "first")
            is_last = position in ("only", "last")
        tc = self.config.traffic_class
        total_length = (
            IPV4_HEADER_BYTES + UDP_HEADER_BYTES + BTH_BYTES + payload + ICRC_BYTES
        )
        ip = Ipv4Header(
            src=self.host.ip,
            dst=self.remote_ip,
            dscp=tc.dscp,
            ecn=ECN_ECT0 if self.config.ecn_capable else ECN_NOT_ECT,
            total_length=total_length,
            identification=self.host.nic.next_ip_id(),
        )
        udp = UdpHeader(
            src_port=self.src_udp_port,
            dst_port=ROCEV2_UDP_PORT,
            length=UDP_HEADER_BYTES + BTH_BYTES + payload + ICRC_BYTES,
        )
        bth = BaseTransportHeader(
            opcode=opcode, dest_qp=self.remote_qpn, psn=psn & PSN_MASK, ack_req=is_last
        )
        ctx = _PacketCtx(
            psn=psn,
            kind=message.kind,
            is_msg_first=is_first,
            is_msg_last=is_last,
            read_id=message.read_id,
            read_size=message.wr.size_bytes if message.kind == _Message.READ_REQUEST else None,
        )
        return Packet.rocev2(
            dst_mac=self.remote_mac,
            src_mac=self.host.mac,
            ip=ip,
            udp=udp,
            bth=bth,
            payload_bytes=payload,
            vlan=tc.vlan_tag(),
            created_ns=self.sim.now,
            flow=(self.host.ip, self.qpn),
            context=ctx,
        )

    def _build_control(self, opcode, aeth, ctx, dscp=None, priority=None):
        tc = self.config.traffic_class
        dscp = tc.dscp if dscp is None else dscp
        extra = AETH_BYTES if aeth is not None else 0
        ip = Ipv4Header(
            src=self.host.ip,
            dst=self.remote_ip,
            dscp=dscp,
            ecn=ECN_NOT_ECT,
            total_length=IPV4_HEADER_BYTES + UDP_HEADER_BYTES + BTH_BYTES + extra + ICRC_BYTES,
            identification=self.host.nic.next_ip_id(),
        )
        udp = UdpHeader(src_port=self.src_udp_port, dst_port=ROCEV2_UDP_PORT)
        bth = BaseTransportHeader(opcode=opcode, dest_qp=self.remote_qpn, psn=self.epsn & PSN_MASK)
        packet = Packet.rocev2(
            dst_mac=self.remote_mac,
            src_mac=self.host.mac,
            ip=ip,
            udp=udp,
            bth=bth,
            aeth=aeth,
            vlan=tc.vlan_tag(),
            created_ns=self.sim.now,
            flow=(self.host.ip, self.qpn),
            context=ctx,
        )
        return packet, tc.priority if priority is None else priority

    def _queue_ctrl(self, packet, priority):
        if _TRACE.enabled:
            _TRACE.session.on_ctrl_created(self, packet)
        self._ctrl_queue.append((packet, priority))
        self.host.nic.notify_tx_ready()

    # -------------------------------------------------------------- rx dispatch

    def on_network_packet(self, packet):
        """Engine upcall for any packet addressed to this QP."""
        opcode = packet.bth.opcode
        if opcode == BthOpcode.CNP:
            self.stats.cnps_received += 1
            if self.rp is not None:
                self.rp.on_cnp()
            return
        if opcode == BthOpcode.ACKNOWLEDGE:
            self._on_ack(packet)
            return
        self._on_data(packet)

    # responder ---------------------------------------------------------------

    def _on_data(self, packet):
        ctx = packet.context
        if packet.ip.ce_marked:
            self._maybe_send_cnp()
        psn = ctx.psn
        if psn == self.epsn:
            if (
                self.config.require_posted_receives
                and ctx.is_msg_first
                and packet.bth.opcode.name.startswith("SEND")
                and self.recv_credits <= 0
            ):
                # Receiver not ready: no receive WQE for this SEND.
                self._send_rnr_nak()
                return
            self.epsn += 1
            self._in_gap = False
            self._accept(packet, ctx)
        elif psn > self.epsn:
            self.stats.out_of_order_discarded += 1
            if not self._in_gap:
                self._in_gap = True
                self._send_nak()
        elif ctx.is_msg_first and self.config.recovery.responder_restarts:
            # Go-back-0 firmware on both ends: seeing the first packet of
            # a message again means the sender restarted the message from
            # scratch -- reassembly state resets and earlier partial
            # progress is discarded (section 4.1).
            self.epsn = psn + 1
            self._in_gap = False
            self._accept(packet, ctx)
        else:
            # Duplicate (e.g. our ACK was lost); refresh the sender.
            self.stats.duplicates_received += 1
            self._send_ack()

    def _accept(self, packet, ctx):
        if ctx.kind == _Message.READ_REQUEST:
            self._enqueue_message(
                _Message(
                    _Message.READ_RESPONSE,
                    None,
                    self._total_end,
                    -(-ctx.read_size // self.config.mtu_payload),
                    ctx.read_size,
                    read_id=ctx.read_id,
                )
            )
            self.host.nic.notify_tx_ready()
            self._send_ack()
            return
        self._ack_backlog += 1
        if (
            self.config.require_posted_receives
            and ctx.is_msg_last
            and packet.bth.opcode.name.startswith("SEND")
        ):
            self.recv_credits -= 1  # this SEND consumed one receive WQE
        if ctx.is_msg_last:
            if ctx.kind == _Message.READ_RESPONSE:
                wr = self._pending_reads.pop(ctx.read_id, None)
                if wr is not None:
                    self._complete_wr(wr)
            elif self.on_message is not None:
                self.on_message(self, ctx.kind, packet.payload_bytes)
        if ctx.is_msg_last or self._ack_backlog >= self.config.ack_coalesce:
            self._send_ack()

    def _send_ack(self):
        self._ack_backlog = 0
        cum = self.epsn - 1
        aeth = Aeth(AethSyndrome.ACK, msn=cum & PSN_MASK)
        packet, priority = self._build_control(
            BthOpcode.ACKNOWLEDGE, aeth, _PacketCtx(ack_psn=cum)
        )
        self.stats.acks_sent += 1
        self._queue_ctrl(packet, priority)

    def _send_nak(self):
        aeth = Aeth(AethSyndrome.NAK, msn=self.epsn & PSN_MASK)
        packet, priority = self._build_control(
            BthOpcode.ACKNOWLEDGE, aeth, _PacketCtx(nak_psn=self.epsn)
        )
        self.stats.naks_sent += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_nak_sent(self)
        self._queue_ctrl(packet, priority)

    def _send_rnr_nak(self):
        aeth = Aeth(AethSyndrome.RNR_NAK, msn=self.epsn & PSN_MASK)
        ctx = _PacketCtx(nak_psn=self.epsn)
        packet, priority = self._build_control(BthOpcode.ACKNOWLEDGE, aeth, ctx)
        self.stats.rnr_naks_sent += 1
        self._queue_ctrl(packet, priority)

    def _maybe_send_cnp(self):
        """DCQCN notification point: at most one CNP per interval per QP."""
        now = self.sim.now
        if (
            self._last_cnp_ns is not None
            and now - self._last_cnp_ns < self.config.cnp_interval_ns
        ):
            return
        self._last_cnp_ns = now
        packet, _ = self._build_control(
            BthOpcode.CNP, None, _PacketCtx(), dscp=self.config.cnp_dscp
        )
        self.stats.cnps_sent += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.session.on_cnp_sent(self)
        self._queue_ctrl(packet, self.config.cnp_priority)

    # requester ------------------------------------------------------------------

    def _on_ack(self, packet):
        ctx = packet.context
        if packet.aeth is not None and packet.aeth.syndrome == AethSyndrome.RNR_NAK:
            # Receiver not ready: rewind to the refused PSN and retry
            # after the backoff (IB RNR retry).
            self.stats.rnr_naks_received += 1
            nak_psn = ctx.nak_psn
            self.send_ptr = min(self.send_ptr, nak_psn)
            self._next_allowed_ns = self.sim.now + self.config.rnr_retry_delay_ns
            self._restart_rto()
            self.host.nic.notify_tx_ready()
            return
        if packet.aeth is not None and packet.aeth.is_nak:
            self.stats.naks_received += 1
            nak_psn = ctx.nak_psn
            if nak_psn < self.una:
                # A NAK below una was delayed or duplicated in flight:
                # everything beneath it is already cumulatively acked
                # (its message may be gone).  Acting on it would rewind
                # completed work, so discard it as a real NIC does.
                self.stats.stale_naks_discarded += 1
                return
            if not self.config.recovery.responder_restarts:
                # A NAK at E implies packets below E were received -- but
                # only when the responder banks partial progress.
                self._advance_una(nak_psn)
            if nak_psn < self.send_ptr:
                message = self._message_for(nak_psn)
                resume = self.config.recovery.resume_psn(nak_psn, message.start_psn)
                self.send_ptr = min(self.send_ptr, resume)
                if self.config.recovery.responder_restarts:
                    # Stateless restart: the send window references the
                    # fresh pass, not progress from abandoned ones.
                    self.una = min(self.una, resume)
                self.host.nic.notify_tx_ready()
            self._restart_rto()
        else:
            self._advance_una(ctx.ack_psn + 1)

    def _advance_una(self, new_una):
        if new_una <= self.una:
            return
        if self.on_rtt_sample is not None and self._rtt_probes:
            for psn in [p for p in self._rtt_probes if p < new_una]:
                self.on_rtt_sample(self.sim.now - self._rtt_probes.pop(psn))
        self.una = new_una
        if self.send_ptr < self.una:
            self.send_ptr = self.una
        while self._messages and self._messages[0].end_psn < self.una:
            message = self._messages.pop(0)
            if message.wr is not None and message.kind == _Message.DATA:
                self._complete_wr(message.wr)
            if message.kind == _Message.READ_RESPONSE:
                self.stats.messages_completed += 1
        self._restart_rto()
        self.host.nic.notify_tx_ready()

    def _complete_wr(self, wr):
        wr.completed_ns = self.sim.now
        self.stats.bytes_completed += wr.size_bytes
        self.stats.messages_completed += 1
        if _TRACE.enabled:
            _TRACE.session.on_cqe(self, wr)
        if wr.on_complete is not None:
            wr.on_complete(wr, self.sim.now)

    def _restart_rto(self):
        if self.una < self.high_sent:
            self._rto.start(self.config.rto_ns)
        else:
            self._rto.cancel()

    def _on_timeout(self):
        """Tail loss (lost last packet / lost ACK): rewind per policy."""
        if self.una >= self.high_sent:
            return
        self.stats.timeouts += 1
        if _TRACE.enabled:
            _TRACE.session.on_rto(self)
        message = self._message_for(self.una)
        resume = self.config.recovery.resume_psn(self.una, message.start_psn)
        self.send_ptr = min(self.send_ptr, resume)
        if self.config.recovery.responder_restarts:
            self.una = min(self.una, resume)
        else:
            self.send_ptr = max(self.una, self.send_ptr)
        self._rto.start(self.config.rto_ns)
        self.host.nic.notify_tx_ready()

    def __repr__(self):
        return "QueuePair(qp%d -> qp%s, una=%d, sent=%d, epsn=%d)" % (
            self.qpn,
            self.remote_qpn,
            self.una,
            self.send_ptr,
            self.epsn,
        )
