"""Completion queues: the polled half of the verbs interface.

Real verbs applications rarely use upcalls; they post work requests and
poll a completion queue (CQ).  This module provides that shape so that
code written against the reproduction reads like code written against
libibverbs::

    cq = CompletionQueue(capacity=256)
    post_send(qp, 4 * MB, cq=cq)
    ...
    for wc in cq.poll(16):
        assert wc.ok
        handle(wc.wr_id)

A full CQ drops new completions and counts them as overflows (the verbs
contract: size your CQ for your queue depth).
"""

import collections


class WorkCompletion:
    """One completion entry."""

    __slots__ = ("wr_id", "kind", "size_bytes", "status", "completed_ns")

    STATUS_OK = "ok"
    STATUS_FLUSHED = "flushed"

    def __init__(self, wr_id, kind, size_bytes, completed_ns, status=STATUS_OK):
        self.wr_id = wr_id
        self.kind = kind
        self.size_bytes = size_bytes
        self.completed_ns = completed_ns
        self.status = status

    @property
    def ok(self):
        return self.status == self.STATUS_OK

    def __repr__(self):
        return "WorkCompletion(wr=%d, %s, %dB, %s)" % (
            self.wr_id,
            self.kind,
            self.size_bytes,
            self.status,
        )


class CompletionQueue:
    """A bounded FIFO of work completions."""

    def __init__(self, capacity=1024):
        if capacity <= 0:
            raise ValueError("CQ capacity must be positive")
        self.capacity = capacity
        self._entries = collections.deque()
        self.overflows = 0
        self.total_completions = 0

    def push(self, completion):
        """Internal: transports deliver completions here."""
        if len(self._entries) >= self.capacity:
            self.overflows += 1
            return False
        self._entries.append(completion)
        self.total_completions += 1
        return True

    def poll(self, max_entries=16):
        """Dequeue up to ``max_entries`` completions (verbs ibv_poll_cq)."""
        polled = []
        while self._entries and len(polled) < max_entries:
            polled.append(self._entries.popleft())
        return polled

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return "CompletionQueue(%d/%d queued, %d overflows)" % (
            len(self._entries),
            self.capacity,
            self.overflows,
        )
