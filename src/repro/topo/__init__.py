"""Topology construction.

* :mod:`~repro.topo.fabric` -- the :class:`Fabric` container: hosts,
  switches, links, addressing and boot orchestration.
* :mod:`~repro.topo.builders` -- the paper's topologies:

  - :func:`single_switch` -- two servers through one switch (the
    section 4.1 livelock testbed);
  - :func:`two_tier` -- ToRs + Leaf layer (the figure 8 testbed);
  - :func:`three_tier_clos` -- ToR/Leaf/Spine podsets (figures 1 and 7);
  - :func:`deadlock_quad` -- the exact 4-switch, 5-server arrangement of
    figure 4.
"""

from repro.topo.builders import (
    deadlock_quad,
    single_switch,
    three_tier_clos,
    two_tier,
)
from repro.topo.fabric import Fabric, host_ip

__all__ = [
    "Fabric",
    "host_ip",
    "single_switch",
    "two_tier",
    "three_tier_clos",
    "deadlock_quad",
]
