"""Builders for the paper's topologies.

Every builder returns a topology object exposing the :class:`Fabric`
plus named elements (ToRs, leaves, spines, hosts) so experiments can
address "S1" or "T1.p4" the way the paper's figures do.  Scale
parameters default to tractable packet-level sizes; figure 7's full
1152-server fabric is reproduced with the flow-level model in
:mod:`repro.flows` instead.
"""

from repro.sim.units import gbps
from repro.switch.buffer import BufferConfig
from repro.switch.ecn import EcnConfig
from repro.switch.pfc import PfcConfig
from repro.topo.fabric import Fabric, host_ip, tor_subnet


class _Topology:
    """Base: common construction helpers."""

    def __init__(self, fabric):
        self.fabric = fabric
        self.sim = fabric.sim

    def boot(self, settle_ns=100_000):
        self.fabric.boot(settle_ns)
        return self


def _switch_kwargs(fabric, name, pfc_config, buffer_config, ecn_config, local_subnet=None,
                   forwarding_kwargs=None):
    return dict(
        pfc_config=pfc_config,
        buffer_config=buffer_config or BufferConfig(),
        ecn_config=ecn_config or EcnConfig(enabled=False),
        local_subnet=local_subnet,
        mark_rng=fabric.rng.child("ecn/%s" % name),
        forwarding_kwargs=dict(forwarding_kwargs or {}),
    )


class SingleSwitchTopo(_Topology):
    """N servers under one ToR -- the livelock testbed of section 4.1."""

    def __init__(self, fabric, tor, hosts):
        super().__init__(fabric)
        self.tor = tor
        self.hosts = hosts


def single_switch(
    n_hosts=2,
    rate_bps=None,
    pfc_config=None,
    buffer_config=None,
    ecn_config=None,
    nic_config=None,
    seed=1,
    forwarding_kwargs=None,
):
    """Servers S0..S(n-1) on one ToR, subnet 10.0.0.0/24."""
    fabric = Fabric(seed=seed, default_rate_bps=rate_bps or gbps(40))
    pfc_config = pfc_config or PfcConfig()
    tor = fabric.add_switch(
        "T0",
        **_switch_kwargs(
            fabric, "T0", pfc_config, buffer_config, ecn_config,
            local_subnet=tor_subnet(0, 0), forwarding_kwargs=forwarding_kwargs,
        )
    )
    hosts = []
    for i in range(n_hosts):
        host = fabric.add_host(
            "S%d" % i, ip=host_ip(0, 0, i), nic_config=nic_config, pfc_config=pfc_config
        )
        fabric.connect_host(tor, host)
        hosts.append(host)
    return SingleSwitchTopo(fabric, tor, hosts)


class TwoTierTopo(_Topology):
    """ToRs x Leaves -- the figure 8 testbed."""

    def __init__(self, fabric, tors, leaves, hosts_by_tor):
        super().__init__(fabric)
        self.tors = tors
        self.leaves = leaves
        self.hosts_by_tor = hosts_by_tor

    @property
    def hosts(self):
        return [h for hosts in self.hosts_by_tor for h in hosts]


def two_tier(
    n_tors=2,
    hosts_per_tor=4,
    n_leaves=4,
    rate_bps=None,
    pfc_config=None,
    buffer_config=None,
    ecn_config=None,
    nic_config=None,
    seed=1,
    forwarding_kwargs=None,
):
    """ToRs each uplinked to every leaf; up-down ECMP routing.

    The paper's figure 8 testbed is ``two_tier(n_tors=2, hosts_per_tor=24,
    n_leaves=4)`` -- a 6:1 oversubscription at the ToR.
    """
    fabric = Fabric(seed=seed, default_rate_bps=rate_bps or gbps(40))
    pfc_config = pfc_config or PfcConfig()
    leaves = [
        fabric.add_switch(
            "L%d" % i,
            **_switch_kwargs(fabric, "L%d" % i, pfc_config, buffer_config, ecn_config,
                             forwarding_kwargs=forwarding_kwargs)
        )
        for i in range(n_leaves)
    ]
    tors = []
    hosts_by_tor = []
    for t in range(n_tors):
        tor = fabric.add_switch(
            "T%d" % t,
            **_switch_kwargs(
                fabric, "T%d" % t, pfc_config, buffer_config, ecn_config,
                local_subnet=tor_subnet(0, t), forwarding_kwargs=forwarding_kwargs,
            )
        )
        tors.append(tor)
        hosts = []
        for h in range(hosts_per_tor):
            host = fabric.add_host(
                "T%d-S%d" % (t, h),
                ip=host_ip(0, t, h),
                nic_config=nic_config,
                pfc_config=pfc_config,
            )
            fabric.connect_host(tor, host)
            hosts.append(host)
        hosts_by_tor.append(hosts)
    # Uplinks + routing: ToR default-routes up over all leaves (ECMP);
    # each leaf routes each ToR subnet down its direct port.
    for tor_idx, tor in enumerate(tors):
        uplink_ports = []
        for leaf in leaves:
            tor_port, leaf_port, _ = fabric.connect_switches(tor, leaf, cable_meters=20)
            uplink_ports.append(tor_port.index)
            prefix, plen = tor_subnet(0, tor_idx)
            leaf.tables.add_route(prefix, plen, [leaf_port.index])
        tor.tables.add_route(0, 0, uplink_ports)
    return TwoTierTopo(fabric, tors, leaves, hosts_by_tor)


class ThreeTierTopo(_Topology):
    """Podsets of ToR+Leaf, joined by a Spine layer (figures 1 and 7)."""

    def __init__(self, fabric, podsets, spines):
        super().__init__(fabric)
        self.podsets = podsets  # list of dicts: {"tors", "leaves", "hosts_by_tor"}
        self.spines = spines

    @property
    def hosts(self):
        return [
            h
            for podset in self.podsets
            for hosts in podset["hosts_by_tor"]
            for h in hosts
        ]


def three_tier_clos(
    n_podsets=2,
    tors_per_podset=2,
    hosts_per_tor=2,
    leaves_per_podset=2,
    n_spines=4,
    rate_bps=None,
    pfc_config=None,
    buffer_config=None,
    ecn_config=None,
    nic_config=None,
    seed=1,
    forwarding_kwargs=None,
):
    """A 3-tier Clos with up-down routing.

    Each leaf connects to ``n_spines / leaves_per_podset`` spines (the
    paper's podsets have 4 leaves fanning out to 64 spines, 16 each);
    spine ``s`` connects to leaf ``s // (n_spines/leaves_per_podset)`` of
    every podset.
    """
    if n_spines % leaves_per_podset:
        raise ValueError("n_spines must be a multiple of leaves_per_podset")
    spines_per_leaf = n_spines // leaves_per_podset
    fabric = Fabric(seed=seed, default_rate_bps=rate_bps or gbps(40))
    pfc_config = pfc_config or PfcConfig()
    spines = [
        fabric.add_switch(
            "SP%d" % s,
            **_switch_kwargs(fabric, "SP%d" % s, pfc_config, buffer_config, ecn_config,
                             forwarding_kwargs=forwarding_kwargs)
        )
        for s in range(n_spines)
    ]
    podsets = []
    for p in range(n_podsets):
        leaves = [
            fabric.add_switch(
                "P%dL%d" % (p, l),
                **_switch_kwargs(fabric, "P%dL%d" % (p, l), pfc_config, buffer_config,
                                 ecn_config, forwarding_kwargs=forwarding_kwargs)
            )
            for l in range(leaves_per_podset)
        ]
        tors = []
        hosts_by_tor = []
        for t in range(tors_per_podset):
            tor = fabric.add_switch(
                "P%dT%d" % (p, t),
                **_switch_kwargs(
                    fabric, "P%dT%d" % (p, t), pfc_config, buffer_config, ecn_config,
                    local_subnet=tor_subnet(p, t), forwarding_kwargs=forwarding_kwargs,
                )
            )
            tors.append(tor)
            hosts = []
            for h in range(hosts_per_tor):
                host = fabric.add_host(
                    "P%dT%d-S%d" % (p, t, h),
                    ip=host_ip(p, t, h),
                    nic_config=nic_config,
                    pfc_config=pfc_config,
                )
                fabric.connect_host(tor, host)
                hosts.append(host)
            hosts_by_tor.append(hosts)
        # ToR <-> Leaf wiring within the podset.
        for t, tor in enumerate(tors):
            uplinks = []
            for leaf in leaves:
                tor_port, leaf_port, _ = fabric.connect_switches(tor, leaf, cable_meters=20)
                uplinks.append(tor_port.index)
                prefix, plen = tor_subnet(p, t)
                leaf.tables.add_route(prefix, plen, [leaf_port.index])
            tor.tables.add_route(0, 0, uplinks)
        podsets.append({"tors": tors, "leaves": leaves, "hosts_by_tor": hosts_by_tor})
    # Leaf <-> Spine wiring: leaf l of each podset connects to spines
    # [l*spines_per_leaf, (l+1)*spines_per_leaf).
    for p, podset in enumerate(podsets):
        for l, leaf in enumerate(podset["leaves"]):
            spine_uplinks = []
            for s in range(l * spines_per_leaf, (l + 1) * spines_per_leaf):
                leaf_port, spine_port, _ = fabric.connect_switches(
                    leaf, spines[s], cable_meters=300
                )
                spine_uplinks.append(leaf_port.index)
                # The spine reaches every ToR of podset p via this leaf.
                for t in range(tors_per_podset):
                    prefix, plen = tor_subnet(p, t)
                    spines[s].tables.add_route(prefix, plen, [spine_port.index])
            # The leaf reaches remote podsets via its spines.
            leaf.tables.add_route(0, 0, spine_uplinks)
    return ThreeTierTopo(fabric, podsets, spines)


class DeadlockQuadTopo(_Topology):
    """Figure 4's arrangement: T0, T1 ToRs cross-connected by La, Lb."""

    def __init__(self, fabric, t0, t1, la, lb, hosts, ports):
        super().__init__(fabric)
        self.t0 = t0
        self.t1 = t1
        self.la = la
        self.lb = lb
        self.hosts = hosts  # dict name -> Host (S1, S2 on T0; S3, S4, S5 on T1)
        self.ports = ports  # dict like "T0->La" -> Port


def deadlock_quad(
    rate_bps=None,
    pfc_config=None,
    buffer_config=None,
    nic_config=None,
    seed=1,
    force_figure4_paths=True,
    forwarding_kwargs=None,
):
    """Figure 4: S1,S2 (+S6 helper) under T0; S3,S4,S5 under T1.

    With ``force_figure4_paths`` the routes are pinned to the figure's
    paths -- T0 reaches T1's subnet only via La, and T1 reaches T0's
    subnet only via Lb -- so the cyclic dependency forms deterministically
    instead of depending on an ECMP draw.
    """
    fabric = Fabric(seed=seed, default_rate_bps=rate_bps or gbps(40))
    pfc_config = pfc_config or PfcConfig()

    def mk_switch(name, subnet=None):
        return fabric.add_switch(
            name,
            **_switch_kwargs(
                fabric, name, pfc_config, buffer_config, None,
                local_subnet=subnet, forwarding_kwargs=forwarding_kwargs,
            )
        )

    t0 = mk_switch("T0", tor_subnet(0, 0))
    t1 = mk_switch("T1", tor_subnet(0, 1))
    la = mk_switch("La")
    lb = mk_switch("Lb")
    hosts = {}
    for name, tor, podset_tor, idx in (
        ("S1", t0, (0, 0), 0),
        ("S2", t0, (0, 0), 1),
        ("S6", t0, (0, 0), 2),
        ("S3", t1, (0, 1), 0),
        ("S4", t1, (0, 1), 1),
        ("S5", t1, (0, 1), 2),
        # S7 is the figure's "other sources" of the incast congesting
        # T1's port to S5: a T1-local sender that oversubscribes the
        # S5 egress no matter what the uplinks carry.
        ("S7", t1, (0, 1), 3),
    ):
        host = fabric.add_host(
            name,
            ip=host_ip(podset_tor[0], podset_tor[1], idx),
            nic_config=nic_config,
            pfc_config=pfc_config,
        )
        fabric.connect_host(tor, host)
        hosts[name] = host
    ports = {}
    for lower, upper, tag in ((t0, la, "T0-La"), (t0, lb, "T0-Lb"), (t1, la, "T1-La"), (t1, lb, "T1-Lb")):
        lo_port, up_port, _ = fabric.connect_switches(lower, upper, cable_meters=20)
        ports["%s:down" % tag] = lo_port
        ports["%s:up" % tag] = up_port
    t0_subnet, t1_subnet = tor_subnet(0, 0), tor_subnet(0, 1)
    if force_figure4_paths:
        # T0 -> T1 subnet via La only; T1 -> T0 subnet via Lb only.
        t0.tables.add_route(t1_subnet[0], t1_subnet[1], [ports["T0-La:down"].index])
        t1.tables.add_route(t0_subnet[0], t0_subnet[1], [ports["T1-Lb:down"].index])
    else:
        t0.tables.add_route(
            t1_subnet[0], t1_subnet[1],
            [ports["T0-La:down"].index, ports["T0-Lb:down"].index],
        )
        t1.tables.add_route(
            t0_subnet[0], t0_subnet[1],
            [ports["T1-La:down"].index, ports["T1-Lb:down"].index],
        )
    # Leaves route each subnet down its direct ToR port.
    la.tables.add_route(t0_subnet[0], t0_subnet[1], [ports["T0-La:up"].index])
    la.tables.add_route(t1_subnet[0], t1_subnet[1], [ports["T1-La:up"].index])
    lb.tables.add_route(t0_subnet[0], t0_subnet[1], [ports["T0-Lb:up"].index])
    lb.tables.add_route(t1_subnet[0], t1_subnet[1], [ports["T1-Lb:up"].index])
    return DeadlockQuadTopo(fabric, t0, t1, la, lb, hosts, ports)
