"""The Fabric: a container wiring hosts, switches and links together.

Addressing convention (matches the paper's "servers connected to the same
ToR are in the same IP subnet"):

* ToR ``t`` of podset ``p`` owns subnet ``10.p.t.0/24``;
* host ``h`` under it gets ``10.p.t.(h+1)``;
* MACs are allocated sequentially under the locally administered prefix.

The fabric knows which side of a link is a server and which is a switch,
so the right port types (server-facing vs routed uplink) are created, and
it finalizes every switch's shared buffer once wiring is complete.
"""

from repro.net.link import Link
from repro.nic.host import AddressDirectory, Host
from repro.sim import SeededRng, Simulator
from repro.sim.units import gbps
from repro.switch.switch import Switch


def host_ip(podset, tor, host):
    """The conventional address of a host: ``10.podset.tor.(host+1)``."""
    return (10 << 24) | (podset << 16) | (tor << 8) | (host + 1)


def tor_subnet(podset, tor):
    """``(prefix, prefix_len)`` of a ToR's server subnet."""
    return ((10 << 24) | (podset << 16) | (tor << 8), 24)


class Fabric:
    """Hosts + switches + links + shared simulation services."""

    def __init__(self, sim=None, seed=1, default_rate_bps=None):
        self.sim = sim or Simulator()
        self.rng = SeededRng(seed, "fabric")
        self.directory = AddressDirectory()
        self.default_rate_bps = default_rate_bps or gbps(40)
        self.hosts = []
        self.switches = []
        self.links = []
        self._next_mac = 0x020000000001
        self._finalized = False

    # -- element creation -------------------------------------------------------

    def allocate_mac(self):
        mac = self._next_mac
        self._next_mac += 1
        return mac

    def add_host(self, name, ip, nic_config=None, pfc_config=None):
        host = Host(
            self.sim,
            name,
            ip=ip,
            mac=self.allocate_mac(),
            nic_config=nic_config,
            pfc_config=pfc_config,
            directory=self.directory,
        )
        self.hosts.append(host)
        return host

    def add_switch(self, name, **kwargs):
        kwargs.setdefault("base_mac", self.allocate_mac() << 8)
        switch = Switch(self.sim, name, **kwargs)
        self.switches.append(switch)
        return switch

    # -- wiring -------------------------------------------------------------------

    def connect_host(self, switch, host, rate_bps=None, cable_meters=2, **link_kwargs):
        """Server <-> ToR link (server-facing port on the switch side)."""
        switch_port = switch.add_server_port()
        link = Link(
            self.sim,
            switch_port,
            host.port,
            rate_bps=rate_bps or self.default_rate_bps,
            cable_meters=cable_meters,
            **link_kwargs,
        )
        self.links.append(link)
        return link

    def connect_switches(self, lower, upper, rate_bps=None, cable_meters=20, **link_kwargs):
        """Switch <-> switch link (routed uplink ports on both sides).

        Returns ``(lower_port, upper_port, link)`` so builders can install
        routes pointing at the right port indices.
        """
        lower_port = lower.add_uplink_port()
        upper_port = upper.add_uplink_port()
        link = Link(
            self.sim,
            lower_port,
            upper_port,
            rate_bps=rate_bps or self.default_rate_bps,
            cable_meters=cable_meters,
            **link_kwargs,
        )
        self.links.append(link)
        return lower_port, upper_port, link

    # -- lifecycle ------------------------------------------------------------------

    def finalize(self):
        """Size every switch's shared buffer; idempotent."""
        for switch in self.switches:
            switch.finalize()
        self._finalized = True
        return self

    def boot(self, settle_ns=100_000):
        """Finalize, announce every host (gratuitous ARP) and run the
        simulator briefly so switch tables populate.

        When the telemetry hub is armed (``repro.telemetry.arm``) a
        collection session attaches to this fabric here -- that is how
        the bench/campaign/validation/experiment CLIs opt whole runs
        into telemetry without threading flags through every runner.
        The trace hub (``repro.tracing.arm``) attaches the same way.
        With both hubs disarmed (the default) this is a no-op.
        """
        self.finalize()
        from repro.telemetry.hooks import HUB, maybe_attach

        if HUB.armed is not None:
            maybe_attach(self)
        from repro.tracing.hooks import HUB as TRACE_HUB
        from repro.tracing.hooks import maybe_attach as trace_attach

        if TRACE_HUB.armed is not None:
            trace_attach(self)
        for host in self.hosts:
            host.boot()
        self.sim.run(until=self.sim.now + settle_ns)
        return self

    # -- queries ---------------------------------------------------------------------

    def host_named(self, name):
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    def switch_named(self, name):
        for switch in self.switches:
            if switch.name == name:
                return switch
        raise KeyError(name)

    def total_pause_frames(self):
        """Fabric-wide pause frames emitted (switches + NICs)."""
        switches = sum(s.pause_frames_sent() for s in self.switches)
        nics = sum(h.nic.stats.pause_generated for h in self.hosts)
        return switches + nics

    def total_drops(self):
        """Fabric-wide data packet drops at switches."""
        return sum(s.counters.total_drops for s in self.switches)

    def __repr__(self):
        return "Fabric(%d hosts, %d switches, %d links)" % (
            len(self.hosts),
            len(self.switches),
            len(self.links),
        )
