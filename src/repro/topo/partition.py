"""Fabric graph partitioner for the space-parallel runner.

:func:`partition_fabric` splits a built (not necessarily booted)
:class:`~repro.topo.fabric.Fabric` into ``n_shards`` connected device
groups whose only mutual links are high-latency inter-tier cables.  The
conservative parallel runner (:mod:`repro.sim.parallel`) then runs one
full fabric replica per shard and exchanges boundary frames once per
lookahead window, so the cut choice directly bounds how often the
workers must synchronize:

* **hosts stay with their ToR** -- a host<->ToR link (2 m, 10 ns) is
  never cut.  Everything chatty (NIC scheduling, PFC to the ToR, ARP,
  departure trains) stays shard-local;
* **cuts ride the slowest tier that still yields enough pieces** -- the
  partitioner tries latency thresholds from the longest switch<->switch
  cable downward and stops at the first tier whose removal disconnects
  the graph into at least ``n_shards`` components.  On the paper's Clos
  that is the 300 m leaf<->spine tier (1500 ns) before the 20 m
  ToR<->leaf tier (100 ns);
* **the lookahead window is the minimum cut latency** -- a frame that
  starts crossing a cut at time ``t`` cannot arrive before
  ``t + window_ns`` (propagation alone; serialization only adds slack),
  so events inside a window can never depend on frames sent within it.

Determinism: components are discovered in device construction order and
merged by a greedy, index-tie-broken agglomeration, so the same fabric
always yields the same partition on every machine and every run.
"""


class PartitionError(ValueError):
    """The fabric cannot be split as requested (e.g. no inter-switch
    links to cut, or fewer cuttable components than shards)."""


class Partition:
    """The result: shard assignment per device plus the cut metadata.

    ``host_shard[i]`` / ``switch_shard[j]`` give the shard owning
    ``fabric.hosts[i]`` / ``fabric.switches[j]``; ``cut_links`` are the
    indices into ``fabric.links`` whose endpoints landed in different
    shards; ``window_ns`` is the conservative lookahead (the minimum
    ``delay_ns`` over the cut links, ``None`` when nothing is cut).
    """

    __slots__ = ("n_shards", "host_shard", "switch_shard", "cut_links", "window_ns")

    def __init__(self, n_shards, host_shard, switch_shard, cut_links, window_ns):
        self.n_shards = n_shards
        self.host_shard = list(host_shard)
        self.switch_shard = list(switch_shard)
        self.cut_links = tuple(sorted(cut_links))
        self.window_ns = window_ns

    def hosts_in(self, shard):
        """Indices (into ``fabric.hosts``) of the shard's hosts."""
        return [i for i, s in enumerate(self.host_shard) if s == shard]

    def switches_in(self, shard):
        """Indices (into ``fabric.switches``) of the shard's switches."""
        return [i for i, s in enumerate(self.switch_shard) if s == shard]

    def shard_of_node(self, node):
        kind, idx = node
        return self.host_shard[idx] if kind == "h" else self.switch_shard[idx]

    def describe(self):
        sizes = [
            (len(self.hosts_in(s)), len(self.switches_in(s)))
            for s in range(self.n_shards)
        ]
        return "Partition(%d shards %s, %d cut links, window=%sns)" % (
            self.n_shards,
            "/".join("%dh+%dsw" % hs for hs in sizes),
            len(self.cut_links),
            self.window_ns,
        )

    __repr__ = describe


def _node_map(fabric):
    """id(device) -> ("h"|"s", construction index).

    Host-side ports belong to the host's :class:`~repro.nic.nic.Nic`,
    so the NIC aliases to its host's node.
    """
    nodes = {}
    for i, host in enumerate(fabric.hosts):
        nodes[id(host)] = ("h", i)
        nodes[id(host.nic)] = ("h", i)
    for j, switch in enumerate(fabric.switches):
        nodes[id(switch)] = ("s", j)
    return nodes


def link_endpoints(fabric, link, nodes=None):
    """The ``(("h"|"s", idx), ("h"|"s", idx))`` endpoint nodes of a link
    (port_a side first -- the order :class:`repro.net.link.Link` stores)."""
    nodes = nodes or _node_map(fabric)
    return nodes[id(link.port_a.device)], nodes[id(link.port_b.device)]


def _components(all_nodes, adjacency, excluded_links):
    """Connected components (as ordered node lists), discovered in node
    construction order so component identity is deterministic."""
    seen = set()
    components = []
    for start in all_nodes:
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        queue = [start]
        while queue:
            node = queue.pop()
            for link_idx, other in adjacency[node]:
                if link_idx in excluded_links or other in seen:
                    continue
                seen.add(other)
                comp.append(other)
                queue.append(other)
        comp.sort()
        components.append(comp)
    components.sort(key=lambda comp: comp[0])
    return components


def partition_fabric(fabric, n_shards):
    """Split ``fabric`` into ``n_shards`` connected shards; see module doc.

    Raises :class:`PartitionError` when the fabric has no switch<->switch
    links (nothing is cuttable without separating a host from its ToR)
    or when even cutting every inter-switch tier yields fewer components
    than requested shards.
    """
    if n_shards < 1:
        raise PartitionError("n_shards must be >= 1, got %r" % (n_shards,))
    nodes = _node_map(fabric)
    all_nodes = sorted(nodes.values())
    adjacency = {node: [] for node in all_nodes}
    cuttable = {}  # link index -> delay_ns, switch<->switch links only
    for link_idx, link in enumerate(fabric.links):
        a, b = link_endpoints(fabric, link, nodes)
        adjacency[a].append((link_idx, b))
        adjacency[b].append((link_idx, a))
        if a[0] == "s" and b[0] == "s":
            cuttable[link_idx] = link.delay_ns

    if n_shards == 1:
        return Partition(
            1, [0] * len(fabric.hosts), [0] * len(fabric.switches), (), None
        )
    if not cuttable:
        raise PartitionError(
            "fabric has no switch<->switch links to cut "
            "(host<->ToR links are never cut); cannot split into %d shards"
            % n_shards
        )

    # Latency-tier descent: cut the slowest tier that yields enough pieces.
    components = None
    for threshold in sorted(set(cuttable.values()), reverse=True):
        cut_set = {li for li, delay in cuttable.items() if delay >= threshold}
        candidate = _components(all_nodes, adjacency, cut_set)
        if len(candidate) >= n_shards:
            components = candidate
            break
    if components is None:
        raise PartitionError(
            "fabric splits into at most %d components even with every "
            "inter-switch link cut; cannot make %d shards"
            % (len(_components(all_nodes, adjacency, set(cuttable))), n_shards)
        )

    # Greedy agglomeration: merge the lightest group into its lightest
    # neighbor (host count, then first-node index as the tie-break) until
    # exactly n_shards connected groups remain.  Merging along a cut edge
    # turns it back into an internal link, so groups stay connected.
    group_of = {}
    for gi, comp in enumerate(components):
        for node in comp:
            group_of[node] = gi
    groups = {gi: set(comp) for gi, comp in enumerate(components)}

    def weight(gi):
        # Hosts first (they source the traffic), then switches (a spine
        # carries every cross-cut flow's transit work -- spreading the
        # host-less spine singletons round-robin over the pod groups is
        # what balances shard event counts), construction index last so
        # ties resolve identically everywhere.
        members = groups[gi]
        return (
            sum(1 for node in members if node[0] == "h"),
            len(members),
            min(members),
        )

    def neighbors(gi):
        near = set()
        for node in groups[gi]:
            for _li, other in adjacency[node]:
                og = group_of[other]
                if og != gi:
                    near.add(og)
        return near

    while len(groups) > n_shards:
        smallest = min(groups, key=weight)
        near = neighbors(smallest)
        if near:
            target = min(near, key=weight)
        else:
            # A disconnected island (no physical path to any other group):
            # fold it into the lightest other group so the count comes out.
            target = min((g for g in groups if g != smallest), key=weight)
        for node in groups[smallest]:
            group_of[node] = target
        groups[target] |= groups.pop(smallest)

    # Renumber groups 0..n_shards-1 in first-node order.
    order = sorted(groups, key=lambda gi: min(groups[gi]))
    shard_id = {gi: s for s, gi in enumerate(order)}
    host_shard = [0] * len(fabric.hosts)
    switch_shard = [0] * len(fabric.switches)
    for node, gi in group_of.items():
        kind, idx = node
        if kind == "h":
            host_shard[idx] = shard_id[gi]
        else:
            switch_shard[idx] = shard_id[gi]

    part = Partition(n_shards, host_shard, switch_shard, (), None)
    cut_links = [
        li
        for li, link in enumerate(fabric.links)
        if _crosses(part, link_endpoints(fabric, link, nodes))
    ]
    window_ns = min(fabric.links[li].delay_ns for li in cut_links) if cut_links else None
    return Partition(n_shards, host_shard, switch_shard, cut_links, window_ns)


def _crosses(part, endpoints):
    a, b = endpoints
    return part.shard_of_node(a) != part.shard_of_node(b)
