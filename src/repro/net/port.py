"""Egress ports: per-priority queues, PFC pause state, scheduling.

A :class:`Port` is the transmit side of one device interface.  It owns:

* eight data queues (one per 802.1p priority), matching the "up to eight
  queues, each queue maps to a priority" of the paper's section 2;
* one control queue with absolute precedence, used for PFC pause frames --
  MAC control frames are never themselves subject to PFC;
* the 802.1Qbb pause state machine: a received pause frame suspends the
  named priorities for its quanta-encoded duration (refreshable), a
  zero-quanta frame resumes them immediately;
* a pluggable scheduler (strict priority, or DWRR for the paper's
  "different bandwidth reservations for different queues").

The port never decides *what* to enqueue -- devices do.  It reports every
dequeue (and every head-of-line drop of a flood copy) back to its device so
shared-buffer accounting stays exact.
"""

import collections

from repro.packets.pause import N_PRIORITIES, pause_quanta_to_ns
from repro.sim.engine import _ATIME_SHIFT
from repro.sim.timer import Timer
from repro.sim.units import serialization_delay_ns
from repro.telemetry.hooks import HUB as _TELEMETRY
from repro.tracing.hooks import HUB as _TRACE

#: Cap on how many frames one committed train may cover.  Bounds the
#: worst-case cancellation work when a train is interrupted.
_TRAIN_MAX = 64


class PortStats:
    """Per-port counters (section 5.2's monitoring feeds off these)."""

    __slots__ = (
        "tx_packets",
        "tx_bytes",
        "rx_packets",
        "rx_bytes",
        "pause_tx",
        "pause_rx",
        "resume_tx",
        "resume_rx",
        "head_drops",
        "paused_ns",
        "_paused_since",
    )

    def __init__(self):
        self.tx_packets = [0] * N_PRIORITIES
        self.tx_bytes = [0] * N_PRIORITIES
        self.rx_packets = [0] * N_PRIORITIES
        self.rx_bytes = [0] * N_PRIORITIES
        self.pause_tx = 0
        self.pause_rx = 0
        self.resume_tx = 0
        self.resume_rx = 0
        self.head_drops = 0
        # Cumulative time (ns) during which at least one priority was
        # paused: the paper's "pause intervals" metric, which "can reveal
        # the severity of the congestion more accurately" than counts.
        self.paused_ns = 0
        self._paused_since = None

    @property
    def total_tx_packets(self):
        return sum(self.tx_packets)

    @property
    def total_tx_bytes(self):
        return sum(self.tx_bytes)

    @property
    def total_rx_packets(self):
        return sum(self.rx_packets)

    @property
    def total_rx_bytes(self):
        return sum(self.rx_bytes)


class StrictPriorityScheduler:
    """Always serves the highest-numbered eligible priority first."""

    __slots__ = ()

    def pick(self, port):
        # Hot path (runs once per transmitted frame): read the port's
        # queue/pause state directly rather than through the list-building
        # ``queue_lengths`` property, and evaluate pause expiry inline.
        queues = port._queues
        paused_until = port._paused_until
        now = port.sim.now
        for priority in range(N_PRIORITIES - 1, -1, -1):
            if queues[priority] and paused_until[priority] <= now:
                return priority
        return None


class DwrrScheduler:
    """Deficit weighted round robin across eligible priorities.

    ``weights`` maps priority -> weight; unlisted priorities get weight 1.
    This approximates the ETS bandwidth reservation the paper configures
    between the real-time class, the bulk class and the TCP class.
    """

    __slots__ = ("_weights", "_quantum", "_deficits", "_topped_up", "_cursor")

    def __init__(self, weights=None, quantum_bytes=1600):
        self._weights = dict(weights or {})
        self._quantum = quantum_bytes
        self._deficits = [0] * N_PRIORITIES
        self._topped_up = [False] * N_PRIORITIES
        self._cursor = 0

    def weight(self, priority):
        return self._weights.get(priority, 1)

    def pick(self, port):
        queues = port._queues
        paused_until = port._paused_until
        now = port.sim.now
        deficits = self._deficits
        topped_up = self._topped_up
        if not any(
            queues[p] and paused_until[p] <= now for p in range(N_PRIORITIES)
        ):
            return None
        # Classic DWRR: stay on the cursor queue while its deficit covers
        # head packets; on moving past a queue, clear its top-up flag so
        # it earns a fresh quantum on the next visit.  An idle queue's
        # deficit resets (it must not hoard credit while empty).
        for _ in range(64 * N_PRIORITIES):
            priority = self._cursor
            queue = queues[priority]
            if queue and paused_until[priority] <= now:
                if not topped_up[priority]:
                    deficits[priority] += self._quantum * self.weight(priority)
                    topped_up[priority] = True
                head_bytes = queue[0].packet.size_bytes
                if deficits[priority] >= head_bytes:
                    deficits[priority] -= head_bytes
                    return priority
            else:
                deficits[priority] = 0
            topped_up[priority] = False
            self._cursor = (self._cursor + 1) % N_PRIORITIES
        # Unreachable for sane quanta; serve any eligible queue rather
        # than stall the port.
        for priority in range(N_PRIORITIES):
            if queues[priority] and paused_until[priority] <= now:
                deficits[priority] = 0
                return priority
        return None


class _QueueEntry:
    __slots__ = ("packet", "meta", "enqueued_ns")

    def __init__(self, packet, meta, enqueued_ns):
        self.packet = packet
        self.meta = meta
        self.enqueued_ns = enqueued_ns


class _Train:
    """A committed burst of back-to-back departures from one queue.

    When a port's egress queue is draining frames with no PFC/ECN/fault
    state change possible before the next departure, the port schedules
    the whole train's deliveries in one pass (plus a single completion
    event) instead of one ``_tx_complete`` wake-up per frame.  The
    per-frame bookkeeping -- dequeue, byte counters, tx stats, buffer
    release -- is *settled lazily*: frame ``i`` is booked exactly as the
    old per-frame code would have at its departure time ``departs[i]``,
    the first time anything can observe the difference (an arrival at the
    owning device, an introspection accessor, end of ``run()``).  The
    skipped wake-ups are credited to ``sim._elided`` so the logical
    ``events_fired`` count -- and with it every determinism fingerprint --
    is byte-identical to per-frame scheduling.

    Frames stay in the port's queue until settled, so queue state reads
    (after settling) are exact.  ``settle_idx`` is the count of booked
    frames; invariant: ``departs[i+1] == ends[i]`` (back-to-back), which
    is also why settling frame ``i >= 1`` credits exactly frame ``i-1``'s
    elided ``_tx_complete``.
    """

    __slots__ = (
        "priority",
        "entries",
        "departs",
        "ends",
        "deliver_events",
        "settle_idx",
        "complete_event",
        "commit_atime",
        "pgs",
    )

    def __init__(self, priority, entries, departs, ends, deliver_events, commit_atime, pgs):
        self.priority = priority
        self.entries = entries
        self.departs = departs
        self.ends = ends
        self.deliver_events = deliver_events
        self.settle_idx = 0
        self.complete_event = None
        # Assignment instant of the dispatch that committed the train;
        # frame 0's virtual events inherit it as their dispatcher instant.
        self.commit_atime = commit_atime
        # Lossless ingress PG states backing the train's frames; the
        # owning switch re-checks these against the live shared-buffer
        # threshold after every admission (see Switch._admit).
        self.pgs = pgs


class Port:
    """One device interface: egress queues + PFC transmit-side state.

    Devices interact with the port through:

    * :meth:`enqueue` / :meth:`enqueue_control` to queue frames;
    * ``on_dequeue(packet, meta, dropped_at_head)`` -- callback invoked
      whenever an entry leaves the queues (transmitted or head-dropped),
      used for shared-buffer release;
    * :meth:`receive_pause` -- called by the device when a PFC pause frame
      arrives on this interface.

    ``drop_flood_at_head`` models the ASIC behaviour central to the
    section 4.2 deadlock: flood copies reaching the head of a routed
    (uplink) port's queue are discarded "since the destination MAC does
    not match" -- but *only once they reach the head*; while the port is
    paused they sit in the queue holding buffer.
    """

    __slots__ = (
        "sim",
        "device",
        "index",
        "name",
        "link",
        "peer",
        "peer_deliver",
        "drop_flood_at_head",
        "scheduler",
        "stats",
        "on_dequeue",
        "is_server_facing",
        "vlan_port_mode",
        "coalesce_ok",
        "_frozen",
        "_train",
        "_queues",
        "_queue_bytes",
        "_control_queue",
        "_paused_until",
        "_busy",
        "_total_packets",
        "_total_bytes",
        "_wake_timer",
        "_tx_complete_ref",
    )

    def __init__(self, sim, device, index, name=None, drop_flood_at_head=False):
        self.sim = sim
        self.device = device
        self.index = index
        self.name = name or "%s.p%d" % (getattr(device, "name", "dev"), index)
        self.link = None
        self.peer = None  # peer Port, set by Link
        self.peer_deliver = None  # bound peer.deliver, cached by Link
        self.drop_flood_at_head = drop_flood_at_head
        self.scheduler = StrictPriorityScheduler()
        self.stats = PortStats()
        self.on_dequeue = None
        # Set by Switch.add_server_port / add_uplink_port; the defaults
        # describe a plain (host-side) interface.
        self.is_server_facing = False
        self.vlan_port_mode = None
        # Event coalescing opt-in: only devices whose dequeue callback is
        # pure buffer accounting (switches) may turn this on.  A device
        # that reacts to dequeues in time-sensitive ways (the NIC's tx
        # pump) must leave it off.
        self.coalesce_ok = False
        self._train = None

        self._queues = [collections.deque() for _ in range(N_PRIORITIES)]
        self._queue_bytes = [0] * N_PRIORITIES
        self._control_queue = collections.deque()
        self._paused_until = [0] * N_PRIORITIES
        self._busy = False
        # Running totals across all data queues, maintained by
        # enqueue/_try_send so the hot accessors below are O(1).
        self._total_packets = 0
        self._total_bytes = 0
        self._wake_timer = Timer(sim, self._try_send, name="%s.wake" % self.name)
        self._tx_complete_ref = self._tx_complete
        # When True, egress transmission is administratively frozen (used
        # to model a dead device still holding the link).
        self._frozen = False

    @property
    def frozen(self):
        return self._frozen

    @frozen.setter
    def frozen(self, value):
        self._frozen = value
        if value and self._train is not None:
            # Freezing mid-train: book everything already departed, then
            # fall back to per-frame mode (whose _try_send honours frozen).
            self.device.settle_trains()
            self._uncoalesce()

    # -- introspection -------------------------------------------------------

    @property
    def connected(self):
        return self.link is not None

    @property
    def queue_lengths(self):
        """Packets queued per priority."""
        self.device.settle_trains()
        return [len(q) for q in self._queues]

    @property
    def queued_bytes(self):
        """Bytes queued per priority."""
        self.device.settle_trains()
        return list(self._queue_bytes)

    @property
    def total_queued_bytes(self):
        self.device.settle_trains()
        return self._total_bytes

    @property
    def total_queued_packets(self):
        self.device.settle_trains()
        return self._total_packets

    def iter_entries(self):
        """Yield ``(priority, packet, meta, enqueued_ns)`` for every queued
        data frame.  Read-only view used by the invariant auditors."""
        self.device.settle_trains()
        for priority, queue in enumerate(self._queues):
            for entry in queue:
                yield priority, entry.packet, entry.meta, entry.enqueued_ns

    def head_packet_bytes(self, priority):
        """Wire size of the head packet of ``priority`` (0 when empty)."""
        self.device.settle_trains()
        queue = self._queues[priority]
        if not queue:
            return 0
        return queue[0].packet.size_bytes

    def is_paused(self, priority):
        """True while PFC holds ``priority`` paused on this port."""
        return self._paused_until[priority] > self.sim.now

    @property
    def any_paused(self):
        now = self.sim.now
        for deadline in self._paused_until:
            if deadline > now:
                return True
        return False

    def pause_remaining_ns(self, priority):
        """Nanoseconds of pause left for ``priority`` (0 if unpaused)."""
        return max(0, self._paused_until[priority] - self.sim.now)

    # -- enqueue -------------------------------------------------------------

    def enqueue(self, packet, priority, meta=None):
        """Queue a data frame at ``priority``; kicks the transmitter."""
        if not 0 <= priority < N_PRIORITIES:
            raise ValueError("priority out of range: %r" % (priority,))
        nbytes = packet.size_bytes
        self._queues[priority].append(_QueueEntry(packet, meta, self.sim.now))
        self._queue_bytes[priority] += nbytes
        self._total_packets += 1
        self._total_bytes += nbytes
        if _TRACE.enabled:
            _TRACE.session.on_port_enqueue(self, packet, priority)
        train = self._train
        if train is not None and priority > train.priority:
            # Strict priority would preempt the train after the frame now
            # on the wire; fall back to per-frame scheduling.
            self.device.settle_trains()
            self._uncoalesce()
        self._try_send()

    def enqueue_control(self, packet):
        """Queue a MAC control frame (pause); precedes all data, never
        itself paused by PFC."""
        if self._train is not None:
            # Control frames take absolute precedence at the next frame
            # boundary -- exactly where the per-frame path re-arms.
            self.device.settle_trains()
            self._uncoalesce()
        self._control_queue.append(packet)
        self._try_send()

    # -- PFC receive side ----------------------------------------------------

    def receive_pause(self, frame):
        """Apply a received PFC pause frame to this port's transmitter.

        Non-zero quanta (re)start the pause clock for the named priority;
        zero quanta resume it immediately (XON).
        """
        if self.link is None:
            raise RuntimeError("pause received on disconnected port %s" % self.name)
        train = self._train
        if train is not None and frame.quanta[train.priority]:
            # A real pause on the train's priority stops further
            # departures; booked frames (and the one on the wire) stand.
            self.device.settle_trains()
            self._uncoalesce()
        now = self.sim.now
        self._sync_pause_accounting()
        got_pause = False
        for priority, quanta in enumerate(frame.quanta):
            if quanta is None:
                continue
            if quanta == 0:
                self._paused_until[priority] = now
                self.stats.resume_rx += 1
            else:
                duration = pause_quanta_to_ns(quanta, self.link.rate_bps)
                self._paused_until[priority] = now + duration
                self.stats.pause_rx += 1
                got_pause = True
                if _TELEMETRY.enabled:
                    _TELEMETRY.session.on_pause_rx(self, duration)
        self._sync_pause_accounting()
        if _TRACE.enabled:
            _TRACE.session.on_pause_rx_port(self, frame)
        if got_pause:
            self._arm_wake()
        else:
            self._try_send()

    def force_resume_all(self):
        """Administratively clear all pause state (watchdog action)."""
        self._sync_pause_accounting()
        for priority in range(N_PRIORITIES):
            self._paused_until[priority] = self.sim.now
        self._sync_pause_accounting()
        if _TRACE.enabled:
            _TRACE.session.on_force_resume(self)
        self._try_send()

    def _sync_pause_accounting(self):
        """Fold elapsed paused time into ``stats.paused_ns``.

        Idempotent: an open interval is settled up to now (or up to the
        quanta expiry if that already passed) and re-opened while the
        port remains paused.  Accounting is lazy, so accessors call this
        too -- a pause that ends by expiry has no event of its own.
        """
        stats = self.stats
        now = self.sim.now
        paused_until = self._paused_until
        since = stats._paused_since
        if since is None:
            # Fast path (the common case: port was not in a pause
            # interval): open one only if some priority is paused now.
            for deadline in paused_until:
                if deadline > now:
                    stats._paused_since = now
                    return
            return
        end = min(now, max(paused_until))
        if end > since:
            stats.paused_ns += end - since
        for deadline in paused_until:
            if deadline > now:
                stats._paused_since = now
                return
        stats._paused_since = None

    def paused_interval_ns(self):
        """Cumulative time this port spent paused (the section 5.2
        "pause intervals" metric)."""
        self._sync_pause_accounting()
        return self.stats.paused_ns

    # -- transmit machinery --------------------------------------------------

    def _arm_wake(self):
        """Schedule a transmit attempt at the earliest pause expiry among
        non-empty queues (if any)."""
        now = self.sim.now
        queues = self._queues
        paused_until = self._paused_until
        earliest = None
        for priority in range(N_PRIORITIES):
            deadline = paused_until[priority]
            if deadline > now and queues[priority]:
                if earliest is None or deadline < earliest:
                    earliest = deadline
        if earliest is not None:
            self._wake_timer.start_at(earliest)

    def _try_send(self):
        if self._busy or self.link is None or self.frozen:
            return
        # Control frames first, always.
        if self._control_queue:
            packet = self._control_queue.popleft()
            self._transmit(packet, priority=None)
            return
        # Strict priority (the common scheduler) is pure and is inlined
        # below -- one attribute walk instead of a method call per frame;
        # DWRR keeps per-pick deficit state and goes through pick().
        fast_sp = type(self.scheduler) is StrictPriorityScheduler
        while True:
            if fast_sp:
                queues = self._queues
                paused_until = self._paused_until
                now = self.sim.now
                priority = None
                for p in range(N_PRIORITIES - 1, -1, -1):
                    if queues[p] and paused_until[p] <= now:
                        priority = p
                        break
            else:
                priority = self.scheduler.pick(self)
            if priority is None:
                # Everything eligible is empty or paused; wake on expiry.
                self._arm_wake()
                self._sync_pause_accounting()
                return
            if (
                self.coalesce_ok
                and self.sim.coalesce_enabled
                and len(self._queues[priority]) > 1
                and self._commit_train(priority)
            ):
                return
            entry = self._queues[priority].popleft()
            nbytes = entry.packet.size_bytes
            self._queue_bytes[priority] -= nbytes
            self._total_packets -= 1
            self._total_bytes -= nbytes
            meta = entry.meta
            if (
                self.drop_flood_at_head
                and meta is not None
                and meta.flood_copy
            ):
                # Drop at head of queue (paper section 4.2): frees buffer
                # only now, after having occupied it the whole wait.
                self.stats.head_drops += 1
                if self.on_dequeue is not None:
                    self.on_dequeue(entry.packet, meta, True)
                continue
            # Start the transmission (marking the port busy) *before*
            # notifying the device: the dequeue callback may refill the
            # queue synchronously, which must not re-enter transmission.
            self._transmit(entry.packet, priority)
            if self.on_dequeue is not None:
                self.on_dequeue(entry.packet, meta, False)
            return

    def _transmit(self, packet, priority):
        self._busy = True
        stats = self.stats
        if packet.pause is not None:
            if packet.pause.paused_priorities:
                stats.pause_tx += 1
            else:
                stats.resume_tx += 1
        elif priority is not None:
            stats.tx_packets[priority] += 1
            stats.tx_bytes[priority] += packet.size_bytes
        serialization_ns = self.link.transmit(self, packet)
        self.sim.schedule0(serialization_ns, self._tx_complete_ref)

    def _tx_complete(self):
        self._busy = False
        self._try_send()

    # -- event coalescing ----------------------------------------------------

    def _commit_train(self, priority):
        """Try to commit a back-to-back departure train at ``priority``.

        Returns True (port busy, train committed) or False (caller falls
        back to the per-frame path).  A train is only legal when nothing
        can preempt or perturb the departure schedule before it finishes:

        * strict-priority scheduler with every higher priority EMPTY (an
          empty-but-paused higher queue could not preempt either, but an
          enqueue to it would -- the enqueue hook uncoalesces, so only
          emptiness at commit time matters);
        * link up, no fault hook, no loss rate (their setters interrupt);
        * no flood-drop candidates inside the train (head-drops re-enter
          the scheduler per frame);
        * the owning device's ``train_gate`` accepts (shared-buffer state
          cannot force a pause emission mid-train -- see Switch).
        """
        if not self.device.train_precheck():
            return False
        queues = self._queues
        for q in range(priority + 1, N_PRIORITIES):
            if queues[q]:
                return False
        link = self.link
        if not link.up or link._fault_hook is not None or link._loss_rate:
            return False
        if type(self.scheduler) is not StrictPriorityScheduler:
            return False
        queue = queues[priority]
        entries = []
        drop_flood = self.drop_flood_at_head
        for entry in queue:
            meta = entry.meta
            if drop_flood and meta is not None and meta.flood_copy:
                break
            entries.append(entry)
            if len(entries) == _TRAIN_MAX:
                break
        if len(entries) < 2:
            return False
        pgs = self.device.train_gate(self, priority, entries)
        if pgs is None:
            return False
        sim = self.sim
        now = sim.now
        ser_cache = link._ser_ns
        prop = link.delay_ns
        schedule1v = sim.schedule1v
        peer_deliver = self.peer_deliver
        dispatch_atime = sim._dispatch_atime
        commit_atime = (
            dispatch_atime >> _ATIME_SHIFT if dispatch_atime is not None else 0
        )
        departs = []
        ends = []
        deliver_events = []
        t = now
        # Dispatcher instant for frame i's virtual events: frame i-1's
        # departure (its elided _tx_complete); for frame 0, the dispatch
        # that is committing the train right now.
        disp = commit_atime
        for entry in entries:
            wire = entry.packet.wire_bytes
            ser = ser_cache.get(wire)
            if ser is None:
                ser = link.ser_ns(wire)
            # Virtual assignment key = (departure instant, dispatcher
            # instant): exactly the key per-frame scheduling would have
            # produced, so same-nanosecond dispatch order downstream is
            # unchanged.
            vkey = (t << _ATIME_SHIFT) | disp
            disp = t
            departs.append(t)
            t += ser
            ends.append(t)
            deliver_events.append(
                schedule1v(t - now + prop, peer_deliver, entry.packet, vkey)
            )
        train = _Train(
            priority, entries, departs, ends, deliver_events, commit_atime, pgs
        )
        # One completion wake-up for the whole train, replacing the last
        # frame's _tx_complete (same virtual key); the other K-1 wake-ups
        # are elided and credited as each frame settles.
        train.complete_event = sim.schedule0v(
            t - now, self._train_complete, (departs[-1] << _ATIME_SHIFT) | departs[-2]
        )
        self._train = train
        self._busy = True
        self.device.register_train_port(self)
        # Frame 0 departs right now: book it (and its buffer release)
        # synchronously, exactly like the per-frame path would.
        self._train_settle(now)
        return True

    def _train_settle(self, now):
        """Book every train frame whose departure time has passed.

        A frame departing exactly *now* is booked only if its per-frame
        wake-up (the predecessor's elided ``_tx_complete``, assigned at
        ``departs[idx-1]``) would have dispatched before the event
        currently being dispatched -- otherwise it stays deferred so the
        same-nanosecond interleaving of buffer releases against arrivals
        matches the per-frame schedule exactly.

        Re-reads ``settle_idx`` each iteration: the on_dequeue callback
        (buffer release) can re-enter settling via device accessors.
        """
        train = self._train
        if train is None:
            return
        departs = train.departs
        n = len(departs)
        priority = train.priority
        queue = self._queues[priority]
        queue_bytes = self._queue_bytes
        stats = self.stats
        sim = self.sim
        dispatch_atime = sim._dispatch_atime
        on_dequeue = self.on_dequeue
        while True:
            idx = train.settle_idx
            if idx >= n or departs[idx] > now:
                return
            if idx and departs[idx] == now and dispatch_atime is not None:
                disp = departs[idx - 2] if idx >= 2 else train.commit_atime
                vkey = (departs[idx - 1] << _ATIME_SHIFT) | disp
                if vkey >= dispatch_atime:
                    return
            entry = queue.popleft()
            nbytes = entry.packet.size_bytes
            queue_bytes[priority] -= nbytes
            self._total_packets -= 1
            self._total_bytes -= nbytes
            stats.tx_packets[priority] += 1
            stats.tx_bytes[priority] += nbytes
            self.link.delivered += 1
            train.settle_idx = idx + 1
            if idx:
                # Frame idx departing == frame idx-1's serialization done:
                # that frame's _tx_complete wake-up was elided.
                sim._elided += 1
            if on_dequeue is not None:
                on_dequeue(entry.packet, entry.meta, False)

    def _train_complete(self):
        """The single scheduled wake-up at the train's last frame end."""
        self._train_settle(self.sim.now)
        self._train = None
        self.device.train_port_done(self)
        self._busy = False
        self._try_send()

    def _uncoalesce(self):
        """Abort the committed train, falling back to per-frame mode.

        The caller must have settled already-departed frames (device-wide)
        first.  Unsent deliveries are cancelled, and the frame currently
        on the wire (settle_idx - 1; at least frame 0 settled at commit)
        gets its ordinary ``_tx_complete`` back at its serialization end
        ``ends[idx-1]``, which is never in the past (``departs[idx] >=
        now`` -- equality only for a booking deferred by the
        same-nanosecond rule in :meth:`_train_settle`).
        """
        train = self._train
        if train is None:
            return
        self._train = None
        self.device.train_port_done(self)
        train.complete_event.cancel()
        idx = train.settle_idx
        for event in train.deliver_events[idx:]:
            event.cancel()
        del train.deliver_events[idx:]
        # Re-arm with the per-frame virtual assignment key (the wire
        # frame's departure, dispatched by its predecessor's completion)
        # so the restored wake-up keeps the position its elided
        # counterpart would have had.
        departs = train.departs
        disp = departs[idx - 2] if idx >= 2 else train.commit_atime
        sim = self.sim
        sim.schedule0v(
            train.ends[idx - 1] - sim.now,
            self._tx_complete_ref,
            (departs[idx - 1] << _ATIME_SHIFT) | disp,
        )

    def deliver(self, packet):
        """Called by the link when a frame arrives at this port; hands the
        frame to the owning device."""
        self.device.handle_packet(self, packet)

    def record_rx(self, packet, priority):
        """Account a received data frame (devices call this after
        classification, since priority depends on device config)."""
        self.stats.rx_packets[priority] += 1
        self.stats.rx_bytes[priority] += packet.size_bytes

    def __repr__(self):
        return "Port(%s, queued=%dB%s)" % (
            self.name,
            self.total_queued_bytes,
            ", paused" if self.any_paused else "",
        )


class BoundaryProxy:
    """Stands in for the far end of a cut link in a sharded parallel run.

    In a space-parallel run (:mod:`repro.sim.parallel`) every worker
    holds a complete fabric replica but simulates only its shard; a cut
    link's far-end device belongs to another shard.  Installing a proxy
    sets :attr:`Link.divert <repro.net.link.Link>`, so a frame departing
    over the cut is *captured* instead of locally delivered: the proxy
    records the frame together with

    * its would-be **arrival instant** (``now + serialization +
      propagation``),
    * the packed **assignment key** the serial engine's ``schedule1``
      would have stamped on the delivery event (the transmit instant and
      the transmitting dispatch's own key -- see
      ``repro.sim.engine._ATIME_SHIFT``),
    * the **direction** (0: ``port_a`` transmitted, 1: ``port_b`` did)
      and a per-shard monotone **origin sequence**,

    into a shared outbox that the runner drains at the next window
    barrier.  The receiving shard re-creates the exact serial delivery
    with ``Simulator.inject(arrival, far_port.deliver, packet, key)``.

    The transmitting port's busy time, the link ``delivered`` counter
    and any loss/fault verdicts all happen sender-side before the
    divert, exactly as in a serial run.
    """

    __slots__ = ("sim", "link", "link_index", "outbox", "_next_seq")

    def __init__(self, sim, link, link_index, outbox, next_seq):
        self.sim = sim
        self.link = link
        self.link_index = link_index
        self.outbox = outbox
        # Shared mutable [counter]: one origin-sequence stream per shard
        # (not per link), so the barrier sort's (origin shard, origin
        # seq) tie-break reproduces the shard's own transmit order.
        self._next_seq = next_seq
        link.divert = self._divert

    def _divert(self, from_port, packet, transit_ns):
        sim = self.sim
        now = sim._now
        seq = self._next_seq[0]
        self._next_seq[0] = seq + 1
        self.outbox.append(
            (
                now + transit_ns,
                (now << _ATIME_SHIFT) | sim._dispatch_coarse,
                self.link_index,
                0 if from_port is self.link.port_a else 1,
                seq,
                packet,
            )
        )

    def detach(self):
        self.link.divert = None
