"""Shared device plumbing: ports, links and the device base class.

Both switches (:mod:`repro.switch`) and NICs (:mod:`repro.nic`) are built
from the same primitives:

* :class:`~repro.net.port.Port` -- an egress port with eight per-priority
  queues, a control queue for pause frames, an 802.1Qbb pause state machine
  on the transmit side, and pluggable scheduling (strict priority or DWRR).
* :class:`~repro.net.link.Link` -- a full-duplex point-to-point link with a
  serialization stage (line rate), propagation delay (cable length) and
  optional random loss (FCS errors, per section 4.1's observation that
  "packet losses can still happen for various other reasons").
* :class:`~repro.net.device.Device` -- the base class that owns ports and
  receives delivered packets.
"""

from repro.net.device import Device
from repro.net.link import Link
from repro.net.port import DwrrScheduler, Port, StrictPriorityScheduler

__all__ = [
    "Device",
    "Link",
    "Port",
    "StrictPriorityScheduler",
    "DwrrScheduler",
]
