"""Base class for network devices (switches and NICs)."""

from repro.net.port import Port


class Device:
    """Anything that owns ports and handles delivered frames."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.ports = []

    def add_port(self, **kwargs):
        """Allocate the next port on this device."""
        port = Port(self.sim, self, len(self.ports), **kwargs)
        port.on_dequeue = self._on_port_dequeue
        self.ports.append(port)
        return port

    def handle_packet(self, port, packet):
        """Called by a port when the link delivers a frame to it."""
        raise NotImplementedError

    def _on_port_dequeue(self, packet, meta, dropped_at_head):
        """Called by a port whenever an entry leaves its queues.  Devices
        with shared-buffer accounting override this."""

    def __repr__(self):
        return "%s(%s, %d ports)" % (type(self).__name__, self.name, len(self.ports))
