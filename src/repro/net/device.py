"""Base class for network devices (switches and NICs)."""

from repro.net.port import Port


class Device:
    """Anything that owns ports and handles delivered frames."""

    #: Whether a peer port may commit a coalesced departure train whose
    #: deliveries land on this device.  True for leaf devices (NICs):
    #: each arrival touches only that NIC's private state.  Switches
    #: override to False -- their shared-buffer admits interleave with
    #: arrivals from *other* ports at the same nanosecond, and ports
    #: transmitting in lockstep (identical departure histories) make that
    #: interleaving depend on unreconstructible seq history.
    coalesced_delivery_ok = True

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.ports = []

    def add_port(self, **kwargs):
        """Allocate the next port on this device."""
        port = Port(self.sim, self, len(self.ports), **kwargs)
        port.on_dequeue = self._on_port_dequeue
        self.ports.append(port)
        return port

    def handle_packet(self, port, packet):
        """Called by a port when the link delivers a frame to it."""
        raise NotImplementedError

    # -- event coalescing hooks ---------------------------------------------
    # Ports consult their owning device before/while coalescing departure
    # trains.  The base device never coalesces (train_gate refuses), so
    # these are no-ops everywhere except Switch.

    def settle_trains(self):
        """Book any lazily-settled train frames up to now."""

    def train_precheck(self):
        """O(1) pre-gate consulted before a train commit scans its queue;
        False refuses immediately.  The base device has no train_gate, so
        it always refuses here (cheaply)."""
        return False

    def train_gate(self, port, priority, entries):
        """Return per-train device state if ``port`` may commit a
        departure train over ``entries``, else None (refuse)."""
        return None

    def register_train_port(self, port):
        """A train was committed on ``port``."""

    def train_port_done(self, port):
        """The train on ``port`` completed or was uncoalesced."""

    def _on_port_dequeue(self, packet, meta, dropped_at_head):
        """Called by a port whenever an entry leaves its queues.  Devices
        with shared-buffer accounting override this."""

    def __repr__(self):
        return "%s(%s, %d ports)" % (type(self).__name__, self.name, len(self.ports))
