"""Full-duplex point-to-point links.

A link joins exactly two ports.  Each direction models:

* **serialization** -- ``wire_bytes`` (frame + preamble + IPG) clocked at
  the line rate; the sending port stays busy for this long;
* **propagation** -- a fixed delay derived from cable length.  The paper's
  PFC headroom analysis (section 2) hinges on this: a pause frame takes a
  propagation delay to arrive, during which the upstream keeps
  transmitting.
* **loss injection** -- an optional random loss probability models FCS
  errors and switch bugs ("packet losses can still happen for various
  other reasons", section 4.1).  Loss never applies to pause frames,
  mirroring the far smaller exposure of 64-byte control frames.
"""

from repro.sim.units import propagation_delay_ns, serialization_delay_ns
from repro.tracing.hooks import HUB as _TRACE


class Link:
    """Connects ``port_a`` and ``port_b`` bidirectionally."""

    # rate_bps -> {wire_bytes -> serialization ns}, shared across every
    # link of the same speed: a Clos fabric has hundreds of identical
    # links carrying the same handful of frame sizes, so deriving the
    # ceiling division per link wasted both time and memory.
    _SER_CACHES = {}

    def __init__(
        self,
        sim,
        port_a,
        port_b,
        rate_bps,
        delay_ns=None,
        cable_meters=2,
        loss_rate=0.0,
        loss_rng=None,
        name=None,
    ):
        if port_a.link is not None or port_b.link is not None:
            raise RuntimeError("port already connected")
        if loss_rate and loss_rng is None:
            raise ValueError("loss_rate requires a loss_rng stream")
        self.sim = sim
        self.rate_bps = int(rate_bps)
        self.delay_ns = propagation_delay_ns(cable_meters) if delay_ns is None else int(delay_ns)
        self._loss_rate = loss_rate
        self._loss_rng = loss_rng
        self.name = name or "%s<->%s" % (port_a.name, port_b.name)
        self.port_a = port_a
        self.port_b = port_b
        port_a.link = self
        port_b.link = self
        port_a.peer = port_b
        port_b.peer = port_a
        # Bound far-end deliver methods, cached so the per-frame schedule
        # call skips two attribute hops.
        port_a.peer_deliver = port_b.deliver
        port_b.peer_deliver = port_a.deliver
        # Departure trains only toward devices whose arrivals cannot
        # interleave with shared ingress state (see
        # Device.coalesced_delivery_ok).
        if not port_b.device.coalesced_delivery_ok:
            port_a.coalesce_ok = False
        if not port_a.device.coalesced_delivery_ok:
            port_b.coalesce_ok = False
        self.up = True
        # wire_bytes -> serialization ns, shared per line rate.
        self._ser_ns = Link._SER_CACHES.setdefault(self.rate_bps, {})
        # Optional boundary divert: ``fn(from_port, packet, transit_ns)``.
        # Installed by the parallel runner on cut links, where the far
        # end lives in another shard's replica: instead of scheduling a
        # local delivery event, the departing frame (with its would-be
        # arrival instant) is captured for the next window exchange.
        # See repro.net.port.BoundaryProxy.
        self.divert = None
        # Optional fault-injection hook: ``fn(link, packet)`` returning
        # None (deliver normally), ``("drop", None)``, ``("corrupt", None)``
        # or ``("delay", extra_ns)``.  Installed by repro.faults; the link
        # itself stays policy-free.  A property: committed departure
        # trains assume a clean link, so installing a hook (like raising
        # loss_rate or set_down) interrupts them.
        self._fault_hook = None
        # Counters.
        self.delivered = 0
        self.lost = 0
        self.injected_drops = 0
        self.corrupted = 0
        self.reordered = 0
        self.flaps = 0

    @property
    def loss_rate(self):
        return self._loss_rate

    @loss_rate.setter
    def loss_rate(self, value):
        self._loss_rate = value
        if value:
            self._interrupt_trains()

    @property
    def fault_hook(self):
        return self._fault_hook

    @fault_hook.setter
    def fault_hook(self, value):
        self._fault_hook = value
        if value is not None:
            self._interrupt_trains()

    def _interrupt_trains(self):
        """Uncoalesce any committed departure train on either endpoint:
        the train's precomputed deliveries assumed a clean, up link."""
        for port in (self.port_a, self.port_b):
            if port._train is not None:
                port.device.settle_trains()
                port._uncoalesce()

    def ser_ns(self, wire_bytes):
        """Serialization delay for ``wire_bytes`` at this line rate
        (cached per rate)."""
        serialization_ns = self._ser_ns.get(wire_bytes)
        if serialization_ns is None:
            serialization_ns = serialization_delay_ns(wire_bytes, self.rate_bps)
            self._ser_ns[wire_bytes] = serialization_ns
        return serialization_ns

    def other(self, port):
        """The port at the far end from ``port``."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError("port %s is not on link %s" % (port.name, self.name))

    def transmit(self, from_port, packet):
        """Start clocking ``packet`` out of ``from_port``.

        Returns the serialization delay (ns); the caller keeps the port
        busy for that long.  Delivery at the far end is scheduled for
        serialization + propagation later (cut-through is not modelled;
        the paper's switches are store-and-forward shared-buffer parts).
        """
        wire_bytes = packet.wire_bytes
        serialization_ns = self._ser_ns.get(wire_bytes)
        if serialization_ns is None:
            serialization_ns = serialization_delay_ns(wire_bytes, self.rate_bps)
            self._ser_ns[wire_bytes] = serialization_ns
        if _TRACE.enabled:
            _TRACE.session.on_wire(self, from_port, packet, serialization_ns)
        if not self.up:
            self.lost += 1
            return serialization_ns
        if (
            self._loss_rate
            and not packet.is_pause
            and self._loss_rng.random() < self._loss_rate
        ):
            self.lost += 1
            return serialization_ns
        extra_delay_ns = 0
        if self._fault_hook is not None:
            verdict = self._fault_hook(self, packet)
            if verdict is not None:
                kind, arg = verdict
                if kind == "drop":
                    self.lost += 1
                    self.injected_drops += 1
                    return serialization_ns
                if kind == "corrupt":
                    # The frame clocks out and arrives mangled: the far
                    # end's FCS/ICRC check discards it, so corruption is
                    # non-delivery that still consumed wire time.
                    self.lost += 1
                    self.corrupted += 1
                    return serialization_ns
                if kind == "delay":
                    # Held in a (modelled) faulty buffer stage: arrives
                    # late, potentially behind packets sent after it.
                    self.reordered += 1
                    extra_delay_ns = int(arg)
                else:
                    raise ValueError("unknown fault verdict: %r" % (verdict,))
        if self.divert is not None:
            # Cut link in a sharded run: the frame leaves this replica.
            # ``delivered`` still counts here (the sender-side replica
            # owns the transmit), but no local event is scheduled -- the
            # receiving shard injects the one delivery dispatch.
            self.delivered += 1
            self.divert(
                from_port, packet, serialization_ns + self.delay_ns + extra_delay_ns
            )
            return serialization_ns
        # from_port.peer_deliver was wired by __init__; equivalent to
        # self.other(from_port).deliver without the identity checks.
        # schedule1 draws the event from the engine's free-list.
        self.sim.schedule1(
            serialization_ns + self.delay_ns + extra_delay_ns,
            from_port.peer_deliver,
            packet,
        )
        self.delivered += 1
        return serialization_ns

    def set_down(self):
        """Take the link down: frames in flight still arrive; new frames
        are black-holed."""
        if self.up:
            self.flaps += 1
        self.up = False
        self._interrupt_trains()

    def set_up(self):
        self.up = True

    def __repr__(self):
        return "Link(%s, %d b/s, %dns%s)" % (
            self.name,
            self.rate_bps,
            self.delay_ns,
            "" if self.up else ", DOWN",
        )


def connect(sim, device_a, device_b, rate_bps, **kwargs):
    """Convenience: allocate a fresh port on each device and link them.

    Returns ``(port_a, port_b, link)``.
    """
    port_a = device_a.add_port()
    port_b = device_b.add_port()
    link = Link(sim, port_a, port_b, rate_bps, **kwargs)
    return port_a, port_b, link
