"""E3 -- the NIC PFC pause frame storm (paper section 4.3, figures 5
and 9).

One server's NIC receive pipeline dies while the NIC keeps generating
pause frames.  Without watchdogs the pauses cascade: ToR -> Leaves ->
Spines -> other Leaves -> other ToRs -> every server; "a single
malfunctioning NIC may block the entire network".  The NIC-side and
switch-side watchdogs confine the damage to the victim.

Timescales are compressed (the production watchdog constants of 100 ms /
200 ms poll at the same *ratios* here) so the packet-level run stays
tractable; the dynamics are unchanged.
"""

from repro.sim import SeededRng
from repro.sim.units import MB, MS, US
from repro.nic.nic import NicConfig, NicWatchdogConfig
from repro.switch.buffer import BufferConfig
from repro.switch.watchdog import SwitchWatchdogConfig
from repro.sim.units import KB
from repro.topo import three_tier_clos
from repro.experiments.common import ExperimentResult, run_under_audit, saturate_pairs


class StormResult(ExperimentResult):
    title = "E3: NIC PFC pause frame storm (section 4.3)"


def _build(watchdogs, seed, nic_watchdog_ns, switch_reenable_ns, poll_ns):
    nic_config = NicConfig(
        watchdog_config=NicWatchdogConfig(
            stall_threshold_ns=nic_watchdog_ns,
            poll_interval_ns=poll_ns,
            enabled=watchdogs,
        )
    )
    topo = three_tier_clos(
        n_podsets=2,
        tors_per_podset=2,
        hosts_per_tor=2,
        leaves_per_podset=2,
        n_spines=2,
        seed=seed,
        nic_config=nic_config,
        buffer_config=BufferConfig(alpha=None, xoff_static_bytes=96 * KB),
    ).boot()
    if watchdogs:
        for podset in topo.podsets:
            for tor in podset["tors"]:
                tor.enable_storm_watchdog(
                    SwitchWatchdogConfig(
                        poll_interval_ns=poll_ns, reenable_after_ns=switch_reenable_ns
                    )
                )
    return topo


def _goodput_window(senders, sim, window_ns):
    before = [s.completed_bytes for s in senders]
    sim.run(until=sim.now + window_ns)
    after = [s.completed_bytes for s in senders]
    return [(b - a) * 8.0 / window_ns for a, b in zip(before, after)]  # Gb/s each


def _run_scenario(watchdogs, seed):
    poll_ns = int(0.5 * MS)
    nic_watchdog_ns = 2 * MS
    switch_reenable_ns = 4 * MS
    topo = _build(watchdogs, seed, nic_watchdog_ns, switch_reenable_ns, poll_ns)
    sim = topo.sim
    # Pause liveness bound sits above the watchdog reaction time: with
    # watchdogs on, every pause must resolve inside it (zero violations);
    # with them off the storm trips the auditors -- that asymmetry is the
    # row's point.
    registry = run_under_audit(topo.fabric, max_stall_ns=3 * MS)
    rng = SeededRng(seed, "storm")
    hosts = topo.hosts
    # hosts order: P0T0-S0, P0T0-S1, P0T1-S0, P0T1-S1, then podset 1.
    victim = hosts[0]
    # The victim is a busy server (figure 5's premise): fan-in from
    # several ToRs keeps victim-bound traffic on every spine path, so
    # the pause cascade poisons the whole fabric.
    pairs = [(hosts[4], victim), (hosts[6], victim), (hosts[2], victim)]
    # Innocent background flows, cross-podset both ways.
    pairs += [
        (hosts[1], hosts[5]),
        (hosts[5], hosts[1]),
        (hosts[3], hosts[7]),
        (hosts[7], hosts[3]),
    ]
    senders = saturate_pairs(sim, pairs, 1 * MB, rng)

    baseline = _goodput_window(senders, sim, 2 * MS)
    victim_nic = victim.nic
    victim_nic.break_rx_pipeline()
    sim.run(until=sim.now + 4 * MS)  # let the storm develop / watchdogs act
    during = _goodput_window(senders, sim, 2 * MS)

    blocked = sum(
        1
        for base, now in zip(baseline, during)
        if base > 0.5 and now < 0.1 * base
    )
    pause_rx_per_host = [h.nic.port.stats.pause_rx for h in hosts]
    return {
        "watchdogs": "on" if watchdogs else "off",
        "baseline_gbps_total": sum(baseline),
        "storm_gbps_total": sum(during),
        "flows_blocked": blocked,
        "flows_total": len(senders),
        "victim_pauses_sent": victim_nic.stats.pause_generated,
        "hosts_receiving_pauses": sum(1 for c in pause_rx_per_host if c > 0),
        "nic_watchdog_tripped": victim_nic.watchdog_trips,
        "switch_watchdog_trips": sum(
            sum(w.trips for w in tor._watchdogs.values())
            for podset in topo.podsets
            for tor in podset["tors"]
        ),
        "invariant_violations": registry.violation_count,
    }


def run_storm(seed=1):
    """Reproduce the PFC storm and its watchdog containment.

    Expected shape: watchdogs-off blocks (nearly) the whole fabric;
    watchdogs-on confines the damage to the victim's flows and keeps
    aggregate goodput close to baseline.
    """
    rows = [_run_scenario(False, seed), _run_scenario(True, seed)]
    return StormResult(rows)
