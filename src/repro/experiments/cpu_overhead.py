"""E10 -- CPU overhead of TCP vs RDMA (paper section 1).

"Sending at 40Gb/s using 8 TCP connections chews up 6% aggregate CPU
time on a 32 core Intel Xeon E5-2690 Windows 2012R2 server.  Receiving
at 40Gb/s using 8 connections requires 12% aggregate CPU time. ...
Every server was sending and receiving at 8Gb/s with the CPU utilization
close to 0%" (the latter from the figure 7 RDMA run).
"""

from repro.sim.units import gbps
from repro.tcp.kernel import CpuModel
from repro.experiments.common import ExperimentResult


class CpuOverheadResult(ExperimentResult):
    title = "E10: CPU overhead, TCP vs RDMA (section 1)"


def run_cpu_overhead(rates_gbps=(10, 25, 40, 50, 100), cores=32):
    """Reproduce the section 1 CPU numbers and extrapolate.

    Expected shape: TCP at 40 Gb/s costs ~6% (send) / ~12% (receive) of
    32 cores and scales linearly toward untenable at 100 GbE (the
    paper's planned upgrade); RDMA stays ~0.
    """
    model = CpuModel(cores=cores)
    rows = []
    for rate in rates_gbps:
        rate_bps = gbps(rate)
        rows.append(
            {
                "rate_gbps": rate,
                "tcp_send_cpu_pct": 100 * model.send_cpu_fraction(rate_bps),
                "tcp_recv_cpu_pct": 100 * model.recv_cpu_fraction(rate_bps),
                "tcp_cores_busy": cores
                * (model.send_cpu_fraction(rate_bps) + model.recv_cpu_fraction(rate_bps)),
                "rdma_cpu_pct": 100 * CpuModel.rdma_cpu_fraction(rate_bps),
            }
        )
    return CpuOverheadResult(rows)
