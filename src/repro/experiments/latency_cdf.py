"""E4 -- RDMA vs TCP latency for a latency-sensitive service (paper
section 5.4, figure 6).

The measured service: ~350 Mb/s per server of bursty, many-to-one incast
traffic; the fabric itself is not the bottleneck.  RDMA and TCP each
carry half the traffic in their own classes.  Latency is measured by
Pingmesh probes riding the same classes.

Paper result: p99 latency 90 us (RDMA) vs 700 us (TCP), TCP spiking to
milliseconds; even RDMA's p99.9 (~200 us) beats TCP's p99.  The
mechanisms are kernel-stack overhead plus "occasional incast packet
drops" for TCP, both of which RDMA eliminates (PFC prevents the drops).
"""

from repro.analysis.percentiles import percentile
from repro.monitoring.pingmesh import Pingmesh
from repro.rdma.qp import QpConfig, TrafficClass
from repro.rdma.verbs import connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MS, US
from repro.tcp import connect_tcp_pair
from repro.topo import single_switch
from repro.workloads import PeriodicIncast, RdmaChannel, TcpChannel
from repro.experiments.common import ExperimentResult, apply_ets_weights


class LatencyVsTcpResult(ExperimentResult):
    title = "E4: RDMA vs TCP latency, figure 6 (section 5.4)"


class _TcpEchoProbe:
    """TCP Pingmesh equivalent: 512-byte echo, RTT at the client."""

    def __init__(self, sim, conn_client, conn_server):
        self.sim = sim
        self.conn_client = conn_client
        self.conn_server = conn_server
        self.rtts_ns = []
        self._sent_at = None

    def launch(self):
        if self._sent_at is not None:
            return  # previous probe still pending
        self._sent_at = self.sim.now
        self.conn_client.send_message(512, on_delivered=self._at_server)

    def _at_server(self, _latency):
        self.conn_server.send_message(512, on_delivered=self._back)

    def _back(self, _latency):
        self.rtts_ns.append(self.sim.now - self._sent_at)
        self._sent_at = None


def run_latency_vs_tcp(
    n_hosts=8,
    duration_ns=400 * MS,
    burst_bytes=48 * KB,
    incast_fanin=4,
    incast_period_ns=2 * MS,
    probe_interval_ns=1 * MS,
    seed=1,
):
    """Reproduce figure 6's percentile comparison.

    Expected shape: RDMA p99 well under TCP p99 (several-fold); TCP max
    in the milliseconds; RDMA p99.9 < TCP p99.
    """
    from repro.switch.buffer import BufferConfig

    topo = single_switch(
        n_hosts=n_hosts,
        seed=seed,
        # Shallow thresholds: the lossy (TCP) class overflows its egress
        # queue under synchronized incast bursts; the lossless class
        # gets PFC instead -- the figure 6 mechanism.
        buffer_config=BufferConfig(
            alpha=None, xoff_static_bytes=96 * KB, lossy_egress_cap_bytes=80 * KB
        ),
    ).boot()
    sim, fabric = topo.sim, topo.fabric
    rng = SeededRng(seed, "latency-cdf")
    apply_ets_weights(fabric, {3: 4, 1: 4, 0: 1})
    hosts = topo.hosts

    # Background service traffic: many-to-one incast on both transports,
    # half the load each (as in the measured data center).  An incast
    # group's responses are *synchronized* (that is what incast means);
    # different victims burst at independent phases.
    rdma_incasts = []
    tcp_incasts = []
    tcp_channels = []
    for victim_idx in range(n_hosts):
        victim = hosts[victim_idx]
        sources = [hosts[(victim_idx + k + 1) % n_hosts] for k in range(incast_fanin)]
        rdma_channels = []
        victim_tcp_channels = []
        for src in sources:
            qp, _ = connect_qp_pair(
                src, victim, rng,
                config_a=QpConfig(traffic_class=TrafficClass(dscp=3, priority=3)),
                config_b=QpConfig(traffic_class=TrafficClass(dscp=3, priority=3)),
            )
            rdma_channels.append(RdmaChannel(qp))
            conn_src, _conn_dst = connect_tcp_pair(src, victim, rng)
            victim_tcp_channels.append(TcpChannel(conn_src))
        tcp_channels.extend(victim_tcp_channels)
        rdma_incasts.append(
            PeriodicIncast(
                sim, rdma_channels, burst_bytes, incast_period_ns,
                rng=rng.child("jit-r%d" % victim_idx), jitter_ns=30 * US,
            ).start(initial_delay_ns=int(rng.uniform(0, incast_period_ns)))
        )
        tcp_incasts.append(
            PeriodicIncast(
                sim, victim_tcp_channels, burst_bytes, incast_period_ns,
                rng=rng.child("jit-t%d" % victim_idx), jitter_ns=30 * US,
            ).start(initial_delay_ns=int(rng.uniform(0, incast_period_ns)))
        )

    # Probes: RDMA Pingmesh + TCP echo between distinct host pairs.
    pingmesh = Pingmesh(
        sim, rng.child("pm"), interval_ns=probe_interval_ns,
        traffic_class=TrafficClass(dscp=3, priority=3),
    )
    tcp_probes = []
    for i in range(0, n_hosts - 1, 2):
        pingmesh.add_pair(hosts[i], hosts[i + 1])
        conn_a, conn_b = connect_tcp_pair(hosts[i], hosts[i + 1], rng)
        tcp_probes.append(_TcpEchoProbe(sim, conn_a, conn_b))
    pingmesh.start()

    probe_rng = rng.child("tcp-probe")

    def tcp_probe_tick():
        for probe in tcp_probes:
            probe.launch()
        jitter = int(probe_rng.uniform(0, probe_interval_ns * 0.8))
        sim.schedule(probe_interval_ns // 2 + jitter, tcp_probe_tick)

    tcp_probe_tick()
    sim.run(until=sim.now + duration_ns)
    pingmesh.stop()
    for incast in rdma_incasts + tcp_incasts:
        incast.stop()

    rdma_rtts = pingmesh.rtts_ns()
    tcp_rtts = [r for probe in tcp_probes for r in probe.rtts_ns]
    rows = []
    for name, rtts, extra in (
        ("rdma", rdma_rtts, {"drops": 0}),
        ("tcp", tcp_rtts, {}),
    ):
        row = {
            "transport": name,
            "probes": len(rtts),
            "p50_us": percentile(rtts, 50) / US,
            "p99_us": percentile(rtts, 99) / US,
            "p99.9_us": percentile(rtts, 99.9) / US,
            "max_us": max(rtts) / US,
        }
        rows.append(row)
    rows[0]["switch_drops_in_class"] = _drops_for_priority(topo.tor, lossless=True)
    rows[1]["switch_drops_in_class"] = (
        topo.tor.counters.drops["buffer-lossy"]
        + topo.tor.counters.drops["egress-lossy"]
    )
    rows.append(
        {
            "transport": "tcp-recovery",
            "probes": sum(
                c.connection.stats.rtos + c.connection.stats.fast_retransmits
                for c in tcp_channels
            ),
            "p50_us": None,
            "p99_us": None,
            "p99.9_us": None,
            "max_us": None,
            "switch_drops_in_class": None,
        }
    )
    return LatencyVsTcpResult(rows)


def _drops_for_priority(switch, lossless):
    """Headroom-overflow drops (must be zero -- RDMA loses nothing)."""
    return switch.counters.drops["buffer-headroom-overflow"]
