"""Ablations: the design choices DESIGN.md calls out, swept.

These go beyond the paper's own tables to quantify its qualitative
claims and its section 8.1 future-work directions:

* :func:`run_cc_comparison` -- none vs DCQCN vs TIMELY on the same
  congested fabric ("the lessons ... apply to the networks using TIMELY
  as well", section 2);
* :func:`run_alpha_sweep` -- the dynamic-buffer parameter swept across
  the section 6.2 range and beyond;
* :func:`run_ecn_sweep` -- DCQCN's Kmin vs PFC pause generation ("small
  queue lengths reduce the PFC generation ... probability");
* :func:`run_gbn_waste` -- go-back-N's RTT x C retransmission waste vs
  cable length (the cost the paper accepts in section 4.1);
* :func:`run_routing_models` -- ECMP vs idealized max-min vs per-packet
  spraying on the figure 7 fabric (section 8.1);
* :func:`run_interdc_distance` -- PFC headroom vs link distance, the
  arithmetic behind "RoCEv2 works only for servers under the same Spine
  switch layer".
"""

from repro.analysis.percentiles import percentile
from repro.dcqcn import DcqcnConfig, enable_dcqcn
from repro.flows import ClosFlowModel
from repro.monitoring.pingmesh import Pingmesh
from repro.rdma.qp import QpConfig, TrafficClass
from repro.rdma.verbs import connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US, gbps
from repro.switch.buffer import BufferConfig, headroom_bytes
from repro.switch.ecn import EcnConfig
from repro.timely import TimelyConfig, enable_timely
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel
from repro.experiments.common import ExperimentResult


class AblationResult(ExperimentResult):
    def __init__(self, title, rows):
        self.title = title
        super().__init__(rows)


# --- congestion control comparison -------------------------------------------------


def _congested_fabric(seed, ecn_enabled):
    return single_switch(
        n_hosts=5,
        seed=seed,
        buffer_config=BufferConfig(alpha=None, xoff_static_bytes=48 * KB),
        ecn_config=EcnConfig(kmin_bytes=10 * KB, kmax_bytes=40 * KB, pmax=0.3,
                             enabled=ecn_enabled),
    ).boot()


def run_cc_comparison(duration_ns=15 * MS, seed=21):
    """4:1 incast under no CC, DCQCN and TIMELY.

    Expected shape: both controllers slash pause generation and the
    probe tail relative to PFC-only; neither drops a packet.
    """
    rows = []
    for mode in ("none", "dcqcn", "timely"):
        topo = _congested_fabric(seed, ecn_enabled=(mode == "dcqcn"))
        sim = topo.sim
        rng = SeededRng(seed, "cc-%s" % mode)
        victim = topo.hosts[0]
        senders = []
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            if mode == "dcqcn":
                enable_dcqcn(qp, DcqcnConfig())
            elif mode == "timely":
                enable_timely(qp, TimelyConfig(t_low_ns=8 * US, t_high_ns=25 * US))
            senders.append(ClosedLoopSender(RdmaChannel(qp), 64 * KB).start())
        pingmesh = Pingmesh(sim, rng.child("pm"), interval_ns=int(0.5 * MS))
        pingmesh.add_pair(topo.hosts[1], victim)
        pingmesh.start()
        start = sim.now
        sim.run(until=start + duration_ns)
        elapsed = sim.now - start
        rtts = pingmesh.rtts_ns()
        rows.append(
            {
                "cc": mode,
                "pause_frames": topo.tor.pause_frames_sent(),
                "probe_p99_us": percentile(rtts, 99) / US if rtts else None,
                "goodput_gbps": sum(s.completed_bytes for s in senders) * 8.0 / elapsed,
                "drops": topo.fabric.total_drops(),
                "ecn_marks": topo.tor.counters.ecn_marked,
            }
        )
    return AblationResult("Ablation: congestion control (none / DCQCN / TIMELY)", rows)


# --- alpha sweep ----------------------------------------------------------------------


def run_alpha_sweep(alphas=(1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4),
                    duration_ns=10 * MS, seed=22):
    """Incast pause generation across the dynamic-threshold range.

    Expected shape: monotone -- smaller alpha, earlier pauses, more of
    them (the section 6.2 incident generalized).
    """
    rows = []
    for alpha in alphas:
        topo = single_switch(
            n_hosts=5, seed=seed, buffer_config=BufferConfig(alpha=alpha)
        ).boot()
        rng = SeededRng(seed, "alpha-%g" % alpha)
        victim = topo.hosts[0]
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            ClosedLoopSender(RdmaChannel(qp), 512 * KB).start()
        topo.sim.run(until=topo.sim.now + duration_ns)
        rows.append(
            {
                "alpha": "1/%d" % round(1 / alpha),
                "threshold_kb": topo.tor.buffer.threshold() // KB,
                "pause_frames": topo.tor.pause_frames_sent(),
                "drops": topo.fabric.total_drops(),
            }
        )
    return AblationResult("Ablation: dynamic buffer alpha sweep", rows)


# --- ECN threshold sweep ----------------------------------------------------------------


def run_ecn_sweep(kmin_values_kb=(5, 10, 20, 40, 80), duration_ns=10 * MS, seed=23):
    """DCQCN marking aggressiveness vs PFC pause generation.

    Expected shape: earlier marking (small Kmin) means senders slow
    before queues reach XOFF -- fewer pauses, at some goodput cost.
    """
    rows = []
    for kmin in kmin_values_kb:
        topo = single_switch(
            n_hosts=5,
            seed=seed,
            buffer_config=BufferConfig(alpha=None, xoff_static_bytes=64 * KB),
            ecn_config=EcnConfig(
                kmin_bytes=kmin * KB, kmax_bytes=4 * kmin * KB, pmax=0.3
            ),
        ).boot()
        rng = SeededRng(seed, "ecn-%d" % kmin)
        victim = topo.hosts[0]
        senders = []
        for src in topo.hosts[1:]:
            qp, _ = connect_qp_pair(src, victim, rng)
            enable_dcqcn(qp)
            senders.append(ClosedLoopSender(RdmaChannel(qp), 256 * KB).start())
        start = topo.sim.now
        topo.sim.run(until=start + duration_ns)
        elapsed = topo.sim.now - start
        rows.append(
            {
                "kmin_kb": kmin,
                "ecn_marks": topo.tor.counters.ecn_marked,
                "pause_frames": topo.tor.pause_frames_sent(),
                "goodput_gbps": sum(s.completed_bytes for s in senders) * 8.0 / elapsed,
            }
        )
    return AblationResult("Ablation: DCQCN Kmin vs PFC pause generation", rows)


# --- TCP flavour: Reno vs DCTCP ----------------------------------------------------------------


def run_tcp_flavours(duration_ns=80 * MS, seed=26):
    """The TCP class under incast: Reno vs DCTCP.

    The paper keeps TCP in a lossy class where incast means drops and
    RTO-scale tails (figure 6); its authors' companion work on ECN
    tuning [38] points at the fix this ablation measures: DCTCP reacts
    to CE marks before the lossy queue overflows.

    Expected shape: DCTCP takes far fewer drops and a shorter message
    tail for the same offered incast.
    """
    from repro.switch.ecn import EcnConfig as _Ecn
    from repro.tcp import TcpConfig, connect_tcp_pair

    rows = []
    for flavour in ("reno", "dctcp"):
        topo = single_switch(
            n_hosts=5,
            seed=seed,
            buffer_config=BufferConfig(
                alpha=None, xoff_static_bytes=96 * KB, lossy_egress_cap_bytes=128 * KB
            ),
            ecn_config=_Ecn(kmin_bytes=10 * KB, kmax_bytes=40 * KB, pmax=0.5),
        ).boot()
        rng = SeededRng(seed, "tcpflav-%s" % flavour)
        victim = topo.hosts[0]
        latencies = []
        connections = []

        def config():
            return TcpConfig(ecn_enabled=(flavour == "dctcp"))

        for src in topo.hosts[1:]:
            conn, _ = connect_tcp_pair(src, victim, rng, config_a=config(), config_b=config())
            connections.append(conn)
            for _ in range(4):
                conn.send_message(256 * KB, on_delivered=latencies.append)
        topo.sim.run(until=topo.sim.now + duration_ns)
        drops = (
            topo.tor.counters.drops["egress-lossy"]
            + topo.tor.counters.drops["buffer-lossy"]
        )
        rows.append(
            {
                "flavour": flavour,
                "drops": drops,
                "rtos": sum(c.stats.rtos for c in connections),
                "ce_acks": sum(c.stats.ce_acks for c in connections),
                "delivered": len(latencies),
                "p99_ms": percentile(latencies, 99) / 1e6 if latencies else None,
            }
        )
    return AblationResult("Ablation: TCP class flavour (Reno vs DCTCP)", rows)


# --- go-back-N waste ------------------------------------------------------------------------


def run_gbn_waste(cable_meters=(2, 300, 2000), duration_ns=15 * MS, seed=24):
    """Go-back-N's retransmission waste grows with RTT ("up to RTT x C
    bytes ... wasted for a single packet drop", section 4.1).

    Expected shape: wasted (retransmitted) bytes per drop scale roughly
    with the RTT; goodput under identical loss degrades with distance.
    """
    rows = []
    for meters in cable_meters:
        topo = single_switch(n_hosts=2, seed=seed)
        # Rebuild the links at the requested length.
        for link in topo.fabric.links:
            link.delay_ns = meters * 5
        topo.boot()
        topo.tor.ingress_drop_filter = (
            lambda p: p.ip is not None and p.ip.identification & 0x3FF == 0x3FF
        )  # 1/1024 deterministic drop
        rng = SeededRng(seed, "gbn-%d" % meters)
        config = QpConfig(window_packets=2048, rto_ns=2 * MS)
        qp, _ = connect_qp_pair(
            topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=config
        )
        sender = ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()
        start = topo.sim.now
        topo.sim.run(until=start + duration_ns)
        elapsed = topo.sim.now - start
        drops = topo.tor.counters.drops["filter"]
        retx = qp.stats.retransmitted_packets
        rows.append(
            {
                "cable_m": meters,
                "rtt_us": 4 * meters * 5 / 1000,
                "drops": drops,
                "retransmitted_packets": retx,
                "waste_per_drop_packets": retx / drops if drops else 0.0,
                "goodput_gbps": sender.completed_bytes * 8.0 / elapsed,
            }
        )
    return AblationResult("Ablation: go-back-N waste vs RTT", rows)


# --- routing / load balancing models -----------------------------------------------------------


def run_routing_models(seed=25):
    """Figure 7's fabric under three load-balancing models.

    Expected shape: ECMP+PFC ~60%; idealized per-flow max-min recovers
    most of it; per-packet spraying (the section 8.1 future work)
    reaches line rate.
    """
    model = ClosFlowModel(seed=seed)
    rows = []
    for allocation, label in (
        ("pfc-uniform", "ecmp+pfc (deployed)"),
        ("maxmin", "ecmp, ideal per-flow fairness"),
        ("per-packet", "per-packet spraying (future work)"),
    ):
        result = model.run(allocation)
        rows.append(
            {
                "model": label,
                "aggregate_tbps": result.aggregate_bps / 1e12,
                "utilization": result.utilization,
                "per_server_gbps": result.per_server_gbps(),
            }
        )
    return AblationResult("Ablation: load-balancing models on the figure 7 fabric", rows)


# --- inter-DC distances -------------------------------------------------------------------------


def run_interdc_distance(distances_m=(300, 2_000, 10_000, 100_000), rate=40):
    """Headroom per PG vs link distance: why "RoCEv2 is not as generic
    as TCP" and needs "new ideas ... for inter-DC communications"
    (section 8.1).

    Expected shape: headroom grows linearly past any plausible switch
    buffer; at 100 km a single 40G priority wants ~0.1 GB of headroom
    per port.
    """
    rows = []
    for meters in distances_m:
        per_pg = headroom_bytes(gbps(rate), cable_meters=meters, mtu_bytes=9216)
        rows.append(
            {
                "distance_m": meters,
                "headroom_per_pg_mb": per_pg / (1024 * 1024),
                "pgs_per_9mb_buffer": max(0, int(9 * 1024 * 1024 // per_pg)),
            }
        )
    return AblationResult("Ablation: PFC headroom vs distance (inter-DC limit)", rows)
