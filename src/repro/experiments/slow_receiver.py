"""E7 -- the slow-receiver symptom (paper section 4.4).

A receiving NIC's MTT cache (2K entries) misses when the posted receive
buffers span more memory than the cache covers; each miss is a host-DRAM
fetch that stalls the receive pipeline.  Stall enough and the NIC's
receive buffer crosses its PFC threshold: the server NIC -- with no real
congestion anywhere -- pours pause frames into its ToR, and they
propagate.

The paper's mitigations, both reproduced here: 2 MB pages on the NIC
(coverage 8 MB -> 4 GB) and dynamic buffer sharing on the switch (more
absorbency before the ToR propagates the pause upstream).
"""

from repro.nic.mtt import MttConfig
from repro.nic.nic import NicConfig
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS
from repro.switch.buffer import BufferConfig
from repro.topo import two_tier
from repro.experiments.common import ExperimentResult, run_under_audit, saturate_pairs


class SlowReceiverResult(ExperimentResult):
    title = "E7: slow-receiver symptom (section 4.4)"


def _run_one(page_bytes, dynamic_buffer, duration_ns, n_flows, seed):
    nic_config = NicConfig(
        mtt_config=MttConfig(entries=2048, page_bytes=page_bytes, miss_penalty_ns=1500),
        rx_xoff_bytes=64 * KB,
        rx_xon_bytes=48 * KB,
        rx_buffer_bytes=128 * KB,
    )
    buffer_config = BufferConfig(
        alpha=(1.0 / 16) if dynamic_buffer else None,
        xoff_static_bytes=48 * KB,
    )
    topo = two_tier(
        n_tors=2,
        hosts_per_tor=2,
        n_leaves=1,
        seed=seed,
        nic_config=nic_config,
        buffer_config=buffer_config,
    ).boot()
    sim = topo.sim
    # The slow receiver pauses its ToR intermittently but legitimately:
    # every pause must still resolve and every buffer must balance, in
    # all four mitigation rows.
    registry = run_under_audit(topo.fabric)
    rng = SeededRng(seed, "slowrx")
    sender_hosts = topo.hosts_by_tor[0]
    receiver = topo.hosts_by_tor[1][0]
    # Periodic bursts into one receiver: the receive-buffer working set
    # (16 MB per flow) defeats 4 KB pages, so each burst stalls the
    # pipeline and the NIC pauses its ToR "from time to time" -- the
    # intermittent pattern dynamic buffer sharing is meant to absorb.
    from repro.rdma.verbs import connect_qp_pair
    from repro.workloads import PeriodicIncast, RdmaChannel

    channels = []
    for i in range(n_flows):
        qp, _ = connect_qp_pair(sender_hosts[i % len(sender_hosts)], receiver, rng)
        channels.append(RdmaChannel(qp))
    incast = PeriodicIncast(
        sim, channels, burst_bytes=128 * KB, period_ns=MS,
        rng=rng.child("jit"), jitter_ns=20_000,
    ).start()
    start = sim.now
    sim.run(until=start + duration_ns)
    elapsed = sim.now - start
    tor_rx = receiver.port.link.other(receiver.port).device  # receiver's ToR
    leaf = topo.leaves[0]
    goodput = incast.deliveries * 128 * KB * 8.0 / elapsed
    return {
        "page_size": "2MB" if page_bytes == 2 * MB else "4KB",
        "switch_buffer": "dynamic" if dynamic_buffer else "static",
        "tor_threshold_kb": tor_rx.buffer.threshold() // KB,
        "mtt_miss_rate": receiver.nic.mtt.miss_rate,
        "nic_pauses_per_ms": receiver.nic.stats.pause_generated * MS / elapsed,
        "tor_pauses_to_leaf": _pause_tx_toward(tor_rx, leaf),
        "goodput_gbps": goodput,
        "invariant_violations": registry.violation_count,
    }


def _pause_tx_toward(switch, neighbour):
    """Pause frames the switch sent out of ports facing ``neighbour`` --
    the propagation the mitigations are meant to suppress."""
    total = 0
    for port in switch.ports:
        if port.peer is not None and port.peer.device is neighbour:
            total += port.stats.pause_tx
    return total


def run_slow_receiver(duration_ns=6 * MS, n_flows=8, seed=1):
    """Reproduce section 4.4 and both mitigations.

    Expected shape: the (4KB, static) row shows a thrashing MTT, a high
    NIC pause rate and pause propagation past the ToR; 2 MB pages kill
    the misses (and with them the pauses); dynamic switch buffering cuts
    the propagation even with the bad page size.
    """
    rows = [
        _run_one(4 * KB, False, duration_ns, n_flows, seed),
        _run_one(4 * KB, True, duration_ns, n_flows, seed),
        _run_one(2 * MB, False, duration_ns, n_flows, seed),
        _run_one(2 * MB, True, duration_ns, n_flows, seed),
    ]
    return SlowReceiverResult(rows)
