"""E2 -- the PFC deadlock of figure 4 (paper section 4.2).

The exact scenario: S1 (under T0) sends to S3 and S5 (under T1) via La;
S4 (under T1) sends to S2 (under T0) via Lb; S6 (under T0) adds incast
pressure on S5.  S2 and S3 are dead -- their MAC-table entries have
expired while their ARP entries survive -- so packets to them are
*flooded*, including onto the routed uplinks where they sit in the
egress queue (to be dropped only at the head).  The resulting pause loop
T1.p3 -> La.p1, La.p0 -> T0.p2, T0.p3 -> Lb.p0, Lb.p1 -> T1.p4 deadlocks
all four switches, and "once the deadlock occurs, it does not go away
even if we restart all the servers".

The paper's fix (option 3): drop lossless packets whose ARP entry is
incomplete.  Same scenario, no deadlock, and the healthy S5 flows keep
completing.
"""

from repro.core.deadlock import detect_deadlock
from repro.rdma.qp import QpConfig
from repro.rdma.verbs import connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.buffer import BufferConfig
from repro.topo import deadlock_quad
from repro.workloads import ClosedLoopSender, RdmaChannel
from repro.experiments.common import ExperimentResult, run_under_audit


class DeadlockResult(ExperimentResult):
    title = "E2: PFC deadlock, figure 4 (section 4.2)"


def _aggressive_qp_config():
    """Senders to dead hosts must keep the pressure on: a large window
    and a short RTO so retransmission passes keep the floods coming."""
    return QpConfig(window_packets=1024, rto_ns=300 * US)


def _run_scenario(drop_on_incomplete_arp, duration_ns, seed):
    topo = deadlock_quad(
        seed=seed,
        buffer_config=BufferConfig(
            alpha=None, xoff_static_bytes=96 * KB, headroom_per_pg_bytes=40 * KB
        ),
        forwarding_kwargs={
            "drop_lossless_on_incomplete_arp": drop_on_incomplete_arp
        },
    ).boot()
    sim = topo.sim
    # In record mode the auditors double as a deadlock detector: the
    # flooding scenario trips pause-bounded/queue-age, the fixed one
    # stays clean.  Stopped before the every-server-dies persistence
    # phase, where wedged queues are the asserted outcome everywhere.
    registry = run_under_audit(topo.fabric)
    rng = SeededRng(seed, "deadlock")
    hosts = topo.hosts

    # S3 and S2 die; their MAC entries age out (admin-expired here, since
    # simulating 5 idle minutes adds nothing), their ARP entries survive.
    hosts["S3"].die()
    hosts["S2"].die()
    topo.t1.tables.mac_table.expire(hosts["S3"].mac)
    topo.t0.tables.mac_table.expire(hosts["S2"].mac)

    def saturate(src, dst):
        qp, _peer = connect_qp_pair(
            hosts[src],
            hosts[dst],
            rng,
            config_a=_aggressive_qp_config(),
            config_b=_aggressive_qp_config(),
        )
        return ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()

    # Purple must carry enough volume that the flood copies stuck at
    # T1's paused Lb-uplink alone hold the ingress PG above XON -- that
    # is what makes the paper's deadlock survive a server restart.
    saturate("S1", "S3")  # purple: flooded at T1
    saturate("S6", "S3")  # more purple from T0's side
    healthy = saturate("S1", "S5")  # black: incast component via La
    saturate("S7", "S5")  # T1-local incast: oversubscribes the S5 port
    saturate("S4", "S2")  # blue: flooded at T0

    sim.run(until=sim.now + duration_ns)
    switches = [topo.t0, topo.t1, topo.la, topo.lb]
    report = detect_deadlock(switches)
    healthy_before_stop = healthy.completed_messages
    invariant_violations = registry.violation_count
    registry.stop()

    # "it does not go away even if we restart all the servers": silence
    # every sender and give the fabric ample time to drain.
    for host in hosts.values():
        host.die()
    sim.run(until=sim.now + duration_ns)
    report_after = detect_deadlock(switches)

    return {
        "scenario": "arp-drop-fix" if drop_on_incomplete_arp else "flooding",
        "deadlocked": report.deadlocked,
        "persists_after_restart": report_after.deadlocked,
        "switches_in_cycle": len(report.involved_switches()),
        "pause_frames": sum(s.pause_frames_sent() for s in switches),
        "flood_events": sum(s.counters.flood_events for s in switches),
        "incomplete_arp_drops": sum(
            s.tables.incomplete_arp_drops for s in switches
        ),
        "healthy_flow_messages": healthy_before_stop,
        "invariant_violations": invariant_violations,
    }


def run_deadlock(duration_ns=8 * MS, seed=1):
    """Reproduce figure 4 and its fix.

    Expected shape: the flooding row deadlocks (and stays deadlocked
    after all servers stop); the arp-drop-fix row never deadlocks and
    its healthy S1->S5 flow makes progress.
    """
    rows = [
        _run_scenario(False, duration_ns, seed),
        _run_scenario(True, duration_ns, seed),
    ]
    return DeadlockResult(rows)
