"""The experiment catalogue as data: one registry-friendly entry per runner.

Historically the id -> runner mapping lived as a private dict inside
``repro.experiments.__main__``; the campaign orchestrator
(:mod:`repro.campaign`) needs the same information -- plus which
parameters each runner accepts and whether it is seeded -- so the
catalogue now lives here as first-class objects both CLIs share.

An entry names its runner by *importable reference* (``module:attr``)
rather than by function object so that campaign worker processes can
resolve it after a bare ``import``, whatever the multiprocessing start
method.
"""

import importlib
import inspect


class CatalogEntry:
    """One experiment the CLIs and the campaign runner can launch."""

    __slots__ = ("exp_id", "runner_name", "description", "ref")

    def __init__(self, exp_id, runner_name, description, ref=None):
        self.exp_id = exp_id
        self.runner_name = runner_name
        self.description = description
        self.ref = ref or ("repro.experiments:%s" % runner_name)

    def resolve(self):
        """Import and return the runner callable."""
        return resolve_ref(self.ref)

    def parameters(self):
        """Name -> default for every keyword parameter of the runner."""
        signature = inspect.signature(self.resolve())
        return {
            name: parameter.default
            for name, parameter in signature.parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }

    @property
    def seedable(self):
        """True when the runner accepts an explicit ``seed`` argument."""
        return "seed" in self.parameters()

    def __repr__(self):
        return "CatalogEntry(%s, %s)" % (self.exp_id, self.runner_name)


def resolve_ref(ref):
    """Resolve a ``module:attr`` reference to the named object."""
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ValueError("expected 'module:attr' reference, got %r" % (ref,))
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise AttributeError("module %r has no attribute %r" % (module_name, attr))


def _entry(exp_id, runner_name, description):
    return CatalogEntry(exp_id, runner_name, description)


#: id -> CatalogEntry, in presentation order.
CATALOG = {
    entry.exp_id: entry
    for entry in (
        _entry("E1", "run_livelock", "transport livelock, go-back-0 vs go-back-N (sec 4.1)"),
        _entry("E2", "run_deadlock", "PFC deadlock via flooding + the ARP-drop fix (fig 4)"),
        _entry("E3", "run_storm", "NIC pause storm and the two watchdogs (figs 5, 9)"),
        _entry("E4", "run_latency_vs_tcp", "RDMA vs TCP latency percentiles (fig 6)"),
        _entry("E5", "run_clos_throughput", "3-tier Clos aggregate throughput (fig 7)"),
        _entry("E6", "run_congestion_latency", "latency before/after saturating load (fig 8)"),
        _entry("E7", "run_slow_receiver", "slow-receiver symptom and mitigations (sec 4.4)"),
        _entry("E8", "run_buffer_misconfig", "buffer alpha misconfiguration (fig 10)"),
        _entry("E9", "run_dscp_vs_vlan", "DSCP-based vs VLAN-based PFC (sec 3)"),
        _entry("E10", "run_cpu_overhead", "TCP vs RDMA CPU cost (sec 1)"),
        _entry("E11", "run_headroom", "PFC headroom and the two-class limit (sec 2)"),
        _entry("A1", "run_cc_comparison", "ablation: none / DCQCN / TIMELY"),
        _entry("A2", "run_alpha_sweep", "ablation: dynamic-alpha sweep"),
        _entry("A3", "run_ecn_sweep", "ablation: DCQCN Kmin vs pause generation"),
        _entry("A4", "run_gbn_waste", "ablation: go-back-N waste vs RTT"),
        _entry("A5", "run_routing_models", "ablation: ECMP vs per-packet spraying"),
        _entry("A6", "run_interdc_distance", "ablation: PFC headroom vs distance"),
        _entry("A7", "run_tcp_flavours", "ablation: TCP class flavour, Reno vs DCTCP"),
        CatalogEntry(
            "F1",
            "run_flowsim_scale",
            "flowsim: 4096-host Clos, 50k+ flows from the storage/web CDFs",
            ref="repro.experiments.flowsim_scale:run_flowsim_scale",
        ),
        CatalogEntry(
            "F2",
            "run_flowsim_figure7",
            "flowsim vs analytic Clos model on the figure 7 fabric",
            ref="repro.experiments.flowsim_scale:run_flowsim_figure7",
        ),
        CatalogEntry(
            "V1",
            "run_validation_sweep",
            "differential validation sweep: packet sim vs flow-level oracles",
            ref="repro.validation.harness:run_validation_sweep",
        ),
        CatalogEntry(
            "V2",
            "run_flowsim_differential_sweep",
            "differential sweep: packet engine vs flow-level simulator",
            ref="repro.validation.flowsim_lane:run_flowsim_differential_sweep",
        ),
    )
}


def resolve_tokens(tokens):
    """Match CLI tokens to catalogue ids (exact id, else name fragment).

    Returns (selected ids, unmatched tokens), preserving order and
    dropping duplicates.
    """
    selected, unmatched = [], []
    for token in tokens:
        if token.upper() in CATALOG:
            matches = [token.upper()]
        else:
            token_lower = token.lower()
            matches = [
                entry.exp_id
                for entry in CATALOG.values()
                if token_lower in entry.runner_name.lower()
                or token_lower in entry.description.lower()
            ]
        if not matches:
            unmatched.append(token)
        selected.extend(m for m in matches if m not in selected)
    return selected, unmatched
