"""Shared experiment scaffolding."""

import csv
import json

from repro.net.port import DwrrScheduler

#: Row cell types that serialize losslessly to JSON (and therefore diff
#: cleanly across runs).  Anything else must be stringified by the
#: experiment itself before it lands in a row.
_SCALAR_TYPES = (type(None), bool, int, float, str)


class SchemaError(ValueError):
    """A result's rows do not share one stable, serializable schema."""


class ExperimentResult:
    """Base result: named rows + a printable table + CSV/JSONL export."""

    title = "experiment"

    def __init__(self, rows):
        self._rows = rows

    def rows(self):
        return list(self._rows)

    def schema(self):
        """The stable column order: first-row keys + extras in first-seen order."""
        columns = []
        for row in self.rows():
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def check_schema(self):
        """Validate that the rows are machine-diffable; returns the schema.

        Campaign artifacts are compared row-for-row across runs and
        machines, so every row's keys must appear in the union schema in
        the schema's order (rows may omit trailing/optional columns, and
        :meth:`normalized_rows` fills those with ``None``) and every
        cell must be a JSON scalar.  Raises :class:`SchemaError` naming
        the first offending row otherwise.
        """
        columns = self.schema()
        order = {key: position for position, key in enumerate(columns)}
        for index, row in enumerate(self.rows()):
            positions = [order[key] for key in row]
            if positions != sorted(positions):
                raise SchemaError(
                    "%s: row %d columns %r out of schema order %r"
                    % (self.title, index, list(row), columns)
                )
            for key, value in row.items():
                if not isinstance(value, _SCALAR_TYPES):
                    raise SchemaError(
                        "%s: row %d cell %r is %s, not a JSON scalar"
                        % (self.title, index, key, type(value).__name__)
                    )
        return columns

    def normalized_rows(self):
        """Rows with the full schema: union columns, ``None``-filled."""
        columns = self.check_schema()
        return [{key: row.get(key) for key in columns} for row in self.rows()]

    def to_jsonl(self, path=None):
        """Serialize rows as JSON Lines (one canonical object per row).

        Key order follows :meth:`schema`, floats round-trip via
        ``repr``, and there is no whitespace variance -- two runs that
        produced the same rows produce byte-identical files.  Returns
        the JSONL string; also writes it to ``path`` when given.
        """
        lines = [
            json.dumps(row, separators=(",", ":"), allow_nan=False)
            for row in self.normalized_rows()
        ]
        text = "".join(line + "\n" for line in lines)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def to_csv(self, path):
        """Write the rows as CSV (one column per row key, union-ordered)."""
        rows = self.rows()
        columns = self.schema()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in rows:
                writer.writerow(row)
        return path

    def format_table(self):
        rows = self.rows()
        if not rows:
            return "%s: (no rows)" % self.title
        columns = list(rows[0].keys())
        widths = {
            c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows)) for c in columns
        }
        lines = [self.title]
        header = "  ".join(str(c).ljust(widths[c]) for c in columns)
        lines.append(header)
        lines.append("  ".join("-" * widths[c] for c in columns))
        for row in rows:
            lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
        return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def run_under_audit(fabric, mode="record", **kwargs):
    """Arm the runtime invariant auditors on ``fabric`` and start them.

    Every scripted experiment runs under audit by default.  Pathology
    experiments use record mode -- a deadlock *should* trip the pause
    auditor -- and surface ``registry.violation_count`` as a row column,
    so a scenario that breaks an invariant it should not is visible in
    the results table, not just in a test.
    """
    from repro.faults import install_default_auditors

    return install_default_auditors(fabric, mode=mode, **kwargs).start()


def apply_ets_weights(fabric, weights, quantum_bytes=1600):
    """Install DWRR schedulers on every switch port.

    Models the ETS bandwidth reservation the paper configures so that
    the TCP class keeps its share next to saturating RDMA classes.
    """
    for switch in fabric.switches:
        for port in switch.ports:
            port.scheduler = DwrrScheduler(weights=dict(weights), quantum_bytes=quantum_bytes)


def saturate_pairs(
    sim,
    pairs,
    message_bytes,
    rng,
    qp_config_factory=None,
    dcqcn_config=None,
    start_filter=None,
):
    """Start a closed-loop saturating sender on each (src, dst) pair.

    ``start_filter(index, (src, dst))``, when given, gates which senders
    actually start; construction (QP wiring, RNG draws) always covers
    every pair.  The space-parallel runner leans on this split: each
    shard replica must consume the RNG stream identically to the serial
    run, then activate only the senders whose source host it owns.

    Returns the list of :class:`ClosedLoopSender` (unstarted ones report
    zero completed bytes).
    """
    from repro.dcqcn import enable_dcqcn
    from repro.rdma.qp import QpConfig
    from repro.rdma.verbs import connect_qp_pair
    from repro.workloads import ClosedLoopSender, RdmaChannel

    senders = []
    for src, dst in pairs:
        config_a = qp_config_factory() if qp_config_factory else QpConfig()
        config_b = qp_config_factory() if qp_config_factory else QpConfig()
        qp_a, _qp_b = connect_qp_pair(src, dst, rng, config_a=config_a, config_b=config_b)
        if dcqcn_config is not None:
            enable_dcqcn(qp_a, dcqcn_config)
        sender = ClosedLoopSender(RdmaChannel(qp_a), message_bytes)
        senders.append(sender)
    for index, sender in enumerate(senders):
        if start_filter is None or start_filter(index, pairs[index]):
            sender.start()
    return senders
