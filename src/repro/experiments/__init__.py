"""One runner per paper table/figure.

Each module exposes a ``run_*`` function returning a result object with
``rows()`` (list of dicts) and ``format_table()`` (printable).  The
benchmarks in ``benchmarks/`` and the records in ``EXPERIMENTS.md`` are
generated from these.

==========  =======================================  ======================
Experiment  Paper reference                          Module
==========  =======================================  ======================
E1          section 4.1 (livelock)                   livelock
E2          section 4.2, figure 4 (deadlock)         deadlock
E3          section 4.3, figures 5+9 (PFC storm)     storm
E4          section 5.4, figure 6 (latency vs TCP)   latency_cdf
E5          section 5.4, figure 7 (Clos throughput)  clos_throughput
E6          section 5.4, figure 8 (latency vs load)  congestion_latency
E7          section 4.4 (slow receiver)              slow_receiver
E8          section 6.2, figure 10 (buffer alpha)    buffer_misconfig
E9          section 3 (DSCP vs VLAN PFC)             dscp_vs_vlan
E10         section 1 (CPU overhead)                 cpu_overhead
E11         section 2 (headroom sizing)              headroom
F1          sections 1, 5.4 (datacenter scale)       flowsim_scale
F2          section 5.4, figure 7 (flowsim check)    flowsim_scale
==========  =======================================  ======================
"""

from repro.experiments.ablations import (
    run_alpha_sweep,
    run_cc_comparison,
    run_ecn_sweep,
    run_gbn_waste,
    run_interdc_distance,
    run_routing_models,
    run_tcp_flavours,
)
from repro.experiments.flowsim_scale import run_flowsim_figure7, run_flowsim_scale
from repro.experiments.livelock import run_livelock
from repro.experiments.deadlock import run_deadlock
from repro.experiments.storm import run_storm
from repro.experiments.latency_cdf import run_latency_vs_tcp
from repro.experiments.clos_throughput import run_clos_throughput
from repro.experiments.congestion_latency import run_congestion_latency
from repro.experiments.slow_receiver import run_slow_receiver
from repro.experiments.buffer_misconfig import run_buffer_misconfig
from repro.experiments.dscp_vs_vlan import run_dscp_vs_vlan
from repro.experiments.cpu_overhead import run_cpu_overhead
from repro.experiments.headroom import run_headroom

__all__ = [
    "run_livelock",
    "run_deadlock",
    "run_storm",
    "run_latency_vs_tcp",
    "run_clos_throughput",
    "run_congestion_latency",
    "run_slow_receiver",
    "run_buffer_misconfig",
    "run_dscp_vs_vlan",
    "run_cpu_overhead",
    "run_headroom",
    "run_cc_comparison",
    "run_alpha_sweep",
    "run_ecn_sweep",
    "run_gbn_waste",
    "run_routing_models",
    "run_interdc_distance",
    "run_tcp_flavours",
    "run_flowsim_scale",
    "run_flowsim_figure7",
]
