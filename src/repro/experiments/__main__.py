"""CLI: regenerate the paper's tables and figures from the shell.

    python -m repro.experiments --list
    python -m repro.experiments E1 E11          # by id
    python -m repro.experiments deadlock        # by name fragment
    python -m repro.experiments --all --csv-dir results/

Each experiment prints the regenerated table; ``--csv-dir`` also writes
one CSV per experiment.  For parallel, cached, resumable sweeps over
the same catalogue, use ``python -m repro.campaign`` instead.
"""

import argparse
import os
import sys
import time

from repro.experiments.catalog import CATALOG, resolve_tokens


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of 'RDMA over Commodity Ethernet at Scale'.",
    )
    parser.add_argument("which", nargs="*", help="experiment ids (E1..E11, A1..A7) or name fragments")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument("--csv-dir", help="also write one CSV per experiment here")
    parser.add_argument(
        "--telemetry-dir",
        help="collect fabric telemetry per experiment; writes "
        "<id>-<i>.telemetry.jsonl here (see docs/telemetry.md)",
    )
    parser.add_argument(
        "--trace-dir",
        help="collect causal traces per experiment; writes "
        "<id>-<i>.trace.jsonl here (see docs/tracing.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the fabric-scale packet-level runs across N worker "
        "processes (space-parallel engine, docs/parallel.md); with "
        "--telemetry-dir those runs fall back to serial",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.workers > 1:
        from repro.experiments import clos_throughput

        clos_throughput.PACKET_CHECK_WORKERS = args.workers

    if args.list or (not args.which and not args.all):
        for entry in CATALOG.values():
            print("%-4s %-24s %s" % (entry.exp_id, entry.runner_name, entry.description))
        return 0

    if args.all:
        selected = list(CATALOG)
    else:
        selected, unmatched = resolve_tokens(args.which)
        if unmatched:
            print("no experiment matches %r (try --list)" % unmatched[0], file=sys.stderr)
            return 2

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    for exp_id in selected:
        entry = CATALOG[exp_id]
        runner = entry.resolve()
        started = time.time()
        if args.telemetry_dir:
            from repro import telemetry

            telemetry.arm(telemetry.TelemetryConfig(label=exp_id))
            try:
                result = runner()
            finally:
                telemetry.disarm()
            sessions = telemetry.drain()
            paths = telemetry.write_artifacts(
                sessions, args.telemetry_dir, exp_id.lower()
            )
        elif args.trace_dir:
            from repro import tracing

            tracing.arm(tracing.TraceConfig(label=exp_id))
            try:
                result = runner()
            finally:
                tracing.disarm()
            trace_sessions = tracing.drain()
            trace_paths = tracing.write_artifacts(
                trace_sessions, args.trace_dir, exp_id.lower()
            )
            sessions, paths = [], []
        else:
            sessions, paths = [], []
            result = runner()
        print(result.format_table())
        print("[%s finished in %.1fs]" % (exp_id, time.time() - started))
        print()
        if paths:
            print(
                "telemetry: %d artifact(s), %d incident(s) -> %s"
                % (len(paths), telemetry.incident_count(sessions), args.telemetry_dir)
            )
        if args.trace_dir and not args.telemetry_dir:
            ops = sum(
                tracing.summary_of(records).get("ops_traced", 0)
                for records in trace_sessions
            )
            print(
                "trace: %d artifact(s), %d op(s) -> %s"
                % (len(trace_paths), ops, args.trace_dir)
            )
        if args.csv_dir:
            path = os.path.join(args.csv_dir, "%s.csv" % exp_id.lower())
            result.to_csv(path)
            print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
