"""CLI: regenerate the paper's tables and figures from the shell.

    python -m repro.experiments --list
    python -m repro.experiments E1 E11          # by id
    python -m repro.experiments deadlock        # by name fragment
    python -m repro.experiments --all --csv-dir results/

Each experiment prints the regenerated table; ``--csv-dir`` also writes
one CSV per experiment.
"""

import argparse
import os
import sys
import time

from repro import experiments

#: id -> (runner name, short description)
CATALOG = {
    "E1": ("run_livelock", "transport livelock, go-back-0 vs go-back-N (sec 4.1)"),
    "E2": ("run_deadlock", "PFC deadlock via flooding + the ARP-drop fix (fig 4)"),
    "E3": ("run_storm", "NIC pause storm and the two watchdogs (figs 5, 9)"),
    "E4": ("run_latency_vs_tcp", "RDMA vs TCP latency percentiles (fig 6)"),
    "E5": ("run_clos_throughput", "3-tier Clos aggregate throughput (fig 7)"),
    "E6": ("run_congestion_latency", "latency before/after saturating load (fig 8)"),
    "E7": ("run_slow_receiver", "slow-receiver symptom and mitigations (sec 4.4)"),
    "E8": ("run_buffer_misconfig", "buffer alpha misconfiguration (fig 10)"),
    "E9": ("run_dscp_vs_vlan", "DSCP-based vs VLAN-based PFC (sec 3)"),
    "E10": ("run_cpu_overhead", "TCP vs RDMA CPU cost (sec 1)"),
    "E11": ("run_headroom", "PFC headroom and the two-class limit (sec 2)"),
    "A1": ("run_cc_comparison", "ablation: none / DCQCN / TIMELY"),
    "A2": ("run_alpha_sweep", "ablation: dynamic-alpha sweep"),
    "A3": ("run_ecn_sweep", "ablation: DCQCN Kmin vs pause generation"),
    "A4": ("run_gbn_waste", "ablation: go-back-N waste vs RTT"),
    "A5": ("run_routing_models", "ablation: ECMP vs per-packet spraying"),
    "A6": ("run_interdc_distance", "ablation: PFC headroom vs distance"),
    "A7": ("run_tcp_flavours", "ablation: TCP class flavour, Reno vs DCTCP"),
}


def _resolve(token):
    """Match a CLI token to catalogue ids (exact id, else name fragment)."""
    token_lower = token.lower()
    if token.upper() in CATALOG:
        return [token.upper()]
    matches = [
        exp_id
        for exp_id, (runner, description) in CATALOG.items()
        if token_lower in runner.lower() or token_lower in description.lower()
    ]
    return matches


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of 'RDMA over Commodity Ethernet at Scale'.",
    )
    parser.add_argument("which", nargs="*", help="experiment ids (E1..E11, A1..A6) or name fragments")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument("--csv-dir", help="also write one CSV per experiment here")
    args = parser.parse_args(argv)

    if args.list or (not args.which and not args.all):
        for exp_id, (runner, description) in CATALOG.items():
            print("%-4s %-24s %s" % (exp_id, runner, description))
        return 0

    if args.all:
        selected = list(CATALOG)
    else:
        selected = []
        for token in args.which:
            matches = _resolve(token)
            if not matches:
                print("no experiment matches %r (try --list)" % token, file=sys.stderr)
                return 2
            selected.extend(m for m in matches if m not in selected)

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    for exp_id in selected:
        runner_name, _ = CATALOG[exp_id]
        runner = getattr(experiments, runner_name)
        started = time.time()
        result = runner()
        print(result.format_table())
        print("[%s finished in %.1fs]" % (exp_id, time.time() - started))
        print()
        if args.csv_dir:
            path = os.path.join(args.csv_dir, "%s.csv" % exp_id.lower())
            result.to_csv(path)
            print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
