"""E8 -- the switch buffer misconfiguration incident (paper section 6.2,
figure 10).

A newly introduced ToR model shipped with the dynamic-buffer parameter
alpha = 1/64 where the fleet expected 1/16.  Two such ToRs hosted chatty
servers fanning queries out to 1000+ servers; the synchronized responses
(incast) crossed the *much smaller* dynamic threshold easily, the ToRs
poured pause frames into the network, and latency-sensitive services
collapsed (figure 10a) while servers logged up to 60000 pauses per
5 minutes (figure 10b).  The config-monitoring service is what caught
the drift; tuning alpha back to 1/16 resolved it.
"""

from repro.analysis.percentiles import percentile
from repro.monitoring.config_mgmt import ConfigMonitor, DesiredConfig
from repro.monitoring.pingmesh import Pingmesh
from repro.packets.packet import PriorityMode
from repro.rdma.qp import QpConfig, TrafficClass
from repro.rdma.verbs import connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MS, US
from repro.switch.buffer import BufferConfig
from repro.topo import two_tier
from repro.workloads import PeriodicIncast, RdmaChannel
from repro.experiments.common import ExperimentResult


class BufferMisconfigResult(ExperimentResult):
    title = "E8: buffer alpha misconfiguration, figure 10 (section 6.2)"


def _run_one(alpha, duration_ns, seed, burst_bytes, fanin_extra):
    topo = two_tier(
        n_tors=2,
        hosts_per_tor=6,
        n_leaves=2,
        seed=seed,
        buffer_config=BufferConfig(alpha=alpha),
    ).boot()
    sim = topo.sim
    rng = SeededRng(seed, "alpha")
    t0_hosts, t1_hosts = topo.hosts_by_tor

    # The chatty server on T0 queries everyone; responses incast on it.
    chatty = t0_hosts[0]
    responders = t0_hosts[2:] + t1_hosts[2:]
    channels = []
    for responder in responders:
        qp, _ = connect_qp_pair(
            responder, chatty, rng,
            config_a=QpConfig(traffic_class=TrafficClass(dscp=3, priority=3)),
            config_b=QpConfig(traffic_class=TrafficClass(dscp=3, priority=3)),
        )
        channels.append(RdmaChannel(qp))
    incast = PeriodicIncast(
        sim, channels * fanin_extra, burst_bytes, period_ns=1 * MS,
        rng=rng.child("jit"), jitter_ns=50_000,
    )

    # The victim latency-sensitive service: probes between hosts that
    # merely share the fabric with the chatty ToR.
    pingmesh = Pingmesh(
        sim, rng.child("pm"), interval_ns=int(0.5 * MS),
        traffic_class=TrafficClass(dscp=3, priority=3),
    )
    pingmesh.add_pair(t0_hosts[1], t1_hosts[1])
    pingmesh.start()
    incast.start()
    sim.run(until=sim.now + duration_ns)

    tor_pause_tx = sum(t.pause_frames_sent() for t in topo.tors)
    leaf_pause_rx = sum(l.pause_frames_received() for l in topo.leaves)
    rtts = pingmesh.rtts_ns()
    return {
        "alpha": "1/%d" % round(1 / alpha),
        "threshold_kb": topo.tors[0].buffer.threshold() / KB,
        "tor_pauses_sent": tor_pause_tx,
        "leaf_pauses_received": leaf_pause_rx,
        "victim_p99_us": percentile(rtts, 99) / US if rtts else None,
        "victim_timeouts": sum(1 for r in pingmesh.results if not r.ok),
    }


def run_buffer_misconfig(duration_ns=40 * MS, burst_bytes=64 * KB, fanin_extra=2, seed=1):
    """Reproduce figure 10's alpha = 1/64 incident and the 1/16 fix.

    Expected shape: alpha = 1/64 generates far more ToR pause frames and
    inflates the victim service's p99; 1/16 tolerates the same incast.
    A config-drift check demonstrates how the incident was caught.
    """
    rows = [
        _run_one(1.0 / 64, duration_ns, seed, burst_bytes, fanin_extra),
        _run_one(1.0 / 16, duration_ns, seed, burst_bytes, fanin_extra),
    ]
    result = BufferMisconfigResult(rows)
    result.config_drifts = _drift_demo(seed)
    return result


def _drift_demo(seed):
    """The monitoring angle: a fabric where one new-model ToR runs 1/64
    against a desired 1/16 -- config monitoring flags exactly that ToR."""
    topo = two_tier(n_tors=2, hosts_per_tor=2, n_leaves=1, seed=seed)
    topo.tors[1].buffer_config = BufferConfig(alpha=1.0 / 64)
    topo.boot()
    desired = DesiredConfig(
        priority_mode=PriorityMode.DSCP,
        lossless_priorities=frozenset((3, 4)),
        buffer_alpha=1.0 / 16,
    )
    return ConfigMonitor(desired).check_fabric(topo.fabric)
