"""F1/F2 -- datacenter-scale experiments on the flow-level simulator.

The packet engine tops out near a podset; these runners exercise the
scale the paper actually deployed at (tens of thousands of hosts across
a 3-tier Clos) using :mod:`repro.flowsim`:

* :func:`run_flowsim_scale` (F1) -- a >=4096-host Clos carrying >=50k
  flows drawn from the shared storage/web size CDFs
  (:mod:`repro.workloads.distributions`), paired cross-podset the way
  the paper's ToR-pair experiments are.  Emits only simulation-domain
  quantities (deterministic, machine-diffable rows); wall-clock
  performance is tracked by :mod:`repro.bench` instead.
* :func:`run_flowsim_figure7` (F2) -- the figure 7 fabric cross-check:
  flowsim run directly over :class:`repro.flows.clos_model.ClosFlowModel`
  paths must reproduce the analytic max-min aggregate exactly, and the
  flowsim-native ECMP topology must land in the same utilization
  regime.
"""

import hashlib
import struct
import zlib

from repro.experiments.common import ExperimentResult
from repro.flows.clos_model import ClosFlowModel
from repro.flows.maxmin import max_min_allocation
from repro.flowsim.engine import FlowSim
from repro.flowsim.topo import EFFICIENCY, clos_flow
from repro.sim.rng import SeededRng
from repro.sim.units import MS, US, gbps
from repro.workloads.distributions import NAMED_CDFS


class FlowsimScaleResult(ExperimentResult):
    title = "F1: flow-level datacenter-scale Clos (sections 1, 5.4)"


class FlowsimFigure7Result(ExperimentResult):
    title = "F2: flowsim vs analytic Clos model, figure 7 (section 5.4)"


def fingerprint_digest(run):
    """Short stable digest of a :class:`FlowsimRun` fingerprint tuple."""
    return hashlib.sha256(repr(run.fingerprint()).encode()).hexdigest()[:16]


def _pair_sport(src, dst):
    """One stable UDP source port per directed host pair (one QP)."""
    return 49152 + (zlib.crc32(struct.pack("<II", src, dst)) % 16384)


def build_scale_workload(
    sim,
    topology,
    seed,
    workload="storage",
    flows_per_pair=13,
    arrival_window_ms=100,
    n_podsets=8,
):
    """Cross-podset pair traffic: every host exchanges ``flows_per_pair``
    flows with its partner (same ToR/host slot, opposite half of the
    fabric), sizes from the named CDF, arrivals uniform in the window.

    Returns the number of flows scheduled.
    """
    cdf = NAMED_CDFS[workload]
    rng = SeededRng(seed, "flowsim/workload/%s" % workload)
    n_hosts = topology.n_hosts
    per_podset = n_hosts // n_podsets
    window_ns = arrival_window_ms * MS
    n_flows = 0
    for src in range(n_hosts):
        podset, slot = divmod(src, per_podset)
        dst = ((podset + n_podsets // 2) % n_podsets) * per_podset + slot
        sport = _pair_sport(src, dst)
        for _ in range(flows_per_pair):
            sim.add_host_flow(
                src, dst,
                cdf.sample(rng),
                start_ns=rng.randint(0, window_ns - 1),
                sport=sport,
            )
            n_flows += 1
    return n_flows


def run_flowsim_scale(
    seed=1,
    workload="storage",
    n_podsets=8,
    tors_per_podset=16,
    hosts_per_tor=32,
    leaves_per_podset=4,
    n_spines=8,
    link_gbps=40,
    flows_per_pair=13,
    arrival_window_ms=100,
    rate_update_interval_us=2000,
):
    """F1: run the scale scenario to completion; one row per run.

    Defaults: 4096 hosts (8 podsets x 16 ToRs x 32 hosts), 53,248 flows
    -- past the paper's single-cluster scale for ToR-pair traffic, and
    three orders of magnitude beyond the packet engine's reach.
    """
    if n_podsets % 2:
        raise ValueError("n_podsets must be even (cross-podset pairing)")
    if workload not in NAMED_CDFS:
        raise ValueError("unknown workload %r (have %s)"
                         % (workload, ", ".join(sorted(NAMED_CDFS))))
    topology = clos_flow(
        n_podsets=n_podsets,
        tors_per_podset=tors_per_podset,
        hosts_per_tor=hosts_per_tor,
        leaves_per_podset=leaves_per_podset,
        n_spines=n_spines,
        rate_bps=gbps(link_gbps),
    )
    sim = FlowSim.from_topology(
        topology, rate_update_interval_ns=rate_update_interval_us * US
    )
    n_flows = build_scale_workload(
        sim, topology, seed,
        workload=workload,
        flows_per_pair=flows_per_pair,
        arrival_window_ms=arrival_window_ms,
        n_podsets=n_podsets,
    )
    run = sim.run()
    row = {
        "seed": seed,
        "workload": workload,
        "hosts": topology.n_hosts,
        "links": topology.n_links,
        "flows": n_flows,
        "completed": run.n_completed,
        "events": run.n_events,
        "recomputes": run.n_recomputes,
        "sim_ms": run.sim_ns / MS,
        "total_gbytes": run.total_bytes / 1e9,
        "agg_goodput_gbps": (
            run.total_bytes * 8e9 / run.sim_ns / 1e9 if run.sim_ns else 0.0
        ),
        "mean_fct_ms": (
            run.sum_fct_ns / run.n_completed / MS if run.n_completed else 0.0
        ),
        "max_fct_ms": run.max_fct_ns / MS,
        "fingerprint": fingerprint_digest(run),
    }
    return FlowsimScaleResult([row])


def run_flowsim_figure7(seed=1, rate_update_interval_us=0):
    """F2: two views of figure 7's fabric, cross-checked.

    Row ``model-paths``: flowsim driven over the *exact* flow paths the
    analytic :class:`ClosFlowModel` hashed out -- its steady-state rates
    must reproduce the model's max-min allocation to float precision
    (``max_rel_err``), so the aggregate matches exactly.

    Row ``native-ecmp``: flowsim's own Clos topology with 8 saturating
    QPs per server, its own ECMP draws.  Different hash outcomes land a
    different (but statistically similar) hash-imbalance utilization --
    the same regime, not the same number.
    """
    model = ClosFlowModel(seed=seed)
    ideal = model.run("maxmin")
    leaf_spine_cap = ideal.leaf_spine_capacity_bps

    # -- model paths through flowsim ---------------------------------------
    sim = FlowSim(
        ideal.link_capacities,
        rate_update_interval_ns=rate_update_interval_us * US,
    )
    flow_ids = [
        sim.add_flow(path, size_bytes=10 ** 15) for path in ideal.paths
    ]
    sim.run(until_ns=1)
    rates = sim.current_rates()
    max_rel_err = max(
        abs(rates[fid] - expected) / expected
        for fid, expected in zip(flow_ids, ideal.rates_bps)
    )
    flowsim_agg = sum(rates[fid] for fid in flow_ids)
    rows = [
        {
            "view": "analytic-maxmin",
            "qps": len(ideal.rates_bps),
            "aggregate_tbps": ideal.aggregate_bps / 1e12,
            "utilization": ideal.utilization,
            "max_rel_err": None,
        },
        {
            "view": "model-paths",
            "qps": len(flow_ids),
            "aggregate_tbps": flowsim_agg / 1e12,
            "utilization": flowsim_agg / leaf_spine_cap,
            "max_rel_err": max_rel_err,
        },
    ]

    # -- flowsim-native topology, own ECMP draws ---------------------------
    topology = clos_flow(
        n_podsets=2,
        tors_per_podset=model.tor_pairs,
        hosts_per_tor=model.servers_per_tor,
        leaves_per_podset=model.leaves_per_podset,
        n_spines=model.n_spines,
        rate_bps=model.link_bps,
    )
    native = FlowSim.from_topology(topology, efficiency=1.0)
    rng = SeededRng(seed, "flowsim/figure7")
    per_podset = topology.n_hosts // 2
    native_ids = []
    for src in range(topology.n_hosts):
        dst = (src + per_podset) % topology.n_hosts
        for _qp in range(model.qps_per_server):
            native_ids.append(
                native.add_host_flow(
                    src, dst, 10 ** 15, sport=rng.randint(49152, 65535)
                )
            )
    native.run(until_ns=1)
    native_rates = native.current_rates()
    native_agg = sum(native_rates[fid] for fid in native_ids)
    rows.append(
        {
            "view": "native-ecmp",
            "qps": len(native_ids),
            "aggregate_tbps": native_agg / 1e12,
            "utilization": native_agg / leaf_spine_cap,
            "max_rel_err": None,
        }
    )
    return FlowsimFigure7Result(rows)
