"""E11 -- PFC headroom sizing and the two-lossless-class limit (paper
section 2).

Headroom per (port, lossless priority) is set by MTU, PFC reaction time
and above all cable length ("The propagation delay is determined by the
distance between the sender and the receiver.  In our network, this can
be as large as 300 meters").  With 9 MB / 12 MB shallow-buffer ToR and
Leaf switches, "we can only reserve enough headroom for two lossless
traffic classes even though the switches support eight."

The binding constraint is the Leaf: more ports than the ToR, 200-300 m
spine cables, and most of the shared buffer must stay *shared* to absorb
actual congestion (the dynamic-alpha pool of section 6.2).  The budget
here keeps 55% shared, with 9 KB jumbo frames (standard in these DCNs)
in the worst-case gray-period arithmetic.
"""

from repro.sim.units import KB, MB, gbps
from repro.switch.buffer import headroom_bytes
from repro.experiments.common import ExperimentResult

JUMBO_MTU = 9216

# (model, buffer MB, ports, worst cable meters) -- section 2's numbers:
# servers ~2 m, ToR-Leaf 10-20 m, Leaf-Spine 200-300 m.
SWITCH_MODELS = (
    ("ToR", 9, 32, 20),
    ("Leaf", 12, 64, 300),
)


class HeadroomResult(ExperimentResult):
    title = "E11: PFC headroom sizing (section 2)"


def _classes_supported(rate_bps, buffer_mb, n_ports, cable_meters, shared_fraction=0.55):
    per_pg = headroom_bytes(rate_bps, cable_meters=cable_meters, mtu_bytes=JUMBO_MTU)
    headroom_budget = buffer_mb * MB * (1 - shared_fraction)
    return int(min(8, headroom_budget // (per_pg * n_ports))), per_pg


def run_headroom(rates_gbps=(40, 100), shared_fraction=0.55):
    """Reproduce the headroom arithmetic behind the two-class limit.

    Expected shape: per-PG headroom grows with cable length and rate;
    fabric-wide (the min over switch models) only **two** lossless
    classes fit at 40 GbE, and the budget tightens further at 100 GbE --
    never anywhere near the eight priorities PFC nominally offers.
    """
    rows = []
    for rate in rates_gbps:
        fabric_min = 8
        for model, buffer_mb, n_ports, cable_m in SWITCH_MODELS:
            classes, per_pg = _classes_supported(
                gbps(rate), buffer_mb, n_ports, cable_m, shared_fraction
            )
            fabric_min = min(fabric_min, classes)
            rows.append(
                {
                    "rate_gbps": rate,
                    "switch": model,
                    "buffer_mb": buffer_mb,
                    "ports": n_ports,
                    "cable_m": cable_m,
                    "headroom_per_pg_kb": per_pg / KB,
                    "lossless_classes": classes,
                }
            )
        rows.append(
            {
                "rate_gbps": rate,
                "switch": "fabric-wide",
                "buffer_mb": None,
                "ports": None,
                "cable_m": None,
                "headroom_per_pg_kb": None,
                "lossless_classes": fabric_min,
            }
        )
    return HeadroomResult(rows)
