"""E6 -- RDMA latency under congestion (paper section 5.4, figure 8).

The two-tier testbed: 2 ToRs x 24 servers, 4 uplinks each (6:1
oversubscription).  20 server pairs across the ToRs, 8 QPs per pair,
all saturating.  Paper: once the load starts, Pingmesh RDMA latency
jumps from 50 us (p99) / 80 us (p99.9) to 400 us / 800 us -- lossless
does not mean low latency; queues and pauses build.  The TCP class's
p99 is *unchanged* because RDMA and TCP ride different queues.

Scaled run: same structure at reduced port counts; DCQCN + ECN active
as deployed.
"""

from repro.analysis.percentiles import percentile
from repro.dcqcn import DcqcnConfig
from repro.monitoring.pingmesh import Pingmesh
from repro.rdma.qp import QpConfig, TrafficClass
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.ecn import EcnConfig
from repro.tcp import connect_tcp_pair
from repro.topo import two_tier
from repro.experiments.common import ExperimentResult, apply_ets_weights
from repro.experiments.latency_cdf import _TcpEchoProbe


class CongestionLatencyResult(ExperimentResult):
    title = "E6: RDMA latency vs load, figure 8 (section 5.4)"


def run_congestion_latency(
    hosts_per_tor=6,
    n_leaves=2,
    saturating_pairs=4,
    qps_per_pair=2,
    phase_ns=60 * MS,
    probe_interval_ns=int(0.5 * MS),
    seed=1,
):
    """Reproduce figure 8's before/after jump.

    Expected shape: RDMA p99 and p99.9 rise several-fold once the
    saturating load starts; TCP p99 stays in the same band throughout.
    """
    topo = two_tier(
        n_tors=2,
        hosts_per_tor=hosts_per_tor,
        n_leaves=n_leaves,
        seed=seed,
        ecn_config=EcnConfig(kmin_bytes=40 * KB, kmax_bytes=160 * KB, pmax=0.1, enabled=True),
    ).boot()
    sim, fabric = topo.sim, topo.fabric
    rng = SeededRng(seed, "fig8")
    apply_ets_weights(fabric, {3: 4, 1: 2, 0: 1})
    t0_hosts, t1_hosts = topo.hosts_by_tor

    # Probes: one RDMA Pingmesh pair and one TCP echo pair, both crossing
    # the oversubscribed uplinks (the last host of each ToR).
    pingmesh = Pingmesh(
        sim, rng.child("pm"), interval_ns=probe_interval_ns,
        traffic_class=TrafficClass(dscp=3, priority=3),
    )
    pingmesh.add_pair(t0_hosts[-1], t1_hosts[-1])
    conn_a, conn_b = connect_tcp_pair(t0_hosts[-2], t1_hosts[-2], rng)
    tcp_probe = _TcpEchoProbe(sim, conn_a, conn_b)

    def tcp_tick():
        tcp_probe.launch()
        sim.schedule(probe_interval_ns, tcp_tick)

    pingmesh.start()
    tcp_tick()

    # Phase 1: idle fabric.
    sim.run(until=sim.now + phase_ns)
    idle_rdma = list(pingmesh.rtts_ns())
    idle_tcp = list(tcp_probe.rtts_ns)

    # Phase 2: the saturating cross-ToR load, DCQCN-controlled.
    from repro.experiments.common import saturate_pairs as _saturate

    pairs = []
    for i in range(saturating_pairs):
        for _ in range(qps_per_pair):
            pairs.append((t0_hosts[i], t1_hosts[i]))
            pairs.append((t1_hosts[i], t0_hosts[i]))
    _saturate(sim, pairs, 1 * MB, rng, dcqcn_config=DcqcnConfig())
    sim.run(until=sim.now + phase_ns)
    loaded_rdma = pingmesh.rtts_ns()[len(idle_rdma):]
    loaded_tcp = tcp_probe.rtts_ns[len(idle_tcp):]

    rows = []
    for phase, rdma, tcp in (
        ("idle", idle_rdma, idle_tcp),
        ("loaded", loaded_rdma, loaded_tcp),
    ):
        rows.append(
            {
                "phase": phase,
                "rdma_p99_us": percentile(rdma, 99) / US,
                "rdma_p99.9_us": percentile(rdma, 99.9) / US,
                "tcp_p99_us": percentile(tcp, 99) / US if tcp else None,
                "rdma_probes": len(rdma),
                "drops": topo.fabric.total_drops(),
            }
        )
    return CongestionLatencyResult(rows)
