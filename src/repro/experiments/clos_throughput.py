"""E5 -- aggregate RDMA throughput in a three-tier Clos (paper
section 5.4, figure 7).

Two podsets x 576 servers, ToRs paired one-to-one, 8 servers per ToR,
8 QPs per server, every QP saturating: 3072 QPs over the 128 40 GbE
leaf-spine links.  Paper: 3.0 Tb/s aggregate = 60% of the 5.12 Tb/s
leaf-spine capacity, limited by ECMP hash collision ("not PFC or HOL
blocking"), with not a single packet dropped and every server at
~8 Gb/s.

This runner evaluates the full-scale fabric at flow level (see
:mod:`repro.flows` for why that is the faithful fidelity here) and, as a
cross-check, a scaled-down packet-level run that verifies the zero-drop
claim with PFC active.
"""

from repro.flows import ClosFlowModel
from repro.sim import SeededRng
from repro.sim.units import GBPS, MB, MS
from repro.topo import three_tier_clos
from repro.experiments.common import ExperimentResult, saturate_pairs


class ClosThroughputResult(ExperimentResult):
    title = "E5: Clos aggregate throughput, figure 7 (section 5.4)"


#: Shard count for the packet-level cross-check.  ``python -m
#: repro.experiments --workers N`` rebinds it; 1 keeps the serial path.
PACKET_CHECK_WORKERS = 1


def run_clos_throughput(seeds=(1, 2, 3), packet_level_check=True, workers=None):
    """Reproduce figure 7(b)'s steady state.

    Expected shape: utilization ~60% under the PFC-coupled allocation,
    ~8 Gb/s per server, zero drops in the packet-level check; the
    max-min ablation shows hash placement alone would allow much more.
    ``workers`` > 1 runs the packet-level check on the space-parallel
    engine (defaults to :data:`PACKET_CHECK_WORKERS`).
    """
    rows = []
    for seed in seeds:
        model = ClosFlowModel(seed=seed)
        result = model.run("pfc-uniform")
        ideal = model.run("maxmin")
        rows.append(
            {
                "seed": seed,
                "qps": len(result.rates_bps),
                "aggregate_tbps": result.aggregate_bps / 1e12,
                "utilization": result.utilization,
                "per_server_gbps": result.per_server_gbps(),
                "mframes_per_sec": result.frames_per_second() / 1e6,
                "maxmin_utilization": ideal.utilization,
            }
        )
    if packet_level_check:
        rows.append(_packet_level_check(workers=workers))
    return ClosThroughputResult(rows)


def _check_build(seed):
    return three_tier_clos(
        n_podsets=2,
        tors_per_podset=2,
        hosts_per_tor=2,
        leaves_per_podset=2,
        n_spines=2,
        seed=seed,
    )


def _check_pairs(topo):
    hosts = topo.hosts
    half = len(hosts) // 2
    pairs = [(hosts[i], hosts[half + i]) for i in range(half)]
    pairs += [(hosts[half + i], hosts[i]) for i in range(half)]
    return pairs


def _packet_level_check(seed=1, duration_ns=4 * MS, workers=None):
    """A small 3-tier packet-level run: saturating cross-podset pairs
    with PFC active must complete the window with zero packet drops.

    With ``workers`` > 1 the run is sharded across processes by
    :func:`repro.sim.parallel.run_parallel` -- same fabric, same
    workload, merged counters (docs/parallel.md).  Telemetry and
    tracing force the serial path: a collection session cannot span
    shard replicas.
    """
    if workers is None:
        workers = PACKET_CHECK_WORKERS
    if workers > 1:
        from repro.telemetry.hooks import HUB
        from repro.tracing.hooks import HUB as TRACE_HUB

        if HUB.armed is not None or TRACE_HUB.armed is not None:
            plane = "telemetry" if HUB.armed is not None else "tracing"
            print(
                "E5 packet-level check: %s armed -- forcing the "
                "serial path (see docs/%s.md)" % (plane, plane)
            )
        else:
            return _packet_level_check_parallel(seed, duration_ns, workers)
    topo = _check_build(seed).boot()
    sim = topo.sim
    rng = SeededRng(seed, "clos-check")
    senders = saturate_pairs(sim, _check_pairs(topo), 1 * MB, rng)
    start = sim.now
    sim.run(until=start + duration_ns)
    total_bytes = sum(s.completed_bytes for s in senders)
    aggregate_gbps = total_bytes * 8.0 / (sim.now - start)
    return {
        "seed": "packet-level",
        "qps": len(senders),
        "aggregate_tbps": aggregate_gbps / 1000,
        "utilization": None,
        "per_server_gbps": aggregate_gbps / len(topo.hosts),
        "mframes_per_sec": None,
        "maxmin_utilization": None,
        "drops": topo.fabric.total_drops(),
    }


def _packet_level_check_parallel(seed, duration_ns, workers):
    from repro.sim.parallel import run_parallel

    def start(topo, seed, harness):
        rng = SeededRng(seed, "clos-check")
        index_of = {id(h): i for i, h in enumerate(topo.fabric.hosts)}
        return saturate_pairs(
            topo.sim,
            _check_pairs(topo),
            1 * MB,
            rng,
            start_filter=lambda _i, p: index_of[id(p[0])] in harness.local_hosts,
        )

    def report(topo, senders, harness):
        return {
            "completed": tuple(s.completed_bytes for s in senders),
            "drops": topo.fabric.total_drops(),
        }

    result = run_parallel(
        _check_build,
        workers,
        duration_ns=duration_ns,
        seed=seed,
        settle_ns=100_000,
        start=start,
        report=report,
    )
    reports = result.shard_reports
    n_hosts = sum(len(result.partition.hosts_in(s)) for s in range(result.workers))
    total_bytes = sum(sum(r["completed"]) for r in reports)
    aggregate_gbps = total_bytes * 8.0 / duration_ns
    return {
        "seed": "packet-level(x%d)" % result.workers,
        "qps": len(reports[0]["completed"]),
        "aggregate_tbps": aggregate_gbps / 1000,
        "utilization": None,
        "per_server_gbps": aggregate_gbps / n_hosts,
        "mframes_per_sec": None,
        "maxmin_utilization": None,
        "drops": sum(r["drops"] for r in reports),
    }
