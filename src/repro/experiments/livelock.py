"""E1 -- the RDMA transport livelock (paper section 4.1).

Two servers A and B through one switch W.  W drops every packet whose
IP ID ends in 0xff (the NIC assigns IP IDs sequentially, so this is a
deterministic 1/256 loss).  A sends 4 MB messages to B as fast as it can
with SEND / WRITE, and B READs 4 MB chunks from A.

Paper result: with the vendor's go-back-0 recovery, application goodput
is **zero** while the link runs at full rate; go-back-N restores goodput.
"""

from repro.rdma.qp import QpConfig
from repro.rdma.recovery import GoBack0, GoBackN
from repro.rdma.verbs import connect_qp_pair, post_read
from repro.sim import SeededRng
from repro.sim.units import MB, MS, US
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel
from repro.experiments.common import ExperimentResult, run_under_audit


class LivelockResult(ExperimentResult):
    title = "E1: RDMA transport livelock (section 4.1)"


def _drop_ip_id_ff(packet):
    return packet.ip is not None and packet.ip.identification & 0xFF == 0xFF


def _run_one(operation, recovery, message_bytes, duration_ns, seed):
    topo = single_switch(n_hosts=2, seed=seed).boot()
    topo.tor.ingress_drop_filter = _drop_ip_id_ff
    # Even a livelocked run must keep every invariant: buffers balance,
    # pauses resolve, and the deliberate go-back-0 PSN rewinds are exempt.
    registry = run_under_audit(topo.fabric)
    rng = SeededRng(seed, "livelock")
    config = QpConfig(recovery=recovery, rto_ns=200 * US)
    qp_a, qp_b = connect_qp_pair(
        topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=QpConfig(recovery=recovery)
    )
    sim = topo.sim
    start = sim.now
    if operation in ("send", "write"):
        channel = RdmaChannel(qp_a)
        if operation == "write":
            channel.send = _write_send(channel)
        sender = ClosedLoopSender(channel, message_bytes).start()
        counter = sender
    else:  # read: B reads 4 MB chunks from A "as fast as possible"
        counter = _ReadLoop(qp_b, message_bytes)
        counter.start()
    sim.run(until=start + duration_ns)
    elapsed = sim.now - start
    goodput_gbps = counter.completed_bytes * 8.0 / elapsed  # bits/ns == Gb/s
    wire_packets = qp_a.stats.data_packets_sent + qp_b.stats.data_packets_sent
    # Link "busy" check: data packets pushed vs what the 40G link could
    # carry in the window (1086-byte frames every ~221 ns).
    line_rate_packets = elapsed / 222
    return {
        "operation": operation,
        "recovery": recovery.name,
        "goodput_gbps": goodput_gbps,
        "messages_completed": counter.completed_messages,
        "link_utilization": min(1.0, wire_packets / line_rate_packets),
        "naks": qp_a.stats.naks_received + qp_b.stats.naks_received,
        "invariant_violations": registry.violation_count,
    }


def _write_send(channel):
    from repro.rdma.verbs import post_write

    def send(nbytes, on_delivered=None):
        posted = channel.qp.sim.now

        def complete(wr, t):
            if on_delivered is not None:
                on_delivered(t - posted)

        post_write(channel.qp, nbytes, on_complete=complete)

    return send


class _ReadLoop:
    """B reads chunks from A back to back."""

    def __init__(self, qp, chunk_bytes, pipeline_depth=2):
        self.qp = qp
        self.chunk_bytes = chunk_bytes
        self.pipeline_depth = pipeline_depth
        self.completed_messages = 0
        self.completed_bytes = 0

    def start(self):
        for _ in range(self.pipeline_depth):
            self._post()
        return self

    def _post(self):
        post_read(self.qp, self.chunk_bytes, on_complete=self._done)

    def _done(self, wr, t):
        self.completed_messages += 1
        self.completed_bytes += self.chunk_bytes
        self._post()


def run_livelock(
    message_bytes=4 * MB,
    duration_ns=30 * MS,
    operations=("send", "write", "read"),
    seed=1,
):
    """Reproduce the section 4.1 experiment for both recovery policies.

    Expected shape: go-back-0 rows show ~0 goodput at high link
    utilization; go-back-N rows show tens of Gb/s.
    """
    rows = []
    for operation in operations:
        for recovery in (GoBack0(), GoBackN()):
            rows.append(
                _run_one(operation, recovery, message_bytes, duration_ns, seed)
            )
    return LivelockResult(rows)
