"""E9 -- DSCP-based vs VLAN-based PFC (paper section 3, figure 3).

Two concrete failures of the original VLAN-based design, each run for
real through the switch pipeline:

1. **PXE boot**: VLAN-based PFC forces server ports into trunk mode;
   a PXE-booting NIC has no VLAN configuration, so its untagged DHCP
   exchange dies at the port.  DSCP-based PFC keeps ports in access
   mode and the exchange completes.
2. **Priority across subnets**: the 802.1Q PCP does not survive IP
   routing.  RDMA traffic crossing the L3 boundary loses its priority,
   lands in the lossy class, and -- under congestion -- gets *dropped*,
   violating losslessness.  With DSCP the priority is part of the IP
   header and survives; zero drops.
"""

from repro.core.dscp_pfc import DscpPfcDesign
from repro.core.provisioning import ProvisioningService
from repro.core.vlan_pfc import VlanPfcDesign
from repro.rdma.qp import QpConfig
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS
from repro.switch.buffer import BufferConfig
from repro.topo import single_switch, two_tier
from repro.experiments.common import ExperimentResult, saturate_pairs


class DscpVsVlanResult(ExperimentResult):
    title = "E9: DSCP-based vs VLAN-based PFC (section 3)"


def _pxe_boot_trial(design, seed):
    """Run a real untagged DHCP exchange through a ToR configured per
    the design's required port mode."""
    topo = single_switch(
        n_hosts=2, seed=seed, pfc_config=design.pfc_config()
    ).boot()
    topo.tor.set_server_port_modes(design.required_server_port_mode)
    service = ProvisioningService(topo.sim, topo.hosts[1])
    result = service.attempt_boot(topo.hosts[0])
    return result.value


def _cross_subnet_trial(design, seed, duration_ns=8 * MS):
    """Congested cross-ToR RDMA under each design: does losslessness
    survive the L3 hop?

    The congestion point must sit *beyond* the first routed hop (where
    the VLAN tag -- and with it the PCP -- is gone): senders on two
    different ToRs converge on one receiver, so the leaf's downlink is
    the 2:1 bottleneck and the leaf classifies the now-untagged packets
    into the lossy class.
    """
    topo = two_tier(
        n_tors=3,
        hosts_per_tor=2,
        n_leaves=1,
        seed=seed,
        pfc_config=design.pfc_config(),
        buffer_config=BufferConfig(
            alpha=None, xoff_static_bytes=48 * KB, lossy_egress_cap_bytes=96 * KB
        ),
    ).boot()
    sim = topo.sim
    rng = SeededRng(seed, "xsubnet")
    t0_hosts, t1_hosts, t2_hosts = topo.hosts_by_tor
    tc = design.traffic_class(priority=3)

    def qp_config():
        return QpConfig(traffic_class=tc)

    # 2:1 incast at the leaf's downlink toward T2.
    pairs = [
        (t0_hosts[0], t2_hosts[0]),
        (t1_hosts[0], t2_hosts[0]),
        (t0_hosts[1], t2_hosts[1]),
    ]
    senders = saturate_pairs(sim, pairs, 1 * MB, rng, qp_config_factory=qp_config)
    start = sim.now
    sim.run(until=start + duration_ns)
    rdma_drops = sum(
        s.counters.drops["buffer-lossy"] + s.counters.drops["egress-lossy"]
        for s in topo.fabric.switches
    )  # only RDMA traffic runs in this trial
    goodput = sum(s.completed_bytes for s in senders) * 8.0 / (sim.now - start)
    naks = sum(
        qp.stats.naks_received
        for host in topo.hosts
        if getattr(host, "rdma", None) is not None
        for qp in host.rdma.qps
    )
    return {
        "rdma_drops": rdma_drops,
        "goodput_gbps": goodput,
        "naks": naks,
    }


def run_dscp_vs_vlan(seed=1):
    """Reproduce the section 3 comparison.

    Expected shape: VLAN -- PXE boot broken, RDMA dropped after the L3
    hop under congestion; DSCP -- PXE boot succeeds, zero RDMA drops.
    """
    rows = []
    for design in (VlanPfcDesign(), DscpPfcDesign()):
        pxe = _pxe_boot_trial(design, seed)
        cross = _cross_subnet_trial(design, seed)
        rows.append(
            {
                "design": design.name,
                "server_port_mode": design.required_server_port_mode,
                "pxe_boot": pxe,
                "cross_subnet_rdma_drops": cross["rdma_drops"],
                "goodput_gbps": cross["goodput_gbps"],
                "naks": cross["naks"],
                "validation_problems": len(design.validate()),
            }
        )
    return DscpVsVlanResult(rows)
