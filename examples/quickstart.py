#!/usr/bin/env python
"""Quickstart: two servers, one switch, RDMA over lossless Ethernet.

Builds the smallest possible RoCEv2 deployment, moves 64 MB with RDMA
SEND/WRITE/READ, and shows the properties the paper leads with: line-rate
goodput, zero packet loss (PFC), and microsecond latency.

Run:  python examples/quickstart.py
"""

from repro.faults import install_default_auditors
from repro.monitoring import Pingmesh
from repro.rdma import connect_qp_pair, post_read, post_send, post_write
from repro.sim import SeededRng
from repro.sim.units import MB, MS, US, fmt_rate
from repro.topo import single_switch


def main():
    # 1. A fabric: servers S0 and S1 under one ToR, 40 GbE everywhere.
    topo = single_switch(n_hosts=2, seed=42).boot()
    sim = topo.sim
    s0, s1 = topo.hosts
    rng = SeededRng(42, "quickstart")

    # A healthy fabric must hold every runtime invariant, so the
    # quickstart runs in strict mode: any violation raises immediately.
    audit = install_default_auditors(topo.fabric, mode="raise").start()

    # 2. A reliable-connected queue pair between them.
    qp, _peer_qp = connect_qp_pair(s0, s1, rng)

    # 3. Post verbs work requests: SEND, WRITE and READ.
    done = []
    post_send(qp, 32 * MB, on_complete=lambda wr, t: done.append(("send", t)))
    post_write(qp, 16 * MB, on_complete=lambda wr, t: done.append(("write", t)))
    post_read(qp, 16 * MB, on_complete=lambda wr, t: done.append(("read", t)))

    # 4. Latency probes riding the same lossless class (RDMA Pingmesh).
    pingmesh = Pingmesh(sim, rng.child("pm"), interval_ns=1 * MS)
    pingmesh.add_pair(s1, s0)
    pingmesh.start()

    start = sim.now
    sim.run(until=start + 25 * MS)

    elapsed = sim.now - start
    moved = qp.stats.bytes_completed + 16 * MB  # read completes on s0's QP
    print("RDMA quickstart on %s" % topo.fabric)
    for kind, t in done:
        print("  %-5s completed at t=%.2f ms" % (kind, t / MS))
    print("  goodput          : %s" % fmt_rate(int(moved * 8e9 / elapsed)))
    print("  packets dropped  : %d (lossless -- PFC at work)" % topo.fabric.total_drops())
    print("  retransmissions  : %d" % qp.stats.retransmitted_packets)
    print(
        "  probe RTT p50/p99: %.1f / %.1f us"
        % (pingmesh.rtt_percentile_us(50), pingmesh.rtt_percentile_us(99))
    )
    print("  invariant audit  : %s" % audit.summary())
    assert len(done) == 3, "all three verbs should have completed"
    assert topo.fabric.total_drops() == 0
    assert audit.clean, audit.summary()


if __name__ == "__main__":
    main()
