#!/usr/bin/env python
"""The operations story (paper section 5): configure, monitor, catch drift.

Builds a two-tier fabric, deploys DSCP-based PFC with the paper's full
safety profile, then walks the management loop:

1. declare the desired configuration and verify fleet compliance;
2. inject the section 6.2 misconfiguration (a new switch model running
   alpha = 1/64) and catch it as drift;
3. run RDMA Pingmesh continuously and read fleet latency percentiles;
4. watch PFC counters (pause frames and pause intervals).

Run:  python examples/fabric_operations.py
"""

from repro.core import DscpPfcDesign, paper_safe_profile
from repro.faults import install_default_auditors
from repro.monitoring import ConfigMonitor, CounterCollector, DesiredConfig, Pingmesh
from repro.rdma import connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MS, US
from repro.switch.buffer import BufferConfig
from repro.topo import two_tier
from repro.workloads import ClosedLoopSender, RdmaChannel


def main():
    design = DscpPfcDesign(lossless_priorities=(3, 4))
    profile = paper_safe_profile()
    topo = two_tier(
        n_tors=2,
        hosts_per_tor=4,
        n_leaves=2,
        seed=9,
        pfc_config=design.pfc_config(),
        buffer_config=profile.buffer_config(),
        forwarding_kwargs=profile.forwarding_kwargs(),
    ).boot()
    profile.apply_to_topology(topo)
    sim, fabric = topo.sim, topo.fabric
    rng = SeededRng(9, "ops")
    # A healthy operated fabric holds every runtime invariant; strict
    # mode turns any regression into an immediate failure.
    audit = install_default_auditors(fabric, mode="raise").start()

    desired = DesiredConfig.from_design(design, buffer_alpha=profile.buffer_alpha)
    monitor = ConfigMonitor(desired)
    print("1. Compliance check after deployment: %d drift(s)"
          % len(monitor.check_fabric(fabric)))

    # The section 6.2 incident: a new switch model with a silent default.
    topo.tors[1].buffer_config = BufferConfig(alpha=1.0 / 64)
    drifts = monitor.check_fabric(fabric)
    print("2. After onboarding a new switch model : %d drift(s)" % len(drifts))
    for drift in drifts:
        print("     %r" % drift)
    topo.tors[1].buffer_config = profile.buffer_config()  # remediate

    # Background service load + Pingmesh.
    t0_hosts, t1_hosts = topo.hosts_by_tor
    for i in range(2):
        qp, _ = connect_qp_pair(t0_hosts[i], t1_hosts[i], rng)
        ClosedLoopSender(RdmaChannel(qp), 256 * KB).start()
    pingmesh = Pingmesh(sim, rng.child("pm"), interval_ns=1 * MS)
    pingmesh.add_pair(t0_hosts[3], t1_hosts[3])
    pingmesh.start()
    collector = CounterCollector(sim, fabric, interval_ns=2 * MS).start()
    sim.run(until=sim.now + 40 * MS)
    pingmesh.stop()
    collector.stop()

    print("3. Pingmesh over 40 ms of production-like load:")
    print("     probes  : %d (error rate %.1f%%)"
          % (len(pingmesh.results), 100 * pingmesh.error_rate()))
    print("     RTT p50 : %6.1f us" % pingmesh.rtt_percentile_us(50))
    print("     RTT p99 : %6.1f us" % pingmesh.rtt_percentile_us(99))

    print("4. PFC counters (cumulative):")
    for device, pauses in collector.totals_at_end("pause_tx").items():
        if pauses:
            print("     %-8s sent %5d pause frames" % (device, pauses))
    host = t1_hosts[0]
    print("     %-8s cumulative paused interval: %.1f us"
          % (host.name, host.nic.port.paused_interval_ns() / US))
    print("     fabric-wide drops: %d (lossless holding)" % fabric.total_drops())
    print("5. Runtime invariants: %s" % audit.summary())
    assert audit.clean, audit.summary()


if __name__ == "__main__":
    main()
