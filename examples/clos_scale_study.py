#!/usr/bin/env python
"""Figure 7 at full scale, plus what-if studies the paper invites.

The flow-level model evaluates the paper's 1152-server experiment (3072
saturating QPs over 128 leaf-spine 40 GbE links) in milliseconds, so it
is cheap to ask follow-up questions:

* how does utilization move with more QPs per server (more ECMP
  entropy)?
* what would ideal per-bottleneck fairness (no PFC coupling) recover?
* where do the hottest links sit?

Run:  python examples/clos_scale_study.py
"""

from repro.flows import ClosFlowModel


def main():
    base = ClosFlowModel(seed=1)
    result = base.run()
    ideal = base.run("maxmin")
    print("Figure 7 reproduction (flow level, full paper scale):")
    print("  QPs                 : %d" % len(result.rates_bps))
    print("  aggregate throughput: %.2f Tb/s (paper: 3.0)" % (result.aggregate_bps / 1e12))
    print("  utilization         : %.0f%% of 5.12 Tb/s (paper: 60%%)" % (100 * result.utilization))
    print("  per-server          : %.1f Gb/s (paper: ~8)" % result.per_server_gbps())
    print("  frames/second       : %.0fM (1086-byte frames)" % (result.frames_per_second() / 1e6))
    print("  idealized max-min   : %.0f%% (what hash placement alone would allow)"
          % (100 * ideal.utilization))

    loads = sorted(result.leaf_spine_link_loads().values())
    print("  leaf-spine link load: min %.0f%% / median %.0f%% / max %.0f%%"
          % (100 * loads[0], 100 * loads[len(loads) // 2], 100 * loads[-1]))

    print("\nECMP entropy study -- QPs per server vs utilization:")
    for qps in (1, 2, 4, 8, 16, 32):
        u = ClosFlowModel(qps_per_server=qps, seed=3).run().utilization
        bar = "#" * int(u * 40)
        print("  %2d QPs/server: %4.0f%%  %s" % (qps, 100 * u, bar))
    print(
        "\nMore QPs per server = more five-tuple entropy = a smoother"
        "\nhash spread over the 128 links; the paper's 8 QPs per server"
        "\nsit on the flat part of the curve -- the residual ~40%% loss"
        "\nis the collision floor ECMP cannot shake off."
    )


if __name__ == "__main__":
    main()
