#!/usr/bin/env python
"""A tour of the verbs-style API: CQs, posted receives, RNR, tracing.

Shows the library as a programming surface rather than an experiment
harness: completion queues polled like ibv_poll_cq, receive work
requests with receiver-not-ready backpressure, and a packet tracer
watching the wire.

Run:  python examples/verbs_api_tour.py
"""

from repro.rdma import (
    CompletionQueue,
    QpConfig,
    connect_qp_pair,
    post_read,
    post_recv,
    post_send,
    post_write,
)
from repro.faults import install_default_auditors
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS
from repro.topo import single_switch
from repro.tracing import PacketTracer


def main():
    topo = single_switch(n_hosts=2, seed=77).boot()
    sim = topo.sim
    rng = SeededRng(77, "tour")
    audit = install_default_auditors(topo.fabric, mode="raise").start()
    requester, responder = topo.hosts

    config = QpConfig(require_posted_receives=True)
    qp, peer_qp = connect_qp_pair(
        requester, responder, rng, config_a=config, config_b=config
    )
    tracer = PacketTracer(sim).attach_all(topo.fabric)
    cq = CompletionQueue(capacity=64)

    # 1. A SEND with no receive posted: the responder answers RNR NAK
    #    and the sender retries on its backoff clock.
    post_send(qp, 16 * KB, cq=cq)
    sim.run(until=sim.now + 1 * MS)
    print("1. SEND with no receive WQE posted:")
    print("   completions so far : %d" % len(cq))
    print("   RNR NAKs on the wire: %d" % peer_qp.stats.rnr_naks_sent)

    # 2. Post the receive; the retry goes through.
    post_recv(peer_qp)
    sim.run(until=sim.now + 1 * MS)
    completions = cq.poll(16)
    print("2. After post_recv: polled %d completion(s): %r" % (len(completions), completions))

    # 3. WRITE and READ need no receive WQEs (one-sided verbs).
    post_write(qp, 1 * MB, cq=cq)
    post_read(qp, 1 * MB, cq=cq)
    sim.run(until=sim.now + 3 * MS)
    for wc in cq.poll(16):
        print("3. one-sided completion: %-5s %7d bytes at t=%.3f ms"
              % (wc.kind, wc.size_bytes, wc.completed_ns / MS))

    # 4. What actually crossed the wire.
    print("4. wire summary (packet tracer): %s" % tracer.counts_by_kind())
    opcodes = sorted({r.fields["opcode"] for r in tracer.select(kind="rocev2")})
    print("   opcodes seen: %s" % ", ".join(opcodes))
    print("5. runtime invariants: %s" % audit.summary())
    assert audit.clean, audit.summary()


if __name__ == "__main__":
    main()
