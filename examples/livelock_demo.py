#!/usr/bin/env python
"""Section 4.1 live: the go-back-0 transport livelock.

Two servers through one switch.  The switch drops every packet whose IP
ID ends in 0xff -- the NIC numbers IP IDs sequentially, so that is a
deterministic loss of 1/256, the paper's exact setup.  A 4 MB message is
4096 packets: under go-back-0 a drop is guaranteed before any pass
finishes, so the sender restarts forever at full line rate with zero
application progress.

Run:  python examples/livelock_demo.py
"""

from repro.faults import install_default_auditors
from repro.rdma import GoBack0, GoBackN, QpConfig, connect_qp_pair, post_send
from repro.sim import SeededRng
from repro.sim.units import MB, MS, US
from repro.topo import single_switch
from repro.workloads import ClosedLoopSender, RdmaChannel


def run(recovery):
    topo = single_switch(n_hosts=2, seed=7).boot()
    topo.tor.ingress_drop_filter = (
        lambda p: p.ip is not None and p.ip.identification & 0xFF == 0xFF
    )
    # A livelock wastes the link but breaks no invariant: buffers still
    # balance and go-back-0's deliberate PSN rewinds are exempt.
    audit = install_default_auditors(topo.fabric).start()
    rng = SeededRng(7, "livelock")
    config = QpConfig(recovery=recovery, rto_ns=200 * US)
    qp, _ = connect_qp_pair(
        topo.hosts[0], topo.hosts[1], rng, config_a=config, config_b=QpConfig(recovery=recovery)
    )
    sender = ClosedLoopSender(RdmaChannel(qp), 4 * MB).start()
    start = topo.sim.now
    topo.sim.run(until=start + 15 * MS)
    elapsed = topo.sim.now - start
    return {
        "recovery": recovery.name,
        "goodput_gbps": sender.completed_bytes * 8.0 / elapsed,
        "messages": sender.completed_messages,
        "wire_packets": qp.stats.data_packets_sent,
        "naks": qp.stats.naks_received,
        "drops": topo.tor.counters.drops["filter"],
        "audit": audit.summary(),
        "audit_clean": audit.clean,
    }


def main():
    print("Deterministic 1/256 drop, 4 MB messages, 15 ms of traffic:\n")
    for recovery in (GoBack0(), GoBackN()):
        r = run(recovery)
        print(
            "  %-9s  goodput %6.2f Gb/s  messages %2d  wire packets %6d  "
            "NAKs %3d  drops %3d  audit: %s"
            % (
                r["recovery"],
                r["goodput_gbps"],
                r["messages"],
                r["wire_packets"],
                r["naks"],
                r["drops"],
                r["audit"],
            )
        )
        assert r["audit_clean"], r["audit"]
    print(
        "\nThe go-back-0 row is the livelock: the link is fully busy"
        "\n(tens of thousands of wire packets) yet not one message has"
        "\ncompleted.  Go-back-N -- the fix the paper shipped in NIC"
        "\nfirmware -- restores throughput under identical losses."
    )


if __name__ == "__main__":
    main()
