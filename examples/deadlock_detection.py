#!/usr/bin/env python
"""Section 4.2 live: flooding + PFC deadlocks a Clos, and how to see it.

Recreates figure 4's topology (ToRs T0/T1 cross-connected by leaves
La/Lb), kills servers S2 and S3 so their MAC-table entries expire while
their ARP entries survive, and drives the paper's traffic.  The
resulting unknown-unicast *flooding* of lossless packets closes a cyclic
buffer dependency: a pause loop over all four switches.

Three tools from the library are on display:

* the **static analyzer**: the routed fabric is provably deadlock-free,
  until flooding of lossless traffic is admitted;
* the **runtime detector**: a wait-for-graph cycle scan over live pause
  state;
* the **fix**: `drop_lossless_on_incomplete_arp` (the paper's option 3).

Run:  python examples/deadlock_detection.py
"""

from repro.core import detect_deadlock
from repro.core.deadlock import is_statically_deadlock_free
from repro.faults import install_default_auditors
from repro.rdma import QpConfig, connect_qp_pair
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS, US
from repro.switch.buffer import BufferConfig
from repro.topo import deadlock_quad
from repro.workloads import ClosedLoopSender, RdmaChannel


def drive_figure4_traffic(topo, rng):
    hosts = topo.hosts
    hosts["S3"].die()
    hosts["S2"].die()
    topo.t1.tables.mac_table.expire(hosts["S3"].mac)
    topo.t0.tables.mac_table.expire(hosts["S2"].mac)

    def saturate(src, dst):
        qp, _ = connect_qp_pair(
            hosts[src], hosts[dst], rng,
            config_a=QpConfig(window_packets=1024, rto_ns=300 * US),
            config_b=QpConfig(),
        )
        ClosedLoopSender(RdmaChannel(qp), 1 * MB).start()

    saturate("S1", "S3")  # purple: flooded at T1 (S3 is dead)
    saturate("S6", "S3")  # more purple
    saturate("S1", "S5")  # black: part of the S5 incast
    saturate("S7", "S5")  # local incast on S5
    saturate("S4", "S2")  # blue: flooded at T0 (S2 is dead)


def build(fixed):
    return deadlock_quad(
        seed=11,
        buffer_config=BufferConfig(
            alpha=None, xoff_static_bytes=96 * KB, headroom_per_pg_bytes=40 * KB
        ),
        forwarding_kwargs={"drop_lossless_on_incomplete_arp": fixed},
    ).boot()


def main():
    topo = build(fixed=False)
    switches = [topo.t0, topo.t1, topo.la, topo.lb]

    print("Static analysis of the routed fabric:")
    print("  routes only          : deadlock-free = %s" % is_statically_deadlock_free(switches))
    print(
        "  + lossless flooding  : deadlock-free = %s"
        % is_statically_deadlock_free(switches, assume_lossless_flooding=True)
    )

    rng = SeededRng(11, "demo")
    # The invariant auditors are a third, independent witness: a wedged
    # pause loop trips the pause-liveness and queue-age invariants.
    audit = install_default_auditors(topo.fabric).start()
    drive_figure4_traffic(topo, rng)
    topo.sim.run(until=topo.sim.now + 8 * MS)
    report = detect_deadlock(switches)
    print("\nRuntime after 8 ms of figure-4 traffic:")
    print("  deadlocked : %s" % report.deadlocked)
    print("  cycle over : %s" % ", ".join(report.involved_switches()))
    print("  auditors   : %s" % audit.summary())
    audit.stop()  # the every-server-dies phase wedges queues by design
    for host in topo.hosts.values():
        host.die()  # "restart all the servers"
    topo.sim.run(until=topo.sim.now + 8 * MS)
    print("  after stopping every server: still deadlocked = %s"
          % detect_deadlock(switches).deadlocked)
    assert not audit.clean, "a deadlock must trip the pause-liveness auditors"

    fixed = build(fixed=True)
    fixed_audit = install_default_auditors(fixed.fabric).start()
    drive_figure4_traffic(fixed, SeededRng(11, "demo2"))
    fixed.sim.run(until=fixed.sim.now + 8 * MS)
    fixed_switches = [fixed.t0, fixed.t1, fixed.la, fixed.lb]
    dropped = sum(s.tables.incomplete_arp_drops for s in fixed_switches)
    print("\nWith drop_lossless_on_incomplete_arp (the paper's fix):")
    print("  deadlocked : %s" % detect_deadlock(fixed_switches).deadlocked)
    print("  lossless packets dropped instead of flooded: %d" % dropped)
    print("  auditors   : %s" % fixed_audit.summary())
    assert fixed_audit.clean, fixed_audit.summary()


if __name__ == "__main__":
    main()
