#!/usr/bin/env python
"""Section 4.3 live: a NIC PFC pause storm, traced and contained.

One server's NIC receive pipeline dies while its pause generator keeps
running -- the exact bug behind the paper's production incident (figure
9).  The demo shows the monitoring story end to end:

1. counters collected fleet-wide catch servers drowning in pause frames;
2. the incident detector traces the storm to its single origin server;
3. with the NIC and switch watchdogs armed, the same fault is confined
   to the victim instead of freezing the fabric.

Run:  python examples/storm_watchdogs.py
"""

from repro.faults import install_default_auditors
from repro.monitoring import CounterCollector, IncidentDetector
from repro.nic.nic import NicConfig, NicWatchdogConfig
from repro.sim import SeededRng
from repro.sim.units import KB, MB, MS
from repro.switch.buffer import BufferConfig
from repro.switch.watchdog import SwitchWatchdogConfig
from repro.topo import three_tier_clos
from repro.experiments.common import saturate_pairs


def run(watchdogs):
    poll = MS // 2
    topo = three_tier_clos(
        n_podsets=2, tors_per_podset=2, hosts_per_tor=2,
        leaves_per_podset=2, n_spines=2, seed=5,
        nic_config=NicConfig(
            watchdog_config=NicWatchdogConfig(
                stall_threshold_ns=2 * MS, poll_interval_ns=poll, enabled=watchdogs
            )
        ),
        buffer_config=BufferConfig(alpha=None, xoff_static_bytes=96 * KB),
    ).boot()
    if watchdogs:
        for podset in topo.podsets:
            for tor in podset["tors"]:
                tor.enable_storm_watchdog(
                    SwitchWatchdogConfig(poll_interval_ns=poll, reenable_after_ns=4 * MS)
                )
    sim = topo.sim
    # Pause-liveness bound above the watchdog reaction time: with
    # watchdogs armed every pause must clear inside it; without them the
    # storm trips the auditors -- the asymmetry the demo is about.
    audit = install_default_auditors(topo.fabric, max_stall_ns=3 * MS).start()
    rng = SeededRng(5, "storm-demo")
    hosts = topo.hosts
    victim = hosts[0]
    pairs = [(hosts[4], victim), (hosts[6], victim), (hosts[2], victim)]
    pairs += [(hosts[1], hosts[5]), (hosts[5], hosts[1]), (hosts[3], hosts[7]), (hosts[7], hosts[3])]
    senders = saturate_pairs(sim, pairs, 1 * MB, rng)
    collector = CounterCollector(sim, topo.fabric, interval_ns=MS).start()

    sim.run(until=sim.now + 2 * MS)  # healthy baseline
    victim.nic.break_rx_pipeline()
    sim.run(until=sim.now + 6 * MS)
    before = [s.completed_bytes for s in senders]
    sim.run(until=sim.now + 2 * MS)
    window = [(s.completed_bytes - b) * 8.0 / (2 * MS) for s, b in zip(senders, before)]
    collector.stop()

    detector = IncidentDetector(collector, pause_rate_threshold=2)
    return {
        "goodput": sum(window),
        "blocked": sum(1 for g in window if g < 0.1),
        "flows": len(senders),
        "origin": detector.trace_origin(),
        "victims": len(detector.pause_storms()),
        "nic_tripped": victim.nic.watchdog_trips,
        "audit": audit.summary(),
        "audit_clean": audit.clean,
    }


def main():
    for watchdogs in (False, True):
        r = run(watchdogs)
        print("watchdogs %-3s: %d/%d flows blocked, aggregate %.1f Gb/s"
              % ("on" if watchdogs else "off", r["blocked"], r["flows"], r["goodput"]))
        print("              incident detector traced origin -> %s "
              "(%d devices saw pause storms, NIC watchdog trips: %d)"
              % (r["origin"], r["victims"], r["nic_tripped"]))
        print("              invariant auditors: %s" % r["audit"])
        if watchdogs:
            assert r["audit_clean"], r["audit"]
        else:
            assert not r["audit_clean"], "an unchecked storm must trip the auditors"
    print(
        "\nWithout watchdogs one broken NIC freezes every flow in the"
        "\nfabric; with the paper's two watchdogs only the victim's own"
        "\nflows are lost, and monitoring pinpoints the culprit server."
    )


if __name__ == "__main__":
    main()
